// fig_stream_overlap — multi-queue chunk overlap inside one hetero executor
// (docs/heterogeneous.md, "Overlap & streams").
//
// Small matrices leave most of the device idle per chunk: a uniform batch
// capped at a small nmax occupies a fraction of the K40c's SMs, so running
// chunks on concurrent stream slots overlaps their launch gaps and idle
// SMs. This bench runs the same Full-mode workload on "k40c" (one stream)
// and "k40c:4streams" and reports the modelled speedup and the per-executor
// overlap ratio.
//
// Output: a summary on stdout plus one JSON line per configuration appended
// to BENCH_streams.json (override with --out). The run FAILS (exit 1) if
// the 4-stream pool is not at least 1.3x faster in modelled time, or if the
// factors/info are not bit-identical across stream counts — overlap must
// change the clock and nothing else.
//
// Usage:
//   fig_stream_overlap [--batch N] [--nmax N] [--seed N] [--out FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"

namespace {

using namespace vbatch;

struct Options {
  int batch = 240;
  int nmax = 16;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_streams.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--batch N] [--nmax N] [--seed N] [--out FILE]\n", argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1) usage(argv[0]);
  return o;
}

struct Point {
  std::string pool;
  double seconds = 0.0;
  double gflops = 0.0;
  int streams = 1;
  double overlap = 1.0;
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
};

Point run_pool(const char* desc, const std::vector<int>& sizes) {
  Queue q;  // Full mode: the bit-identity gate needs real numerics
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  hetero::DevicePool pool = hetero::DevicePool::parse(desc);
  const auto r = hetero::potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  Point p;
  p.pool = desc;
  p.seconds = r.seconds;
  p.gflops = r.gflops();
  p.streams = r.executors.front().streams;
  p.overlap = r.executors.front().overlap;
  for (int i = 0; i < batch.count(); ++i) p.factors.push_back(batch.copy_matrix(i));
  p.info.assign(batch.info().begin(), batch.info().end());
  return p;
}

bool bit_identical(const Point& a, const Point& b) {
  if (a.info != b.info || a.factors.size() != b.factors.size()) return false;
  for (std::size_t i = 0; i < a.factors.size(); ++i) {
    if (a.factors[i].size() != b.factors[i].size()) return false;
    if (std::memcmp(a.factors[i].data(), b.factors[i].data(),
                    a.factors[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Rng rng(o.seed);
  const auto sizes = make_sizes(SizeDist::Uniform, rng, o.batch, o.nmax);

  std::printf("uniform sizes in [1, %d], batch %d, dpotrf, Full mode:\n", o.nmax, o.batch);
  std::printf("  %-18s %12s %10s %8s %8s %8s\n", "pool", "modelled ms", "Gflop/s", "speedup",
              "streams", "overlap");

  const char* pools[] = {"k40c", "k40c:2streams", "k40c:4streams"};
  std::FILE* f = std::fopen(o.out.c_str(), "a");
  if (f == nullptr) std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());

  bool ok = true;
  Point base;
  for (const char* desc : pools) {
    const Point p = run_pool(desc, sizes);
    if (p.pool == "k40c") base = p;
    const double speedup = base.seconds > 0.0 ? base.seconds / p.seconds : 0.0;
    std::printf("  %-18s %12.4f %10.1f %7.2fx %8d %7.2fx\n", desc, p.seconds * 1e3, p.gflops,
                speedup, p.streams, p.overlap);
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\": \"stream_overlap\", \"pool\": \"%s\", \"batch\": %d, "
                   "\"nmax\": %d, \"precision\": \"d\", \"modelled_seconds\": %.9f, "
                   "\"gflops\": %.3f, \"speedup_vs_1stream\": %.3f, \"streams\": %d, "
                   "\"overlap\": %.3f}\n",
                   desc, o.batch, o.nmax, p.seconds, p.gflops, speedup, p.streams, p.overlap);
    }

    if (!bit_identical(base, p)) {
      std::fprintf(stderr, "FAILED: '%s' changed the factors or info — overlap must only "
                           "change the modelled clock\n", desc);
      ok = false;
    }
    if (p.pool == "k40c:4streams" && speedup < 1.3) {
      std::fprintf(stderr, "FAILED: 4-stream speedup %.2fx < 1.3x on the small-matrix batch\n",
                   speedup);
      ok = false;
    }
  }
  if (f != nullptr) std::fclose(f);
  std::printf("\n%s\n", ok ? "overlap gates passed" : "overlap gates FAILED");
  return ok ? 0 : 1;
}
