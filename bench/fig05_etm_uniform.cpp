// Figure 5: the four fused-kernel vbatched POTRF versions — ETM-classic,
// ETM-aggressive, each with and without implicit sorting — on uniformly
// distributed sizes, batch count 3000, single and double precision.
//
// Paper shape (§IV-D): ETM-aggressive beats ETM-classic by 12–33% (SP) and
// 11–35% (DP); implicit sorting lifts ETM-classic by up to 42% (SP) / 60%
// (DP) and ETM-aggressive by up to 15% (SP) / 41% (DP).
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 3000;
const int kNmaxSp[] = {64, 128, 192, 256, 320, 384, 448, 512};
const int kNmaxDp[] = {64, 128, 192, 256, 320, 384, 448};

struct VariantResult {
  double classic = 0, aggressive = 0, classic_sort = 0, aggressive_sort = 0;
};
std::map<int, VariantResult> g_sp, g_dp;

template <typename T>
void BM_EtmVariants(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  Rng rng(2016);
  const auto sizes = uniform_sizes(rng, kBatch, nmax);
  VariantResult r;
  for (auto _ : state) {
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.etm = EtmMode::Classic;
    o.implicit_sorting = false;
    r.classic = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Aggressive;
    r.aggressive = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Classic;
    o.implicit_sorting = true;
    r.classic_sort = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Aggressive;
    r.aggressive_sort = bench::timed_vbatched<T>(sizes, o);
  }
  state.counters["etm_classic"] = r.classic;
  state.counters["etm_aggressive"] = r.aggressive;
  state.counters["classic_sorting"] = r.classic_sort;
  state.counters["aggressive_sorting"] = r.aggressive_sort;
  (precision_v<T> == Precision::Single ? g_sp : g_dp)[nmax] = r;
}

void print_series(const char* name, const std::map<int, VariantResult>& data) {
  util::Table t({"Nmax", "ETM-classic", "ETM-aggressive", "classic+sort", "aggr+sort"});
  for (const auto& [nmax, r] : data) {
    t.new_row().add(nmax).add(r.classic, 1).add(r.aggressive, 1).add(r.classic_sort, 1)
        .add(r.aggressive_sort, 1);
  }
  std::printf("\n%s (Gflop/s):\n", name);
  t.print(std::cout);
}

void check_series(bench::ShapeChecks& sc, const char* prec,
                  const std::map<int, VariantResult>& data, double aggr_lo, double aggr_hi,
                  double sort_classic_hi, double sort_aggr_hi) {
  double min_aggr_gain = 1e9, max_aggr_gain = 0.0;
  double max_sort_classic = 0.0, max_sort_aggr = 0.0;
  bool sort_never_much_worse = true;
  for (const auto& [nmax, r] : data) {
    const double ag = (r.aggressive - r.classic) / r.classic;
    min_aggr_gain = std::min(min_aggr_gain, ag);
    max_aggr_gain = std::max(max_aggr_gain, ag);
    max_sort_classic = std::max(max_sort_classic, (r.classic_sort - r.classic) / r.classic);
    max_sort_aggr = std::max(max_sort_aggr, (r.aggressive_sort - r.aggressive) / r.aggressive);
    if (r.classic_sort < r.classic * 0.95 || r.aggressive_sort < r.aggressive * 0.95)
      sort_never_much_worse = false;
  }
  sc.expect(min_aggr_gain > 0.0,
            std::string(prec) + ": ETM-aggressive beats ETM-classic at every size");
  sc.expect(max_aggr_gain >= aggr_lo && max_aggr_gain <= aggr_hi,
            std::string(prec) + ": peak aggressive-vs-classic gain in the paper's range");
  sc.expect(max_sort_classic >= sort_classic_hi,
            std::string(prec) + ": implicit sorting lifts ETM-classic substantially");
  sc.expect(max_sort_aggr >= sort_aggr_hi,
            std::string(prec) + ": implicit sorting lifts ETM-aggressive");
  sc.expect(sort_never_much_worse,
            std::string(prec) + ": sorting never costs more than 5% anywhere");
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<float>(
      {.path = vbatch::PotrfPath::Fused, .etm = vbatch::EtmMode::Classic});
  bench::validate_numerics<double>(
      {.path = vbatch::PotrfPath::Fused, .implicit_sorting = true});

  for (int nmax : kNmaxSp) {
    benchmark::RegisterBenchmark(("Fig5a/spotrf_vbatched/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_EtmVariants<float>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int nmax : kNmaxDp) {
    benchmark::RegisterBenchmark(("Fig5b/dpotrf_vbatched/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_EtmVariants<double>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 5", [](bench::ShapeChecks& sc) {
    print_series("Fig. 5a — single precision, uniform sizes", g_sp);
    print_series("Fig. 5b — double precision, uniform sizes", g_dp);
    // Paper: aggr gains 12-33% SP / 11-35% DP; sorting up to 42%/15% SP and
    // 60%/41% DP (classic/aggressive respectively).
    check_series(sc, "SP", g_sp, 0.12, 0.50, 0.30, 0.10);
    check_series(sc, "DP", g_dp, 0.11, 0.50, 0.30, 0.15);
  });
}
