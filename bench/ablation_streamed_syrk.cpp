// Ablation: the trailing-update alternatives of §III-E3 — the vbatched
// MAGMA-style syrk grid against the streamed per-matrix syrk (one kernel
// per matrix on concurrent streams, the CUBLAS pattern). The paper selects
// between them with a tuning process; this bench shows the trade-off the
// tuner navigates.
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

const int kNmax[] = {256, 512, 768, 1024, 1536, 2048};
const int kBatches[] = {100, 800};

std::map<std::pair<int, int>, std::pair<double, double>> g_results;  // (batch,nmax)->(vb,streamed)

void BM_SyrkAlternatives(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int nmax = static_cast<int>(state.range(1));
  Rng rng(17);
  const auto sizes = uniform_sizes(rng, batch, nmax);
  double vb = 0.0, streamed = 0.0;
  for (auto _ : state) {
    PotrfOptions o;
    o.path = PotrfPath::Separated;
    o.streamed_syrk = false;
    vb = bench::timed_vbatched<double>(sizes, o);
    o.streamed_syrk = true;
    streamed = bench::timed_vbatched<double>(sizes, o);
  }
  state.counters["vbatched_syrk"] = vb;
  state.counters["streamed_syrk"] = streamed;
  g_results[{batch, nmax}] = {vb, streamed};
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>(
      {.path = vbatch::PotrfPath::Separated, .streamed_syrk = true});

  for (int batch : kBatches) {
    for (int nmax : kNmax) {
      benchmark::RegisterBenchmark(("AblationSyrk/dpotrf_separated/batch=" +
                                    std::to_string(batch) + "/Nmax=" + std::to_string(nmax))
                                       .c_str(),
                                   &BM_SyrkAlternatives)
          ->Args({batch, nmax})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_report(argc, argv, "streamed syrk ablation", [](bench::ShapeChecks& sc) {
    util::Table t({"batch", "Nmax", "vbatched syrk", "streamed syrk", "streamed/vbatched"});
    for (const auto& [key, v] : g_results) {
      t.new_row().add(key.first).add(key.second).add(v.first, 1).add(v.second, 1)
          .add(v.second / v.first, 2);
    }
    std::printf("\nTrailing-update alternatives (DP Gflop/s):\n");
    t.print(std::cout);

    // The vbatched grid wins when there are many small updates (launch
    // amortization); streaming becomes competitive for few large matrices.
    const auto& many_small = g_results[{800, 256}];
    sc.expect(many_small.first > many_small.second,
              "vbatched syrk wins for many small matrices (launch amortization)");
    const auto& few_large = g_results[{100, 2048}];
    sc.expect(few_large.second > few_large.first * 0.7,
              "streamed syrk competitive for fewer, larger matrices");
  });
}
