// Figure 10: energy to solution for the vbatched dpotrf — the GPU
// implementation (simulated K40c, NVML-style power integration) against the
// fastest CPU implementation ("the optimized MKL Library within a
// dynamically unrolled parallel OpenMP loop, assigning one core per matrix
// at a time"), PAPI-style power integration (paper §IV-G).
//
// Paper shape: "the GPU implementation is always more efficient than the
// CPU ones, in terms of both time and energy to solution ... up to a factor
// of 3× more energy efficient." One bar group per matrix-size range.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "vbatch/cpu/cpu_batched.hpp"
#include "vbatch/energy/energy_meter.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 800;

// Size ranges mirroring the paper's bar groups (min:max of the batch).
struct Range {
  int lo, hi;
};
// Ranges chosen so that batch 800 in double precision stays inside the
// 12 GB device memory (the largest group uses ~7.6 GB).
const Range kRanges[] = {{32, 128},  {128, 256}, {256, 384},  {384, 512},
                         {512, 640}, {640, 768}, {768, 1024}, {1024, 1216}};

struct EnergyPoint {
  double gpu_joules = 0, cpu_joules = 0, gpu_seconds = 0, cpu_seconds = 0;
  [[nodiscard]] double ratio() const { return cpu_joules / gpu_joules; }
};
std::map<int, EnergyPoint> g_points;  // keyed by range lo

std::vector<int> range_sizes(const Range& r) {
  Rng rng(2016u + static_cast<unsigned>(r.lo));
  std::vector<int> sizes(kBatch);
  for (auto& s : sizes) s = static_cast<int>(rng.uniform_int(r.lo, r.hi));
  return sizes;
}

void BM_Energy(benchmark::State& state) {
  const Range r = kRanges[state.range(0)];
  const auto sizes = range_sizes(r);
  EnergyPoint p;
  for (auto _ : state) {
    // GPU run: integrate modelled power over the device timeline.
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<double> b(q, sizes);
    potrf_vbatched<double>(q, Uplo::Lower, b);
    const auto ge = energy::gpu_run_energy(q.spec(), energy::PowerModel::k40c(),
                                           energy::PowerModel::dual_e5_2670(),
                                           q.device().timeline(), Precision::Double);
    p.gpu_joules = ge.joules;
    p.gpu_seconds = ge.seconds;

    // Fastest CPU run: dynamic one-core-per-matrix.
    const auto cpu_spec = cpu::CpuSpec::dual_e5_2670();
    std::vector<int> lda(sizes.begin(), sizes.end());
    std::vector<int> info(sizes.size(), 0);
    std::vector<double*> null_ptrs(sizes.size(), nullptr);
    const auto cr = cpu::potrf_batched_per_core<double>(cpu_spec, cpu::Schedule::Dynamic,
                                                        Uplo::Lower, sizes, null_ptrs.data(),
                                                        lda, info, false);
    const auto ce = energy::cpu_run_energy(energy::PowerModel::dual_e5_2670(),
                                           energy::PowerModel::k40c(), cr.seconds, cr.gflops(),
                                           cpu_spec.total_peak_gflops(Precision::Double));
    p.cpu_joules = ce.joules;
    p.cpu_seconds = ce.seconds;
  }
  state.counters["gpu_joules"] = p.gpu_joules;
  state.counters["cpu_joules"] = p.cpu_joules;
  state.counters["cpu_over_gpu"] = p.ratio();
  g_points[r.lo] = p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>({});

  for (std::size_t i = 0; i < std::size(kRanges); ++i) {
    benchmark::RegisterBenchmark(("Fig10/dpotrf_energy/sizes=" + std::to_string(kRanges[i].lo) +
                                  ":" + std::to_string(kRanges[i].hi))
                                     .c_str(),
                                 &BM_Energy)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 10", [](bench::ShapeChecks& sc) {
    util::Table t({"size range", "GPU J", "CPU J", "GPU s", "CPU s", "CPU/GPU energy"});
    for (const auto& r : kRanges) {
      const auto& p = g_points[r.lo];
      t.new_row()
          .add(std::to_string(r.lo) + ":" + std::to_string(r.hi))
          .add(p.gpu_joules, 1)
          .add(p.cpu_joules, 1)
          .add(p.gpu_seconds, 3)
          .add(p.cpu_seconds, 3)
          .add(p.ratio(), 2);
    }
    std::printf("\nFig. 10 — energy to solution, vbatched dpotrf, batch %d:\n", kBatch);
    t.print(std::cout);

    bool gpu_always_wins_energy = true, gpu_always_wins_time = true;
    double max_ratio = 0.0;
    for (const auto& [lo, p] : g_points) {
      if (p.gpu_joules >= p.cpu_joules) gpu_always_wins_energy = false;
      if (p.gpu_seconds >= p.cpu_seconds) gpu_always_wins_time = false;
      max_ratio = std::max(max_ratio, p.ratio());
    }
    sc.expect(gpu_always_wins_energy,
              "GPU always more energy efficient than the fastest CPU implementation");
    sc.expect(gpu_always_wins_time, "GPU always faster in time to solution");
    sc.expect(max_ratio >= 1.8 && max_ratio <= 4.0,
              "peak energy-efficiency factor near the paper's 'up to 3x' (measured " +
                  std::to_string(max_ratio) + "x)");
  });
}
