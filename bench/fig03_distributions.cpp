// Figure 3: histograms of the matrix-size distributions used by every
// vbatched experiment — uniform over [1, Nmax] and Gaussian centred at
// ⌊Nmax/2⌋ — for a batch count of 2000 and Nmax = 512 (paper §IV-B).
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 2000;
constexpr int kNmax = 512;

SizeStats g_stats[2];

void BM_Distribution(benchmark::State& state) {
  const auto dist = static_cast<SizeDist>(state.range(0));
  std::vector<int> sizes;
  for (auto _ : state) {
    Rng rng(2016);
    sizes = make_sizes(dist, rng, kBatch, kNmax);
    benchmark::DoNotOptimize(sizes.data());
  }
  const auto st = size_stats(sizes);
  g_stats[state.range(0)] = st;
  state.counters["mean"] = st.mean;
  state.counters["stddev"] = st.stddev;
  state.counters["min"] = st.min;
  state.counters["max"] = st.max;

  std::cout << "\nFig. 3" << (dist == SizeDist::Uniform ? "a" : "b") << " — "
            << to_string(dist) << " distribution, batch " << kBatch << ", Nmax " << kNmax
            << ":\n";
  util::print_histogram(std::cout, sizes, 32, kNmax);
}

BENCHMARK(BM_Distribution)
    ->Arg(static_cast<int>(SizeDist::Uniform))
    ->Arg(static_cast<int>(SizeDist::Gaussian))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_and_report(argc, argv, "Fig. 3", [](bench::ShapeChecks& sc) {
    const auto& uni = g_stats[0];
    const auto& gau = g_stats[1];
    sc.expect(uni.min >= 1 && uni.max <= kNmax, "uniform sizes stay inside [1, Nmax]");
    sc.expect(std::abs(uni.mean - kNmax / 2.0) < kNmax * 0.04,
              "uniform mean near Nmax/2 (paper: sizes spread over the whole range)");
    sc.expect(uni.stddev > 135.0 && uni.stddev < 160.0,
              "uniform stddev near (Nmax-1)/sqrt(12)");
    sc.expect(std::abs(gau.mean - kNmax / 2.0) < kNmax * 0.04,
              "gaussian mean near floor(Nmax/2) (paper §IV-B)");
    sc.expect(gau.stddev < uni.stddev * 0.75,
              "gaussian concentrates around the mean, fewer sizes near the boundaries");
  });
}
