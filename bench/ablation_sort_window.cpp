// Ablation: the implicit-sorting window width (§III-D2: "The window size is
// determined by the block size nb"). Sweeps explicit widths against the
// driver's adaptive default.
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 3000;
constexpr int kNmax = 192;
const int kWidths[] = {8, 16, 32, 64, 96, 0};  // 0 = adaptive default

std::map<int, std::pair<double, double>> g_results;  // width -> (uniform, gaussian)

void BM_SortWindow(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Rng ru(3), rg(4);
  const auto uni = uniform_sizes(ru, kBatch, kNmax);
  const auto gau = gaussian_sizes(rg, kBatch, kNmax);
  double u = 0.0, g = 0.0;
  for (auto _ : state) {
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.implicit_sorting = true;
    o.sort_window = width;
    u = bench::timed_vbatched<double>(uni, o);
    g = bench::timed_vbatched<double>(gau, o);
  }
  state.counters["uniform"] = u;
  state.counters["gaussian"] = g;
  g_results[width] = {u, g};
}

}  // namespace

int main(int argc, char** argv) {
  for (int width : kWidths) {
    benchmark::RegisterBenchmark(
        ("AblationSortWindow/dpotrf_fused/width=" +
         (width == 0 ? std::string("auto") : std::to_string(width)))
            .c_str(),
        &BM_SortWindow)
        ->Args({width})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_report(argc, argv, "sort-window ablation", [](bench::ShapeChecks& sc) {
    util::Table t({"window", "uniform Gflop/s", "gaussian Gflop/s"});
    for (const auto& [w, v] : g_results) {
      t.new_row().add(w == 0 ? std::string("auto") : std::to_string(w)).add(v.first, 1)
          .add(v.second, 1);
    }
    std::printf("\nImplicit-sorting window-width sweep (DP, Nmax %d, batch %d):\n", kNmax,
                kBatch);
    t.print(std::cout);

    double best_u = 0.0;
    for (const auto& [w, v] : g_results) best_u = std::max(best_u, v.first);
    sc.expect(g_results[0].first >= best_u * 0.9,
              "adaptive window within 10% of the best explicit width (uniform)");
    // No sorting at all for reference: width irrelevant; check sorting helps.
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.implicit_sorting = false;
    Rng ru(3);
    const double unsorted = bench::timed_vbatched<double>(uniform_sizes(ru, kBatch, kNmax), o);
    sc.expect(g_results[0].first > unsorted,
              "adaptive sorted schedule beats the unsorted baseline");
  });
}
