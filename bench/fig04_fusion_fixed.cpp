// Figure 4: impact of kernel fusion on the fixed-size batched Cholesky —
// the fused kernel (§III-D) against the classic separated building-block
// BLAS approach (Haidar et al. [13]), batch count 3000, single and double
// precision, plus the relative-speedup series (Fig. 4c).
//
// Paper shape: large fusion speedups for very small matrices (up to ~13×
// SP / ~7× DP), decaying with size and dropping below 1× for the largest
// sizes ("a steady trend where the speedup is going below one").
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "vbatch/core/potrf_batched_fixed.hpp"
#include "vbatch/core/potrf_classic.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 3000;
const int kSizes[] = {8, 16, 32, 64, 96, 128, 192, 256, 384, 512};

// speedup[precision][n]
std::map<int, double> g_speedup_sp, g_speedup_dp;

template <typename T>
void BM_Fusion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double fused = 0.0, classic = 0.0;
  for (auto _ : state) {
    {
      Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
      auto b = Batch<T>::fixed(q, kBatch, n);
      PotrfOptions o;
      o.path = PotrfPath::Fused;
      fused = potrf_batched_fixed<T>(q, Uplo::Lower, b, o).gflops();
    }
    {
      Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
      auto b = Batch<T>::fixed(q, kBatch, n);
      classic = potrf_batched_classic<T>(q, Uplo::Lower, b).gflops();
    }
  }
  state.counters["fused_gflops"] = fused;
  state.counters["separated_gflops"] = classic;
  state.counters["speedup"] = fused / classic;
  auto& out = precision_v<T> == Precision::Single ? g_speedup_sp : g_speedup_dp;
  out[n] = fused / classic;
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>({.path = vbatch::PotrfPath::Fused});

  // Register explicit size points for both precisions.
  for (int n : kSizes) {
    benchmark::RegisterBenchmark(("Fig4a/sgemm_fused_vs_separated/n=" + std::to_string(n)).c_str(),
                                 &BM_Fusion<float>)
        ->Args({n})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig4b/dgemm_fused_vs_separated/n=" + std::to_string(n)).c_str(),
                                 &BM_Fusion<double>)
        ->Args({n})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 4", [](bench::ShapeChecks& sc) {
    vbatch::util::Table t({"n", "SP speedup", "DP speedup"});
    for (int n : kSizes) {
      t.new_row().add(n).add(g_speedup_sp[n], 2).add(g_speedup_dp[n], 2);
    }
    std::printf("\nFig. 4c — relative speedup of kernel fusion over separated BLAS:\n");
    t.print(std::cout);

    double sp_peak = 0.0, dp_peak = 0.0;
    for (int n : kSizes) {
      sp_peak = std::max(sp_peak, g_speedup_sp[n]);
      dp_peak = std::max(dp_peak, g_speedup_dp[n]);
    }
    sc.expect(sp_peak >= 4.0, "SP fusion speedup reaches several-fold for small sizes "
                              "(paper: up to 13x)");
    sc.expect(dp_peak >= 3.0, "DP fusion speedup reaches several-fold for small sizes "
                              "(paper: up to 7x)");
    sc.expect(sp_peak > dp_peak, "SP fusion speedup exceeds DP (paper Fig. 4c)");
    sc.expect(g_speedup_sp[32] > g_speedup_sp[512],
              "SP speedup decays as matrices grow");
    sc.expect(g_speedup_dp[32] > g_speedup_dp[512],
              "DP speedup decays as matrices grow");
    sc.expect(g_speedup_dp[512] < 1.0,
              "DP speedup drops below 1x at large sizes (paper: 'going below one')");
    sc.expect(g_speedup_sp[512] < 2.0,
              "SP speedup approaches the crossover at the largest sizes");
  });
}
