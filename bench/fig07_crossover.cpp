// Figure 7: crossover points between the fused-kernel approach (§III-D)
// and the separated vbatched-BLAS approach (§III-E), uniform sizes, batch
// count 800, both precisions. The "proposed" series is the shipping
// potrf_vbatched with the automatic max-size crossover policy (§IV-E).
//
// Paper shape: fusion wins below the crossover, separation above; the
// crossover is decided by the maximum size in the batch (shared-memory
// feasibility makes the fused approach impossible beyond a bound).
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "vbatch/core/crossover.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 800;
const int kNmax[] = {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000};

struct CrossResult {
  double fused = 0.0;  // 0 = infeasible (shared memory)
  double separated = 0.0;
  double proposed = 0.0;
};
std::map<int, CrossResult> g_sp, g_dp;

template <typename T>
void BM_Crossover(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  Rng rng(7);
  const auto sizes = uniform_sizes(rng, kBatch, nmax);
  CrossResult r;
  for (auto _ : state) {
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    try {
      r.fused = bench::timed_vbatched<T>(sizes, o);
    } catch (const Error&) {
      r.fused = 0.0;  // beyond the fused feasibility bound
    }
    o.path = PotrfPath::Separated;
    r.separated = bench::timed_vbatched<T>(sizes, o);
    o.path = PotrfPath::Auto;
    r.proposed = bench::timed_vbatched<T>(sizes, o);
  }
  state.counters["fused"] = r.fused;
  state.counters["separated"] = r.separated;
  state.counters["proposed"] = r.proposed;
  (precision_v<T> == Precision::Single ? g_sp : g_dp)[nmax] = r;
}

void print_series(const char* name, const std::map<int, CrossResult>& data) {
  util::Table t({"Nmax", "fused", "separated", "proposed"});
  for (const auto& [nmax, r] : data) {
    t.new_row().add(nmax).add(r.fused, 1).add(r.separated, 1).add(r.proposed, 1);
  }
  std::printf("\n%s (Gflop/s; fused = 0 means infeasible):\n", name);
  t.print(std::cout);
}

void check_series(bench::ShapeChecks& sc, const char* prec,
                  const std::map<int, CrossResult>& data, int crossover) {
  // Below the crossover the fused path should win; above it, separation.
  bool fused_wins_small = data.at(100).fused > data.at(100).separated * 0.95 &&
                          data.at(200).fused > data.at(200).separated;
  bool separated_wins_large = true;
  for (const auto& [nmax, r] : data) {
    if (nmax > crossover && r.fused > r.separated * 1.02) separated_wins_large = false;
  }
  // The proposed routine must track the better of the two everywhere.
  bool proposed_tracks_best = true;
  for (const auto& [nmax, r] : data) {
    const double best = std::max(r.fused, r.separated);
    if (r.proposed < best * 0.85) proposed_tracks_best = false;
  }
  sc.expect(fused_wins_small, std::string(prec) + ": fusion wins below the crossover");
  sc.expect(separated_wins_large, std::string(prec) + ": separation wins above the crossover");
  sc.expect(proposed_tracks_best,
            std::string(prec) + ": proposed (auto) stays within 15% of the better approach");
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>({.path = vbatch::PotrfPath::Auto});

  for (int nmax : kNmax) {
    benchmark::RegisterBenchmark(("Fig7a/spotrf_crossover/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_Crossover<float>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig7b/dpotrf_crossover/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_Crossover<double>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 7", [](bench::ShapeChecks& sc) {
    print_series("Fig. 7a — single precision", g_sp);
    print_series("Fig. 7b — double precision", g_dp);
    const auto spec = vbatch::sim::DeviceSpec::k40c();
    std::printf("\ncrossover policy: SP max-size %d, DP max-size %d (feasibility: %d / %d)\n",
                vbatch::crossover_max_size(spec, vbatch::Precision::Single),
                vbatch::crossover_max_size(spec, vbatch::Precision::Double),
                vbatch::fused_feasible_max(spec, vbatch::Precision::Single),
                vbatch::fused_feasible_max(spec, vbatch::Precision::Double));
    check_series(sc, "SP", g_sp, vbatch::crossover_max_size(spec, vbatch::Precision::Single));
    check_series(sc, "DP", g_dp, vbatch::crossover_max_size(spec, vbatch::Precision::Double));
    sc.expect(vbatch::crossover_max_size(spec, vbatch::Precision::Single) >
                  vbatch::crossover_max_size(spec, vbatch::Precision::Double),
              "SP crossover sits at larger sizes than DP (smaller elements, more shared "
              "memory headroom)");
  });
}
