// fig_oof_streaming — double-buffered out-of-core staging vs synchronous
// staging (docs/heterogeneous.md, "Out-of-core streaming").
//
// A batch of small-to-medium matrices is transfer-bound on the modelled
// PCIe link: staging a chunk over the K40c's 6 GB/s host→device lane costs
// far more than factorizing it. Forcing the out-of-core pipeline
// (Staging::Streamed) and toggling prefetch isolates exactly what the
// double buffering buys: with prefetch the next chunk's H2D and the
// previous chunk's D2H run behind the current compute on independent DMA
// lanes, so the pool commits one chunk per link period instead of paying
// h2d + compute + d2h serially.
//
// Output: a summary on stdout plus one JSON line per configuration appended
// to BENCH_oof.json (override with --out). The run FAILS (exit 1) if the
// double-buffered pipeline is not at least 1.4x faster than synchronous
// staging in modelled time, or if either streamed run's factors/info differ
// from the everything-resident run — streaming must change the clock and
// nothing else.
//
// Usage:
//   fig_oof_streaming [--batch N] [--nmax N] [--seed N] [--out FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"

namespace {

using namespace vbatch;

struct Options {
  int batch = 200;
  int nmax = 256;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_oof.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--batch N] [--nmax N] [--seed N] [--out FILE]\n", argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1) usage(argv[0]);
  return o;
}

struct Point {
  std::string label;
  double seconds = 0.0;
  double h2d_mb = 0.0;
  double d2h_mb = 0.0;
  double pipeline_ratio = 1.0;  ///< (busy + h2d + d2h) / pipeline span
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
};

Point run_config(const char* label, const std::vector<int>& sizes,
                 hetero::HeteroOptions::Staging staging, bool prefetch) {
  Queue q;  // Full mode: the bit-identity gate needs real numerics
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  hetero::HeteroOptions opts;
  opts.staging = staging;
  opts.prefetch = prefetch;
  opts.chunks_per_executor = 8;  // enough pipeline stages to amortize the fill
  const auto r = hetero::potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
  Point p;
  p.label = label;
  p.seconds = r.seconds;
  p.h2d_mb = r.h2d_bytes / (1024.0 * 1024.0);
  p.d2h_mb = r.d2h_bytes / (1024.0 * 1024.0);
  const auto& ex = r.executors.front();
  if (ex.pipeline_seconds > 0.0)
    p.pipeline_ratio = (ex.busy_seconds + ex.h2d_seconds + ex.d2h_seconds) / ex.pipeline_seconds;
  for (int i = 0; i < batch.count(); ++i) p.factors.push_back(batch.copy_matrix(i));
  p.info.assign(batch.info().begin(), batch.info().end());
  return p;
}

bool bit_identical(const Point& a, const Point& b) {
  if (a.info != b.info || a.factors.size() != b.factors.size()) return false;
  for (std::size_t i = 0; i < a.factors.size(); ++i) {
    if (a.factors[i].size() != b.factors[i].size()) return false;
    if (std::memcmp(a.factors[i].data(), b.factors[i].data(),
                    a.factors[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Rng rng(o.seed);
  const auto sizes = make_sizes(SizeDist::Gaussian, rng, o.batch, o.nmax);

  std::printf("gaussian sizes in [1, %d], batch %d, dpotrf on one K40c, Full mode:\n", o.nmax,
              o.batch);
  std::printf("  %-22s %12s %10s %10s %9s %8s\n", "staging", "modelled ms", "h2d MB", "d2h MB",
              "pipeline", "speedup");

  const Point resident =
      run_config("resident", sizes, hetero::HeteroOptions::Staging::Resident, true);
  const Point sync =
      run_config("streamed-sync", sizes, hetero::HeteroOptions::Staging::Streamed, false);
  const Point buffered =
      run_config("streamed-prefetch", sizes, hetero::HeteroOptions::Staging::Streamed, true);

  std::FILE* f = std::fopen(o.out.c_str(), "a");
  if (f == nullptr) std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());

  bool ok = true;
  for (const Point* p : {&resident, &sync, &buffered}) {
    const double speedup = p->seconds > 0.0 ? sync.seconds / p->seconds : 0.0;
    std::printf("  %-22s %12.4f %10.1f %10.1f %8.2fx %7.2fx\n", p->label.c_str(),
                p->seconds * 1e3, p->h2d_mb, p->d2h_mb, p->pipeline_ratio, speedup);
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\": \"oof_streaming\", \"staging\": \"%s\", \"batch\": %d, "
                   "\"nmax\": %d, \"precision\": \"d\", \"modelled_seconds\": %.9f, "
                   "\"h2d_mb\": %.3f, \"d2h_mb\": %.3f, \"pipeline_ratio\": %.3f, "
                   "\"speedup_vs_sync\": %.3f}\n",
                   p->label.c_str(), o.batch, o.nmax, p->seconds, p->h2d_mb, p->d2h_mb,
                   p->pipeline_ratio, speedup);
    }
    if (!bit_identical(resident, *p)) {
      std::fprintf(stderr, "FAILED: '%s' changed the factors or info — staging must only "
                           "change the modelled clock\n", p->label.c_str());
      ok = false;
    }
  }
  if (f != nullptr) std::fclose(f);

  const double speedup = buffered.seconds > 0.0 ? sync.seconds / buffered.seconds : 0.0;
  if (sync.h2d_mb <= 0.0 || buffered.h2d_mb <= 0.0) {
    std::fprintf(stderr, "FAILED: streamed configurations staged no bytes\n");
    ok = false;
  }
  if (speedup < 1.4) {
    std::fprintf(stderr, "FAILED: double-buffered speedup %.2fx < 1.4x over synchronous "
                         "staging on a transfer-bound batch\n", speedup);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "out-of-core gates passed" : "out-of-core gates FAILED");
  return ok ? 0 : 1;
}
