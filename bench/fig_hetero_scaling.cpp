// fig_hetero_scaling — multi-device scaling of the heterogeneous vbatched
// Cholesky (vbatch::hetero).
//
// The paper's outlook targets heterogeneous nodes; this bench quantifies
// the reproduction's answer: one variable-size DP batch split across 1, 2
// and 4 simulated K40c GPUs, each pool with and without the host CPU
// joining, for the uniform and Gaussian size distributions of §IV-B.
// Everything is modelled time (TimingOnly), so the numbers are exactly
// reproducible.
//
// Output: a summary table on stdout plus one JSON line per configuration
// appended to BENCH_hetero.json (override with --out). The run FAILS (exit
// 1) if the Gaussian batch misses the scaling gates: 2×K40c must be at
// least 1.7× faster than 1×K40c, and adding the CPU must never slow a pool
// down.
//
// Usage:
//   fig_hetero_scaling [--batch N] [--nmax N] [--seed N] [--out FILE]
#include <cstdio>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"

namespace {

using namespace vbatch;

struct Options {
  int batch = 3000;
  int nmax = 512;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_hetero.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--batch N] [--nmax N] [--seed N] [--out FILE]\n", argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1) usage(argv[0]);
  return o;
}

struct Point {
  std::string pool;
  double seconds = 0.0;
  double gflops = 0.0;
  double joules = 0.0;
  int chunks = 0;
  int steals = 0;
};

Point run_pool(const char* desc, const std::vector<int>& sizes) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  hetero::DevicePool pool = hetero::DevicePool::parse(desc);
  const auto r = hetero::potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  return {desc, r.seconds, r.gflops(), r.energy.joules, r.chunks, r.steals};
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const char* pools[] = {"k40c",           "k40c,cpu",
                         "k40c,k40c",      "k40c,k40c,cpu",
                         "k40c,k40c,k40c,k40c", "k40c,k40c,k40c,k40c,cpu"};

  std::FILE* f = std::fopen(o.out.c_str(), "a");
  if (f == nullptr) std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());

  bool ok = true;
  for (SizeDist dist : {SizeDist::Uniform, SizeDist::Gaussian}) {
    Rng rng(o.seed);
    const auto sizes = make_sizes(dist, rng, o.batch, o.nmax);
    std::printf("\n%s sizes in [1, %d], batch %d, dpotrf:\n", to_string(dist), o.nmax, o.batch);
    std::printf("  %-26s %12s %10s %8s %7s %7s %9s\n", "pool", "modelled ms", "Gflop/s",
                "speedup", "chunks", "steals", "joules");

    double base_seconds = 0.0;
    double prev_no_cpu = 0.0;
    for (const char* desc : pools) {
      const Point p = run_pool(desc, sizes);
      if (p.pool == "k40c") base_seconds = p.seconds;
      const double speedup = base_seconds > 0.0 ? base_seconds / p.seconds : 0.0;
      std::printf("  %-26s %12.3f %10.1f %7.2fx %7d %7d %9.2f\n", desc, p.seconds * 1e3,
                  p.gflops, speedup, p.chunks, p.steals, p.joules);
      if (f != nullptr) {
        std::fprintf(f,
                     "{\"bench\": \"hetero_scaling\", \"dist\": \"%s\", \"pool\": \"%s\", "
                     "\"batch\": %d, \"nmax\": %d, \"precision\": \"d\", "
                     "\"modelled_seconds\": %.9f, \"gflops\": %.3f, \"speedup_vs_1gpu\": %.3f, "
                     "\"chunks\": %d, \"steals\": %d, \"joules\": %.3f}\n",
                     to_string(dist), desc, o.batch, o.nmax, p.seconds, p.gflops, speedup,
                     p.chunks, p.steals, p.joules);
      }

      // Scaling gates (Gaussian is the acceptance workload).
      const std::string pd = p.pool;
      if (dist == SizeDist::Gaussian && pd == "k40c,k40c" && speedup < 1.7) {
        std::fprintf(stderr, "FAILED: 2xK40c speedup %.2fx < 1.7x on the Gaussian batch\n",
                     speedup);
        ok = false;
      }
      if (pd.find("cpu") == std::string::npos) {
        prev_no_cpu = p.seconds;
      } else if (dist == SizeDist::Gaussian && p.seconds > prev_no_cpu) {
        std::fprintf(stderr, "FAILED: adding the CPU slowed pool '%s' down (%.3f > %.3f ms)\n",
                     desc, p.seconds * 1e3, prev_no_cpu * 1e3);
        ok = false;
      }
    }
  }
  if (f != nullptr) std::fclose(f);
  std::printf("\n%s\n", ok ? "scaling gates passed" : "scaling gates FAILED");
  return ok ? 0 : 1;
}
