// Ablation: the autotuner (§III-D's per-size tuning at deployment). For a
// spread of workload shapes, compares the library's default configuration
// against the tuner's pick and reports the gain.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "vbatch/core/autotune.hpp"

namespace {

using namespace vbatch;

struct Workload {
  const char* name;
  SizeDist dist;
  int batch;
  int nmax;
};
const Workload kWorkloads[] = {
    {"small-uniform", SizeDist::Uniform, 3000, 64},
    {"mid-uniform", SizeDist::Uniform, 1000, 256},
    {"large-uniform", SizeDist::Uniform, 500, 1200},
    {"mid-gaussian", SizeDist::Gaussian, 1000, 256},
    {"tiny-batch", SizeDist::Uniform, 60, 128},
};

struct TunePoint {
  double default_gflops = 0.0;
  double tuned_gflops = 0.0;
  std::string config;
};
std::map<int, TunePoint> g_points;

void BM_Autotune(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(0)];
  Rng rng(777);
  const auto sizes = make_sizes(w.dist, rng, w.batch, w.nmax);
  TunePoint p;
  for (auto _ : state) {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    p.default_gflops = bench::timed_vbatched<double>(sizes, {});
    const auto tuned = autotune_potrf<double>(q, sizes);
    p.tuned_gflops = bench::timed_vbatched<double>(sizes, tuned.best);
    TuneCandidate best;
    best.options = tuned.best;
    best.gflops = tuned.best_gflops;
    p.config = best.describe();
  }
  state.counters["default"] = p.default_gflops;
  state.counters["tuned"] = p.tuned_gflops;
  state.counters["gain_pct"] = (p.tuned_gflops - p.default_gflops) / p.default_gflops * 100.0;
  g_points[static_cast<int>(state.range(0))] = p;
}

}  // namespace

int main(int argc, char** argv) {
  for (std::size_t i = 0; i < std::size(kWorkloads); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("AblationAutotune/dpotrf/") + kWorkloads[i].name).c_str(), &BM_Autotune)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_report(argc, argv, "autotune ablation", [](bench::ShapeChecks& sc) {
    util::Table t({"workload", "default GF/s", "tuned GF/s", "gain %", "tuned config"});
    bool never_worse = true;
    double best_gain = 0.0;
    for (std::size_t i = 0; i < std::size(kWorkloads); ++i) {
      const auto& p = g_points[static_cast<int>(i)];
      const double gain = (p.tuned_gflops - p.default_gflops) / p.default_gflops;
      t.new_row().add(kWorkloads[i].name).add(p.default_gflops, 1).add(p.tuned_gflops, 1)
          .add(gain * 100.0, 1).add(p.config);
      if (p.tuned_gflops < p.default_gflops * 0.999) never_worse = false;
      best_gain = std::max(best_gain, gain);
    }
    std::printf("\nAutotuner vs default configuration (DP):\n");
    t.print(std::cout);
    sc.expect(never_worse, "tuned configuration never loses to the default");
    sc.expect(best_gain > 0.02, "tuning finds a >2% win on at least one workload shape");
  });
}
