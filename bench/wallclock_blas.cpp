// wallclock_blas — host wall-clock benchmark for the BLAS micro-kernel
// engine (docs/blas.md).
//
// Part 1 measures naive-vs-blocked Gflop/s for the level-3 kernels the
// library's hot paths use — gemm NN, gemm NT (the fused-step rank-k shape),
// syrk and trsm — over the paper's size range, pinning the dispatch to the
// *_ref loops and then to the packed engine (micro::Dispatch::ForceRef /
// ForceBlocked) on identical inputs.
//
// Part 2 measures the end-to-end Full-mode wall clock of a vbatched
// Cholesky run with the engine disabled (ForceRef) and enabled (Auto, the
// production policy), and re-checks the factorization residual gate
// ‖A − L·Lᵀ‖_F / (n·‖A‖_F) on every matrix in both configurations.
//
// Output: a human-readable table on stdout plus one JSON line appended to
// BENCH_blas.json (override with --out). The run fails (non-zero exit) only
// on a numerics problem — a residual above the gate or a nonzero info —
// never on a low speedup.
//
// Usage:
//   wallclock_blas [--sizes n1,n2,...] [--batch N] [--nmax N]
//                  [--dist uniform|gaussian] [--reps N] [--seed N]
//                  [--out FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

struct Options {
  std::vector<int> sizes{8, 16, 32, 64, 96, 128, 192, 256, 384, 512};
  int batch = 300;
  int nmax = 384;
  SizeDist dist = SizeDist::Uniform;
  int reps = 2;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_blas.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--sizes n1,n2,...] [--batch N] [--nmax N]\n"
              "          [--dist uniform|gaussian] [--reps N] [--seed N] [--out FILE]\n",
              argv0);
  std::exit(2);
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                                       : comma - pos);
    out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sizes") o.sizes = parse_sizes(next());
    else if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--reps") o.reps = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else if (arg == "--dist") {
      const std::string v = next();
      if (v == "uniform") o.dist = SizeDist::Uniform;
      else if (v == "gaussian") o.dist = SizeDist::Gaussian;
      else usage(argv[0]);
    } else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1 || o.reps < 1 || o.sizes.empty()) usage(argv[0]);
  for (int n : o.sizes)
    if (n < 1) usage(argv[0]);
  return o;
}

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times `fn` (which must redo the full operation each call) with enough
// repetitions to get a stable reading; returns best seconds per call.
template <typename F>
double time_op(double flops, int outer_reps, F&& fn) {
  const int reps = std::clamp(static_cast<int>(5e7 / std::max(flops, 1.0)), 1, 20000);
  double best = 1e300;
  for (int rep = 0; rep < outer_reps; ++rep) {
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, (now_seconds() - t0) / reps);
  }
  return best;
}

struct KernelSeries {
  std::vector<double> ref_gflops;
  std::vector<double> blk_gflops;
};

void append_point(KernelSeries& s, double flops, double ref_sec, double blk_sec) {
  s.ref_gflops.push_back(flops / ref_sec * 1e-9);
  s.blk_gflops.push_back(flops / blk_sec * 1e-9);
}

std::string json_array(const std::vector<double>& v) {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3f", v[i]);
    out += buf;
    if (i + 1 < v.size()) out += ",";
  }
  return out + "]";
}

std::string json_int_array(const std::vector<int>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ",";
  }
  return out + "]";
}

struct E2eResult {
  double wall_seconds = 0.0;
  double max_residual = 0.0;
  bool info_clean = true;
};

E2eResult run_e2e(const Options& o, const std::vector<int>& sizes) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Batch<double> batch(q, sizes);
  E2eResult r;
  r.wall_seconds = 1e300;
  std::vector<std::vector<double>> originals;
  for (int rep = 0; rep < o.reps; ++rep) {
    Rng rng(o.seed + 1);
    batch.fill_spd(rng);
    if (rep == 0) {
      originals.clear();
      for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
    }
    const double t0 = now_seconds();
    potrf_vbatched<double>(q, Uplo::Lower, batch);
    r.wall_seconds = std::min(r.wall_seconds, now_seconds() - t0);
  }
  for (int info : batch.info())
    if (info != 0) r.info_clean = false;
  for (int i = 0; i < batch.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const auto factor = batch.copy_matrix(i);
    const auto& orig = originals[static_cast<std::size_t>(i)];
    const index_t ld = static_cast<index_t>(factor.size()) / n;
    r.max_residual = std::max(
        r.max_residual,
        blas::potrf_residual<double>(Uplo::Lower,
                                     ConstMatrixView<double>(orig.data(), n, n, ld),
                                     ConstMatrixView<double>(factor.data(), n, n, ld)));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  std::printf("wallclock_blas: sizes");
  for (int n : o.sizes) std::printf(" %d", n);
  std::printf(", e2e batch=%d nmax=%d %s, reps=%d\n", o.batch, o.nmax, to_string(o.dist),
              o.reps);

  KernelSeries gemm_nn, gemm_nt, syrk_s, trsm_s;
  Rng rng(o.seed);

  std::printf("  %5s | %21s | %21s | %21s | %21s\n", "n", "gemm NN ref/blk Gf/s",
              "gemm NT ref/blk Gf/s", "syrk ref/blk Gf/s", "trsm ref/blk Gf/s");
  for (int ni : o.sizes) {
    const index_t n = ni;
    const std::size_t nn = static_cast<std::size_t>(n * n);
    std::vector<double> a(nn), b(nn), c(nn), c0(nn), tri(nn), rhs0(nn);
    fill_general(rng, a.data(), n, n, n);
    fill_general(rng, b.data(), n, n, n);
    fill_general(rng, c0.data(), n, n, n);
    fill_general(rng, rhs0.data(), n, n, n);
    fill_general(rng, tri.data(), n, n, n);
    MatrixView<double> triv(tri.data(), n, n, n);
    for (index_t d = 0; d < n; ++d) triv(d, d) = 4.0 + static_cast<double>(d);

    ConstMatrixView<double> av(a.data(), n, n, n);
    ConstMatrixView<double> bv(b.data(), n, n, n);
    MatrixView<double> cv(c.data(), n, n, n);

    const double gemm_flops = flops::gemm(n, n, n);
    const double syrk_flops = flops::syrk(n, n);
    const double trsm_flops = flops::trsm(n, n, false);

    double ref_nn, blk_nn, ref_nt, blk_nt, ref_sy, blk_sy, ref_tr, blk_tr;
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceRef);
      ref_nn = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, bv, 0.0, cv);
      });
      ref_nt = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, av, bv, 0.0, cv);
      });
      ref_sy = time_op(syrk_flops, o.reps, [&] {
        blas::syrk<double>(Uplo::Lower, Trans::NoTrans, 1.0, av, 0.0, cv);
      });
      ref_tr = time_op(trsm_flops, o.reps, [&] {
        c = rhs0;
        blas::trsm<double>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, 1.0, triv,
                           cv);
      });
    }
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceBlocked);
      blk_nn = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, bv, 0.0, cv);
      });
      blk_nt = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, av, bv, 0.0, cv);
      });
      blk_sy = time_op(syrk_flops, o.reps, [&] {
        blas::syrk<double>(Uplo::Lower, Trans::NoTrans, 1.0, av, 0.0, cv);
      });
      blk_tr = time_op(trsm_flops, o.reps, [&] {
        c = rhs0;
        blas::trsm<double>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, 1.0, triv,
                           cv);
      });
    }
    append_point(gemm_nn, gemm_flops, ref_nn, blk_nn);
    append_point(gemm_nt, gemm_flops, ref_nt, blk_nt);
    append_point(syrk_s, syrk_flops, ref_sy, blk_sy);
    append_point(trsm_s, trsm_flops, ref_tr, blk_tr);
    std::printf("  %5d | %9.3f/%-9.3f | %9.3f/%-9.3f | %9.3f/%-9.3f | %9.3f/%-9.3f\n", ni,
                gemm_nn.ref_gflops.back(), gemm_nn.blk_gflops.back(), gemm_nt.ref_gflops.back(),
                gemm_nt.blk_gflops.back(), syrk_s.ref_gflops.back(), syrk_s.blk_gflops.back(),
                trsm_s.ref_gflops.back(), trsm_s.blk_gflops.back());
  }

  // Minimum double-precision gemm speedup over the n >= 64 sizes (the
  // acceptance band); the NT shape is the fused-step hot path.
  double min_speedup_nn = 1e300, min_speedup_nt = 1e300;
  for (std::size_t i = 0; i < o.sizes.size(); ++i) {
    if (o.sizes[i] < 64) continue;
    min_speedup_nn = std::min(min_speedup_nn, gemm_nn.blk_gflops[i] / gemm_nn.ref_gflops[i]);
    min_speedup_nt = std::min(min_speedup_nt, gemm_nt.blk_gflops[i] / gemm_nt.ref_gflops[i]);
  }
  if (min_speedup_nn > 1e299) min_speedup_nn = 0.0;
  if (min_speedup_nt > 1e299) min_speedup_nt = 0.0;

  // End-to-end Full-mode wall clock, engine off vs on.
  Rng size_rng(o.seed);
  const auto e2e_sizes = make_sizes(o.dist, size_rng, o.batch, o.nmax);
  E2eResult e2e_ref, e2e_blk;
  {
    blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceRef);
    e2e_ref = run_e2e(o, e2e_sizes);
  }
  {
    blas::micro::DispatchGuard guard(blas::micro::Dispatch::Auto);
    e2e_blk = run_e2e(o, e2e_sizes);
  }
  const double e2e_speedup =
      e2e_blk.wall_seconds > 0.0 ? e2e_ref.wall_seconds / e2e_blk.wall_seconds : 0.0;
  constexpr double kResidualGate = 1e-8;
  const bool residual_ok = e2e_ref.max_residual < kResidualGate &&
                           e2e_blk.max_residual < kResidualGate && e2e_ref.info_clean &&
                           e2e_blk.info_clean;

  std::printf("  gemm double min speedup (n>=64): NN %.2fx, NT %.2fx\n", min_speedup_nn,
              min_speedup_nt);
  std::printf("  e2e Full-mode: ref %.3f s, blocked %.3f s, speedup %.2fx, "
              "max residual %.2e/%.2e (%s)\n",
              e2e_ref.wall_seconds, e2e_blk.wall_seconds, e2e_speedup, e2e_ref.max_residual,
              e2e_blk.max_residual, residual_ok ? "PASS" : "FAIL");

  std::string json = "{\"bench\":\"wallclock_blas\",\"sizes\":" + json_int_array(o.sizes);
  auto add_series = [&json](const char* name, const KernelSeries& s) {
    json += std::string(",\"") + name + "_ref_gflops\":" + json_array(s.ref_gflops);
    json += std::string(",\"") + name + "_blk_gflops\":" + json_array(s.blk_gflops);
  };
  add_series("gemm_nn", gemm_nn);
  add_series("gemm_nt", gemm_nt);
  add_series("syrk", syrk_s);
  add_series("trsm", trsm_s);
  char tail[512];
  std::snprintf(tail, sizeof(tail),
                ",\"gemm_min_speedup_nn_64up\":%.3f,\"gemm_min_speedup_nt_64up\":%.3f,"
                "\"e2e_batch\":%d,\"e2e_nmax\":%d,\"e2e_dist\":\"%s\","
                "\"e2e_ref_seconds\":%.6e,\"e2e_blocked_seconds\":%.6e,"
                "\"e2e_speedup\":%.3f,\"e2e_max_residual_ref\":%.3e,"
                "\"e2e_max_residual_blocked\":%.3e,\"residual_ok\":%s}",
                min_speedup_nn, min_speedup_nt, o.batch, o.nmax, to_string(o.dist),
                e2e_ref.wall_seconds, e2e_blk.wall_seconds, e2e_speedup, e2e_ref.max_residual,
                e2e_blk.max_residual, residual_ok ? "true" : "false");
  json += tail;
  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(o.out.c_str(), "a")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());
  }

  if (!residual_ok) {
    std::fprintf(stderr, "FAILED: residual gate or info check failed\n");
    return 1;
  }
  return 0;
}
