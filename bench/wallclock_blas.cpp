// wallclock_blas — host wall-clock benchmark for the BLAS micro-kernel
// engine (docs/blas.md).
//
// Part 1 measures Gflop/s for the level-3 kernels the library's hot paths
// use — gemm NN, gemm NT (the fused-step rank-k shape), syrk and trsm —
// over the paper's size range, three ways on identical inputs:
//
//   ref     the *_ref loops (micro::Dispatch::ForceRef);
//   scalar  the packed engine pinned to Isa::Scalar with the default
//           profile — exactly the pre-vectorization engine;
//   blk     the packed engine under the active ISA and profile.
//
// Two regression gates ride on the sweep (evaluated only when the bearing
// sizes are in --sizes, so trimmed runs stay cheap):
//   * NT vector gate — on a vector ISA, blk NT-gemm must be >= 2x the
//     scalar engine at every n in {128, 256, 384};
//   * NN n=512 gate — blk NN at 512 must hold >= 0.9x its n=384 rate (the
//     balanced NC split removed the historical tail dip; this keeps it out).
//
// Part 2 measures the end-to-end Full-mode wall clock of a vbatched
// Cholesky run with the engine disabled (ForceRef) and enabled (Auto, the
// production policy) for every requested size distribution, and re-checks
// the factorization residual gate ‖A − L·Lᵀ‖_F / (n·‖A‖_F) on every matrix
// in both configurations.
//
// Output: a human-readable table on stdout plus one JSON line appended to
// BENCH_blas.json (override with --out). The run fails (non-zero exit) on a
// numerics problem or on a failed regression gate.
//
// Usage:
//   wallclock_blas [--sizes n1,n2,...] [--batch N] [--nmax N]
//                  [--dist uniform,gaussian,skewed,cluster] [--reps N]
//                  [--seed N] [--isa scalar|sse2|neon|avx2|avx512] [--tune]
//                  [--out FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/core/autotune.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

struct Options {
  std::vector<int> sizes{8, 16, 32, 64, 96, 128, 192, 256, 384, 512};
  int batch = 300;
  int nmax = 384;
  std::vector<SizeDist> dists{SizeDist::Uniform};
  int reps = 2;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_blas.json";
  bool tune = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--sizes n1,n2,...] [--batch N] [--nmax N]\n"
              "          [--dist uniform,gaussian,skewed,cluster] [--reps N] [--seed N]\n"
              "          [--isa scalar|sse2|neon|avx2|avx512] [--tune] [--out FILE]\n",
              argv0);
  std::exit(2);
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                                       : comma - pos);
    out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<SizeDist> parse_dists(const std::string& csv, const char* argv0) {
  std::vector<SizeDist> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                                       : comma - pos);
    if (tok == "uniform") out.push_back(SizeDist::Uniform);
    else if (tok == "gaussian") out.push_back(SizeDist::Gaussian);
    else if (tok == "skewed") out.push_back(SizeDist::Skewed);
    else if (tok == "cluster") out.push_back(SizeDist::Cluster);
    else usage(argv0);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sizes") o.sizes = parse_sizes(next());
    else if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--reps") o.reps = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else if (arg == "--tune") o.tune = true;
    else if (arg == "--dist") o.dists = parse_dists(next(), argv[0]);
    else if (arg == "--isa") {
      const auto isa = blas::micro::parse_isa(next());
      if (!isa) usage(argv[0]);
      blas::micro::set_isa(*isa);
    } else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1 || o.reps < 1 || o.sizes.empty() || o.dists.empty())
    usage(argv[0]);
  for (int n : o.sizes)
    if (n < 1) usage(argv[0]);
  return o;
}

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times `fn` (which must redo the full operation each call) with enough
// repetitions to get a stable reading; returns best seconds per call.
template <typename F>
double time_op(double flops, int outer_reps, F&& fn) {
  const int reps = std::clamp(static_cast<int>(5e7 / std::max(flops, 1.0)), 1, 20000);
  double best = 1e300;
  for (int rep = 0; rep < outer_reps; ++rep) {
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, (now_seconds() - t0) / reps);
  }
  return best;
}

struct KernelSeries {
  std::vector<double> ref_gflops;
  std::vector<double> scalar_gflops;  ///< packed engine, Isa::Scalar (PR 2 engine)
  std::vector<double> blk_gflops;     ///< packed engine, active ISA + profile
};

std::string json_array(const std::vector<double>& v) {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3f", v[i]);
    out += buf;
    if (i + 1 < v.size()) out += ",";
  }
  return out + "]";
}

std::string json_int_array(const std::vector<int>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ",";
  }
  return out + "]";
}

struct E2eResult {
  double wall_seconds = 0.0;
  double max_residual = 0.0;
  bool info_clean = true;
};

E2eResult run_e2e(const Options& o, const std::vector<int>& sizes) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Batch<double> batch(q, sizes);
  E2eResult r;
  r.wall_seconds = 1e300;
  std::vector<std::vector<double>> originals;
  for (int rep = 0; rep < o.reps; ++rep) {
    Rng rng(o.seed + 1);
    batch.fill_spd(rng);
    if (rep == 0) {
      originals.clear();
      for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
    }
    const double t0 = now_seconds();
    potrf_vbatched<double>(q, Uplo::Lower, batch);
    r.wall_seconds = std::min(r.wall_seconds, now_seconds() - t0);
  }
  for (int info : batch.info())
    if (info != 0) r.info_clean = false;
  for (int i = 0; i < batch.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const auto factor = batch.copy_matrix(i);
    const auto& orig = originals[static_cast<std::size_t>(i)];
    const index_t ld = static_cast<index_t>(factor.size()) / n;
    r.max_residual = std::max(
        r.max_residual,
        blas::potrf_residual<double>(Uplo::Lower,
                                     ConstMatrixView<double>(orig.data(), n, n, ld),
                                     ConstMatrixView<double>(factor.data(), n, n, ld)));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.tune) {
    BlasTuneSettings ts;
    ts.verbose = true;
    const BlasTuneResult tr = ensure_blas_tuned(ts);
    std::printf("wallclock_blas: tuning profile %s (%s)\n",
                tr.loaded_from_cache ? "loaded" : "swept", tr.cache_path.c_str());
  }
  const blas::micro::Isa isa = blas::micro::active_isa();
  const bool vector_isa = isa != blas::micro::Isa::Scalar;

  std::printf("wallclock_blas: isa=%s, sizes", to_string(isa));
  for (int n : o.sizes) std::printf(" %d", n);
  std::printf(", e2e batch=%d nmax=%d, reps=%d\n", o.batch, o.nmax, o.reps);

  KernelSeries gemm_nn, gemm_nt, syrk_s, trsm_s;
  Rng rng(o.seed);

  std::printf("  %5s | %28s | %28s | %28s | %28s\n", "n", "gemm NN ref/sc/blk Gf/s",
              "gemm NT ref/sc/blk Gf/s", "syrk ref/sc/blk Gf/s", "trsm ref/sc/blk Gf/s");
  for (int ni : o.sizes) {
    const index_t n = ni;
    const std::size_t nn = static_cast<std::size_t>(n * n);
    std::vector<double> a(nn), b(nn), c(nn), c0(nn), tri(nn), rhs0(nn);
    fill_general(rng, a.data(), n, n, n);
    fill_general(rng, b.data(), n, n, n);
    fill_general(rng, c0.data(), n, n, n);
    fill_general(rng, rhs0.data(), n, n, n);
    fill_general(rng, tri.data(), n, n, n);
    MatrixView<double> triv(tri.data(), n, n, n);
    for (index_t d = 0; d < n; ++d) triv(d, d) = 4.0 + static_cast<double>(d);

    ConstMatrixView<double> av(a.data(), n, n, n);
    ConstMatrixView<double> bv(b.data(), n, n, n);
    MatrixView<double> cv(c.data(), n, n, n);

    const double gemm_flops = flops::gemm(n, n, n);
    const double syrk_flops = flops::syrk(n, n);
    const double trsm_flops = flops::trsm(n, n, false);

    // One measurement pass of all four kernels under the current pins.
    double t_nn, t_nt, t_sy, t_tr;
    auto measure = [&] {
      t_nn = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, bv, 0.0, cv);
      });
      t_nt = time_op(gemm_flops, o.reps, [&] {
        blas::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, av, bv, 0.0, cv);
      });
      t_sy = time_op(syrk_flops, o.reps, [&] {
        blas::syrk<double>(Uplo::Lower, Trans::NoTrans, 1.0, av, 0.0, cv);
      });
      t_tr = time_op(trsm_flops, o.reps, [&] {
        c = rhs0;
        blas::trsm<double>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, 1.0, triv,
                           cv);
      });
    };
    auto record = [&](std::vector<double> KernelSeries::*member) {
      (gemm_nn.*member).push_back(gemm_flops / t_nn * 1e-9);
      (gemm_nt.*member).push_back(gemm_flops / t_nt * 1e-9);
      (syrk_s.*member).push_back(syrk_flops / t_sy * 1e-9);
      (trsm_s.*member).push_back(trsm_flops / t_tr * 1e-9);
    };
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceRef);
      measure();
      record(&KernelSeries::ref_gflops);
    }
    {
      // The scalar anchor: Isa::Scalar with the default profile is exactly
      // the pre-vectorization engine. The outer ProfileGuard restores any
      // tuned profile once the IsaGuard has switched the ISA back.
      blas::micro::ProfileGuard pguard(blas::micro::active_profile());
      blas::micro::IsaGuard iguard(blas::micro::Isa::Scalar);
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceBlocked);
      measure();
      record(&KernelSeries::scalar_gflops);
    }
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceBlocked);
      measure();
      record(&KernelSeries::blk_gflops);
    }
    auto row = [](const KernelSeries& s) {
      static char buf[64];
      std::snprintf(buf, sizeof buf, "%8.2f/%8.2f/%8.2f", s.ref_gflops.back(),
                    s.scalar_gflops.back(), s.blk_gflops.back());
      return std::string(buf);
    };
    std::printf("  %5d | %s | %s | %s | %s\n", ni, row(gemm_nn).c_str(), row(gemm_nt).c_str(),
                row(syrk_s).c_str(), row(trsm_s).c_str());
  }

  // Minimum double-precision gemm speedup over the n >= 64 sizes (the
  // acceptance band); the NT shape is the fused-step hot path.
  double min_speedup_nn = 1e300, min_speedup_nt = 1e300;
  for (std::size_t i = 0; i < o.sizes.size(); ++i) {
    if (o.sizes[i] < 64) continue;
    min_speedup_nn = std::min(min_speedup_nn, gemm_nn.blk_gflops[i] / gemm_nn.ref_gflops[i]);
    min_speedup_nt = std::min(min_speedup_nt, gemm_nt.blk_gflops[i] / gemm_nt.ref_gflops[i]);
  }
  if (min_speedup_nn > 1e299) min_speedup_nn = 0.0;
  if (min_speedup_nt > 1e299) min_speedup_nt = 0.0;

  // Gate 1: vectorized NT-gemm >= 2x the scalar engine at the gate sizes
  // (only meaningful on a vector ISA; vacuous when none of the sizes ran).
  constexpr int kVectorGateSizes[] = {128, 256, 384};
  double min_vector_ratio_nt = 1e300;
  for (std::size_t i = 0; i < o.sizes.size(); ++i) {
    if (std::find(std::begin(kVectorGateSizes), std::end(kVectorGateSizes), o.sizes[i]) ==
        std::end(kVectorGateSizes))
      continue;
    min_vector_ratio_nt =
        std::min(min_vector_ratio_nt, gemm_nt.blk_gflops[i] / gemm_nt.scalar_gflops[i]);
  }
  const bool vector_gate_ran = vector_isa && min_vector_ratio_nt < 1e299;
  const bool nt_vector_2x_ok = !vector_gate_ran || min_vector_ratio_nt >= 2.0;
  if (min_vector_ratio_nt > 1e299) min_vector_ratio_nt = 0.0;

  // Gate 2: the n=512 NN rate must hold >= 0.9x the n=384 rate — the
  // balanced NC split removed the historical tail dip; keep it out.
  double nn512_ratio = 0.0;
  bool nn512_ok = true;
  {
    const auto it384 = std::find(o.sizes.begin(), o.sizes.end(), 384);
    const auto it512 = std::find(o.sizes.begin(), o.sizes.end(), 512);
    if (it384 != o.sizes.end() && it512 != o.sizes.end()) {
      const auto i384 = static_cast<std::size_t>(it384 - o.sizes.begin());
      const auto i512 = static_cast<std::size_t>(it512 - o.sizes.begin());
      nn512_ratio = gemm_nn.blk_gflops[i512] / gemm_nn.blk_gflops[i384];
      nn512_ok = nn512_ratio >= 0.9;
    }
  }

  // End-to-end Full-mode wall clock, engine off vs on, per distribution.
  struct E2ePoint {
    SizeDist dist;
    E2eResult ref, blk;
  };
  std::vector<E2ePoint> e2e;
  bool residual_ok = true;
  for (SizeDist dist : o.dists) {
    Rng size_rng(o.seed);
    const auto e2e_sizes = make_sizes(dist, size_rng, o.batch, o.nmax);
    E2ePoint pt;
    pt.dist = dist;
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::ForceRef);
      pt.ref = run_e2e(o, e2e_sizes);
    }
    {
      blas::micro::DispatchGuard guard(blas::micro::Dispatch::Auto);
      pt.blk = run_e2e(o, e2e_sizes);
    }
    constexpr double kResidualGate = 1e-8;
    if (pt.ref.max_residual >= kResidualGate || pt.blk.max_residual >= kResidualGate ||
        !pt.ref.info_clean || !pt.blk.info_clean)
      residual_ok = false;
    std::printf("  e2e %-8s: ref %.3f s, blocked %.3f s, speedup %.2fx, "
                "max residual %.2e/%.2e\n",
                to_string(dist), pt.ref.wall_seconds, pt.blk.wall_seconds,
                pt.blk.wall_seconds > 0.0 ? pt.ref.wall_seconds / pt.blk.wall_seconds : 0.0,
                pt.ref.max_residual, pt.blk.max_residual);
    e2e.push_back(pt);
  }

  std::printf("  gemm double min speedup vs ref (n>=64): NN %.2fx, NT %.2fx\n", min_speedup_nn,
              min_speedup_nt);
  if (vector_gate_ran)
    std::printf("  NT vector gate (>=2.0x scalar engine at 128/256/384): %.2fx (%s)\n",
                min_vector_ratio_nt, nt_vector_2x_ok ? "PASS" : "FAIL");
  if (nn512_ratio > 0.0)
    std::printf("  NN n=512 gate (>=0.9x of n=384): %.2fx (%s)\n", nn512_ratio,
                nn512_ok ? "PASS" : "FAIL");
  std::printf("  residual gates: %s\n", residual_ok ? "PASS" : "FAIL");

  std::string json = std::string("{\"bench\":\"wallclock_blas\",\"isa\":\"") + to_string(isa) +
                     "\",\"tuned\":" + (o.tune ? "true" : "false") +
                     ",\"sizes\":" + json_int_array(o.sizes);
  auto add_series = [&json](const char* name, const KernelSeries& s) {
    json += std::string(",\"") + name + "_ref_gflops\":" + json_array(s.ref_gflops);
    json += std::string(",\"") + name + "_scalar_gflops\":" + json_array(s.scalar_gflops);
    json += std::string(",\"") + name + "_blk_gflops\":" + json_array(s.blk_gflops);
  };
  add_series("gemm_nn", gemm_nn);
  add_series("gemm_nt", gemm_nt);
  add_series("syrk", syrk_s);
  add_series("trsm", trsm_s);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                ",\"gemm_min_speedup_nn_64up\":%.3f,\"gemm_min_speedup_nt_64up\":%.3f,"
                "\"nt_vector_min_ratio\":%.3f,\"nt_vector_2x_ok\":%s,"
                "\"nn512_ratio\":%.3f,\"nn512_ok\":%s,"
                "\"e2e_batch\":%d,\"e2e_nmax\":%d,\"residual_ok\":%s,\"e2e\":[",
                min_speedup_nn, min_speedup_nt, min_vector_ratio_nt,
                nt_vector_2x_ok ? "true" : "false", nn512_ratio, nn512_ok ? "true" : "false",
                o.batch, o.nmax, residual_ok ? "true" : "false");
  json += buf;
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const E2ePoint& pt = e2e[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"dist\":\"%s\",\"ref_seconds\":%.6e,\"blocked_seconds\":%.6e,"
                  "\"speedup\":%.3f,\"max_residual_ref\":%.3e,\"max_residual_blocked\":%.3e}",
                  i ? "," : "", to_string(pt.dist), pt.ref.wall_seconds, pt.blk.wall_seconds,
                  pt.blk.wall_seconds > 0.0 ? pt.ref.wall_seconds / pt.blk.wall_seconds : 0.0,
                  pt.ref.max_residual, pt.blk.max_residual);
    json += buf;
  }
  json += "]}";
  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(o.out.c_str(), "a")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());
  }

  if (!residual_ok) {
    std::fprintf(stderr, "FAILED: residual gate or info check failed\n");
    return 1;
  }
  if (!nt_vector_2x_ok || !nn512_ok) {
    std::fprintf(stderr, "FAILED: performance regression gate failed\n");
    return 1;
  }
  return 0;
}
