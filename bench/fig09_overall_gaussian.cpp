// Figure 9: overall performance of the vbatched POTRF against every
// alternative of §IV-F, GAUSSIAN sizes, batch count 800.
//
// Paper shape: speedups over the best CPU competitor of 1.31–2.07× (SP)
// and 1.21–2.52× (DP); same ordering of alternatives as Fig. 8.
#include "overall_common.hpp"

namespace {

using namespace vbatch;
using bench_overall::OverallResult;

constexpr int kBatch = 800;
const int kNmax[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000, 2200};

std::map<int, OverallResult> g_sp, g_dp;

template <typename T>
void BM_OverallGaussian(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  Rng rng(99);
  const auto sizes = gaussian_sizes(rng, kBatch, nmax);
  OverallResult r;
  for (auto _ : state) r = bench_overall::run_point<T>(sizes, nmax);
  state.counters["vbatched"] = r.vbatched;
  state.counters["hybrid"] = r.hybrid;
  state.counters["padding"] = r.padding_oom ? 0.0 : r.padding;
  state.counters["cpu_mt"] = r.cpu_mt;
  state.counters["cpu_static"] = r.cpu_static;
  state.counters["cpu_dynamic"] = r.cpu_dynamic;
  (precision_v<T> == Precision::Single ? g_sp : g_dp)[nmax] = r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>({});

  for (int nmax : kNmax) {
    benchmark::RegisterBenchmark(("Fig9a/spotrf_overall/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_OverallGaussian<float>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig9b/dpotrf_overall/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_OverallGaussian<double>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 9", [](bench::ShapeChecks& sc) {
    bench_overall::print_series("Fig. 9a — single precision, gaussian sizes", g_sp);
    bench_overall::print_series("Fig. 9b — double precision, gaussian sizes", g_dp);
    // Paper: 1.31–2.07× (SP), 1.21–2.52× (DP); allow a tolerant band.
    bench_overall::check_series(sc, "SP", g_sp, 1.0, 3.2);
    bench_overall::check_series(sc, "DP", g_dp, 1.0, 3.2);
  });
}
