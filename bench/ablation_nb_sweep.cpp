// Ablation: the fused blocking size nb (§III-D). Wider panels amortize
// launches and deepen the in-kernel pipeline but cost shared memory, which
// caps occupancy and ultimately feasibility — the tension behind both the
// autotuned nb table and the crossover policy.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "vbatch/kernels/fused_potrf.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 2000;
const int kNmax[] = {64, 128, 256, 512};
const int kNb[] = {8, 16, 24, 32};

std::map<std::pair<int, int>, double> g_gflops;  // (nmax, nb) -> gflops

void BM_NbSweep(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  Rng rng(5);
  const auto sizes = uniform_sizes(rng, kBatch, nmax);
  double gflops = 0.0;
  const bool feasible =
      nmax <= kernels::fused_max_size(sim::DeviceSpec::k40c(), nb, sizeof(double));
  for (auto _ : state) {
    if (!feasible) continue;
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.fused_nb = nb;
    gflops = bench::timed_vbatched<double>(sizes, o);
  }
  state.counters["gflops"] = gflops;
  state.counters["feasible"] = feasible ? 1 : 0;
  g_gflops[{nmax, nb}] = gflops;
}

}  // namespace

int main(int argc, char** argv) {
  for (int nmax : kNmax) {
    for (int nb : kNb) {
      benchmark::RegisterBenchmark(("AblationNb/dpotrf_fused/Nmax=" + std::to_string(nmax) +
                                    "/nb=" + std::to_string(nb))
                                       .c_str(),
                                   &BM_NbSweep)
          ->Args({nmax, nb})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_report(argc, argv, "nb ablation", [](bench::ShapeChecks& sc) {
    util::Table t({"Nmax", "nb=8", "nb=16", "nb=24", "nb=32", "autotuned nb"});
    for (int nmax : kNmax) {
      t.new_row().add(nmax);
      for (int nb : kNb) {
        const double g = g_gflops[{nmax, nb}];
        t.add(g > 0 ? std::to_string(static_cast<int>(g)) : std::string("infeasible"));
      }
      t.add(kernels::choose_fused_nb(sim::DeviceSpec::k40c(), nmax, sizeof(double)));
    }
    std::printf("\nFused-kernel blocking-size sweep (DP Gflop/s, uniform sizes):\n");
    t.print(std::cout);

    // The autotuned table favours wide panels (the paper's configurations);
    // the sweep exposes the occupancy price that choice pays at moderate
    // sizes, so the check only demands the choice stays within 35% of the
    // best feasible blocking and is always feasible itself.
    bool auto_near_best = true;
    for (int nmax : kNmax) {
      double best = 0.0;
      for (int nb : kNb) best = std::max(best, g_gflops[{nmax, nb}]);
      const int chosen = kernels::choose_fused_nb(sim::DeviceSpec::k40c(), nmax, sizeof(double));
      if (g_gflops[{nmax, chosen}] < best * 0.65) auto_near_best = false;
    }
    sc.expect(auto_near_best, "autotuned nb within 35% of the best feasible blocking");
    sc.expect(g_gflops[{512, 16}] == 0.0 && g_gflops[{512, 8}] > 0.0,
              "wide blockings become infeasible at large sizes (shared-memory bound)");
  });
}
