// §III-A ablation: overhead of the LAPACK-like vbatched interface, which
// computes the maximum size with a device reduction kernel, against the
// expert interface that receives it from the caller. The paper claims the
// overhead is "in most cases negligible".
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

const int kBatches[] = {100, 300, 1000, 3000, 10000};
constexpr int kNmax = 256;

std::map<int, double> g_overhead_pct;

void BM_InterfaceOverhead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(41);
  const auto sizes = uniform_sizes(rng, batch, kNmax);
  double lapack_like = 0.0, expert = 0.0;
  for (auto _ : state) {
    {
      Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
      Batch<double> b(q, sizes);
      lapack_like = potrf_vbatched<double>(q, Uplo::Lower, b).seconds;
    }
    {
      Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
      Batch<double> b(q, sizes);
      expert = potrf_vbatched_max<double>(q, Uplo::Lower, b, kNmax).seconds;
    }
  }
  const double pct = (lapack_like - expert) / expert * 100.0;
  state.counters["lapack_like_ms"] = lapack_like * 1e3;
  state.counters["expert_ms"] = expert * 1e3;
  state.counters["overhead_pct"] = pct;
  g_overhead_pct[batch] = pct;
}

}  // namespace

int main(int argc, char** argv) {
  for (int batch : kBatches) {
    benchmark::RegisterBenchmark(
        ("AuxOverhead/interface_pair/batch=" + std::to_string(batch)).c_str(),
        &BM_InterfaceOverhead)
        ->Args({batch})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_report(argc, argv, "aux overhead (§III-A)", [](bench::ShapeChecks& sc) {
    util::Table t({"batch", "max-compute overhead %"});
    for (const auto& [batch, pct] : g_overhead_pct) t.new_row().add(batch).add(pct, 3);
    std::printf("\nDevice max-reduction overhead of the LAPACK-like interface:\n");
    t.print(std::cout);
    bool negligible = true;
    for (const auto& [batch, pct] : g_overhead_pct)
      if (pct > 5.0) negligible = false;
    sc.expect(negligible, "overhead of computing the maximum on device stays below 5% "
                          "(paper: 'in most cases ... negligible')");
  });
}
