// Shared sweep/print/check logic for the overall-performance figures
// (Fig. 8 uniform, Fig. 9 gaussian): the vbatched routine against the
// hybrid, padding and CPU alternatives of paper §IV-F.
#pragma once

#include <iostream>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "vbatch/core/hybrid.hpp"
#include "vbatch/core/padding.hpp"
#include "vbatch/cpu/cpu_batched.hpp"

namespace bench_overall {

using namespace vbatch;

struct OverallResult {
  double vbatched = 0, hybrid = 0, padding = 0, cpu_mt = 0, cpu_static = 0, cpu_dynamic = 0;
  bool padding_oom = false;
  [[nodiscard]] double best_cpu() const {
    return std::max({cpu_mt, cpu_static, cpu_dynamic});
  }
};

template <typename T>
OverallResult run_point(const std::vector<int>& sizes, int nmax) {
  OverallResult r;
  {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<T> b(q, sizes);
    r.vbatched = potrf_vbatched<T>(q, Uplo::Lower, b).gflops();
  }
  {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<T> b(q, sizes);
    r.hybrid = potrf_hybrid_sequence<T>(q, cpu::CpuSpec::dual_e5_2670(), Uplo::Lower, b).gflops();
  }
  {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<T> b(q, sizes);
    try {
      r.padding = potrf_vbatched_via_padding<T>(q, Uplo::Lower, b, nmax).gflops();
    } catch (const Error& e) {
      if (e.status() != Status::OutOfDeviceMemory) throw;
      r.padding_oom = true;  // the paper's truncated curves
    }
  }
  const auto cpu_spec = cpu::CpuSpec::dual_e5_2670();
  std::vector<int> lda(sizes.begin(), sizes.end());
  std::vector<int> info(sizes.size(), 0);
  std::vector<T*> null_ptrs(sizes.size(), nullptr);
  r.cpu_mt = cpu::potrf_batched_multithreaded<T>(cpu_spec, Uplo::Lower, sizes, null_ptrs.data(),
                                                 lda, info, false)
                 .gflops();
  r.cpu_static = cpu::potrf_batched_per_core<T>(cpu_spec, cpu::Schedule::Static, Uplo::Lower,
                                                sizes, null_ptrs.data(), lda, info, false)
                     .gflops();
  r.cpu_dynamic = cpu::potrf_batched_per_core<T>(cpu_spec, cpu::Schedule::Dynamic, Uplo::Lower,
                                                 sizes, null_ptrs.data(), lda, info, false)
                      .gflops();
  return r;
}

inline void print_series(const char* name, const std::map<int, OverallResult>& data) {
  util::Table t({"Nmax", "vbatched", "hybrid", "fixed+padding", "CPU-mt", "CPU-static",
                 "CPU-dynamic", "speedup-vs-best-CPU"});
  for (const auto& [nmax, r] : data) {
    t.new_row()
        .add(nmax)
        .add(r.vbatched, 1)
        .add(r.hybrid, 1)
        .add(r.padding_oom ? std::string("OOM") : [&] {
          std::ostringstream ss;
          ss.setf(std::ios::fixed);
          ss.precision(1);
          ss << r.padding;
          return ss.str();
        }())
        .add(r.cpu_mt, 1)
        .add(r.cpu_static, 1)
        .add(r.cpu_dynamic, 1)
        .add(r.vbatched / r.best_cpu(), 2);
  }
  std::printf("\n%s (Gflop/s):\n", name);
  t.print(std::cout);
}

inline void check_series(bench::ShapeChecks& sc, const char* prec,
                         const std::map<int, OverallResult>& data, double lo, double hi) {
  double min_speedup = 1e9, max_speedup = 0.0;
  bool hybrid_worst = true, padding_below_vbatched = true, dynamic_beats_static = true,
       mt_lags = true, saw_oom = false;
  for (const auto& [nmax, r] : data) {
    if (nmax >= 400) {  // the paper's speedup range is over the larger sizes
      const double s = r.vbatched / r.best_cpu();
      min_speedup = std::min(min_speedup, s);
      max_speedup = std::max(max_speedup, s);
    }
    if (r.hybrid >= r.cpu_mt || r.hybrid >= r.vbatched) hybrid_worst = false;
    if (!r.padding_oom && r.padding >= r.vbatched) padding_below_vbatched = false;
    if (r.cpu_dynamic < r.cpu_static) dynamic_beats_static = false;
    if (nmax <= 800 && r.cpu_mt >= r.cpu_dynamic) mt_lags = false;
    saw_oom |= r.padding_oom;
  }
  sc.expect(min_speedup >= lo && max_speedup <= hi,
            std::string(prec) + ": speedup vs best CPU inside the paper's band (" +
                std::to_string(min_speedup) + ".." + std::to_string(max_speedup) + ")");
  sc.expect(hybrid_worst, std::string(prec) + ": hybrid is the weakest option");
  sc.expect(padding_below_vbatched,
            std::string(prec) + ": padding never beats the vbatched routine");
  sc.expect(dynamic_beats_static,
            std::string(prec) + ": dynamic core scheduling beats static");
  sc.expect(mt_lags, std::string(prec) +
                         ": multithreaded-one-matrix lags one-core-per-matrix for small sizes");
  sc.expect(saw_oom, std::string(prec) +
                         ": padding runs out of GPU memory at large Nmax (truncated curve)");
}

}  // namespace bench_overall
