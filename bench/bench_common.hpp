// Shared infrastructure for the per-figure benchmark binaries.
//
// Every figure bench follows the same pattern:
//   1. a Full-mode smoke validation on a small batch (the numerics behind
//      the timing sweep are the real ones — this gate proves it);
//   2. a TimingOnly sweep registered as google-benchmark cases, reporting
//      the modelled Gflop/s as counters (the paper's metric: summed
//      per-matrix flops over elapsed time, §IV-B);
//   3. a paper-style series table on stdout;
//   4. shape assertions against the paper's qualitative claims, printed as
//      a PASS/FAIL summary (the process exits non-zero on FAIL).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/table.hpp"

namespace bench {

/// Collects qualitative shape assertions and renders the summary.
class ShapeChecks {
 public:
  void expect(bool pass, const std::string& what) {
    results_.push_back({pass, what});
    if (!pass) ++failures_;
  }

  /// Prints the summary; returns the number of failures.
  int report(const char* figure) const {
    std::printf("\n=== shape checks (%s) ===\n", figure);
    for (const auto& [pass, what] : results_) {
      std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", what.c_str());
    }
    std::printf("%zu checks, %d failures\n", results_.size(), failures_);
    return failures_;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  int failures_ = 0;
};

/// Full-mode numerical gate: factors a small random vbatched problem with
/// the given options and verifies every residual. Aborts on failure so a
/// broken kernel can never produce a plausible-looking performance table.
template <typename T>
inline void validate_numerics(const vbatch::PotrfOptions& opts, int count = 24, int nmax = 72) {
  using namespace vbatch;
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Rng rng(12345);
  auto sizes = uniform_sizes(rng, count, nmax);
  Batch<T> batch(q, sizes);
  batch.fill_spd(rng);
  std::vector<std::vector<T>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
  potrf_vbatched<T>(q, Uplo::Lower, batch, opts);
  const double tol = precision_v<T> == Precision::Double ? 1e-12 : 2e-5;
  for (int i = 0; i < batch.count(); ++i) {
    if (batch.info()[static_cast<std::size_t>(i)] != 0) {
      std::fprintf(stderr, "numerical gate: info[%d] != 0\n", i);
      std::abort();
    }
    const int n = sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<T> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    const double res = blas::potrf_residual<T>(Uplo::Lower, orig, batch.matrix(i));
    if (!(res < tol)) {
      std::fprintf(stderr, "numerical gate: residual %g for matrix %d (n=%d)\n", res, i, n);
      std::abort();
    }
  }
  std::printf("numerical gate passed (%d matrices, max n %d, %s)\n", count, nmax,
              std::string(precision_of<T>::name).c_str());
}

/// Runs one vbatched factorization in TimingOnly mode; returns Gflop/s.
template <typename T>
inline double timed_vbatched(const std::vector<int>& sizes, const vbatch::PotrfOptions& opts) {
  using namespace vbatch;
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<T> batch(q, sizes);
  return potrf_vbatched<T>(q, Uplo::Lower, batch, opts).gflops();
}

/// Standard main body: run google-benchmark, then the shape summary.
inline int run_and_report(int argc, char** argv, const char* figure,
                          const std::function<void(ShapeChecks&)>& checks) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ShapeChecks sc;
  checks(sc);
  return sc.report(figure) == 0 ? 0 : 1;
}

}  // namespace bench
