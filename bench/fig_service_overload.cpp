// fig_service_overload — what admission control buys under overload
// (docs/service.md, "Overload & admission").
//
// A serving system past saturation has exactly two choices: queue
// everything (latency grows without bound, deadlines blow, yet the pool
// still runs at capacity — throughput looks fine while goodput collapses)
// or shed load (accepted requests keep their latency, on-time useful work
// stays near capacity). This bench replays the same request set three ways
// on the same pool:
//
//   * uncontended    — arrivals at ~0.4x service rate: the latency floor.
//   * overload       — the same requests compressed to 2x service rate,
//                      admission disabled: the queue-everything collapse.
//   * admission      — same 2x overload with token buckets, a queue
//                      watermark and deadline shedding enabled.
//   * admission+death— the admission run with one executor dying
//                      mid-trace: capacity feedback tightens admission
//                      instead of letting p99 grow.
//
// The arrival rates and deadlines are calibrated from the pool's own
// modelled service time, so the bench is machine-independent and
// deterministic. Output: a summary on stdout plus one JSON line per mode
// appended to BENCH_overload.json (override with --out).
//
// Gates (exit 1 on failure):
//   * accepted p99 under admission <= 3x the uncontended p99;
//   * goodput under admission >= 1.3x the no-admission goodput;
//   * every accepted request's factor bytes identical to the uncontended
//     run — admission changes WHICH requests run, never WHAT they compute;
//   * the executor-death run sheds load (shed+expired > 0) and still keeps
//     accepted p99 <= 3x uncontended.
//
// Usage:
//   fig_service_overload [--count N] [--nmax N] [--seed N] [--out FILE]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/service/service.hpp"

namespace {

using namespace vbatch;
namespace svc = vbatch::service;

struct Options {
  // Large enough that modelled service time dominates the coalescing
  // budget — overload must be compute-bound, or "2x overload" would still
  // fit inside the 1 ms merge window and nothing would queue.
  int count = 320;
  int nmax = 128;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_overload.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--count N] [--nmax N] [--seed N] [--out FILE]\n", argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--count") o.count = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.count < 8 || o.nmax < 1) usage(argv[0]);
  return o;
}

constexpr const char* kPool = "cpu,k40c";

/// The fixed request set: ids, tenants, sizes. Arrival times and deadlines
/// are stamped per mode — the payloads (seeded by id) never change, so
/// factor bytes are comparable across every mode.
std::vector<svc::Request> make_requests(const Options& o) {
  Rng rng(o.seed);
  const auto sizes = make_sizes(SizeDist::Uniform, rng, o.count * 3, o.nmax);
  std::vector<svc::Request> reqs;
  for (int i = 0; i < o.count; ++i) {
    svc::Request r;
    r.id = static_cast<std::uint64_t>(i + 1);
    r.tenant = (i % 2 == 0) ? "astro" : "jacobi";
    r.sizes = {sizes[static_cast<std::size_t>(3 * i)],
               sizes[static_cast<std::size_t>(3 * i + 1)],
               sizes[static_cast<std::size_t>(3 * i + 2)]};
    reqs.push_back(std::move(r));
  }
  return reqs;
}

svc::Trace stamp(const std::vector<svc::Request>& reqs, double gap, double deadline) {
  svc::Trace trace;
  trace.tenants = {{"astro", 2.0}, {"jacobi", 1.0}};
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    svc::Request r = reqs[i];
    r.submit_time = static_cast<double>(i) * gap;
    r.deadline = deadline;
    trace.requests.push_back(std::move(r));
  }
  return trace;
}

svc::ServiceConfig base_config(bool full) {
  svc::ServiceConfig cfg;
  // A short merge window and a capped launch depth: at saturation the
  // coalescer would otherwise merge arbitrarily deep, making the saturated
  // pool several times faster than the uncontended one — and "2x the
  // saturated rate" impossible to distinguish from a burst the queue
  // absorbs. Capped, the service rate is the same loaded or not, so 2x
  // overload genuinely outruns the pool.
  cfg.coalesce.latency_budget = 2e-4;
  cfg.coalesce.max_batch = 16;
  if (full) {
    cfg.mode = sim::ExecMode::Full;
    cfg.keep_payloads = true;
  }
  // Pin the kernel configuration so payload bits cannot vary with the
  // merged-batch composition (the factor-identity gate needs this).
  cfg.hetero.potrf.path = PotrfPath::Separated;
  cfg.hetero.potrf.separated_nb = 16;
  return cfg;
}

svc::ServiceReport replay(const svc::Trace& trace, const svc::ServiceConfig& cfg,
                          const char* faults = nullptr) {
  hetero::DevicePool pool = hetero::DevicePool::parse(kPool);
  if (faults != nullptr) pool.set_faults(fault::parse_fault_spec(faults));
  return svc::replay_trace(pool, trace, cfg);
}

/// Every accepted (served) request in `run` must carry the same factor
/// bytes as the uncontended reference run of the same request set.
bool accepted_factors_match(const svc::ServiceReport& run, const svc::ServiceReport& ref) {
  std::map<std::uint64_t, const svc::RequestOutcome*> by_id;
  for (const auto& out : ref.outcomes) by_id[out.id] = &out;
  for (const auto& out : run.outcomes) {
    if (svc::is_rejected(out.status) || out.status != svc::RequestStatus::Ok) continue;
    const auto it = by_id.find(out.id);
    if (it == by_id.end()) return false;
    const auto& other = *it->second;
    if (out.info != other.info || out.factors.size() != other.factors.size()) return false;
    for (std::size_t m = 0; m < out.factors.size(); ++m) {
      if (out.factors[m].size() != other.factors[m].size()) return false;
      if (std::memcmp(out.factors[m].data(), other.factors[m].data(),
                      out.factors[m].size()) != 0)
        return false;
    }
  }
  return true;
}

void emit_json(std::FILE* f, const Options& o, const char* mode,
               const svc::ServiceReport& r) {
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"service_overload\", \"mode\": \"%s\", \"count\": %d, "
               "\"nmax\": %d, \"precision\": \"d\", \"pool\": \"%s\", "
               "\"makespan_seconds\": %.9f, \"p99_latency\": %.9f, "
               "\"accepted\": %d, \"shed\": %d, \"expired\": %d, "
               "\"slo_attainment\": %.4f, \"goodput_gflops\": %.3f, "
               "\"capacity_gflops\": %.3f}\n",
               mode, o.count, o.nmax, kPool, r.makespan, r.p99_latency, r.accepted, r.shed,
               r.expired, r.slo_attainment(), r.goodput_gflops(), r.capacity_gflops);
}

void print_row(const char* mode, const svc::ServiceReport& r) {
  std::printf("  %-18s %10.4f %9d %6d %8d %7.1f%% %10.3f %12.4f\n", mode,
              r.p99_latency * 1e3, r.accepted, r.shed, r.expired, r.slo_attainment() * 100.0,
              r.goodput_gflops(), r.makespan * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const std::vector<svc::Request> reqs = make_requests(o);

  // Calibrate arrival rates from the pool's own modelled service time: a
  // back-to-back replay (everything at t=0, timing only) gives the
  // saturated makespan S, so "2x overload" = the same work arriving in S/2.
  double service_seconds = 0.0;
  {
    const svc::Trace all_at_once = stamp(reqs, 0.0, 0.0);
    const svc::ServiceReport cal = replay(all_at_once, base_config(false));
    service_seconds = cal.makespan;
  }
  const double n = static_cast<double>(o.count);
  const double gap_uncontended = 2.5 * service_seconds / n;  // ~0.4x load
  const double gap_overload = 0.5 * service_seconds / n;     // 2x load

  // The latency floor: every request served, no deadlines, light load.
  const svc::Trace quiet = stamp(reqs, gap_uncontended, 0.0);
  const svc::ServiceReport uncontended = replay(quiet, base_config(true));

  // Deadlines for the overload runs: comfortably above the uncontended p99
  // (no uncontended request would miss it) but far below what an unbounded
  // queue reaches under 2x overload. The 3x p99 gate then has margin over
  // the deadline itself, absorbing capacity-estimate error at dispatch.
  const double deadline = 2.5 * uncontended.p99_latency;
  const svc::Trace storm = stamp(reqs, gap_overload, deadline);

  const svc::ServiceReport collapse = replay(storm, base_config(true));

  svc::ServiceConfig admit_cfg = base_config(true);
  admit_cfg.admission.enabled = true;
  // The depth watermark is the memory backstop, not the scheduler: size it
  // above one merge window's worth of overload arrivals so the token
  // buckets and deadline feasibility do the fine-grained shedding.
  admit_cfg.admission.max_queue = o.count / 4;
  // Per-tenant buckets sized so the tenants together refill at roughly the
  // measured pool throughput (weights 2 + 1 → 3 weight units): the overload
  // excess is what gets shed. The burst window holds ~4 average requests
  // for a weight-1 tenant, so short spikes ride through.
  double total_flops = 0.0;
  for (const svc::Request& r : reqs) total_flops += r.flops();
  const double measured_gflops = total_flops / service_seconds * 1e-9;
  const double avg_cost = total_flops / n;
  admit_cfg.admission.tenant_rate_gflops = measured_gflops / 3.0;
  admit_cfg.admission.burst_seconds =
      4.0 * avg_cost / (admit_cfg.admission.tenant_rate_gflops * 1e9);

  const svc::ServiceReport admission = replay(storm, admit_cfg);
  // after=1 counts completed chunks within one merged launch; with small
  // launches the GPU finishes one chunk and then dies, so the loss engages
  // on the very first launch instead of never reaching a larger threshold.
  const svc::ServiceReport death = replay(storm, admit_cfg, "die:exec=1,after=1");

  std::printf("%d two-matrix dpotrf requests on %s, 2x overload, deadline %.3f ms:\n",
              o.count, kPool, deadline * 1e3);
  std::printf("  %-18s %10s %9s %6s %8s %8s %10s %12s\n", "mode", "p99 ms", "accepted",
              "shed", "expired", "slo", "goodput", "makespan ms");
  print_row("uncontended", uncontended);
  print_row("overload", collapse);
  print_row("admission", admission);
  print_row("admission+death", death);

  std::FILE* f = std::fopen(o.out.c_str(), "a");
  if (f == nullptr)
    std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());
  emit_json(f, o, "uncontended", uncontended);
  emit_json(f, o, "overload_no_admission", collapse);
  emit_json(f, o, "overload_admission", admission);
  emit_json(f, o, "overload_admission_death", death);
  if (f != nullptr) std::fclose(f);

  bool ok = true;
  if (admission.p99_latency > 3.0 * uncontended.p99_latency) {
    std::fprintf(stderr,
                 "FAILED: accepted p99 %.4f ms under admission > 3x uncontended %.4f ms\n",
                 admission.p99_latency * 1e3, uncontended.p99_latency * 1e3);
    ok = false;
  }
  if (admission.goodput_gflops() < 1.3 * collapse.goodput_gflops()) {
    std::fprintf(stderr,
                 "FAILED: admission goodput %.3f Gflop/s < 1.3x the queue-everything "
                 "baseline %.3f Gflop/s\n",
                 admission.goodput_gflops(), collapse.goodput_gflops());
    ok = false;
  }
  if (admission.shed + admission.expired == 0) {
    std::fprintf(stderr, "FAILED: 2x overload shed nothing — admission never engaged\n");
    ok = false;
  }
  if (!accepted_factors_match(admission, uncontended)) {
    std::fprintf(stderr, "FAILED: an accepted request's factors differ from the "
                         "uncontended run — admission must only choose, never compute\n");
    ok = false;
  }
  if (!accepted_factors_match(death, uncontended)) {
    std::fprintf(stderr, "FAILED: an accepted request's factors differ under executor "
                         "death\n");
    ok = false;
  }
  if (death.shed + death.expired == 0) {
    std::fprintf(stderr, "FAILED: executor death shed nothing — capacity feedback never "
                         "tightened admission\n");
    ok = false;
  }
  if (death.capacity_gflops >= admission.capacity_gflops) {
    std::fprintf(stderr,
                 "FAILED: capacity estimate %.3f Gflop/s after executor death is not "
                 "below the healthy run's %.3f Gflop/s — the fault never fired\n",
                 death.capacity_gflops, admission.capacity_gflops);
    ok = false;
  }
  if (death.p99_latency > 3.0 * uncontended.p99_latency) {
    std::fprintf(stderr,
                 "FAILED: accepted p99 %.4f ms after executor death > 3x uncontended "
                 "%.4f ms — degradation was not graceful\n",
                 death.p99_latency * 1e3, uncontended.p99_latency * 1e3);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "overload gates passed" : "overload gates FAILED");
  return ok ? 0 : 1;
}
