// wallclock_engine — host wall-clock benchmark for the parallel execution
// engine.
//
// The simulated device reports *modelled* kernel times; this bench measures
// the *host* wall-clock of a Full-mode vbatched Cholesky run at 1 worker
// thread and at N worker threads. The engine's contract is that the worker
// count changes only wall-clock, never results: the run asserts that the
// factors, the info array, and the modelled seconds are bit-identical
// across thread counts, and exits non-zero if they are not.
//
// Output: a human-readable summary on stdout plus one JSON line appended to
// BENCH_wallclock.json (override with --out). A low speedup (e.g. on a
// single-core machine) is reported but is NOT an error — only a numerics
// mismatch fails the run.
//
// Usage:
//   wallclock_engine [--batch N] [--nmax N] [--dist uniform|gaussian]
//                    [--threads N] [--reps N] [--seed N] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace {

using namespace vbatch;

struct Options {
  int batch = 800;
  int nmax = 512;
  SizeDist dist = SizeDist::Uniform;
  int threads = 0;  // 0 = hardware concurrency
  int reps = 3;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_wallclock.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--batch N] [--nmax N] [--dist uniform|gaussian]\n"
              "          [--threads N] [--reps N] [--seed N] [--out FILE]\n",
              argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--threads") o.threads = std::atoi(next());
    else if (arg == "--reps") o.reps = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else if (arg == "--dist") {
      const std::string v = next();
      if (v == "uniform") o.dist = SizeDist::Uniform;
      else if (v == "gaussian") o.dist = SizeDist::Gaussian;
      else usage(argv[0]);
    } else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1 || o.reps < 1 || o.threads < 0) usage(argv[0]);
  return o;
}

// One full run at a fixed worker count: best-of-reps host wall-clock plus
// the complete result state for bit-identicality checks.
struct RunResult {
  double wall_seconds = 0.0;            // best of reps
  double modelled_seconds = 0.0;        // device-model time, must not vary
  std::vector<int> info;
  std::vector<std::vector<double>> factors;
};

RunResult run_at(const Options& o, const std::vector<int>& sizes, unsigned threads) {
  util::set_host_threads(threads);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Batch<double> batch(q, sizes);

  RunResult r;
  r.wall_seconds = 1e300;
  for (int rep = 0; rep < o.reps; ++rep) {
    Rng rng(o.seed + 1);  // identical data every rep and every thread count
    batch.fill_spd(rng);
    const auto t0 = std::chrono::steady_clock::now();
    const PotrfResult pr = potrf_vbatched<double>(q, Uplo::Lower, batch);
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_seconds = std::min(r.wall_seconds, std::chrono::duration<double>(t1 - t0).count());
    r.modelled_seconds = pr.seconds;
  }
  r.info.assign(batch.info().begin(), batch.info().end());
  for (int i = 0; i < batch.count(); ++i) r.factors.push_back(batch.copy_matrix(i));
  return r;
}

bool bit_identical(const RunResult& a, const RunResult& b) {
  if (a.info != b.info) return false;
  if (std::memcmp(&a.modelled_seconds, &b.modelled_seconds, sizeof(double)) != 0) return false;
  if (a.factors.size() != b.factors.size()) return false;
  for (std::size_t i = 0; i < a.factors.size(); ++i) {
    if (a.factors[i].size() != b.factors[i].size()) return false;
    if (std::memcmp(a.factors[i].data(), b.factors[i].data(),
                    a.factors[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned n_threads = o.threads > 0 ? static_cast<unsigned>(o.threads) : hw;

  Rng rng(o.seed);
  const auto sizes = make_sizes(o.dist, rng, o.batch, o.nmax);
  std::printf("wallclock_engine: %d matrices, %s sizes up to %d, reps=%d\n", o.batch,
              to_string(o.dist), o.nmax, o.reps);

  const RunResult base = run_at(o, sizes, 1);
  const RunResult par = run_at(o, sizes, n_threads);

  const bool identical = bit_identical(base, par);
  const double speedup = par.wall_seconds > 0.0 ? base.wall_seconds / par.wall_seconds : 0.0;

  std::printf("  threads=1:   wall %8.3f ms  (modelled %.3f ms)\n", base.wall_seconds * 1e3,
              base.modelled_seconds * 1e3);
  std::printf("  threads=%-3u: wall %8.3f ms  (modelled %.3f ms)\n", n_threads,
              par.wall_seconds * 1e3, par.modelled_seconds * 1e3);
  std::printf("  speedup %.2fx, results %s\n", speedup,
              identical ? "bit-identical" : "MISMATCH");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"wallclock_engine\",\"batch\":%d,\"nmax\":%d,\"dist\":\"%s\","
                "\"reps\":%d,\"threads\":%u,\"wall_seconds_1\":%.6e,"
                "\"wall_seconds_n\":%.6e,\"speedup\":%.3f,\"modelled_seconds\":%.9e,"
                "\"bit_identical\":%s}",
                o.batch, o.nmax, to_string(o.dist), o.reps, n_threads, base.wall_seconds,
                par.wall_seconds, speedup, base.modelled_seconds,
                identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen(o.out.c_str(), "a")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());
  }

  if (!identical) {
    std::fprintf(stderr, "FAILED: results differ between thread counts\n");
    return 1;
  }
  return 0;
}
