// Figure 8: overall performance of the vbatched POTRF against every
// alternative (§IV-F), uniform sizes, batch count 800:
//   * MAGMA-style hybrid CPU+GPU (one matrix at a time),
//   * fixed-size batched with zero padding (truncated by device memory),
//   * multithreaded CPU (all 16 cores on one matrix at a time),
//   * one-core-per-matrix CPU with static scheduling,
//   * one-core-per-matrix CPU with dynamic scheduling (best competitor).
//
// Paper shape: vbatched beats the best CPU competitor by 1.11–2.42× (SP)
// and 1.51–2.29× (DP); padding is up to ~3× slower than vbatched and its
// curve truncates when the padded copies exhaust the 12 GB device memory.
#include "overall_common.hpp"



namespace {

using namespace vbatch;
using bench_overall::OverallResult;

constexpr int kBatch = 800;
const int kNmax[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000, 2200};

std::map<int, OverallResult> g_sp, g_dp;

template <typename T>
void BM_Overall(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  Rng rng(88);
  const auto sizes = uniform_sizes(rng, kBatch, nmax);
  OverallResult r;
  for (auto _ : state) r = bench_overall::run_point<T>(sizes, nmax);
  state.counters["vbatched"] = r.vbatched;
  state.counters["hybrid"] = r.hybrid;
  state.counters["padding"] = r.padding_oom ? 0.0 : r.padding;
  state.counters["cpu_mt"] = r.cpu_mt;
  state.counters["cpu_static"] = r.cpu_static;
  state.counters["cpu_dynamic"] = r.cpu_dynamic;
  (precision_v<T> == Precision::Single ? g_sp : g_dp)[nmax] = r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>({});
  bench::validate_numerics<float>({});

  for (int nmax : kNmax) {
    benchmark::RegisterBenchmark(("Fig8a/spotrf_overall/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_Overall<float>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig8b/dpotrf_overall/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_Overall<double>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 8", [](bench::ShapeChecks& sc) {
    bench_overall::print_series("Fig. 8a — single precision, uniform sizes", g_sp);
    bench_overall::print_series("Fig. 8b — double precision, uniform sizes", g_dp);
    // Paper: 1.11–2.42× (SP), 1.51–2.29× (DP); allow a tolerant band.
    bench_overall::check_series(sc, "SP", g_sp, 1.0, 3.2);
    bench_overall::check_series(sc, "DP", g_dp, 1.0, 3.2);
  });
}
