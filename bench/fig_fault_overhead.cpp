// fig_fault_overhead — cost of the self-healing machinery when nothing
// fails (docs/robustness.md).
//
// The recovery loop (per-attempt injection oracle, attempt ledger, retry
// bookkeeping) sits on the hot path of every heterogeneous call, so its
// fault-free cost must be provably negligible. This bench runs the same
// Full-mode workload twice per rep: once with no fault plan (the machinery
// compiled out of the loop) and once with an ARMED but never-firing plan
// (rules targeting an executor the pool does not have), interleaved to
// decorrelate host drift, taking the min over reps to denoise.
//
// Gates (exit 1 on failure):
//   * armed wall-clock overhead < 3% of the plan-free wall clock;
//   * armed modelled makespan BIT-EQUAL to the plan-free one (an armed
//     plan that never fires must not perturb the schedule at all);
//   * zero retries / losses / poisons on the armed run.
// A faulted configuration (transient storm + one death) is also reported
// for context — no gate, its cost is the price of the injected faults.
//
// Output: a summary on stdout plus one JSON line per configuration
// appended to BENCH_fault.json (override with --out).
//
// Usage:
//   fig_fault_overhead [--batch N] [--nmax N] [--reps N] [--seed N] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"

namespace {

using namespace vbatch;

struct Options {
  int batch = 600;
  int nmax = 256;
  int reps = 5;
  int iters = 3;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_fault.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--batch N] [--nmax N] [--reps N] [--iters N] [--seed N] [--out FILE]\n",
              argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--reps") o.reps = std::atoi(next());
    else if (arg == "--iters") o.iters = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.batch < 1 || o.nmax < 1 || o.reps < 1 || o.iters < 1) usage(argv[0]);
  return o;
}

struct Sample {
  double wall_seconds = 0.0;     ///< host time of the hetero call itself
  double modelled_seconds = 0.0; ///< pool makespan (virtual)
  int retries = 0;
  int executors_lost = 0;
  int chunks_poisoned = 0;
};

/// One sample: `iters` back-to-back hetero calls (fresh batch each time so
/// every call factors pristine input), wall time averaged over the inner
/// loop — the averaging squeezes host jitter well below the 3% gate.
Sample run_once(const std::vector<int>& sizes, const std::string& fault_spec, int iters) {
  hetero::DevicePool pool = hetero::DevicePool::parse("cpu,k40c,p100");
  if (!fault_spec.empty()) pool.set_faults(fault::parse_fault_spec(fault_spec));
  Sample s;
  double total = 0.0;
  for (int it = 0; it < iters; ++it) {
    Queue q;
    Batch<double> batch(q, sizes);
    Rng fill(7);
    batch.fill_spd(fill);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = hetero::potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
    const auto t1 = std::chrono::steady_clock::now();
    total += std::chrono::duration<double>(t1 - t0).count();
    s.modelled_seconds = r.seconds;
    s.retries = r.retries;
    s.executors_lost = r.executors_lost;
    s.chunks_poisoned = r.chunks_poisoned;
  }
  s.wall_seconds = total / static_cast<double>(iters);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Rng rng(o.seed);
  const auto sizes = gaussian_sizes(rng, o.batch, o.nmax);

  // An armed plan that can never fire: its only rules target executor 99,
  // which a 3-executor pool never schedules. The recovery loop still runs.
  const std::string armed_spec = "die:exec=99,after=999;hang:exec=99,chunk=0";
  const std::string faulted_spec = "seed=5;transient:rate=0.1;die:exec=2,after=2";

  // Gate on the min over reps of the per-rep armed/plan-free wall ratio:
  // the two samples of a rep are adjacent in time (order alternating), so
  // host noise bursts longer than one sample cancel out of the ratio, and
  // the min discards the reps a burst straddled.
  Sample off, armed;
  off.wall_seconds = armed.wall_seconds = 1e300;
  double best_ratio = 1e300;
  for (int rep = 0; rep < o.reps; ++rep) {
    Sample a, b;
    if (rep % 2 == 0) {
      a = run_once(sizes, "", o.iters);
      b = run_once(sizes, armed_spec, o.iters);
    } else {
      b = run_once(sizes, armed_spec, o.iters);
      a = run_once(sizes, "", o.iters);
    }
    if (a.wall_seconds < off.wall_seconds) off = a;
    if (b.wall_seconds < armed.wall_seconds) armed = b;
    if (a.wall_seconds > 0.0) best_ratio = std::min(best_ratio, b.wall_seconds / a.wall_seconds);
  }
  const Sample faulted = run_once(sizes, faulted_spec, 1);

  const double overhead = best_ratio - 1.0;
  std::printf("fault machinery overhead, Gaussian batch %d, nmax %d, dpotrf, %d reps (min):\n",
              o.batch, o.nmax, o.reps);
  std::printf("  %-22s %14s %14s %9s %7s %9s\n", "config", "wall ms", "modelled ms", "retries",
              "lost", "poisoned");
  std::printf("  %-22s %14.3f %14.3f %9d %7d %9d\n", "plan-free", off.wall_seconds * 1e3,
              off.modelled_seconds * 1e3, off.retries, off.executors_lost, off.chunks_poisoned);
  std::printf("  %-22s %14.3f %14.3f %9d %7d %9d\n", "armed-never-fires",
              armed.wall_seconds * 1e3, armed.modelled_seconds * 1e3, armed.retries,
              armed.executors_lost, armed.chunks_poisoned);
  std::printf("  %-22s %14.3f %14.3f %9d %7d %9d\n", "faulted", faulted.wall_seconds * 1e3,
              faulted.modelled_seconds * 1e3, faulted.retries, faulted.executors_lost,
              faulted.chunks_poisoned);
  std::printf("  armed overhead: %+.2f%% (gate < 3%%)\n", overhead * 100.0);

  if (std::FILE* f = std::fopen(o.out.c_str(), "a"); f != nullptr) {
    const struct { const char* name; const Sample* s; } rows[] = {
        {"plan_free", &off}, {"armed_never_fires", &armed}, {"faulted", &faulted}};
    for (const auto& row : rows)
      std::fprintf(f,
                   "{\"bench\": \"fault_overhead\", \"config\": \"%s\", \"pool\": "
                   "\"cpu,k40c,p100\", \"batch\": %d, \"nmax\": %d, \"precision\": \"d\", "
                   "\"wall_seconds\": %.9f, \"modelled_seconds\": %.9f, \"retries\": %d, "
                   "\"executors_lost\": %d, \"chunks_poisoned\": %d, "
                   "\"armed_overhead_pct\": %.3f}\n",
                   row.name, o.batch, o.nmax, row.s->wall_seconds, row.s->modelled_seconds,
                   row.s->retries, row.s->executors_lost, row.s->chunks_poisoned,
                   overhead * 100.0);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());
  }

  bool ok = true;
  if (overhead >= 0.03) {
    std::fprintf(stderr, "FAILED: armed fault machinery costs %.2f%% >= 3%%\n", overhead * 100.0);
    ok = false;
  }
  if (armed.modelled_seconds != off.modelled_seconds) {
    std::fprintf(stderr, "FAILED: armed plan perturbed the modelled makespan (%.9f != %.9f)\n",
                 armed.modelled_seconds, off.modelled_seconds);
    ok = false;
  }
  if (armed.retries != 0 || armed.executors_lost != 0 || armed.chunks_poisoned != 0) {
    std::fprintf(stderr, "FAILED: armed never-firing plan reported recovery activity\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "fault overhead gates passed" : "fault overhead gates FAILED");
  return ok ? 0 : 1;
}
