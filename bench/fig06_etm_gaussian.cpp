// Figure 6: the four fused-kernel vbatched POTRF versions on GAUSSIAN size
// distributions, batch count 3000 (paper §IV-D).
//
// Paper shape: same ordering as Fig. 5, but "the impact of implicit
// sorting is much more significant than the case of uniform distribution"
// — up to 87.5% (SP) / 125.26% (DP) on ETM-classic and 35.1% (SP) /
// 89.9% (DP) on ETM-aggressive — because the Gaussian's few large matrices
// cause more load imbalance without sorting.
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 3000;
const int kNmax[] = {64, 128, 192, 256, 320, 384, 448};

struct VariantResult {
  double classic = 0, aggressive = 0, classic_sort = 0, aggressive_sort = 0;
};
std::map<int, VariantResult> g_sp, g_dp;
// Matching uniform runs for the "more significant than uniform" comparison.
std::map<int, double> g_uniform_sort_gain_dp, g_gauss_sort_gain_dp;

template <typename T>
void BM_EtmVariantsGaussian(benchmark::State& state) {
  const int nmax = static_cast<int>(state.range(0));
  Rng rng(2016);
  const auto sizes = gaussian_sizes(rng, kBatch, nmax);
  VariantResult r;
  for (auto _ : state) {
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.etm = EtmMode::Classic;
    o.implicit_sorting = false;
    r.classic = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Aggressive;
    r.aggressive = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Classic;
    o.implicit_sorting = true;
    r.classic_sort = bench::timed_vbatched<T>(sizes, o);
    o.etm = EtmMode::Aggressive;
    r.aggressive_sort = bench::timed_vbatched<T>(sizes, o);
  }
  state.counters["etm_classic"] = r.classic;
  state.counters["etm_aggressive"] = r.aggressive;
  state.counters["classic_sorting"] = r.classic_sort;
  state.counters["aggressive_sorting"] = r.aggressive_sort;
  (precision_v<T> == Precision::Single ? g_sp : g_dp)[nmax] = r;

  if (precision_v<T> == Precision::Double) {
    g_gauss_sort_gain_dp[nmax] = (r.classic_sort - r.classic) / r.classic;
    // Matched uniform batch for the cross-figure comparison.
    Rng urng(2016);
    const auto usizes = uniform_sizes(urng, kBatch, nmax);
    PotrfOptions o;
    o.path = PotrfPath::Fused;
    o.etm = EtmMode::Classic;
    o.implicit_sorting = false;
    const double uc = bench::timed_vbatched<T>(usizes, o);
    o.implicit_sorting = true;
    const double us = bench::timed_vbatched<T>(usizes, o);
    g_uniform_sort_gain_dp[nmax] = (us - uc) / uc;
  }
}

void print_series(const char* name, const std::map<int, VariantResult>& data) {
  util::Table t({"Nmax", "ETM-classic", "ETM-aggressive", "classic+sort", "aggr+sort"});
  for (const auto& [nmax, r] : data) {
    t.new_row().add(nmax).add(r.classic, 1).add(r.aggressive, 1).add(r.classic_sort, 1)
        .add(r.aggressive_sort, 1);
  }
  std::printf("\n%s (Gflop/s):\n", name);
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::validate_numerics<double>(
      {.path = vbatch::PotrfPath::Fused, .etm = vbatch::EtmMode::Aggressive,
       .implicit_sorting = true});

  for (int nmax : kNmax) {
    benchmark::RegisterBenchmark(("Fig6a/spotrf_vbatched/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_EtmVariantsGaussian<float>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig6b/dpotrf_vbatched/Nmax=" + std::to_string(nmax)).c_str(),
                                 &BM_EtmVariantsGaussian<double>)
        ->Args({nmax})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  return bench::run_and_report(argc, argv, "Fig. 6", [](bench::ShapeChecks& sc) {
    print_series("Fig. 6a — single precision, gaussian sizes", g_sp);
    print_series("Fig. 6b — double precision, gaussian sizes", g_dp);

    double max_sort_classic_dp = 0.0, max_sort_aggr_dp = 0.0, max_sort_classic_sp = 0.0;
    bool aggr_wins = true;
    for (const auto& [nmax, r] : g_dp) {
      max_sort_classic_dp = std::max(max_sort_classic_dp, (r.classic_sort - r.classic) / r.classic);
      max_sort_aggr_dp =
          std::max(max_sort_aggr_dp, (r.aggressive_sort - r.aggressive) / r.aggressive);
      if (r.aggressive <= r.classic) aggr_wins = false;
    }
    for (const auto& [nmax, r] : g_sp) {
      max_sort_classic_sp = std::max(max_sort_classic_sp, (r.classic_sort - r.classic) / r.classic);
    }
    sc.expect(aggr_wins, "DP: ETM-aggressive beats ETM-classic at every size");
    sc.expect(max_sort_classic_dp >= 0.5,
              "DP: sorting lifts ETM-classic strongly (paper: up to 125%)");
    sc.expect(max_sort_aggr_dp >= 0.15,
              "DP: sorting lifts ETM-aggressive (paper: up to 90%)");
    sc.expect(max_sort_classic_sp >= 0.4,
              "SP: sorting lifts ETM-classic strongly (paper: up to 87.5%)");

    // The headline claim: sorting matters more under the Gaussian than the
    // uniform distribution, at matched Nmax.
    int gauss_wins = 0, total = 0;
    for (const auto& [nmax, gg] : g_gauss_sort_gain_dp) {
      ++total;
      if (gg >= g_uniform_sort_gain_dp[nmax] - 0.02) ++gauss_wins;
    }
    sc.expect(gauss_wins >= total - 1,
              "DP: sorting gain under Gaussian >= gain under uniform at matched Nmax "
              "(paper: 'much more significant')");
  });
}
