// fig_service_coalesce — what the service front-end buys: request
// coalescing vs one launch per request (docs/service.md).
//
// A burst of single-matrix requests is the worst case for naive serving:
// each matrix alone occupies a sliver of the device, and every launch pays
// the full dispatch overhead. The coalescer turns the same burst into a
// handful of variable-size batched launches. This bench replays one burst
// trace twice on the same pool — max_batch=1 (the one-launch-per-request
// baseline) and coalescing under a latency budget — and reports the
// modelled makespan ratio.
//
// Output: a summary on stdout plus one JSON line per mode appended to
// BENCH_service.json (override with --out). The run FAILS (exit 1) if
// coalescing is not at least 1.5x faster in modelled makespan, or if any
// request's factor bytes differ across the two modes — coalescing must
// change the clock and nothing else. (The Cholesky path is pinned to
// Separated with a fixed blocking so the kernel configuration cannot vary
// with the merged-batch composition; see docs/service.md, "Demux".)
//
// Usage:
//   fig_service_coalesce [--count N] [--nmax N] [--seed N] [--out FILE]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/service/service.hpp"

namespace {

using namespace vbatch;
namespace svc = vbatch::service;

struct Options {
  int count = 96;
  int nmax = 32;
  std::uint64_t seed = 2016;
  std::string out = "BENCH_service.json";
};

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--count N] [--nmax N] [--seed N] [--out FILE]\n", argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--count") o.count = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out") o.out = next();
    else usage(argv[0]);
  }
  if (o.count < 2 || o.nmax < 1) usage(argv[0]);
  return o;
}

/// One burst: `count` single-matrix dpotrf requests from two tenants, all
/// arriving at t=0 — the shape a naive server turns into `count` launches.
svc::Trace make_burst(const Options& o) {
  Rng rng(o.seed);
  const auto sizes = make_sizes(SizeDist::Uniform, rng, o.count, o.nmax);
  svc::Trace trace;
  trace.tenants = {{"astro", 2.0}, {"jacobi", 1.0}};
  for (int i = 0; i < o.count; ++i) {
    svc::Request r;
    r.id = static_cast<std::uint64_t>(i + 1);
    r.tenant = (i % 2 == 0) ? "astro" : "jacobi";
    r.sizes = {sizes[static_cast<std::size_t>(i)]};
    trace.requests.push_back(std::move(r));
  }
  return trace;
}

svc::ServiceReport run_mode(const svc::Trace& trace, bool coalesce) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  svc::ServiceConfig cfg;
  cfg.mode = sim::ExecMode::Full;  // the bit-identity gate needs real numerics
  cfg.keep_payloads = true;
  // Pin the kernel configuration: under PotrfPath::Auto the path and nb come
  // from the merged batch's max size, so payload bits could legitimately vary
  // with batch composition. Pinned, they cannot.
  cfg.hetero.potrf.path = PotrfPath::Separated;
  cfg.hetero.potrf.separated_nb = 16;
  if (coalesce) {
    cfg.coalesce.latency_budget = 1e-3;
  } else {
    cfg.coalesce.latency_budget = 0.0;  // flush immediately...
    cfg.coalesce.max_batch = 1;         // ...one matrix (= one request) per launch
  }
  return svc::replay_trace(pool, trace, cfg);
}

bool factors_identical(const svc::ServiceReport& a, const svc::ServiceReport& b) {
  std::map<std::uint64_t, const svc::RequestOutcome*> by_id;
  for (const auto& out : b.outcomes) by_id[out.id] = &out;
  for (const auto& out : a.outcomes) {
    const auto it = by_id.find(out.id);
    if (it == by_id.end()) return false;
    const auto& other = *it->second;
    if (out.info != other.info || out.factors.size() != other.factors.size()) return false;
    for (std::size_t m = 0; m < out.factors.size(); ++m) {
      if (out.factors[m].size() != other.factors[m].size()) return false;
      if (std::memcmp(out.factors[m].data(), other.factors[m].data(),
                      out.factors[m].size()) != 0)
        return false;
    }
  }
  return true;
}

void emit_json(std::FILE* f, const Options& o, const char* mode,
               const svc::ServiceReport& r, double speedup) {
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"service_coalesce\", \"mode\": \"%s\", \"count\": %d, "
               "\"nmax\": %d, \"precision\": \"d\", \"makespan_seconds\": %.9f, "
               "\"batches\": %d, \"coalescing_ratio\": %.3f, \"gflops\": %.3f, "
               "\"p99_latency\": %.9f, \"speedup_vs_per_request\": %.3f}\n",
               mode, o.count, o.nmax, r.makespan, r.batches, r.coalescing_ratio,
               r.gflops(), r.p99_latency, speedup);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const svc::Trace trace = make_burst(o);

  std::printf("burst of %d single-matrix dpotrf requests, sizes in [1, %d], k40c:\n",
              o.count, o.nmax);
  std::printf("  %-16s %12s %8s %10s %12s %8s\n", "mode", "makespan ms", "batches",
              "coalesce", "p99 ms", "speedup");

  const svc::ServiceReport base = run_mode(trace, false);
  const svc::ServiceReport merged = run_mode(trace, true);
  const double speedup = merged.makespan > 0.0 ? base.makespan / merged.makespan : 0.0;

  std::FILE* f = std::fopen(o.out.c_str(), "a");
  if (f == nullptr) std::fprintf(stderr, "warning: could not open %s for append\n", o.out.c_str());

  std::printf("  %-16s %12.4f %8d %9.2fx %12.4f %7.2fx\n", "per-request", base.makespan * 1e3,
              base.batches, base.coalescing_ratio, base.p99_latency * 1e3, 1.0);
  std::printf("  %-16s %12.4f %8d %9.2fx %12.4f %7.2fx\n", "coalesced", merged.makespan * 1e3,
              merged.batches, merged.coalescing_ratio, merged.p99_latency * 1e3, speedup);
  emit_json(f, o, "per_request", base, 1.0);
  emit_json(f, o, "coalesced", merged, speedup);
  if (f != nullptr) std::fclose(f);

  bool ok = true;
  if (!factors_identical(base, merged)) {
    std::fprintf(stderr, "FAILED: coalescing changed some request's factors or info — "
                         "merging must only change the clock\n");
    ok = false;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr, "FAILED: coalesced throughput %.2fx < 1.5x over one launch per "
                         "request\n", speedup);
    ok = false;
  }
  if (merged.batches >= base.batches) {
    std::fprintf(stderr, "FAILED: coalescing did not reduce the launch count (%d vs %d)\n",
                 merged.batches, base.batches);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "coalescing gates passed" : "coalescing gates FAILED");
  return ok ? 0 : 1;
}
