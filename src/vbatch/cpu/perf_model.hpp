// CPU performance model for the §IV-F baselines.
//
// The paper's CPU numbers come from Intel MKL 11.3 on two 8-core Sandy
// Bridge Xeons (E5-2670). The reproduction substitutes a calibrated
// analytic model (DESIGN.md §2): per-core throughput follows an efficiency
// ramp in the matrix size (small factorizations cannot fill the SIMD
// pipelines), and using all cores on one small matrix pays a parallel
// efficiency penalty plus fork/join overhead — the two effects that make
// one-core-per-matrix the best CPU strategy for batched workloads.
#pragma once

#include <cstdint>

#include "vbatch/util/types.hpp"

namespace vbatch::cpu {

struct CpuSpec {
  const char* name = "2x Intel Xeon E5-2670 (modelled)";
  int cores = 16;
  double clock_ghz = 2.6;
  double sp_flops_per_cycle_per_core = 16.0;  // AVX: 8-wide add + mul
  double dp_flops_per_cycle_per_core = 8.0;

  // Single-core LAPACK efficiency ramp: eff(n) = emax / (1 + (n0/n)^p).
  double dp_emax = 0.92, dp_n0 = 64.0, dp_p = 1.15;
  double sp_emax = 0.88, sp_n0 = 96.0, sp_p = 1.15;

  // All-cores-on-one-matrix parallel efficiency: par(n) = 1/(1+(n1/n)^2),
  // the penalty for spreading a tiny factorization over 16 cores.
  double par_n1 = 420.0;

  double task_overhead_us = 0.8;  ///< per-matrix dispatch (OpenMP task/loop chunk)
  double fork_join_us = 5.0;      ///< per parallel region entry/exit

  [[nodiscard]] double core_peak_gflops(Precision p) const noexcept;
  [[nodiscard]] double total_peak_gflops(Precision p) const noexcept;

  /// Single-core efficiency for an n×n factorization.
  [[nodiscard]] double lapack_efficiency(Precision p, int n) const noexcept;

  /// Extra multiplicative efficiency when all cores share one matrix.
  [[nodiscard]] double parallel_efficiency(int n) const noexcept;

  /// Modelled single-core seconds for `flops` work on an n×n problem.
  [[nodiscard]] double core_seconds(Precision p, int n, double flops) const noexcept;

  /// Modelled all-cores seconds for one n×n problem of `flops` work.
  [[nodiscard]] double multithreaded_seconds(Precision p, int n, double flops) const noexcept;

  /// The paper's testbed (§IV-A).
  [[nodiscard]] static CpuSpec dual_e5_2670();

  /// A spec calibrated to *this* host's micro-kernel engine: per-core peak
  /// is measured by running an NT-gemm of order `bench_n` through the
  /// packed engine under the active ISA and tuning profile (so the numbers
  /// track the vectorized kernels, not the paper's 2012 testbed), and
  /// `cores` comes from the OS. Only the core_peak product matters
  /// downstream, so clock_ghz is pinned to 1 and the measured Gflop/s land
  /// in the flops-per-cycle fields. The efficiency-ramp constants are kept:
  /// they describe the small-size falloff, which the measurement at
  /// `bench_n` does not resolve.
  [[nodiscard]] static CpuSpec host_calibrated(std::int64_t bench_n = 192, int reps = 2);
};

}  // namespace vbatch::cpu
