// CPU batched Cholesky baselines (paper §IV-F):
//   * multithreaded: "all cores to factorize one matrix at a time" — the
//     strategy the paper shows lagging for small matrices;
//   * one-core-per-matrix with static assignment (round-robin, causing the
//     oscillations the paper observes);
//   * one-core-per-matrix with dynamic scheduling (the "best competitor").
//
// Numerics run for real on the host pool when `execute` is set; the
// reported seconds come from CpuSpec's calibrated model so the comparison
// against the simulated GPU is internally consistent (DESIGN.md §2).
#pragma once

#include <span>

#include "vbatch/cpu/perf_model.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::cpu {

enum class Schedule : std::uint8_t { Static, Dynamic };

struct CpuBatchResult {
  double seconds = 0.0;  ///< modelled makespan
  double flops = 0.0;
  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// Modelled makespan of the one-core-per-matrix schedule over `n` (the
/// timing half of potrf_batched_per_core, shared with the heterogeneous
/// runtime's CPU executor): per-matrix single-core seconds + dispatch
/// overhead, list-scheduled over the modelled cores.
[[nodiscard]] double per_core_makespan(const CpuSpec& spec, Schedule schedule, Precision prec,
                                       std::span<const int> n);

/// One core per matrix; `schedule` picks static round-robin or dynamic
/// (work-queue) assignment. `a` is the per-matrix pointer array.
template <typename T>
CpuBatchResult potrf_batched_per_core(const CpuSpec& spec, Schedule schedule, Uplo uplo,
                                      std::span<const int> n, T* const* a,
                                      std::span<const int> lda, std::span<int> info,
                                      bool execute);

/// All cores cooperate on one matrix at a time, in sequence.
template <typename T>
CpuBatchResult potrf_batched_multithreaded(const CpuSpec& spec, Uplo uplo,
                                           std::span<const int> n, T* const* a,
                                           std::span<const int> lda, std::span<int> info,
                                           bool execute);

}  // namespace vbatch::cpu
