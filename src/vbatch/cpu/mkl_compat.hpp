// A small vendor-library-shaped CPU kernel layer ("MKL-compatible" in the
// role it plays, DESIGN.md §2): LAPACK-style entry points that perform the
// real factorization through vbatch::blas and report the *modelled* time an
// MKL call of that shape would take on the paper's CPU testbed.
#pragma once

#include <span>

#include "vbatch/cpu/perf_model.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::cpu {

/// Result of one modelled CPU kernel call.
struct CpuCallResult {
  double seconds = 0.0;  ///< modelled time
  int info = 0;          ///< LAPACK status
};

/// Sequential (single-core) potrf: real numerics + modelled single-core time.
template <typename T>
CpuCallResult potrf_sequential(const CpuSpec& spec, Uplo uplo, MatrixView<T> a,
                               bool execute = true);

/// Multithreaded potrf (all cores on this one matrix): real numerics +
/// modelled parallel time including fork/join overhead.
template <typename T>
CpuCallResult potrf_multithreaded(const CpuSpec& spec, Uplo uplo, MatrixView<T> a,
                                  bool execute = true);

/// Sequential gemm used by the hybrid baseline's panel updates.
template <typename T>
CpuCallResult gemm_sequential(const CpuSpec& spec, Trans ta, Trans tb, T alpha,
                              ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                              MatrixView<T> c, bool execute = true);

}  // namespace vbatch::cpu
