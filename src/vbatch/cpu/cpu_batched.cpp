#include "vbatch/cpu/cpu_batched.hpp"

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace vbatch::cpu {

// Full-mode numerics run on the library-wide worker pool
// (vbatch::util::host_pool) — sized to the host, not to the modelled CPU;
// the model decides the reported time.
using util::host_pool;

double per_core_makespan(const CpuSpec& spec, Schedule schedule, Precision prec,
                         std::span<const int> n) {
  const int count = static_cast<int>(n.size());
  // Per-matrix modelled task times (single core + dispatch overhead).
  std::vector<double> task(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    task[static_cast<std::size_t>(i)] =
        spec.core_seconds(prec, ni, flops::potrf(ni)) + spec.task_overhead_us * 1e-6;
  }

  // Makespan of the chosen schedule over the modelled 16 cores.
  std::vector<double> core_time(static_cast<std::size_t>(spec.cores), 0.0);
  if (schedule == Schedule::Static) {
    for (int i = 0; i < count; ++i)
      core_time[static_cast<std::size_t>(i % spec.cores)] += task[static_cast<std::size_t>(i)];
  } else {
    // Dynamic: each matrix goes to the earliest-available core, in batch
    // order — list scheduling, the behaviour of an OpenMP dynamic loop.
    for (int i = 0; i < count; ++i) {
      auto it = std::min_element(core_time.begin(), core_time.end());
      *it += task[static_cast<std::size_t>(i)];
    }
  }
  return *std::max_element(core_time.begin(), core_time.end());
}

template <typename T>
CpuBatchResult potrf_batched_per_core(const CpuSpec& spec, Schedule schedule, Uplo uplo,
                                      std::span<const int> n, T* const* a,
                                      std::span<const int> lda, std::span<int> info,
                                      bool execute) {
  const int count = static_cast<int>(n.size());
  CpuBatchResult result;
  result.flops = flops::potrf_batch(n);
  result.seconds = per_core_makespan(spec, schedule, precision_v<T>, n);

  if (execute) {
    host_pool().parallel_for(count, [&](int i) {
      const int ni = n[static_cast<std::size_t>(i)];
      MatrixView<T> ai(a[i], ni, ni, lda[static_cast<std::size_t>(i)]);
      info[static_cast<std::size_t>(i)] = blas::potrf<T>(uplo, ai);
    });
  }
  return result;
}

template <typename T>
CpuBatchResult potrf_batched_multithreaded(const CpuSpec& spec, Uplo uplo,
                                           std::span<const int> n, T* const* a,
                                           std::span<const int> lda, std::span<int> info,
                                           bool execute) {
  const int count = static_cast<int>(n.size());
  CpuBatchResult result;
  result.flops = flops::potrf_batch(n);
  for (int i = 0; i < count; ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    result.seconds += spec.multithreaded_seconds(precision_v<T>, ni, flops::potrf(ni));
  }
  if (execute) {
    host_pool().parallel_for(count, [&](int i) {
      const int ni = n[static_cast<std::size_t>(i)];
      MatrixView<T> ai(a[i], ni, ni, lda[static_cast<std::size_t>(i)]);
      info[static_cast<std::size_t>(i)] = blas::potrf<T>(uplo, ai);
    });
  }
  return result;
}

template CpuBatchResult potrf_batched_per_core<float>(const CpuSpec&, Schedule, Uplo,
                                                      std::span<const int>, float* const*,
                                                      std::span<const int>, std::span<int>,
                                                      bool);
template CpuBatchResult potrf_batched_per_core<double>(const CpuSpec&, Schedule, Uplo,
                                                       std::span<const int>, double* const*,
                                                       std::span<const int>, std::span<int>,
                                                       bool);
template CpuBatchResult potrf_batched_multithreaded<float>(const CpuSpec&, Uplo,
                                                           std::span<const int>, float* const*,
                                                           std::span<const int>, std::span<int>,
                                                           bool);
template CpuBatchResult potrf_batched_multithreaded<double>(const CpuSpec&, Uplo,
                                                            std::span<const int>,
                                                            double* const*,
                                                            std::span<const int>,
                                                            std::span<int>, bool);

}  // namespace vbatch::cpu
