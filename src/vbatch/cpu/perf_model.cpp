#include "vbatch/cpu/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "vbatch/blas/tuning.hpp"

namespace vbatch::cpu {

double CpuSpec::core_peak_gflops(Precision p) const noexcept {
  const double fpc =
      p == Precision::Single ? sp_flops_per_cycle_per_core : dp_flops_per_cycle_per_core;
  return fpc * clock_ghz;
}

double CpuSpec::total_peak_gflops(Precision p) const noexcept {
  return core_peak_gflops(p) * cores;
}

double CpuSpec::lapack_efficiency(Precision p, int n) const noexcept {
  if (n <= 0) return 1.0;
  const double emax = p == Precision::Single ? sp_emax : dp_emax;
  const double n0 = p == Precision::Single ? sp_n0 : dp_n0;
  const double pw = p == Precision::Single ? sp_p : dp_p;
  return emax / (1.0 + std::pow(n0 / static_cast<double>(n), pw));
}

double CpuSpec::parallel_efficiency(int n) const noexcept {
  if (n <= 0) return 1.0;
  const double r = par_n1 / static_cast<double>(n);
  return 1.0 / (1.0 + r * r);
}

double CpuSpec::core_seconds(Precision p, int n, double flops) const noexcept {
  const double rate = core_peak_gflops(p) * 1e9 * lapack_efficiency(p, n);
  return flops / std::max(rate, 1.0);
}

double CpuSpec::multithreaded_seconds(Precision p, int n, double flops) const noexcept {
  const double rate =
      total_peak_gflops(p) * 1e9 * lapack_efficiency(p, n) * parallel_efficiency(n);
  return flops / std::max(rate, 1.0) + fork_join_us * 1e-6;
}

CpuSpec CpuSpec::dual_e5_2670() { return CpuSpec{}; }

CpuSpec CpuSpec::host_calibrated(std::int64_t bench_n, int reps) {
  namespace micro = blas::micro;
  CpuSpec spec;
  const micro::TuningProfile& prof = micro::active_profile();
  const double sp =
      micro::benchmark_shape<float>(micro::shape_of<float>(prof), bench_n, reps);
  const double dp =
      micro::benchmark_shape<double>(micro::shape_of<double>(prof), bench_n, reps);

  static char name_buf[96];
  std::snprintf(name_buf, sizeof(name_buf), "host (measured, isa=%s)",
                micro::to_string(prof.isa));
  spec.name = name_buf;
  spec.cores = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  spec.clock_ghz = 1.0;  // measured Gflop/s carried in the per-cycle fields
  spec.sp_flops_per_cycle_per_core = std::max(sp, 0.5);
  spec.dp_flops_per_cycle_per_core = std::max(dp, 0.25);
  return spec;
}

}  // namespace vbatch::cpu
