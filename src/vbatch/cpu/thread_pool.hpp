// A minimal work-stealing-free thread pool used to execute the CPU
// baselines' real numerics in Full mode (the modelled timing is computed
// separately by CpuSpec; see cpu_batched.hpp).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vbatch::cpu {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run in FIFO order across workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  void parallel_for(int count, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace vbatch::cpu
