#include "vbatch/cpu/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace vbatch::cpu {

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::clamp(threads, 1u, 64u);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  auto next = std::make_shared<std::atomic<int>>(0);
  const unsigned workers = std::min<unsigned>(size(), static_cast<unsigned>(count));
  for (unsigned w = 0; w < workers; ++w) {
    submit([next, count, &fn] {
      for (;;) {
        const int i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

}  // namespace vbatch::cpu
