#include "vbatch/cpu/mkl_compat.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::cpu {

template <typename T>
CpuCallResult potrf_sequential(const CpuSpec& spec, Uplo uplo, MatrixView<T> a, bool execute) {
  CpuCallResult r;
  const int n = static_cast<int>(a.rows());
  r.seconds = spec.core_seconds(precision_v<T>, n, flops::potrf(n)) +
              spec.task_overhead_us * 1e-6;
  if (execute) r.info = blas::potrf<T>(uplo, a);
  return r;
}

template <typename T>
CpuCallResult potrf_multithreaded(const CpuSpec& spec, Uplo uplo, MatrixView<T> a,
                                  bool execute) {
  CpuCallResult r;
  const int n = static_cast<int>(a.rows());
  r.seconds = spec.multithreaded_seconds(precision_v<T>, n, flops::potrf(n));
  if (execute) r.info = blas::potrf<T>(uplo, a);
  return r;
}

template <typename T>
CpuCallResult gemm_sequential(const CpuSpec& spec, Trans ta, Trans tb, T alpha,
                              ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                              MatrixView<T> c, bool execute) {
  CpuCallResult r;
  const auto m = c.rows();
  const auto n = c.cols();
  const auto k = ta == Trans::NoTrans ? a.cols() : a.rows();
  // gemm efficiency ramps like the factorizations, keyed on the smallest dim.
  const int key = static_cast<int>(std::min({m, n, k}));
  r.seconds = flops::gemm(m, n, k) /
              (spec.core_peak_gflops(precision_v<T>) * 1e9 *
               spec.lapack_efficiency(precision_v<T>, key));
  if (execute) blas::gemm<T>(ta, tb, alpha, a, b, beta, c);
  return r;
}

template CpuCallResult potrf_sequential<float>(const CpuSpec&, Uplo, MatrixView<float>, bool);
template CpuCallResult potrf_sequential<double>(const CpuSpec&, Uplo, MatrixView<double>, bool);
template CpuCallResult potrf_multithreaded<float>(const CpuSpec&, Uplo, MatrixView<float>,
                                                  bool);
template CpuCallResult potrf_multithreaded<double>(const CpuSpec&, Uplo, MatrixView<double>,
                                                   bool);
template CpuCallResult gemm_sequential<float>(const CpuSpec&, Trans, Trans, float,
                                              ConstMatrixView<float>, ConstMatrixView<float>,
                                              float, MatrixView<float>, bool);
template CpuCallResult gemm_sequential<double>(const CpuSpec&, Trans, Trans, double,
                                               ConstMatrixView<double>, ConstMatrixView<double>,
                                               double, MatrixView<double>, bool);

}  // namespace vbatch::cpu
