#include "vbatch/kernels/trtri_diag.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

template <typename T>
double launch_trtri_diag(sim::Device& dev, const TrtriDiagArgs<T>& args) {
  const int batch = static_cast<int>(args.ib.size());
  require(batch > 0, "trtri_diag: empty batch");
  const int blocks_per_matrix = (args.NB + kTrtriBlock - 1) / kTrtriBlock;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_trtri_diag";
  cfg.grid_blocks = batch * blocks_per_matrix;
  cfg.block_threads = 128;
  cfg.shared_mem = static_cast<std::size_t>(kTrtriBlock) * kTrtriBlock * sizeof(T);
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, blocks_per_matrix](const sim::ExecContext& ctx,
                                                    int block) -> sim::BlockCost {
    const int i = block / blocks_per_matrix;
    const int t = block % blocks_per_matrix;
    const index_t ibi = args.ib[static_cast<std::size_t>(i)];
    const index_t off = static_cast<index_t>(t) * kTrtriBlock;

    sim::BlockCost cost;
    cost.live_threads = 128;
    if (off >= ibi) {
      cost.early_exit = true;  // ETM-classic
      return cost;
    }

    const index_t tb = std::min<index_t>(kTrtriBlock, ibi - off);
    cost.active_threads = static_cast<int>(std::min<index_t>(tb * 4, 128));
    cost.flops = flops::trtri(tb);
    cost.bytes = static_cast<double>(tb * tb) * sizeof(T);  // read triangle, write inverse
    cost.sync_steps = static_cast<int>(tb);
    cost.serial_ops = static_cast<double>(tb);  // reciprocal chain

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      ConstMatrixView<T> src(args.a[i] + off + off * lda, tb, tb, lda);
      MatrixView<T> dst(args.inv[i] + off + off * static_cast<index_t>(args.inv_ld), tb, tb,
                        args.inv_ld);
      for (index_t c = 0; c < tb; ++c)
        for (index_t r = 0; r < tb; ++r) dst(r, c) = src(r, c);
      // A Cholesky factor has positive diagonal, so trtri cannot fail here;
      // assert via the return code anyway.
      (void)blas::trtri<T>(args.uplo, Diag::NonUnit, dst);
    }
    return cost;
  });
}

template double launch_trtri_diag<float>(sim::Device&, const TrtriDiagArgs<float>&);
template double launch_trtri_diag<double>(sim::Device&, const TrtriDiagArgs<double>&);
template double launch_trtri_diag<std::complex<float>>(
    sim::Device&, const TrtriDiagArgs<std::complex<float>>&);
template double launch_trtri_diag<std::complex<double>>(
    sim::Device&, const TrtriDiagArgs<std::complex<double>>&);

}  // namespace vbatch::kernels
