// vbatched inversion of triangular diagonal blocks (paper §III-E2).
//
// The vbatched trsm starts "by inverting the diagonal blocks of size
// typically 32×32 using a vbatched trtri routine". Each grid block inverts
// one 32×32 diagonal sub-block of one matrix's panel into a workspace;
// out-of-range blocks exit through ETM-classic (all threads of a live block
// must stay in sync, so aggressive is not applicable).
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

inline constexpr int kTrtriBlock = 32;

template <typename T>
struct TrtriDiagArgs {
  Uplo uplo = Uplo::Lower;
  /// Triangular NB-wide panels: per-matrix pointer to the panel's top-left
  /// diagonal element, with its leading dimension. ib[i] gives the panel's
  /// actual extent (0 for matrices past the offset).
  T* const* a = nullptr;
  std::span<const int> lda;
  std::span<const int> ib;
  int NB = 64;
  /// Workspace: per-matrix NB×NB buffer receiving the inverted blocks.
  T* const* inv = nullptr;
  int inv_ld = 0;
};

/// Launches the diagonal-block inversion. Returns modelled kernel seconds.
template <typename T>
double launch_trtri_diag(sim::Device& dev, const TrtriDiagArgs<T>& args);

}  // namespace vbatch::kernels
