// vbatched LU kernels (paper §V future work: "extension of this work to the
// LU and QR factorizations ... where many of the BLAS kernels proposed here
// can be reused out of the box").
//
// The LU driver reuses launch_gemm_vbatched for the trailing update; this
// header adds the LU-specific pieces: the pivoted panel factorization, the
// row-interchange kernel, and the unit-lower triangular solve of the U12
// block row.
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"

namespace vbatch::kernels {

template <typename T>
struct GetrfPanelArgs {
  BatchArgs<T> batch;             ///< full matrices; n[i]×n[i] (square LU)
  std::span<const int> m;         ///< per-matrix rows (≥ n for rectangular)
  int offset = 0;                 ///< panel column offset (j)
  int NB = 32;                    ///< panel width
  int* const* ipiv = nullptr;     ///< per-matrix device pivot arrays (1-based, global rows)
  std::span<int> info;
};

/// Factors the m_i−j × min(NB, n_i−j) panel of each live matrix with partial
/// pivoting (one thread block per matrix, panel staged through shared
/// memory). Pivot indices are stored globally. Returns kernel seconds.
template <typename T>
double launch_getrf_panel(sim::Device& dev, const GetrfPanelArgs<T>& args);

template <typename T>
struct LaswpArgs {
  BatchArgs<T> batch;
  std::span<const int> m;
  int k1 = 0, k2 = 0;             ///< pivot range [k1, k2) applied
  int col0 = 0, col1 = 0;         ///< column range the swaps touch
  int max_cols = 0;
  int* const* ipiv = nullptr;
};

/// Applies row interchanges to the given column range (vbatched xLASWP).
template <typename T>
double launch_laswp(sim::Device& dev, const LaswpArgs<T>& args);

template <typename T>
struct LuTrsmArgs {
  T* const* l11 = nullptr;        ///< per-matrix pointer to the unit-lower ib×ib block
  std::span<const int> lda;
  std::span<const int> ib;        ///< panel width per matrix (0 = inactive)
  T* const* b = nullptr;          ///< per-matrix pointer to the ib×n2 block row
  std::span<const int> ldb;
  std::span<const int> n2;        ///< trailing columns per matrix
  int max_ib = 0, max_n2 = 0;
  GemmTiling tiling{};
};

/// Solves L11 · X = B (Left, Lower, NoTrans, Unit) for the U12 block row.
template <typename T>
double launch_lu_trsm(sim::Device& dev, const LuTrsmArgs<T>& args);

}  // namespace vbatch::kernels
