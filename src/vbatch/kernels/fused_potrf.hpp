// The fused Cholesky step kernel (paper §III-D, Approach 1).
//
// One kernel launch performs one blocked factorization step for every
// matrix it covers. Inside a thread block the three sub-operations of
// Algorithm 1 are fused:
//   1. customized rank-k panel update  C(m×nb) -= A(m×j) · B(nb×j)ᵀ, where
//      B is a sub-block of A (so A is loaded once — the customization the
//      paper describes around Fig. 2), double-buffered against global
//      memory;
//   2. potf2 of the nb×nb diagonal tile;
//   3. trsm of the sub-diagonal panel against that tile.
// The m×nb panel lives in shared memory for the whole step.
//
// Variable sizes are handled by the ETMs (§III-D1): a block whose matrix is
// already fully factorized exits immediately (classic); with
// EtmMode::Aggressive, threads beyond the matrix's remaining panel height
// also exit, reducing the idle-thread issue drag.
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

template <typename T>
struct FusedStepArgs {
  BatchArgs<T> batch;             ///< all matrices in the vbatched problem
  std::span<const int> active;    ///< batch indices this launch covers; empty = all
  Uplo uplo = Uplo::Lower;
  int step = 0;                   ///< panel index; panel offset = step * nb
  int nb = 16;                    ///< fused blocking size (compile-time template in MAGMA)
  int block_threads = 0;          ///< threads per block (≥ max live panel height)
  EtmMode etm = EtmMode::Aggressive;
  std::span<int> info;            ///< host mirror of the device info array
};

/// Launches one fused factorization step. Returns modelled kernel seconds.
template <typename T>
double launch_fused_step(sim::Device& dev, const FusedStepArgs<T>& args);

/// Shared-memory footprint of a fused step block: the panel plus a small
/// double-buffer staging area for the rank-k update.
[[nodiscard]] std::size_t fused_shared_mem(int block_threads, int nb, std::size_t elem_size);

/// Largest matrix the fused approach can handle for a given nb / precision
/// (the shared-memory feasibility bound behind the crossover of §IV-E).
[[nodiscard]] int fused_max_size(const sim::DeviceSpec& spec, int nb, std::size_t elem_size);

/// Default fused blocking size for a batch whose largest matrix is max_n.
[[nodiscard]] int choose_fused_nb(const sim::DeviceSpec& spec, int max_n, std::size_t elem_size);

}  // namespace vbatch::kernels
