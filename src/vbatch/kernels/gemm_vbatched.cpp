#include "vbatch/kernels/gemm_vbatched.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

namespace {

// Cost of one live TM×TN tile-block computing a tm×tn clip with inner dim k.
sim::BlockCost tile_cost(const GemmTiling& t, index_t tm, index_t tn, index_t k,
                         std::size_t elem_size, bool triangular_tile = false) {
  sim::BlockCost cost;
  cost.live_threads = t.threads;
  // Work is distributed over the tile; a clipped tile keeps proportionally
  // fewer threads busy (never below one warp).
  const double frac =
      static_cast<double>(tm * tn) / (static_cast<double>(t.tm) * static_cast<double>(t.tn));
  cost.active_threads = std::max(32, static_cast<int>(t.threads * frac));
  double fl = flops::gemm(tm, tn, k);
  if (triangular_tile) fl *= 0.5;
  cost.flops = fl;
  cost.bytes = static_cast<double>((tm + tn) * k + 2 * tm * tn) * elem_size;
  cost.sync_steps = static_cast<int>((k + t.tk - 1) / t.tk) + 2;
  return cost;
}

}  // namespace

template <typename T>
double launch_gemm_vbatched(sim::Device& dev, const GemmVbatchedArgs<T>& args) {
  const int batch = static_cast<int>(args.m.size());
  require(batch > 0, "gemm_vbatched: empty batch");
  require(args.max_m > 0 && args.max_n > 0, "gemm_vbatched: max dims not set");

  const GemmTiling& t = args.tiling;
  const int tiles_m = (args.max_m + t.tm - 1) / t.tm;
  const int tiles_n = (args.max_n + t.tn - 1) / t.tn;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_gemm";
  cfg.grid_blocks = batch * tiles_m * tiles_n;
  cfg.block_threads = t.threads;
  cfg.shared_mem = t.shared_mem(sizeof(T));
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, tiles_m, tiles_n, &t](const sim::ExecContext& ctx,
                                                       int block) -> sim::BlockCost {
    const int per_matrix = tiles_m * tiles_n;
    const int i = block / per_matrix;
    const int tile = block % per_matrix;
    const index_t ti = tile % tiles_m;  // tile row
    const index_t tj = tile / tiles_m;  // tile col

    const index_t mi = args.m[static_cast<std::size_t>(i)];
    const index_t ni = args.n[static_cast<std::size_t>(i)];
    const index_t ki = args.k[static_cast<std::size_t>(i)];

    const index_t r0 = ti * t.tm;
    const index_t c0 = tj * t.tn;
    if (r0 >= mi || c0 >= ni || mi == 0 || ni == 0) {
      sim::BlockCost cost;
      cost.live_threads = t.threads;
      cost.early_exit = true;  // ETM-classic
      return cost;
    }

    const index_t tm = std::min<index_t>(t.tm, mi - r0);
    const index_t tn = std::min<index_t>(t.tn, ni - c0);
    sim::BlockCost cost = tile_cost(t, tm, tn, ki, sizeof(T));

    if (ctx.full() && ki >= 0) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      const index_t ldb = args.ldb[static_cast<std::size_t>(i)];
      const index_t ldc = args.ldc[static_cast<std::size_t>(i)];
      // op(A) is mi×ki, op(B) is ki×ni; slice the tile's operands.
      ConstMatrixView<T> a_tile =
          args.trans_a == Trans::NoTrans
              ? ConstMatrixView<T>(args.a[i] + r0, tm, ki, lda)
              : ConstMatrixView<T>(args.a[i] + r0 * lda, ki, tm, lda);
      ConstMatrixView<T> b_tile =
          args.trans_b == Trans::NoTrans
              ? ConstMatrixView<T>(args.b[i] + c0 * ldb, ki, tn, ldb)
              : ConstMatrixView<T>(args.b[i] + c0, tn, ki, ldb);
      MatrixView<T> c_tile(args.c[i] + r0 + c0 * ldc, tm, tn, ldc);
      blas::gemm<T>(args.trans_a, args.trans_b, args.alpha, a_tile, b_tile, args.beta, c_tile);
    }
    return cost;
  });
}

namespace {

// Shared implementation of one syrk tile block (used by both the vbatched
// grid and the streamed per-matrix kernels).
template <typename T>
sim::BlockCost syrk_tile_block(const SyrkVbatchedArgs<T>& args, const sim::ExecContext& ctx,
                               int i, index_t ti, index_t tj) {
  const GemmTiling& t = args.tiling;
  const index_t ni = args.n[static_cast<std::size_t>(i)];
  const index_t ki = args.k[static_cast<std::size_t>(i)];

  const index_t r0 = ti * t.tm;
  const index_t c0 = tj * t.tn;

  // Decision layer (§III-E3): blocks strictly outside the target triangle
  // terminate, as do blocks beyond this matrix's size.
  const bool outside_matrix = r0 >= ni || c0 >= ni || ni == 0;
  const bool wrong_side = args.uplo == Uplo::Lower ? (c0 > r0 + t.tm - 1) : (r0 > c0 + t.tn - 1);
  if (outside_matrix || wrong_side) {
    sim::BlockCost cost;
    cost.live_threads = t.threads;
    cost.early_exit = true;
    return cost;
  }

  const index_t tm = std::min<index_t>(t.tm, ni - r0);
  const index_t tn = std::min<index_t>(t.tn, ni - c0);
  const bool diagonal_tile = ti == tj;
  sim::BlockCost cost = tile_cost(t, tm, tn, ki, sizeof(T), diagonal_tile);

  if (ctx.full()) {
    const index_t lda = args.lda[static_cast<std::size_t>(i)];
    const index_t ldc = args.ldc[static_cast<std::size_t>(i)];
    MatrixView<T> c_tile(args.c[i] + r0 + c0 * ldc, tm, tn, ldc);
    if (diagonal_tile) {
      ConstMatrixView<T> a_rows = args.trans == Trans::NoTrans
                                      ? ConstMatrixView<T>(args.a[i] + r0, tm, ki, lda)
                                      : ConstMatrixView<T>(args.a[i] + r0 * lda, ki, tm, lda);
      blas::syrk<T>(args.uplo, args.trans, args.alpha, a_rows, args.beta, c_tile);
    } else {
      ConstMatrixView<T> a_rows = args.trans == Trans::NoTrans
                                      ? ConstMatrixView<T>(args.a[i] + r0, tm, ki, lda)
                                      : ConstMatrixView<T>(args.a[i] + r0 * lda, ki, tm, lda);
      ConstMatrixView<T> a_cols = args.trans == Trans::NoTrans
                                      ? ConstMatrixView<T>(args.a[i] + c0, tn, ki, lda)
                                      : ConstMatrixView<T>(args.a[i] + c0 * lda, ki, tn, lda);
      // Off-diagonal tile: plain gemm with Bᵀ taken from A's other rows.
      blas::gemm<T>(args.trans == Trans::NoTrans ? Trans::NoTrans : Trans::Trans,
                    args.trans == Trans::NoTrans ? Trans::Trans : Trans::NoTrans, args.alpha,
                    a_rows, a_cols, args.beta, c_tile);
    }
  }
  return cost;
}

}  // namespace

template <typename T>
double launch_syrk_vbatched(sim::Device& dev, const SyrkVbatchedArgs<T>& args) {
  const int batch = static_cast<int>(args.n.size());
  require(batch > 0, "syrk_vbatched: empty batch");
  require(args.max_n > 0, "syrk_vbatched: max_n not set");

  const GemmTiling& t = args.tiling;
  const int tiles = (args.max_n + t.tm - 1) / t.tm;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_syrk";
  cfg.grid_blocks = batch * tiles * tiles;
  cfg.block_threads = t.threads;
  cfg.shared_mem = t.shared_mem(sizeof(T));
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, tiles](const sim::ExecContext& ctx, int block) {
    const int per_matrix = tiles * tiles;
    const int i = block / per_matrix;
    const int tile = block % per_matrix;
    return syrk_tile_block(args, ctx, i, tile % tiles, tile / tiles);
  });
}

template <typename T>
double launch_syrk_streamed(sim::Device& dev, const SyrkVbatchedArgs<T>& args, int num_streams) {
  const int batch = static_cast<int>(args.n.size());
  require(batch > 0, "syrk_streamed: empty batch");
  const GemmTiling& t = args.tiling;

  std::vector<sim::LaunchConfig> configs;
  std::vector<sim::BlockFn> fns;
  configs.reserve(static_cast<std::size_t>(batch));
  fns.reserve(static_cast<std::size_t>(batch));

  for (int i = 0; i < batch; ++i) {
    const int ni = args.n[static_cast<std::size_t>(i)];
    if (ni <= 0) continue;  // host-side skip: one kernel per live matrix
    const int tiles = (ni + t.tm - 1) / t.tm;
    sim::LaunchConfig cfg;
    cfg.name = "streamed_syrk";
    cfg.grid_blocks = tiles * tiles;
    cfg.block_threads = t.threads;
    cfg.shared_mem = t.shared_mem(sizeof(T));
    cfg.precision = precision_v<T>;
    configs.push_back(cfg);
    fns.push_back([&args, i, tiles](const sim::ExecContext& ctx, int block) {
      return syrk_tile_block(args, ctx, i, block % tiles, block / tiles);
    });
  }
  if (configs.empty()) return 0.0;
  return dev.launch_concurrent(configs, fns, num_streams);
}

template double launch_gemm_vbatched<float>(sim::Device&, const GemmVbatchedArgs<float>&);
template double launch_gemm_vbatched<double>(sim::Device&, const GemmVbatchedArgs<double>&);
template double launch_syrk_vbatched<float>(sim::Device&, const SyrkVbatchedArgs<float>&);
template double launch_syrk_vbatched<double>(sim::Device&, const SyrkVbatchedArgs<double>&);
template double launch_syrk_streamed<float>(sim::Device&, const SyrkVbatchedArgs<float>&, int);
template double launch_syrk_streamed<double>(sim::Device&, const SyrkVbatchedArgs<double>&, int);
template double launch_gemm_vbatched<std::complex<float>>(
    sim::Device&, const GemmVbatchedArgs<std::complex<float>>&);
template double launch_gemm_vbatched<std::complex<double>>(
    sim::Device&, const GemmVbatchedArgs<std::complex<double>>&);
template double launch_syrk_vbatched<std::complex<float>>(
    sim::Device&, const SyrkVbatchedArgs<std::complex<float>>&);
template double launch_syrk_vbatched<std::complex<double>>(
    sim::Device&, const SyrkVbatchedArgs<std::complex<double>>&);
template double launch_syrk_streamed<std::complex<float>>(
    sim::Device&, const SyrkVbatchedArgs<std::complex<float>>&, int);
template double launch_syrk_streamed<std::complex<double>>(
    sim::Device&, const SyrkVbatchedArgs<std::complex<double>>&, int);

}  // namespace vbatch::kernels
