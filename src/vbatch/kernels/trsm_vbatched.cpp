#include "vbatch/kernels/trsm_vbatched.hpp"

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

namespace {

// One sweep kernel per 32-wide diagonal block k: each grid block owns a
// TM-long strip of the panel and performs the rank-update against already
// solved strips followed by the multiply with the inverted diagonal block.
// This mirrors the custom gemm variants MAGMA's batched trsm launches.
template <typename T>
double launch_sweep(sim::Device& dev, const TrsmVbatchedArgs<T>& args, int k0) {
  const int batch = static_cast<int>(args.ib.size());
  const GemmTiling& t = args.tiling;
  const int strips = (args.max_m + t.tm - 1) / t.tm;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_trsm_sweep";
  cfg.grid_blocks = batch * strips;
  cfg.block_threads = t.threads;
  cfg.shared_mem = t.shared_mem(sizeof(T));
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, k0, strips, &t](const sim::ExecContext& ctx,
                                                 int block) -> sim::BlockCost {
    const int i = block / strips;
    const index_t strip = block % strips;
    const index_t mi = args.m[static_cast<std::size_t>(i)];
    const index_t ibi = args.ib[static_cast<std::size_t>(i)];
    const index_t kb = std::clamp<index_t>(ibi - k0, 0, kTrtriBlock);
    const index_t r0 = strip * t.tm;

    sim::BlockCost cost;
    cost.live_threads = t.threads;
    if (mi <= 0 || kb <= 0 || r0 >= mi) {
      cost.early_exit = true;  // ETM-classic
      return cost;
    }

    const index_t tm = std::min<index_t>(t.tm, mi - r0);
    const double frac = static_cast<double>(tm) / t.tm;
    cost.active_threads = std::max(32, static_cast<int>(t.threads * frac));
    cost.flops = flops::gemm(tm, kb, k0) + static_cast<double>(tm * kb * kb);
    cost.bytes = static_cast<double>(tm * k0 + kb * k0 + 2 * tm * kb + kb * kb / 2) * sizeof(T);
    cost.sync_steps = static_cast<int>((k0 + t.tk - 1) / t.tk + kb + 2);

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      const index_t ldb = args.ldb[static_cast<std::size_t>(i)];
      ConstMatrixView<T> invk(args.inv[i] + k0 + k0 * static_cast<index_t>(args.inv_ld), kb, kb,
                              args.inv_ld);
      if (args.uplo == Uplo::Lower) {
        // X(r0:r0+tm, k0:k0+kb) = (B - X(:,0:k0)·L(k0:,0:k0)ᵀ) · invAᵀ
        MatrixView<T> tile(args.b[i] + r0 + static_cast<index_t>(k0) * ldb, tm, kb, ldb);
        if (k0 > 0) {
          ConstMatrixView<T> solved(args.b[i] + r0, tm, k0, ldb);
          ConstMatrixView<T> lrow(args.a[i] + k0, kb, k0, lda);
          blas::gemm<T>(Trans::NoTrans, Trans::Trans, T(-1), solved, lrow, T(1), tile);
        }
        blas::trmm<T>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, T(1), invk, tile);
      } else {
        // Upper: X(k0:k0+kb, c0:c0+tm) = invAᵀ · (B - U(0:k0, k0:)ᵀ·X(0:k0, :))
        MatrixView<T> tile(args.b[i] + k0 + r0 * ldb, kb, tm, ldb);
        if (k0 > 0) {
          ConstMatrixView<T> ucol(args.a[i] + static_cast<index_t>(k0) * lda, k0, kb, lda);
          ConstMatrixView<T> solved(args.b[i] + r0 * ldb, k0, tm, ldb);
          blas::gemm<T>(Trans::Trans, Trans::NoTrans, T(-1), ucol, solved, T(1), tile);
        }
        blas::trmm<T>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, T(1), invk, tile);
      }
    }
    return cost;
  });
}

}  // namespace

template <typename T>
double launch_trsm_vbatched(sim::Device& dev, const TrsmVbatchedArgs<T>& args) {
  require(args.max_ib > 0, "trsm_vbatched: max_ib not set");
  require(args.inv != nullptr, "trsm_vbatched: inverse workspace missing");
  if (args.max_m <= 0) return 0.0;

  double seconds = 0.0;

  // Stage 1: invert the diagonal 32×32 blocks.
  TrtriDiagArgs<T> tri;
  tri.uplo = args.uplo;
  tri.a = args.a;
  tri.lda = args.lda;
  tri.ib = args.ib;
  tri.NB = args.max_ib;
  tri.inv = args.inv;
  tri.inv_ld = args.inv_ld;
  seconds += launch_trtri_diag(dev, tri);

  // Stage 2: sweep the panel one diagonal block at a time.
  for (int k0 = 0; k0 < args.max_ib; k0 += kTrtriBlock) {
    seconds += launch_sweep(dev, args, k0);
  }
  return seconds;
}

template double launch_trsm_vbatched<float>(sim::Device&, const TrsmVbatchedArgs<float>&);
template double launch_trsm_vbatched<double>(sim::Device&, const TrsmVbatchedArgs<double>&);
template double launch_trsm_vbatched<std::complex<float>>(
    sim::Device&, const TrsmVbatchedArgs<std::complex<float>>&);
template double launch_trsm_vbatched<std::complex<double>>(
    sim::Device&, const TrsmVbatchedArgs<std::complex<double>>&);

namespace {

// Shared launcher for the general triangular solve/multiply: strips run
// along B's free dimension (columns for Left, rows for Right).
template <typename T, bool Solve>
double launch_triangular_general(sim::Device& dev, const TriangularVbatchedArgs<T>& args) {
  const int batch = static_cast<int>(args.m.size());
  require(batch > 0, "triangular_vbatched: empty batch");
  const bool left = args.side == Side::Left;
  const int free_max = left ? args.max_n : args.max_m;
  const int ka_max = left ? args.max_m : args.max_n;
  if (free_max <= 0 || ka_max <= 0) return 0.0;

  constexpr int kStrip = 16;
  const int strips = (free_max + kStrip - 1) / kStrip;

  sim::LaunchConfig cfg;
  cfg.name = Solve ? "vbatched_trsm_general" : "vbatched_trmm_general";
  cfg.grid_blocks = batch * strips;
  cfg.block_threads = round_up_warp(dev.spec(), std::min(ka_max, 512));
  cfg.shared_mem =
      std::min<std::size_t>(static_cast<std::size_t>(ka_max) * kStrip * sizeof(T),
                            dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, strips, left, threads = cfg.block_threads](
                             const sim::ExecContext& ctx, int block) -> sim::BlockCost {
    const int i = block / strips;
    const index_t strip = block % strips;
    const index_t mi = args.m[static_cast<std::size_t>(i)];
    const index_t ni = args.n[static_cast<std::size_t>(i)];
    const index_t free_dim = left ? ni : mi;
    const index_t ka = left ? mi : ni;
    const index_t f0 = strip * kStrip;

    sim::BlockCost cost;
    cost.live_threads = threads;
    if (mi <= 0 || ni <= 0 || f0 >= free_dim) {
      cost.early_exit = true;  // ETM-classic
      return cost;
    }

    const index_t fw = std::min<index_t>(kStrip, free_dim - f0);
    cost.active_threads = static_cast<int>(std::min<index_t>(ka, threads));
    cost.flops = left ? flops::trsm(ka, fw, true) : flops::trsm(fw, ka, false);
    cost.bytes = static_cast<double>(ka * ka / 2 + 2 * ka * fw) * sizeof(T);
    cost.sync_steps = static_cast<int>(ka + 2);
    cost.serial_ops = args.diag == Diag::NonUnit ? static_cast<double>(ka) : 0.0;

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      const index_t ldb = args.ldb[static_cast<std::size_t>(i)];
      ConstMatrixView<T> tri(args.a[i], ka, ka, lda);
      MatrixView<T> strip_view = left
                                     ? MatrixView<T>(args.b[i] + f0 * ldb, mi, fw, ldb)
                                     : MatrixView<T>(args.b[i] + f0, fw, ni, ldb);
      if constexpr (Solve) {
        blas::trsm<T>(args.side, args.uplo, args.trans, args.diag, args.alpha, tri, strip_view);
      } else {
        blas::trmm<T>(args.side, args.uplo, args.trans, args.diag, args.alpha, tri, strip_view);
      }
    }
    return cost;
  });
}

}  // namespace

template <typename T>
double launch_trsm_general(sim::Device& dev, const TriangularVbatchedArgs<T>& args) {
  return launch_triangular_general<T, true>(dev, args);
}

template <typename T>
double launch_trmm_general(sim::Device& dev, const TriangularVbatchedArgs<T>& args) {
  return launch_triangular_general<T, false>(dev, args);
}

template double launch_trsm_general<float>(sim::Device&, const TriangularVbatchedArgs<float>&);
template double launch_trsm_general<double>(sim::Device&,
                                            const TriangularVbatchedArgs<double>&);
template double launch_trmm_general<float>(sim::Device&, const TriangularVbatchedArgs<float>&);
template double launch_trmm_general<double>(sim::Device&,
                                            const TriangularVbatchedArgs<double>&);
template double launch_trsm_general<std::complex<float>>(
    sim::Device&, const TriangularVbatchedArgs<std::complex<float>>&);
template double launch_trsm_general<std::complex<double>>(
    sim::Device&, const TriangularVbatchedArgs<std::complex<double>>&);
template double launch_trmm_general<std::complex<float>>(
    sim::Device&, const TriangularVbatchedArgs<std::complex<float>>&);
template double launch_trmm_general<std::complex<double>>(
    sim::Device&, const TriangularVbatchedArgs<std::complex<double>>&);

}  // namespace vbatch::kernels
