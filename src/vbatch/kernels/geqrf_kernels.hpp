// vbatched QR kernels (paper §V future work; block Householder scheme of
// Haidar et al., "A Framework for Batched and GPU-Resident Factorization
// Algorithms Applied to Block Householder Transformations").
//
// Two kernels: the panel factorization (geqr2 of an m×NB panel, one block
// per matrix) and the trailing-matrix update applying the panel's
// reflectors to TN-wide column strips (gemm-shaped grid, ETM-classic).
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"

namespace vbatch::kernels {

template <typename T>
struct GeqrfPanelArgs {
  T* const* a = nullptr;          ///< per-matrix base pointers
  std::span<const int> lda;
  std::span<const int> m, n;      ///< per-matrix dims
  int offset = 0;                 ///< panel column offset (j)
  int NB = 32;
  T* const* tau = nullptr;        ///< per-matrix reflector scalars (length min(m,n))
};

/// Factors each live panel with unblocked Householder QR. Returns seconds.
template <typename T>
double launch_geqrf_panel(sim::Device& dev, const GeqrfPanelArgs<T>& args);

template <typename T>
struct LarfbArgs {
  T* const* a = nullptr;
  std::span<const int> lda;
  std::span<const int> m, n;
  int offset = 0;                 ///< panel column offset whose reflectors are applied
  int NB = 32;
  int max_m = 0, max_n = 0;
  T* const* tau = nullptr;
  GemmTiling tiling{};
};

/// Applies the panel's block of reflectors to the trailing columns.
template <typename T>
double launch_larfb_update(sim::Device& dev, const LarfbArgs<T>& args);

}  // namespace vbatch::kernels
