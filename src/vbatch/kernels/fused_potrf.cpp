#include "vbatch/kernels/fused_potrf.hpp"

#include <algorithm>

#include "vbatch/kernels/fused_step_math.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::kernels {

std::size_t fused_shared_mem(int block_threads, int nb, std::size_t elem_size) {
  // Panel (block_threads × nb) + nb×nb staging tile for the B operand of the
  // customized rank-k update (double buffering reuses the same tile).
  return (static_cast<std::size_t>(block_threads) * nb + static_cast<std::size_t>(nb) * nb) *
         elem_size;
}

int fused_max_size(const sim::DeviceSpec& spec, int nb, std::size_t elem_size) {
  // Largest panel height m such that the block still launches; thread count
  // is the second bound (one thread per panel row). The launch rounds the
  // block up to whole warps, so the shared-memory bound must hold for the
  // *rounded* thread count — floor the bound to a warp multiple.
  const auto limit = spec.shared_mem_per_block;
  const int by_smem = static_cast<int>(limit / (static_cast<std::size_t>(nb) * elem_size)) - nb;
  const int warp_floor = by_smem / spec.warp_size * spec.warp_size;
  return std::min(warp_floor, spec.max_threads_per_block);
}

int choose_fused_nb(const sim::DeviceSpec& spec, int max_n, std::size_t elem_size) {
  // Prefer the widest panel that still fits the whole batch; wider panels
  // amortize more launches per factorization and deepen the fused pipeline,
  // matching the configurations behind the paper's reported ETM/sorting
  // gaps. (bench/ablation_nb_sweep quantifies the occupancy price the wide
  // panels pay at moderate sizes.) A panel wider than the largest matrix
  // only wastes shared memory, so nb is also clamped to max_n (rounded up
  // to 8).
  const int cap = std::max(8, (max_n + 7) / 8 * 8);
  for (int nb : {32, 24, 16, 8}) {
    if (nb > cap) continue;
    if (max_n <= fused_max_size(spec, nb, elem_size)) return nb;
  }
  return 8;
}

template <typename T>
double launch_fused_step(sim::Device& dev, const FusedStepArgs<T>& args) {
  const int batch = args.batch.count();
  const int covered = args.active.empty() ? batch : static_cast<int>(args.active.size());
  require(covered > 0, "fused step: empty launch");
  require(args.block_threads > 0, "fused step: block_threads not set");

  sim::LaunchConfig cfg;
  cfg.name = "fused_potrf_step";
  cfg.grid_blocks = covered;
  cfg.block_threads = args.block_threads;
  cfg.shared_mem = fused_shared_mem(args.block_threads, args.nb, sizeof(T));
  cfg.precision = precision_v<T>;

  const auto& a = args.batch;
  return dev.launch(cfg, [&args, &a](const sim::ExecContext& ctx, int block) -> sim::BlockCost {
    const int i = args.active.empty() ? block : args.active[static_cast<std::size_t>(block)];
    const int n = a.n[static_cast<std::size_t>(i)];
    const index_t j = static_cast<index_t>(args.step) * args.nb;

    sim::BlockCost cost;
    cost.live_threads = args.block_threads;

    // ETM: this matrix is fully factorized (or previously failed) — the
    // whole block exits. Both ETM flavours terminate whole idle blocks.
    if (j >= n || args.info[static_cast<std::size_t>(i)] != 0) {
      cost.early_exit = true;
      return cost;
    }

    fused_step_cost(cost, n, args.step, args.nb, args.block_threads, args.etm, sizeof(T));

    if (ctx.full()) {
      const index_t lda = a.lda[static_cast<std::size_t>(i)];
      MatrixView<T> A(a.ptrs[i], n, n, lda);
      const int info = fused_step_math<T>(args.uplo, A, args.step, args.nb);
      if (info != 0) args.info[static_cast<std::size_t>(i)] = info;
    }
    return cost;
  });
}

template double launch_fused_step<float>(sim::Device&, const FusedStepArgs<float>&);
template double launch_fused_step<double>(sim::Device&, const FusedStepArgs<double>&);
template double launch_fused_step<std::complex<float>>(
    sim::Device&, const FusedStepArgs<std::complex<float>>&);
template double launch_fused_step<std::complex<double>>(
    sim::Device&, const FusedStepArgs<std::complex<double>>&);

}  // namespace vbatch::kernels
