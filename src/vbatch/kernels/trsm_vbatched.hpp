// vbatched triangular solve (paper §III-E2).
//
// Composite routine following the MAGMA design: invert the 32×32 diagonal
// blocks of the triangular factor (launch_trtri_diag), then sweep the
// solution panel with vbatched gemm calls — a multiply by the inverted
// diagonal block plus a rank-update against the already-solved columns.
// Everything runs as vbatched kernels with ETM-classic.
//
// Two shapes are provided, matching what the Cholesky driver needs:
//   Lower:  solves X · L11ᵀ = B   (Side::Right, Trans::Trans), B is m×ib
//   Upper:  solves U11ᵀ · X = B   (Side::Left,  Trans::Trans), B is ib×m
#pragma once

#include <span>

#include "vbatch/kernels/gemm_vbatched.hpp"
#include "vbatch/kernels/trtri_diag.hpp"

namespace vbatch::kernels {

template <typename T>
struct TrsmVbatchedArgs {
  Uplo uplo = Uplo::Lower;
  T* const* a = nullptr;        ///< per-matrix pointer to the ib×ib triangular factor
  std::span<const int> lda;
  std::span<const int> ib;      ///< triangle extent per matrix (0 = inactive)
  T* const* b = nullptr;        ///< per-matrix pointer to the panel being solved
  std::span<const int> ldb;
  std::span<const int> m;       ///< panel extent orthogonal to ib (0 = inactive)
  int max_ib = 0;
  int max_m = 0;
  T* const* inv = nullptr;      ///< per-matrix NB×NB workspace for inverted blocks
  int inv_ld = 0;
  GemmTiling tiling{};
};

/// Runs the full composite solve. Returns the summed modelled seconds of
/// all launched kernels (trtri + gemm sweep).
template <typename T>
double launch_trsm_vbatched(sim::Device& dev, const TrsmVbatchedArgs<T>& args);

/// General-purpose vbatched triangular solve/multiply covering all
/// side/uplo/trans/diag combinations: one block per (matrix, strip of the
/// free dimension), the triangle staged through shared memory, the strip
/// swept by the recurrence in registers. Slower than the composite above
/// for the Cholesky hot shapes, but the catch-all building block the
/// public BLAS layer exposes.
template <typename T>
struct TriangularVbatchedArgs {
  Side side = Side::Left;
  Uplo uplo = Uplo::Lower;
  Trans trans = Trans::NoTrans;
  Diag diag = Diag::NonUnit;
  T alpha = T(1);
  T* const* a = nullptr;       ///< per-matrix triangle (ka×ka, ka = m or n by side)
  std::span<const int> lda;
  T* const* b = nullptr;       ///< per-matrix m×n operand, overwritten
  std::span<const int> ldb;
  std::span<const int> m, n;
  int max_m = 0, max_n = 0;
};

/// B_i := alpha · op(A_i)⁻¹ B_i (Left) or alpha · B_i op(A_i)⁻¹ (Right).
template <typename T>
double launch_trsm_general(sim::Device& dev, const TriangularVbatchedArgs<T>& args);

/// B_i := alpha · op(A_i) B_i (Left) or alpha · B_i op(A_i) (Right).
template <typename T>
double launch_trmm_general(sim::Device& dev, const TriangularVbatchedArgs<T>& args);

}  // namespace vbatch::kernels
