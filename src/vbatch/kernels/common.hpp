// Shared declarations for the simulated device kernels.
//
// Every vbatched kernel follows the paper's conventions (§III-A):
//   * matrix data is addressed through a device array of pointers;
//   * per-matrix sizes and leading dimensions are device int arrays — the
//     simulation keeps host mirrors of those arrays (spans below) so that
//     cost reports can be produced without dereferencing device memory in
//     TimingOnly mode;
//   * the kernel grid is shaped by the *maximum* size in the batch, and
//     blocks with no work terminate through an ETM.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "vbatch/sim/device.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::kernels {

/// Rounds `threads` up to a whole number of warps, clamped to the device
/// block limit.
[[nodiscard]] inline int round_up_warp(const sim::DeviceSpec& spec, int threads) noexcept {
  const int w = spec.warp_size;
  const int rounded = std::max(w, ((threads + w - 1) / w) * w);
  return std::min(rounded, spec.max_threads_per_block);
}

/// Non-owning description of a vbatched operand set: a device pointer array
/// plus host mirrors of the device size/ld arrays.
template <typename T>
struct BatchArgs {
  T* const* ptrs = nullptr;      ///< device array of matrix pointers
  std::span<const int> n;        ///< host mirror of the device size array
  std::span<const int> lda;      ///< host mirror of the device ld array
  [[nodiscard]] int count() const noexcept { return static_cast<int>(n.size()); }

  /// View of matrix `i` as rows×cols with its own leading dimension.
  [[nodiscard]] MatrixView<T> view(int i, index_t rows, index_t cols) const noexcept {
    return MatrixView<T>(ptrs[i], rows, cols, lda[static_cast<std::size_t>(i)]);
  }
};

/// Pointer displacement on the device (paper §III-A: "any pointer
/// displacement ... need[s] to be performed on the whole array" by a GPU
/// kernel). Builds out[i] = base[i] + row_off + col_off * lda[i]; the
/// element-wise kernel's cost is modelled through a launch. `out` is caller
/// scratch so the factorization drivers reuse one buffer per operand across
/// their panel steps instead of allocating per launch.
template <typename T>
void displace_ptrs(sim::Device& dev, std::span<T* const> base, std::span<const int> lda,
                   index_t row_off, index_t col_off, std::vector<T*>& out) {
  const int count = static_cast<int>(base.size());
  sim::LaunchConfig cfg;
  cfg.name = "aux_displace_ptrs";
  cfg.block_threads = 256;
  cfg.grid_blocks = std::max(1, (count + 255) / 256);
  cfg.precision = Precision::Single;
  dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    sim::BlockCost c;
    const int lo = block * 256;
    const int elems = std::clamp(count - lo, 0, 256);
    c.active_threads = elems;
    c.live_threads = 256;
    c.flops = 2.0 * elems;
    c.bytes = static_cast<double>(elems) * (sizeof(T*) * 2 + sizeof(int));
    return c;
  });

  out.resize(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] + row_off + col_off * static_cast<index_t>(lda[i]);
  }
}

/// Allocating convenience wrapper for one-shot callers.
template <typename T>
std::vector<T*> displace_ptrs(sim::Device& dev, std::span<T* const> base,
                              std::span<const int> lda, index_t row_off, index_t col_off) {
  std::vector<T*> out;
  displace_ptrs(dev, base, lda, row_off, col_off, out);
  return out;
}

}  // namespace vbatch::kernels
