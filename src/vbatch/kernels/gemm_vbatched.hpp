// vbatched GEMM kernel (paper §III-E2; Abdelfattah et al., "Performance,
// Design, and Autotuning of Batched GEMM for GPUs").
//
// Grid: batch × tiles(max_m) × tiles(max_n), flattened 1-D. Each block owns
// one TM×TN tile of one matrix's C; blocks whose tile lies outside their own
// matrix exit through ETM-classic (aggressive is not applicable — all
// threads of a live block cooperate on the shared-memory tile pipeline and
// must stay in sync, §III-E2).
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

/// Tile geometry of the gemm/syrk kernels; TM/TN/TK mirror the MAGMA
/// autotuned shapes for Kepler.
struct GemmTiling {
  int tm = 64;
  int tn = 64;
  int tk = 16;
  int threads = 256;
  [[nodiscard]] std::size_t shared_mem(std::size_t elem_size) const noexcept {
    return (static_cast<std::size_t>(tm) * tk + static_cast<std::size_t>(tk) * tn) * elem_size;
  }
};

template <typename T>
struct GemmVbatchedArgs {
  Trans trans_a = Trans::NoTrans;
  Trans trans_b = Trans::NoTrans;
  std::span<const int> m, n, k;  ///< per-matrix dims of C (m×n) and the inner dim
  int max_m = 0, max_n = 0;      ///< grid shaping (maximums across the batch)
  T alpha = T(1), beta = T(0);
  T* const* a = nullptr;
  std::span<const int> lda;
  T* const* b = nullptr;
  std::span<const int> ldb;
  T* const* c = nullptr;
  std::span<const int> ldc;
  GemmTiling tiling{};
};

/// Launches the vbatched gemm. Returns modelled kernel seconds.
template <typename T>
double launch_gemm_vbatched(sim::Device& dev, const GemmVbatchedArgs<T>& args);

/// vbatched SYRK: C(n×n, uplo triangle) = alpha·A·Aᵀ + beta·C, realized as
/// the gemm grid plus the upper/lower decision layer of §III-E3 — blocks on
/// the wrong side of the diagonal terminate, diagonal blocks do triangular
/// work.
template <typename T>
struct SyrkVbatchedArgs {
  Uplo uplo = Uplo::Lower;
  Trans trans = Trans::NoTrans;  ///< NoTrans: C -= A(n×k)·Aᵀ
  std::span<const int> n, k;
  int max_n = 0;
  T alpha = T(1), beta = T(0);
  T* const* a = nullptr;
  std::span<const int> lda;
  T* const* c = nullptr;
  std::span<const int> ldc;
  GemmTiling tiling{};
};

template <typename T>
double launch_syrk_vbatched(sim::Device& dev, const SyrkVbatchedArgs<T>& args);

/// Streamed alternative (§III-E3): one syrk kernel per matrix, launched on
/// `num_streams` concurrent streams (the CUBLAS-per-matrix pattern).
template <typename T>
double launch_syrk_streamed(sim::Device& dev, const SyrkVbatchedArgs<T>& args, int num_streams);

}  // namespace vbatch::kernels
