#include "vbatch/kernels/getrf_kernels.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

template <typename T>
double launch_getrf_panel(sim::Device& dev, const GetrfPanelArgs<T>& args) {
  const int batch = args.batch.count();
  require(batch > 0, "getrf_panel: empty batch");

  int max_rows = 0;
  for (int i = 0; i < batch; ++i)
    max_rows = std::max(max_rows, args.m[static_cast<std::size_t>(i)] - args.offset);
  if (max_rows <= 0) return 0.0;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_getrf_panel";
  cfg.grid_blocks = batch;
  cfg.block_threads = round_up_warp(dev.spec(), std::min(max_rows, dev.spec().max_threads_per_block));
  cfg.shared_mem = static_cast<std::size_t>(std::min(max_rows, 512)) * args.NB * sizeof(T);
  cfg.shared_mem = std::min(cfg.shared_mem, dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  const auto& a = args.batch;
  return dev.launch(cfg, [&args, &a, threads = cfg.block_threads](const sim::ExecContext& ctx,
                                                                  int i) -> sim::BlockCost {
    const int n = a.n[static_cast<std::size_t>(i)];
    const int mi = args.m[static_cast<std::size_t>(i)];
    const index_t j = args.offset;

    sim::BlockCost cost;
    cost.live_threads = threads;
    const index_t rows = mi - j;
    const index_t jb = std::min<index_t>(args.NB, n - j);
    if (rows <= 0 || jb <= 0 || args.info[static_cast<std::size_t>(i)] < 0) {
      cost.early_exit = true;
      return cost;
    }

    cost.active_threads = static_cast<int>(std::min<index_t>(rows, threads));
    cost.flops = flops::getrf(rows, jb);
    cost.bytes = static_cast<double>(2 * rows * jb) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * jb);           // pivot search + swap per column
    cost.serial_ops = static_cast<double>(2 * jb);        // max-reduce + reciprocal chains

    if (ctx.full()) {
      const index_t lda = a.lda[static_cast<std::size_t>(i)];
      MatrixView<T> panel(a.ptrs[i] + j + j * lda, rows, jb, lda);
      std::span<int> piv{args.ipiv[i] + j, static_cast<std::size_t>(jb)};
      const int local = blas::getf2<T>(panel, piv);
      // Globalize pivot rows.
      for (index_t k = 0; k < jb; ++k) piv[static_cast<std::size_t>(k)] += static_cast<int>(j);
      if (local != 0 && args.info[static_cast<std::size_t>(i)] == 0) {
        args.info[static_cast<std::size_t>(i)] = static_cast<int>(j) + local;
      }
    }
    return cost;
  });
}

template <typename T>
double launch_laswp(sim::Device& dev, const LaswpArgs<T>& args) {
  const int batch = args.batch.count();
  require(batch > 0, "laswp: empty batch");
  if (args.col1 <= args.col0 || args.k2 <= args.k1) return 0.0;

  const int cols_per_block = 64;
  const int strips = std::max(1, (args.max_cols + cols_per_block - 1) / cols_per_block);

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_laswp";
  cfg.grid_blocks = batch * strips;
  cfg.block_threads = 128;
  cfg.shared_mem = 0;
  cfg.precision = precision_v<T>;

  const auto& a = args.batch;
  return dev.launch(cfg, [&args, &a, strips](const sim::ExecContext& ctx,
                                             int block) -> sim::BlockCost {
    const int i = block / strips;
    const int strip = block % strips;
    const int n = a.n[static_cast<std::size_t>(i)];
    const index_t c0 = args.col0 + static_cast<index_t>(strip) * 64;
    const index_t c1 = std::min<index_t>({args.col1, n, c0 + 64});

    sim::BlockCost cost;
    cost.live_threads = 128;
    if (c0 >= c1 || args.m[static_cast<std::size_t>(i)] <= args.k1) {
      cost.early_exit = true;
      return cost;
    }

    const index_t ncols = c1 - c0;
    const index_t swaps = args.k2 - args.k1;
    cost.active_threads = static_cast<int>(std::min<index_t>(ncols * 2, 128));
    cost.bytes = static_cast<double>(4 * swaps * ncols) * sizeof(T);  // 2 reads + 2 writes
    cost.sync_steps = static_cast<int>(swaps);

    if (ctx.full()) {
      const index_t lda = a.lda[static_cast<std::size_t>(i)];
      MatrixView<T> cols(a.ptrs[i] + c0 * lda, args.m[static_cast<std::size_t>(i)],
                         ncols, lda);
      std::span<const int> piv{args.ipiv[i], static_cast<std::size_t>(args.k2)};
      blas::laswp<T>(cols, piv, args.k1, std::min<index_t>(args.k2, a.n[static_cast<std::size_t>(i)]));
    }
    return cost;
  });
}

template <typename T>
double launch_lu_trsm(sim::Device& dev, const LuTrsmArgs<T>& args) {
  const int batch = static_cast<int>(args.ib.size());
  require(batch > 0, "lu_trsm: empty batch");
  if (args.max_n2 <= 0) return 0.0;

  const GemmTiling& t = args.tiling;
  const int strips = (args.max_n2 + t.tn - 1) / t.tn;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_lu_trsm";
  cfg.grid_blocks = batch * strips;
  cfg.block_threads = t.threads;
  cfg.shared_mem = t.shared_mem(sizeof(T));
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, strips, &t](const sim::ExecContext& ctx,
                                             int block) -> sim::BlockCost {
    const int i = block / strips;
    const index_t strip = block % strips;
    const index_t ibi = args.ib[static_cast<std::size_t>(i)];
    const index_t n2i = args.n2[static_cast<std::size_t>(i)];
    const index_t c0 = strip * t.tn;

    sim::BlockCost cost;
    cost.live_threads = t.threads;
    if (ibi <= 0 || c0 >= n2i) {
      cost.early_exit = true;
      return cost;
    }

    const index_t tn = std::min<index_t>(t.tn, n2i - c0);
    cost.active_threads = std::max(32, static_cast<int>(t.threads * tn / t.tn));
    cost.flops = flops::trsm(ibi, tn, true);
    cost.bytes = static_cast<double>(ibi * ibi / 2 + 2 * ibi * tn) * sizeof(T);
    cost.sync_steps = static_cast<int>(ibi + 2);

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      const index_t ldb = args.ldb[static_cast<std::size_t>(i)];
      ConstMatrixView<T> l11(args.l11[i], ibi, ibi, lda);
      MatrixView<T> tile(args.b[i] + c0 * ldb, ibi, tn, ldb);
      blas::trsm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, T(1), l11, tile);
    }
    return cost;
  });
}

template double launch_getrf_panel<float>(sim::Device&, const GetrfPanelArgs<float>&);
template double launch_getrf_panel<double>(sim::Device&, const GetrfPanelArgs<double>&);
template double launch_laswp<float>(sim::Device&, const LaswpArgs<float>&);
template double launch_laswp<double>(sim::Device&, const LaswpArgs<double>&);
template double launch_lu_trsm<float>(sim::Device&, const LuTrsmArgs<float>&);
template double launch_lu_trsm<double>(sim::Device&, const LuTrsmArgs<double>&);

}  // namespace vbatch::kernels
