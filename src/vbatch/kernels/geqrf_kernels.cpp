#include "vbatch/kernels/geqrf_kernels.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

template <typename T>
double launch_geqrf_panel(sim::Device& dev, const GeqrfPanelArgs<T>& args) {
  const int batch = static_cast<int>(args.m.size());
  require(batch > 0, "geqrf_panel: empty batch");

  int max_rows = 0;
  for (int i = 0; i < batch; ++i)
    max_rows = std::max(max_rows, args.m[static_cast<std::size_t>(i)] - args.offset);
  if (max_rows <= 0) return 0.0;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_geqrf_panel";
  cfg.grid_blocks = batch;
  cfg.block_threads =
      round_up_warp(dev.spec(), std::min(max_rows, dev.spec().max_threads_per_block));
  cfg.shared_mem = static_cast<std::size_t>(std::min(max_rows, 512)) * args.NB * sizeof(T);
  cfg.shared_mem = std::min(cfg.shared_mem, dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, threads = cfg.block_threads](const sim::ExecContext& ctx,
                                                              int i) -> sim::BlockCost {
    const index_t mi = args.m[static_cast<std::size_t>(i)];
    const index_t ni = args.n[static_cast<std::size_t>(i)];
    const index_t j = args.offset;

    sim::BlockCost cost;
    cost.live_threads = threads;
    const index_t rows = mi - j;
    const index_t jb = std::min<index_t>(args.NB, std::min(mi, ni) - j);
    if (rows <= 0 || jb <= 0) {
      cost.early_exit = true;
      return cost;
    }

    cost.active_threads = static_cast<int>(std::min<index_t>(rows, threads));
    cost.flops = flops::geqrf(rows, jb);
    cost.bytes = static_cast<double>(2 * rows * jb) * sizeof(T);
    cost.sync_steps = static_cast<int>(3 * jb);          // norm, scale, update per column
    cost.serial_ops = static_cast<double>(3 * jb);       // norm reduce + sqrt + reciprocal

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      MatrixView<T> panel(args.a[i] + j + j * lda, rows, jb, lda);
      std::span<T> tau{args.tau[i] + j, static_cast<std::size_t>(jb)};
      blas::geqr2<T>(panel, tau);
    }
    return cost;
  });
}

template <typename T>
double launch_larfb_update(sim::Device& dev, const LarfbArgs<T>& args) {
  const int batch = static_cast<int>(args.m.size());
  require(batch > 0, "larfb_update: empty batch");
  const GemmTiling& t = args.tiling;
  const int strips = std::max(1, (args.max_n + t.tn - 1) / t.tn);
  if (args.max_m - args.offset <= 0) return 0.0;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_larfb";
  cfg.grid_blocks = batch * strips;
  cfg.block_threads = t.threads;
  cfg.shared_mem = t.shared_mem(sizeof(T));
  cfg.precision = precision_v<T>;

  return dev.launch(cfg, [&args, strips, &t](const sim::ExecContext& ctx,
                                             int block) -> sim::BlockCost {
    const int i = block / strips;
    const index_t strip = block % strips;
    const index_t mi = args.m[static_cast<std::size_t>(i)];
    const index_t ni = args.n[static_cast<std::size_t>(i)];
    const index_t j = args.offset;
    const index_t rows = mi - j;
    const index_t jb = std::min<index_t>(args.NB, std::min(mi, ni) - j);
    const index_t c0 = j + jb + strip * t.tn;

    sim::BlockCost cost;
    cost.live_threads = t.threads;
    if (rows <= 0 || jb <= 0 || c0 >= ni) {
      cost.early_exit = true;
      return cost;
    }

    const index_t tn = std::min<index_t>(t.tn, ni - c0);
    cost.active_threads = std::max(32, static_cast<int>(t.threads * tn / t.tn));
    // Applying jb reflectors of length `rows` to tn columns: 4·rows·jb·tn.
    cost.flops = 4.0 * static_cast<double>(rows) * static_cast<double>(jb) *
                 static_cast<double>(tn);
    cost.bytes = static_cast<double>(rows * jb + 2 * rows * tn) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * jb);

    if (ctx.full()) {
      const index_t lda = args.lda[static_cast<std::size_t>(i)];
      // Apply H(j) … H(j+jb-1) one reflector at a time to the strip.
      for (index_t k = 0; k < jb; ++k) {
        const index_t col = j + k;
        const T tk = args.tau[i][col];
        if (tk == T(0)) continue;
        const T* v = args.a[i] + col + col * lda;  // v(0) implicit 1, rest below diag
        T* strip_base = args.a[i] + col + c0 * lda;
        const index_t vm = mi - col;
        for (index_t c = 0; c < tn; ++c) {
          T* cptr = strip_base + c * lda;
          T w = cptr[0];
          for (index_t r = 1; r < vm; ++r) w += v[r] * cptr[r];
          w *= tk;
          cptr[0] -= w;
          for (index_t r = 1; r < vm; ++r) cptr[r] -= v[r] * w;
        }
      }
    }
    return cost;
  });
}

template double launch_geqrf_panel<float>(sim::Device&, const GeqrfPanelArgs<float>&);
template double launch_geqrf_panel<double>(sim::Device&, const GeqrfPanelArgs<double>&);
template double launch_larfb_update<float>(sim::Device&, const LarfbArgs<float>&);
template double launch_larfb_update<double>(sim::Device&, const LarfbArgs<double>&);

}  // namespace vbatch::kernels
