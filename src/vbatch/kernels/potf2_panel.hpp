// vbatched panel factorization kernel (paper §III-E1, Approach 2).
//
// Factors the NB×NB diagonal block of each live matrix at a given offset by
// reusing the fused-step machinery *inside* one kernel: the block loops over
// nb-wide internal steps, keeping an NB×nb panel in shared memory. Matrices
// already past the offset exit through ETM-classic.
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

template <typename T>
struct Potf2PanelArgs {
  BatchArgs<T> batch;
  Uplo uplo = Uplo::Lower;
  int offset = 0;    ///< global diagonal offset of the panel (j)
  int NB = 64;       ///< panel size (ib_i = clamp(n_i - offset, 0, NB))
  int nb_inner = 16; ///< internal fused blocking
  std::span<int> info;
};

/// Launches the panel factorization. Returns modelled kernel seconds.
template <typename T>
double launch_potf2_panel(sim::Device& dev, const Potf2PanelArgs<T>& args);

}  // namespace vbatch::kernels
