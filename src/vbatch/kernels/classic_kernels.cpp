#include "vbatch/kernels/classic_kernels.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::kernels {

namespace {

// Trailing rows below the current tile for matrix i of a classic trsm step.
template <typename T>
int trailing_rows(const ClassicTrsmArgs<T>& args, int i) {
  const int n = args.batch.n[static_cast<std::size_t>(i)];
  const int ib = std::clamp(n - args.offset, 0, args.nb);
  return std::max(0, n - args.offset - ib);
}

}  // namespace

template <typename T>
double launch_classic_potf2(sim::Device& dev, const ClassicPotf2Args<T>& args) {
  const int batch = args.batch.count();
  require(batch > 0, "classic_potf2: empty batch");

  sim::LaunchConfig cfg;
  cfg.name = "classic_potf2";
  cfg.grid_blocks = batch;
  cfg.block_threads = round_up_warp(dev.spec(), args.nb);
  cfg.shared_mem = static_cast<std::size_t>(args.nb) * sizeof(T);  // column staging only
  cfg.precision = precision_v<T>;

  const auto& a = args.batch;
  return dev.launch(cfg, [&args, &a, threads = cfg.block_threads,
                          dev_global_latency = dev.spec().global_latency_cycles](
                             const sim::ExecContext& ctx, int i) -> sim::BlockCost {
    const int n = a.n[static_cast<std::size_t>(i)];
    const index_t j = args.offset;
    sim::BlockCost cost;
    cost.live_threads = threads;
    const index_t ib = std::clamp<index_t>(n - j, 0, args.nb);
    if (ib <= 0 || args.info[static_cast<std::size_t>(i)] != 0) {
      cost.early_exit = true;
      return cost;
    }
    cost.active_threads = static_cast<int>(ib);
    cost.flops = flops::potrf(ib);
    // Per-column global round trips: each of the ib columns re-reads the
    // processed part of the tile and writes itself back...
    cost.bytes = static_cast<double>(3 * ib * ib) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * ib);
    cost.serial_ops = static_cast<double>(2 * ib);  // sqrt + reciprocal chains
    // ...and the column recurrence is a dependent chain through global
    // memory (load → sqrt → scale → store), fully exposed because nothing
    // is staged in shared memory. This latency chain is the core cost the
    // fused kernel eliminates (§III-D).
    cost.latency_cycles =
        static_cast<double>(ib) * dev_global_latency;

    if (ctx.full()) {
      const index_t lda = a.lda[static_cast<std::size_t>(i)];
      MatrixView<T> A(a.ptrs[i], n, n, lda);
      const int local = blas::potf2<T>(args.uplo, A.block(j, j, ib, ib));
      if (local != 0) args.info[static_cast<std::size_t>(i)] = static_cast<int>(j) + local;
    }
    return cost;
  });
}

template <typename T>
double launch_classic_trsm(sim::Device& dev, const ClassicTrsmArgs<T>& args) {
  const int batch = args.batch.count();
  require(batch > 0, "classic_trsm: empty batch");

  int max_m2 = 0;
  for (int i = 0; i < batch; ++i) max_m2 = std::max(max_m2, trailing_rows(args, i));
  if (max_m2 <= 0) return 0.0;

  sim::LaunchConfig cfg;
  cfg.name = "classic_trsm";
  cfg.grid_blocks = batch;
  cfg.block_threads = round_up_warp(dev.spec(), std::min(max_m2, dev.spec().max_threads_per_block));
  cfg.shared_mem = static_cast<std::size_t>(args.nb) * args.nb * sizeof(T);
  cfg.precision = precision_v<T>;

  const auto& a = args.batch;
  return dev.launch(cfg, [&args, &a, threads = cfg.block_threads,
                          dev_global_latency = dev.spec().global_latency_cycles](
                             const sim::ExecContext& ctx, int i) -> sim::BlockCost {
    const int n = a.n[static_cast<std::size_t>(i)];
    const index_t j = args.offset;
    sim::BlockCost cost;
    cost.live_threads = threads;
    const index_t ib = std::clamp<index_t>(n - j, 0, args.nb);
    const index_t m2 = std::max<index_t>(0, n - j - ib);
    if (ib <= 0 || m2 <= 0 || args.info[static_cast<std::size_t>(i)] != 0) {
      cost.early_exit = true;
      return cost;
    }
    cost.active_threads = static_cast<int>(std::min<index_t>(m2, threads));
    cost.flops = flops::trsm(m2, ib, false);
    // Panel read + write + one extra pass (register pressure forces a
    // spill sweep), triangle read — all global memory.
    cost.bytes = static_cast<double>(3 * m2 * ib + ib * ib / 2.0) * sizeof(T);
    cost.sync_steps = static_cast<int>(ib);
    cost.serial_ops = static_cast<double>(ib);
    // The column recurrence round-trips global memory once per column; the
    // rows of the panel hide part of the latency, not all of it.
    cost.latency_cycles = static_cast<double>(ib) * dev_global_latency * 0.5;

    if (ctx.full()) {
      const index_t lda = a.lda[static_cast<std::size_t>(i)];
      MatrixView<T> A(a.ptrs[i], n, n, lda);
      if (args.uplo == Uplo::Lower) {
        blas::trsm<T>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, T(1),
                      A.block(j, j, ib, ib), A.block(j + ib, j, m2, ib));
      } else {
        blas::trsm<T>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, T(1),
                      A.block(j, j, ib, ib), A.block(j, j + ib, ib, m2));
      }
    }
    return cost;
  });
}

template double launch_classic_potf2<float>(sim::Device&, const ClassicPotf2Args<float>&);
template double launch_classic_potf2<double>(sim::Device&, const ClassicPotf2Args<double>&);
template double launch_classic_trsm<float>(sim::Device&, const ClassicTrsmArgs<float>&);
template double launch_classic_trsm<double>(sim::Device&, const ClassicTrsmArgs<double>&);

}  // namespace vbatch::kernels
