#include "vbatch/kernels/aux_kernels.hpp"

#include <algorithm>
#include <vector>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

namespace {

// All aux kernels are bandwidth-bound integer sweeps: grid of 256-thread
// blocks, each handling 256 entries.
sim::LaunchConfig int_sweep_config(const char* name, int count) {
  sim::LaunchConfig cfg;
  cfg.name = name;
  cfg.block_threads = 256;
  cfg.grid_blocks = std::max(1, (count + 255) / 256);
  cfg.shared_mem = 256 * sizeof(int);
  cfg.precision = Precision::Single;  // integer work; SP lanes
  return cfg;
}

sim::BlockCost int_sweep_cost(int count, int block, double extra_bytes_per_elem = 0.0) {
  sim::BlockCost c;
  const int lo = block * 256;
  const int elems = std::clamp(count - lo, 0, 256);
  c.active_threads = elems;
  c.live_threads = 256;
  c.flops = elems;  // one integer op per element
  c.bytes = elems * (sizeof(int) + extra_bytes_per_elem);
  c.sync_steps = 8;  // tree reduction depth
  return c;
}

}  // namespace

int imax_reduce(sim::Device& dev, std::span<const int> host_mirror) {
  const int count = static_cast<int>(host_mirror.size());
  auto cfg = int_sweep_config("aux_imax_reduce", count);
  dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    return int_sweep_cost(count, block);
  });
  // Stage 2: reduce the per-block partials (single block).
  if (cfg.grid_blocks > 1) {
    auto cfg2 = int_sweep_config("aux_imax_reduce_stage2", cfg.grid_blocks);
    cfg2.grid_blocks = 1;
    dev.launch(cfg2, [blocks = cfg.grid_blocks](const sim::ExecContext&, int) {
      return int_sweep_cost(blocks, 0);
    });
  }
  int m = 0;
  for (int v : host_mirror) m = std::max(m, v);
  return m;
}

std::array<int, 3> imax_reduce3(sim::Device& dev, std::span<const int> a,
                                std::span<const int> b, std::span<const int> c) {
  const int count = static_cast<int>(std::max({a.size(), b.size(), c.size()}));
  if (count == 0) return {0, 0, 0};
  int arrays = 0;
  for (const auto& s : {a, b, c})
    if (!s.empty()) ++arrays;
  auto cfg = int_sweep_config("aux_imax_reduce3", count);
  dev.launch(cfg, [count, arrays](const sim::ExecContext&, int block) {
    // Same sweep as imax_reduce, but each thread reads one entry of every
    // array; the per-block partials carry all three running maxima.
    return int_sweep_cost(count, block, static_cast<double>(arrays - 1) * sizeof(int));
  });
  if (cfg.grid_blocks > 1) {
    auto cfg2 = int_sweep_config("aux_imax_reduce3_stage2", cfg.grid_blocks);
    cfg2.grid_blocks = 1;
    dev.launch(cfg2, [blocks = cfg.grid_blocks, arrays](const sim::ExecContext&, int) {
      return int_sweep_cost(blocks, 0, static_cast<double>(arrays - 1) * sizeof(int));
    });
  }
  std::array<int, 3> out{0, 0, 0};
  for (int v : a) out[0] = std::max(out[0], v);
  for (int v : b) out[1] = std::max(out[1], v);
  for (int v : c) out[2] = std::max(out[2], v);
  return out;
}

double shift_sizes(sim::Device& dev, std::span<const int> in, std::span<int> out, int offset) {
  const int count = static_cast<int>(in.size());
  auto cfg = int_sweep_config("aux_shift_sizes", count);
  const double t = dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    return int_sweep_cost(count, block, sizeof(int));  // read + write
  });
  for (int i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = std::max(0, in[static_cast<std::size_t>(i)] - offset);
  return t;
}

double build_size_window(sim::Device& dev, std::span<const int> sizes, int lo, int hi,
                         std::vector<int>& out) {
  const int count = static_cast<int>(sizes.size());
  auto cfg = int_sweep_config("aux_build_window", count);
  const double t = dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    return int_sweep_cost(count, block, sizeof(int));  // read size, write index
  });
  out.clear();
  for (int i = 0; i < count; ++i) {
    const int s = sizes[static_cast<std::size_t>(i)];
    if (s > lo && s <= hi) out.push_back(i);
  }
  return t;
}

double build_size_partition(sim::Device& dev, std::span<const int> sizes, int base,
                            int live_max, int width, std::vector<std::vector<int>>& windows) {
  const int count = static_cast<int>(sizes.size());
  auto cfg = int_sweep_config("aux_build_partition", count);
  const double t = dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    return int_sweep_cost(count, block, sizeof(int));  // read size, write (window, index)
  });
  const int nwin = static_cast<int>(windows.size());
  for (auto& w : windows) w.clear();
  for (int i = 0; i < count; ++i) {
    const int r = sizes[static_cast<std::size_t>(i)] - base;  // remaining panel height
    if (r <= 0) continue;
    const int w = std::min((live_max - r) / width, nwin - 1);
    windows[static_cast<std::size_t>(w)].push_back(i);
  }
  return t;
}

int count_live(sim::Device& dev, std::span<const int> sizes, int offset) {
  const int count = static_cast<int>(sizes.size());
  auto cfg = int_sweep_config("aux_count_live", count);
  dev.launch(cfg, [count](const sim::ExecContext&, int block) {
    return int_sweep_cost(count, block);
  });
  int live = 0;
  for (int s : sizes)
    if (s > offset) ++live;
  return live;
}

}  // namespace vbatch::kernels
