// The numerical payload and cost report of one fused left-looking Cholesky
// step (§III-D), shared between the vbatched fused kernel
// (launch_fused_step) and the separated path's panel kernel
// (launch_potf2_panel), which the paper builds by reusing the fused kernel
// on NB-wide diagonal panels (§III-E1).
#pragma once

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/sim/kernel_launch.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::kernels {

/// Fills the cost report for a live fused-step block: an n×n matrix at
/// factorization step `step` of blocking `nb`, with `block_threads` live
/// threads and the chosen ETM.
inline void fused_step_cost(sim::BlockCost& cost, index_t n, int step, int nb,
                            int block_threads, EtmMode etm, std::size_t elem_size) {
  const index_t j = static_cast<index_t>(step) * nb;
  const index_t m = n - j;
  const index_t ib = std::min<index_t>(nb, m);

  cost.live_threads = block_threads;
  cost.active_threads = static_cast<int>(std::min<index_t>(m, block_threads));
  if (etm == EtmMode::Aggressive) cost.live_threads = cost.active_threads;

  // Customized rank-k update (B ⊂ A read once, Fig. 2), potf2, trsm.
  cost.flops = flops::gemm(m, ib, j) + flops::potrf(ib) + flops::trsm(m - ib, ib, false);
  // Read the m×j left factor once, read + write the m×ib panel.
  cost.bytes = static_cast<double>(m * j + 2 * m * ib) * elem_size;
  // Double-buffered update stages plus the fused potf2/trsm column steps.
  cost.sync_steps = static_cast<int>(j / nb + ib + 2);
  cost.serial_ops = static_cast<double>(2 * ib);  // sqrt + reciprocal chain
}

/// Executes the real arithmetic of one fused step on the matrix view `A`
/// (order n, leading dimension A.ld()). Returns LAPACK-style local info
/// relative to the whole matrix (step offset already applied), or 0.
template <typename T>
int fused_step_math(Uplo uplo, MatrixView<T> A, int step, int nb) {
  const index_t n = A.rows();
  const index_t j = static_cast<index_t>(step) * nb;
  const index_t m = n - j;
  const index_t ib = std::min<index_t>(nb, m);
  int local_info = 0;
  if (uplo == Uplo::Lower) {
    auto panel = A.block(j, j, m, ib);
    if (j > 0) {
      blas::gemm<T>(Trans::NoTrans, Trans::Trans, T(-1), A.block(j, 0, m, j),
                    A.block(j, 0, ib, j), T(1), panel);
    }
    local_info = blas::potf2<T>(Uplo::Lower, panel.block(0, 0, ib, ib));
    if (local_info == 0 && m > ib) {
      blas::trsm<T>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, T(1),
                    panel.block(0, 0, ib, ib), panel.block(ib, 0, m - ib, ib));
    }
  } else {
    auto row = A.block(j, j, ib, m);
    if (j > 0) {
      blas::gemm<T>(Trans::Trans, Trans::NoTrans, T(-1), A.block(0, j, j, ib),
                    A.block(0, j, j, m), T(1), row);
    }
    local_info = blas::potf2<T>(Uplo::Upper, row.block(0, 0, ib, ib));
    if (local_info == 0 && m > ib) {
      blas::trsm<T>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, T(1),
                    row.block(0, 0, ib, ib), row.block(0, ib, ib, m - ib));
    }
  }
  return local_info == 0 ? 0 : static_cast<int>(j) + local_info;
}

}  // namespace vbatch::kernels
