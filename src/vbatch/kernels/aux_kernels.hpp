// Auxiliary device kernels for vbatched metadata (paper §III-A, §III-F).
//
// A vbatched routine keeps sizes and leading dimensions in device int
// arrays, so "any pointer displacement or any simple arithmetic operation on
// the matrix size need to be performed on the whole array" with dedicated
// GPU kernels. These are those kernels: integer reductions and element-wise
// size arithmetic. Their (modelled) cost is what the paper calls "in most
// cases negligible" — bench/aux_overhead quantifies it.
#pragma once

#include <array>
#include <span>

#include "vbatch/sim/device.hpp"

namespace vbatch::kernels {

/// Device-side max-reduction over an int array (two-stage tree reduction).
/// `host_mirror` supplies the functional values; the launch models the cost
/// of reading `count` ints through the memory system.
[[nodiscard]] int imax_reduce(sim::Device& dev, std::span<const int> host_mirror);

/// Reduces the maxima of up to three arrays in one sweep kernel: returns
/// {max(a), max(b), max(c)}, 0 for an empty span. The QR driver uses it to
/// fetch max(m), max(n) and max(min(m,n)) with a single metadata pass
/// instead of three back-to-back reductions.
[[nodiscard]] std::array<int, 3> imax_reduce3(sim::Device& dev, std::span<const int> a,
                                              std::span<const int> b, std::span<const int> c);

/// Element-wise clamp-subtract used by the factorization driver between
/// panel steps: out[i] = max(0, in[i] - offset). Returns the kernel time.
double shift_sizes(sim::Device& dev, std::span<const int> in, std::span<int> out, int offset);

/// Builds the list of batch indices whose size falls inside (lo, hi]
/// — the implicit-sorting "ready queue" construction (§III-D2). The indices
/// land in `out` (host mirror of a device index array); returns kernel time.
double build_size_window(sim::Device& dev, std::span<const int> sizes, int lo, int hi,
                         std::vector<int>& out);

/// One-pass variant: partitions all live indices (size > base) into
/// `windows.size()` ready queues. Window 0 holds the largest remaining
/// sizes: index i with remaining r = size[i] − base lands in window
/// min(⌊(live_max − r) / width⌋, windows.size()−1). A single kernel sweep,
/// so the driver pays one launch per step regardless of the window count.
double build_size_partition(sim::Device& dev, std::span<const int> sizes, int base,
                            int live_max, int width, std::vector<std::vector<int>>& windows);

/// Counts entries still live (size > offset) — used by the driver to decide
/// whether trsm/syrk launches are still needed (§III-F).
[[nodiscard]] int count_live(sim::Device& dev, std::span<const int> sizes, int offset);

}  // namespace vbatch::kernels
