// "Classic" separated building-block kernels — the pre-fusion batched BLAS
// approach of Haidar et al. [13] that Fig. 4 uses as the baseline for the
// kernel-fusion comparison.
//
// Unlike the fused kernel (§III-D), every sub-operation of a factorization
// step is its own kernel launch working straight against global memory: the
// panel is re-read and re-written by each kernel, nothing is cached across
// launches, potf2's column recurrence round-trips global memory, and the
// trailing update goes through the generic large-tile gemm/syrk shapes.
// That is precisely the overhead profile kernel fusion removes.
#pragma once

#include <span>

#include "vbatch/kernels/common.hpp"

namespace vbatch::kernels {

template <typename T>
struct ClassicPotf2Args {
  BatchArgs<T> batch;
  Uplo uplo = Uplo::Lower;
  int offset = 0;  ///< diagonal offset of the nb×nb tile
  int nb = 8;
  std::span<int> info;
};

/// Unblocked potf2 of the nb×nb diagonal tile, one block per matrix,
/// operating in global memory (per-column round trips).
template <typename T>
double launch_classic_potf2(sim::Device& dev, const ClassicPotf2Args<T>& args);

template <typename T>
struct ClassicTrsmArgs {
  BatchArgs<T> batch;
  Uplo uplo = Uplo::Lower;
  int offset = 0;  ///< panel offset j; solves the sub-diagonal panel of width nb
  int nb = 8;
  std::span<int> info;
};

/// Triangular solve of the (n−j−nb)×nb sub-panel against the freshly
/// factored tile, one block per matrix, global-memory resident.
template <typename T>
double launch_classic_trsm(sim::Device& dev, const ClassicTrsmArgs<T>& args);

}  // namespace vbatch::kernels
