#include "vbatch/kernels/potf2_panel.hpp"

#include <algorithm>

#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/kernels/fused_step_math.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::kernels {

// §III-E1: "we reuse the fused kernel described in Section III-D in order
// to factorize a square panel of size NB, where NB > nb" — the panel
// factorization is a driver loop of fused-step launches restricted to the
// NB×NB diagonal block, with ETM-classic terminating blocks whose matrix
// is already past the offset (or whose panel finished early).
template <typename T>
double launch_potf2_panel(sim::Device& dev, const Potf2PanelArgs<T>& args) {
  const int batch = args.batch.count();
  require(batch > 0, "potf2_panel: empty batch");
  require(args.NB > 0 && args.nb_inner > 0, "potf2_panel: bad blocking");

  const auto& a = args.batch;
  double seconds = 0.0;

  for (int step = 0; step * args.nb_inner < args.NB; ++step) {
    sim::LaunchConfig cfg;
    cfg.name = "vbatched_potf2_panel";
    cfg.grid_blocks = batch;
    cfg.block_threads = round_up_warp(dev.spec(), args.NB - step * args.nb_inner);
    cfg.shared_mem = fused_shared_mem(cfg.block_threads, args.nb_inner, sizeof(T));
    cfg.precision = precision_v<T>;

    seconds += dev.launch(cfg, [&args, &a, step, threads = cfg.block_threads](
                                   const sim::ExecContext& ctx, int i) -> sim::BlockCost {
      const int n = a.n[static_cast<std::size_t>(i)];
      sim::BlockCost cost;
      cost.live_threads = threads;

      const index_t ib = std::clamp<index_t>(n - args.offset, 0, args.NB);
      const index_t js = static_cast<index_t>(step) * args.nb_inner;
      if (ib <= 0 || js >= ib || args.info[static_cast<std::size_t>(i)] != 0) {
        cost.early_exit = true;  // ETM-classic
        return cost;
      }

      fused_step_cost(cost, ib, step, args.nb_inner, threads, EtmMode::Classic, sizeof(T));

      if (ctx.full()) {
        const index_t lda = a.lda[static_cast<std::size_t>(i)];
        // The panel's diagonal block factored as its own ib×ib matrix.
        MatrixView<T> diag(a.ptrs[i] + args.offset + static_cast<index_t>(args.offset) * lda,
                           ib, ib, lda);
        const int info = fused_step_math<T>(args.uplo, diag, step, args.nb_inner);
        if (info != 0) args.info[static_cast<std::size_t>(i)] = args.offset + info;
      }
      return cost;
    });
  }
  return seconds;
}

template double launch_potf2_panel<float>(sim::Device&, const Potf2PanelArgs<float>&);
template double launch_potf2_panel<double>(sim::Device&, const Potf2PanelArgs<double>&);
template double launch_potf2_panel<std::complex<float>>(
    sim::Device&, const Potf2PanelArgs<std::complex<float>>&);
template double launch_potf2_panel<std::complex<double>>(
    sim::Device&, const Potf2PanelArgs<std::complex<double>>&);

}  // namespace vbatch::kernels
