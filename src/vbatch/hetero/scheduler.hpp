// Dynamic work-stealing scheduler over the pool's virtual clocks, with
// multi-stream chunk overlap and fault recovery.
//
// The simulator has no real concurrency to exploit — every device clock is
// modelled — so the scheduler is an event loop over virtual time: the
// earliest pending event (a chunk committing, or an executor with a free
// stream slot dispatching) fires next. An executor with work pops the
// *front* of its own deque (its biggest remaining chunk, since chunks
// follow the size-sorted order); an idle executor steals from the *back* of
// a victim's deque — the trailing, smallest chunks, which are the cheapest
// to migrate and the classic candidates for rebalancing a size-sorted
// batch.
//
// Multi-stream overlap (streams[e] > 1): an executor keeps up to streams[e]
// chunks in flight. A chunk dispatched while others are in flight contends
// for the device's modelled slot capacity — with occupancy occ and free
// share s = max(1 − Σ occ_inflight, 1/(inflight+1)), it progresses at rate
// min(1, s/occ), i.e. a low-occupancy chunk overlaps for free while
// device-filling chunks degrade gracefully to the serial makespan. The
// numerics of a chunk run exactly once, at COMMIT time, in global virtual-
// time order — dispatch only reserves the slot — so factors and info are
// bit-identical to the single-stream schedule for every stream count; only
// the virtual-time placement (and hence the makespan) changes. With
// streams[e] == 1 everywhere the loop reproduces the classic serial
// schedule clock-for-clock.
//
// Victim selection is deterministic: StealPolicy::MostLoaded picks the peer
// with the largest remaining modelled load, and all ties (and the Random
// policy) are resolved through one seeded xoshiro stream. Replaying a
// schedule with the same seed therefore reproduces the same chunk → device
// mapping exactly — and because the numerics of every chunk are identical
// on every executor, even a *different* schedule reproduces the same bits;
// only the modelled makespan moves.
//
// Out-of-core streaming (docs/heterogeneous.md, "Out-of-core streaming"):
// an executor whose h2d/d2h rows are set stages every chunk through a
// bounded arena instead of assuming residency. A streamed chunk's
// trajectory is fixed at dispatch: H2D on the executor's (serializing)
// host→device DMA lane as soon as the arena admits the chunk's bytes,
// compute once the copy lands and one of the streams[e] compute slots
// frees, write-back on the independent D2H lane — and the chunk commits
// (numerics run, exactly once, in global virtual-time order) when the
// write-back completes. With prefetch on, the executor holds one extra
// pipeline slot, so chunk k+1's H2D overlaps chunk k's compute and chunk
// k-1's D2H (double buffering); with prefetch off the stages serialize per
// slot (synchronous staging — the bench baseline). Executors without
// transfer rows run the classic resident schedule clock-for-clock.
//
// Fault recovery (docs/robustness.md): when a FaultPlan is attached, every
// attempt is first checked against the injection oracle. A transient fault
// charges the attempt's modelled time plus a deterministic exponential
// backoff and the executor retries; after RetryPolicy::max_attempts
// failures the chunk is re-dispatched to the best surviving peer (LPT over
// current clocks). A hang charges the watchdog interval and converts into
// permanent executor loss; a scheduled death orphans the executor's deque,
// which is likewise re-dispatched — down to a single survivor (CPU-only as
// the last resort). A dying executor also aborts every chunk still in
// flight on its streams (their numerics never committed, so they
// re-dispatch cleanly; the partial intervals are logged as InFlightLost
// waste). The execute callback runs only for the one successful attempt of
// each chunk, so recovered runs stay bit-identical to fault-free ones; a
// chunk no survivor could complete is marked poisoned instead of aborting
// the call.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "vbatch/fault/fault_plan.hpp"
#include "vbatch/hetero/stream_slot.hpp"

namespace vbatch::hetero {

enum class StealPolicy : std::uint8_t { MostLoaded, Random };

[[nodiscard]] constexpr const char* to_string(StealPolicy p) noexcept {
  switch (p) {
    case StealPolicy::MostLoaded: return "most-loaded";
    case StealPolicy::Random: return "random";
  }
  return "?";
}

struct ScheduleParams {
  /// Chunk → owning executor from the static partitioner.
  std::vector<int> owner;
  /// estimate[e][c]: executor e's modelled seconds for chunk c — drives
  /// victim load ranking, orphan re-dispatch, and the time charged to a
  /// faulted attempt.
  std::vector<std::vector<double>> estimate;
  int executors = 1;
  bool work_stealing = true;
  StealPolicy steal = StealPolicy::MostLoaded;
  std::uint64_t seed = 2016;
  /// Per-executor clock offsets at t = 0 (e.g. executor 0 already spent the
  /// argument-check sweep before any chunk runs).
  std::vector<double> initial_clock;
  /// Per-executor concurrent stream slots (empty = one stream everywhere,
  /// the classic serial schedule). An executor with streams[e] = k keeps up
  /// to k chunks in flight, contending for the modelled slot capacity.
  std::vector<int> streams;
  /// occupancy[e][c]: fraction of executor e's device slots chunk c keeps
  /// busy, in (0, 1] (empty = 1.0 everywhere, i.e. no overlap headroom).
  /// Drives the per-chunk contention rate of overlapped dispatches.
  std::vector<std::vector<double>> occupancy;
  /// Fault injection oracle; null (or empty) = fault-free run.
  const fault::FaultPlan* faults = nullptr;
  /// Retry/backoff/watchdog bounds for the recovery loop.
  fault::RetryPolicy retry;

  // --- Out-of-core staging (empty = every executor resident, the classic
  //     schedule). h2d[e][c] / d2h[e][c] are the per-chunk staging seconds
  //     for executor e; an empty row e keeps that executor resident.
  std::vector<std::vector<double>> h2d;
  std::vector<std::vector<double>> d2h;
  /// chunk_bytes[c]: payload footprint a streamed chunk holds in the arena
  /// from H2D start to D2H completion. Required when any executor streams.
  std::vector<double> chunk_bytes;
  /// arena[e]: staging budget in bytes for streaming executors (<= 0 =
  /// unbounded). A chunk's H2D waits until the in-flight resident bytes
  /// plus its own fit the budget.
  std::vector<double> arena;
  /// Double-buffered prefetch: a streaming executor gets one extra pipeline
  /// slot, so the next chunk's H2D runs while the current one computes.
  /// false = synchronous staging (h2d → compute → d2h serialize per slot).
  bool prefetch = true;
};

struct ScheduleResult {
  double makespan = 0.0;            ///< max final clock over all executors
  std::vector<double> busy;         ///< per-executor seconds spent executing
  std::vector<double> finish;       ///< per-executor final clock
  std::vector<int> chunks_run;      ///< per-executor chunks completed
  std::vector<int> chunks_stolen;   ///< per-executor chunks acquired by stealing
  std::vector<int> executed_by;     ///< chunk → executor that completed it (-1 = poisoned)
  /// Per-executor union of its busy intervals (chunks and fault waste on
  /// any stream, overlaps counted once). busy / occupied is the overlap
  /// ratio: 1.0 for a serial schedule, up to streams[e] under full overlap.
  std::vector<double> occupied;
  /// Per-executor high-water mark of simultaneously in-flight chunks.
  std::vector<int> max_in_flight;

  // --- Out-of-core staging ledger (zeros when nobody streams) ------------
  std::vector<double> h2d_seconds;  ///< per-executor committed H2D seconds
  std::vector<double> d2h_seconds;  ///< per-executor committed D2H seconds
  std::vector<double> h2d_bytes;    ///< per-executor bytes staged in
  std::vector<double> d2h_bytes;    ///< per-executor bytes written back
  /// Per-executor union of compute + transfer intervals (the pipeline
  /// span). (busy + h2d + d2h) / pipeline measures how much of the staging
  /// traffic the schedule hid behind compute.
  std::vector<double> pipeline;
  /// Per-chunk committed staging placement {h2d_start, h2d_end, d2h_start,
  /// d2h_end} in virtual time; all zero for resident chunks. Tests use it
  /// to assert the arena budget and the per-direction lane serialization.
  std::vector<std::array<double, 4>> staging;

  // --- Fault-recovery ledger (all empty/zero on a fault-free run) --------
  std::vector<int> retries;         ///< per-executor transient attempts wasted
  std::vector<char> lost;           ///< per-executor permanent-loss flag
  std::vector<int> attempts;        ///< per-chunk total attempts (success included)
  std::vector<char> poisoned;       ///< per-chunk unrecoverable flag
  std::vector<fault::FaultEvent> events;  ///< ordered fault/recovery log
  int retries_total = 0;
  int hangs = 0;
  int executors_lost = 0;
  int chunks_poisoned = 0;
  double backoff_seconds = 0.0;     ///< total virtual backoff across the pool
};

/// Runs the virtual-time loop. `execute(e, c, slot)` must run chunk c on
/// executor e in the given stream slot and return the serial modelled
/// seconds; it is called exactly once for the successful attempt of each
/// completed chunk (never for faulted or aborted-in-flight attempts, never
/// for poisoned chunks), in global commit order. `on_fault`, when set,
/// observes every fault event as it is logged — the hetero driver uses it
/// to charge wasted intervals to the GPU timelines.
[[nodiscard]] ScheduleResult run_schedule(
    const ScheduleParams& params,
    const std::function<double(int, int, const StreamSlot&)>& execute,
    const std::function<void(const fault::FaultEvent&)>& on_fault = {});

/// Slot-blind convenience overload (single-stream scheduling in tests and
/// callers that predate stream overlap).
[[nodiscard]] ScheduleResult run_schedule(
    const ScheduleParams& params, const std::function<double(int, int)>& execute,
    const std::function<void(const fault::FaultEvent&)>& on_fault = {});

}  // namespace vbatch::hetero
