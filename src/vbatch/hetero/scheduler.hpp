// Dynamic work-stealing scheduler over the pool's virtual clocks.
//
// The simulator has no real concurrency to exploit — every device clock is
// modelled — so the scheduler is an event loop over virtual time: the
// executor with the earliest clock acts next. An executor with work pops
// the *front* of its own deque (its biggest remaining chunk, since chunks
// follow the size-sorted order); an idle executor steals from the *back* of
// a victim's deque — the trailing, smallest chunks, which are the cheapest
// to migrate and the classic candidates for rebalancing a size-sorted
// batch.
//
// Victim selection is deterministic: StealPolicy::MostLoaded picks the peer
// with the largest remaining modelled load, and all ties (and the Random
// policy) are resolved through one seeded xoshiro stream. Replaying a
// schedule with the same seed therefore reproduces the same chunk → device
// mapping exactly — and because the numerics of every chunk are identical
// on every executor, even a *different* schedule reproduces the same bits;
// only the modelled makespan moves.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace vbatch::hetero {

enum class StealPolicy : std::uint8_t { MostLoaded, Random };

[[nodiscard]] constexpr const char* to_string(StealPolicy p) noexcept {
  switch (p) {
    case StealPolicy::MostLoaded: return "most-loaded";
    case StealPolicy::Random: return "random";
  }
  return "?";
}

struct ScheduleParams {
  /// Chunk → owning executor from the static partitioner.
  std::vector<int> owner;
  /// estimate[e][c]: executor e's modelled seconds for chunk c — drives
  /// victim load ranking.
  std::vector<std::vector<double>> estimate;
  int executors = 1;
  bool work_stealing = true;
  StealPolicy steal = StealPolicy::MostLoaded;
  std::uint64_t seed = 2016;
  /// Per-executor clock offsets at t = 0 (e.g. executor 0 already spent the
  /// argument-check sweep before any chunk runs).
  std::vector<double> initial_clock;
};

struct ScheduleResult {
  double makespan = 0.0;            ///< max final clock over all executors
  std::vector<double> busy;         ///< per-executor seconds spent executing
  std::vector<double> finish;       ///< per-executor final clock
  std::vector<int> chunks_run;      ///< per-executor chunks executed
  std::vector<int> chunks_stolen;   ///< per-executor chunks acquired by stealing
  std::vector<int> executed_by;     ///< chunk → executor that actually ran it
};

/// Runs the virtual-time loop. `execute(e, c)` must run chunk c on executor
/// e and return the modelled seconds; it is called exactly once per chunk.
[[nodiscard]] ScheduleResult run_schedule(const ScheduleParams& params,
                                          const std::function<double(int, int)>& execute);

}  // namespace vbatch::hetero
