#include "vbatch/hetero/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::hetero {

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int)>& execute,
                            const std::function<void(const fault::FaultEvent&)>& on_fault) {
  const int E = params.executors;
  const int C = static_cast<int>(params.owner.size());
  require(E >= 1, "run_schedule: need at least one executor");
  require(static_cast<int>(params.estimate.size()) == E,
          "run_schedule: estimate rows must match executor count");
  const fault::FaultPlan* plan =
      (params.faults != nullptr && !params.faults->empty()) ? params.faults : nullptr;
  if (plan != nullptr) {
    require(params.retry.max_attempts >= 1, "run_schedule: retry.max_attempts must be >= 1");
    require(params.retry.backoff_seconds >= 0.0 && params.retry.backoff_multiplier >= 1.0 &&
                params.retry.watchdog_seconds >= 0.0,
            "run_schedule: retry policy times must be non-negative");
  }

  // Owned deques in chunk order: front = biggest remaining chunk (chunks
  // follow the size-sorted batch order), back = trailing smallest — the
  // steal end.
  std::vector<std::deque<int>> deque_of(static_cast<std::size_t>(E));
  for (int c = 0; c < C; ++c) {
    const int e = params.owner[static_cast<std::size_t>(c)];
    require(e >= 0 && e < E, "run_schedule: chunk owner out of range");
    deque_of[static_cast<std::size_t>(e)].push_back(c);
  }

  ScheduleResult res;
  res.busy.assign(static_cast<std::size_t>(E), 0.0);
  res.finish.assign(static_cast<std::size_t>(E), 0.0);
  res.chunks_run.assign(static_cast<std::size_t>(E), 0);
  res.chunks_stolen.assign(static_cast<std::size_t>(E), 0);
  res.executed_by.assign(static_cast<std::size_t>(C), -1);
  res.retries.assign(static_cast<std::size_t>(E), 0);
  res.lost.assign(static_cast<std::size_t>(E), 0);
  res.attempts.assign(static_cast<std::size_t>(C), 0);
  res.poisoned.assign(static_cast<std::size_t>(C), 0);

  std::vector<double> clock(static_cast<std::size_t>(E), 0.0);
  for (int e = 0; e < E && e < static_cast<int>(params.initial_clock.size()); ++e)
    clock[static_cast<std::size_t>(e)] = params.initial_clock[static_cast<std::size_t>(e)];
  res.finish = clock;

  // retired = nothing left to do (reversible: re-dispatched orphans wake a
  // retired executor up); alive = not permanently lost.
  std::vector<char> retired(static_cast<std::size_t>(E), 0);
  std::vector<char> alive(static_cast<std::size_t>(E), 1);
  std::vector<int> completed(static_cast<std::size_t>(E), 0);
  // Per-(executor, chunk) attempt counters and retry-exhaustion flags.
  std::vector<std::vector<int>> tried(static_cast<std::size_t>(E),
                                      std::vector<int>(static_cast<std::size_t>(C), 0));
  std::vector<std::vector<char>> gave_up(static_cast<std::size_t>(E),
                                         std::vector<char>(static_cast<std::size_t>(C), 0));
  Rng rng(params.seed);
  int left = C;

  auto estimate_of = [&](int e, int c) {
    return params.estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto remaining_load = [&](int e) {
    double load = 0.0;
    for (int c : deque_of[static_cast<std::size_t>(e)]) load += estimate_of(e, c);
    return load;
  };
  auto emit = [&](fault::FaultEvent ev) {
    if (on_fault) on_fault(ev);
    res.events.push_back(ev);
  };

  // Re-dispatches an orphaned chunk to the surviving executor whose current
  // clock + estimate is lowest (greedy LPT over the live pool; ties go to
  // the lowest index). Executors that exhausted their retries on the chunk
  // are skipped; with nobody eligible the chunk is poisoned.
  auto redispatch = [&](int c) {
    int pick = -1;
    double pick_finish = std::numeric_limits<double>::infinity();
    for (int e = 0; e < E; ++e) {
      if (!alive[static_cast<std::size_t>(e)] || gave_up[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)])
        continue;
      const double f = clock[static_cast<std::size_t>(e)] + estimate_of(e, c);
      if (f < pick_finish) {
        pick = e;
        pick_finish = f;
      }
    }
    if (pick < 0) {
      res.poisoned[static_cast<std::size_t>(c)] = 1;
      ++res.chunks_poisoned;
      --left;
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::ChunkLost;
      ev.chunk = c;
      emit(ev);
      return;
    }
    deque_of[static_cast<std::size_t>(pick)].push_back(c);
    // New work exists: wake every surviving executor so idle peers get to
    // steal it (retirement is reversible until the pool drains).
    for (int e = 0; e < E; ++e)
      if (alive[static_cast<std::size_t>(e)]) retired[static_cast<std::size_t>(e)] = 0;
  };

  // Permanent executor loss: log it, drain the orphaned deque through the
  // LPT re-dispatch above.
  auto kill = [&](int e) {
    alive[static_cast<std::size_t>(e)] = 0;
    retired[static_cast<std::size_t>(e)] = 1;
    res.lost[static_cast<std::size_t>(e)] = 1;
    ++res.executors_lost;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::ExecutorLoss;
    ev.exec = e;
    ev.start = clock[static_cast<std::size_t>(e)];
    emit(ev);
    std::deque<int> orphans;
    orphans.swap(deque_of[static_cast<std::size_t>(e)]);
    for (int c : orphans) redispatch(c);
  };

  while (left > 0) {
    // Next actor: earliest virtual clock among executors still in the game;
    // ties go to the lowest index (deterministic).
    int actor = -1;
    for (int e = 0; e < E; ++e) {
      if (retired[static_cast<std::size_t>(e)]) continue;
      if (actor < 0 || clock[static_cast<std::size_t>(e)] < clock[static_cast<std::size_t>(actor)])
        actor = e;
    }
    if (actor < 0) {
      // Every executor is retired or lost with work outstanding — possible
      // only when the whole pool died. Poison whatever is left (the deques
      // of dead executors were already drained by kill/redispatch).
      require(plan != nullptr, "run_schedule: all executors retired with work left");
      break;
    }

    // Scheduled death fires the moment the executor would act again.
    if (plan != nullptr) {
      const int after = plan->dies_after(actor);
      if (after >= 0 && completed[static_cast<std::size_t>(actor)] >= after) {
        kill(actor);
        continue;
      }
    }

    auto& own = deque_of[static_cast<std::size_t>(actor)];
    int chunk = -1;
    bool stolen = false;
    if (!own.empty()) {
      chunk = own.front();
      own.pop_front();
    } else if (params.work_stealing) {
      // Victim: non-empty peers whose back chunk this actor has not given
      // up on, ranked by policy; ties broken by the seeded stream so the
      // steal order is reproducible.
      std::vector<int> victims;
      for (int e = 0; e < E; ++e) {
        if (e == actor) continue;
        const auto& v = deque_of[static_cast<std::size_t>(e)];
        if (v.empty()) continue;
        if (gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(v.back())]) continue;
        victims.push_back(e);
      }
      if (!victims.empty()) {
        int victim;
        if (params.steal == StealPolicy::Random) {
          victim = victims[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(victims.size()) - 1))];
        } else {
          double best = -1.0;
          std::vector<int> tied;
          for (int e : victims) {
            const double load = remaining_load(e);
            if (load > best) {
              best = load;
              tied.assign(1, e);
            } else if (load == best) {
              tied.push_back(e);
            }
          }
          victim = tied.size() == 1
                       ? tied[0]
                       : tied[static_cast<std::size_t>(
                             rng.uniform_int(0, static_cast<std::int64_t>(tied.size()) - 1))];
        }
        auto& v = deque_of[static_cast<std::size_t>(victim)];
        chunk = v.back();
        v.pop_back();
        stolen = true;
      }
    }

    if (chunk < 0) {
      // Nothing owned, nothing stealable: this executor is idle for now
      // (re-dispatched orphans may wake it up again).
      retired[static_cast<std::size_t>(actor)] = 1;
      continue;
    }

    const int attempt = ++tried[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)];
    ++res.attempts[static_cast<std::size_t>(chunk)];
    const fault::FaultKind outcome =
        plan != nullptr ? plan->attempt_outcome(actor, chunk, attempt) : fault::FaultKind::None;

    if (outcome == fault::FaultKind::None) {
      const double seconds = execute(actor, chunk);
      clock[static_cast<std::size_t>(actor)] += seconds;
      res.busy[static_cast<std::size_t>(actor)] += seconds;
      res.finish[static_cast<std::size_t>(actor)] = clock[static_cast<std::size_t>(actor)];
      res.chunks_run[static_cast<std::size_t>(actor)] += 1;
      if (stolen) res.chunks_stolen[static_cast<std::size_t>(actor)] += 1;
      res.executed_by[static_cast<std::size_t>(chunk)] = actor;
      completed[static_cast<std::size_t>(actor)] += 1;
      --left;
      continue;
    }

    fault::FaultEvent ev;
    ev.exec = actor;
    ev.chunk = chunk;
    ev.attempt = attempt;
    ev.start = clock[static_cast<std::size_t>(actor)];
    if (outcome == fault::FaultKind::Hang) {
      // The attempt never completes; the watchdog declares the executor
      // lost after its virtual-time budget. The launch never commits, so
      // the chunk's matrices are untouched and it re-dispatches cleanly.
      ev.kind = fault::FaultKind::Hang;
      ev.waste_seconds = params.retry.watchdog_seconds;
      clock[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.finish[static_cast<std::size_t>(actor)] = clock[static_cast<std::size_t>(actor)];
      ++res.hangs;
      emit(ev);
      kill(actor);
      redispatch(chunk);
      continue;
    }

    // Transient (simulated ECC / launch failure): the attempt's modelled
    // time is wasted, a deterministic exponential backoff precedes the
    // retry. The work never commits — numerics run only on success.
    ev.kind = fault::FaultKind::Transient;
    ev.waste_seconds = estimate_of(actor, chunk);
    ev.backoff_seconds =
        params.retry.backoff_seconds *
        std::pow(params.retry.backoff_multiplier, static_cast<double>(attempt - 1));
    clock[static_cast<std::size_t>(actor)] += ev.waste_seconds + ev.backoff_seconds;
    res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
    res.finish[static_cast<std::size_t>(actor)] = clock[static_cast<std::size_t>(actor)];
    res.retries[static_cast<std::size_t>(actor)] += 1;
    ++res.retries_total;
    res.backoff_seconds += ev.backoff_seconds;
    emit(ev);
    if (attempt >= params.retry.max_attempts) {
      // This executor gives the chunk up; a surviving peer inherits it.
      gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)] = 1;
      redispatch(chunk);
    } else {
      // Retry next time this executor acts (its clock already carries the
      // wasted attempt plus the backoff). Peers may steal it first.
      own.push_front(chunk);
    }
  }

  res.makespan = *std::max_element(res.finish.begin(), res.finish.end());
  return res;
}

}  // namespace vbatch::hetero
