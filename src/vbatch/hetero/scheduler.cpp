#include "vbatch/hetero/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::hetero {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One chunk occupying a stream slot between dispatch and commit. `dur` is
/// kept explicit (est / rate) rather than recomputed from end − start so a
/// rate-1.0 chunk charges exactly its estimate to the busy ledger — the
/// bitwise guarantee the single-stream compatibility tests pin.
struct InFlight {
  int chunk = -1;
  int stream = 0;
  int attempt = 0;
  bool stolen = false;
  double start = 0.0;  ///< compute start (== dispatch clock when resident)
  double dur = 0.0;    ///< compute duration (est / rate)
  double end = 0.0;    ///< commit time: compute end, or d2h end when streamed
  double occ = 1.0;
  double rate = 1.0;
  // Out-of-core staging trajectory (all zero for a resident chunk).
  bool streamed = false;
  double bytes = 0.0;
  double h2d_start = 0.0;
  double h2d_end = 0.0;
  double d2h_start = 0.0;
  double d2h_end = 0.0;
};

/// Union length of [start, end) intervals — one executor's occupied time.
double union_seconds(std::vector<std::pair<double, double>>& iv) {
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  double total = 0.0;
  double lo = iv.front().first;
  double hi = iv.front().second;
  for (const auto& [s, e] : iv) {
    if (s > hi) {
      total += hi - lo;
      lo = s;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  return total + (hi - lo);
}

}  // namespace

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int, const StreamSlot&)>& execute,
                            const std::function<void(const fault::FaultEvent&)>& on_fault) {
  const int E = params.executors;
  const int C = static_cast<int>(params.owner.size());
  require(E >= 1, "run_schedule: need at least one executor");
  require(static_cast<int>(params.estimate.size()) == E,
          "run_schedule: estimate rows must match executor count");
  require(params.streams.empty() || static_cast<int>(params.streams.size()) == E,
          "run_schedule: streams must be empty or match executor count");
  for (const int k : params.streams) require(k >= 1, "run_schedule: streams entries must be >= 1");
  require(params.occupancy.empty() || static_cast<int>(params.occupancy.size()) == E,
          "run_schedule: occupancy rows must be empty or match executor count");
  for (const auto& row : params.occupancy)
    for (const double o : row)
      require(o > 0.0 && o <= 1.0, "run_schedule: occupancy values must be in (0, 1]");
  require(params.h2d.empty() || static_cast<int>(params.h2d.size()) == E,
          "run_schedule: h2d rows must be empty or match executor count");
  require(params.d2h.size() == params.h2d.size(),
          "run_schedule: h2d/d2h row counts must match");
  bool any_streamed = false;
  for (std::size_t e = 0; e < params.h2d.size(); ++e) {
    const auto& hrow = params.h2d[e];
    const auto& drow = params.d2h[e];
    require(hrow.size() == drow.size(), "run_schedule: h2d/d2h column counts must match");
    require(hrow.empty() || static_cast<int>(hrow.size()) == C,
            "run_schedule: h2d rows must be empty or match chunk count");
    for (std::size_t c = 0; c < hrow.size(); ++c)
      require(hrow[c] >= 0.0 && drow[c] >= 0.0,
              "run_schedule: transfer seconds must be non-negative");
    any_streamed |= !hrow.empty();
  }
  if (any_streamed) {
    require(static_cast<int>(params.chunk_bytes.size()) == C,
            "run_schedule: chunk_bytes must match chunk count when any executor streams");
    for (const double b : params.chunk_bytes)
      require(b >= 0.0, "run_schedule: chunk_bytes must be non-negative");
  }
  require(params.arena.empty() || static_cast<int>(params.arena.size()) == E,
          "run_schedule: arena must be empty or match executor count");
  const fault::FaultPlan* plan =
      (params.faults != nullptr && !params.faults->empty()) ? params.faults : nullptr;
  if (plan != nullptr) {
    require(params.retry.max_attempts >= 1, "run_schedule: retry.max_attempts must be >= 1");
    require(params.retry.backoff_seconds >= 0.0 && params.retry.backoff_multiplier >= 1.0 &&
                params.retry.watchdog_seconds >= 0.0,
            "run_schedule: retry policy times must be non-negative");
  }

  // Owned deques in chunk order: front = biggest remaining chunk (chunks
  // follow the size-sorted batch order), back = trailing smallest — the
  // steal end.
  std::vector<std::deque<int>> deque_of(static_cast<std::size_t>(E));
  for (int c = 0; c < C; ++c) {
    const int e = params.owner[static_cast<std::size_t>(c)];
    require(e >= 0 && e < E, "run_schedule: chunk owner out of range");
    deque_of[static_cast<std::size_t>(e)].push_back(c);
  }

  ScheduleResult res;
  res.busy.assign(static_cast<std::size_t>(E), 0.0);
  res.finish.assign(static_cast<std::size_t>(E), 0.0);
  res.chunks_run.assign(static_cast<std::size_t>(E), 0);
  res.chunks_stolen.assign(static_cast<std::size_t>(E), 0);
  res.executed_by.assign(static_cast<std::size_t>(C), -1);
  res.occupied.assign(static_cast<std::size_t>(E), 0.0);
  res.max_in_flight.assign(static_cast<std::size_t>(E), 0);
  res.retries.assign(static_cast<std::size_t>(E), 0);
  res.lost.assign(static_cast<std::size_t>(E), 0);
  res.attempts.assign(static_cast<std::size_t>(C), 0);
  res.poisoned.assign(static_cast<std::size_t>(C), 0);
  res.h2d_seconds.assign(static_cast<std::size_t>(E), 0.0);
  res.d2h_seconds.assign(static_cast<std::size_t>(E), 0.0);
  res.h2d_bytes.assign(static_cast<std::size_t>(E), 0.0);
  res.d2h_bytes.assign(static_cast<std::size_t>(E), 0.0);
  res.pipeline.assign(static_cast<std::size_t>(E), 0.0);
  res.staging.assign(static_cast<std::size_t>(C), {0.0, 0.0, 0.0, 0.0});

  std::vector<double> clock(static_cast<std::size_t>(E), 0.0);
  for (int e = 0; e < E && e < static_cast<int>(params.initial_clock.size()); ++e)
    clock[static_cast<std::size_t>(e)] = params.initial_clock[static_cast<std::size_t>(e)];
  res.finish = clock;

  // retired = nothing left to dispatch (reversible: re-dispatched orphans
  // wake a retired executor up; in-flight chunks of a retired executor still
  // commit); alive = not permanently lost.
  std::vector<char> retired(static_cast<std::size_t>(E), 0);
  std::vector<char> alive(static_cast<std::size_t>(E), 1);
  std::vector<int> completed(static_cast<std::size_t>(E), 0);
  // Per-(executor, chunk) attempt counters and retry-exhaustion flags.
  std::vector<std::vector<int>> tried(static_cast<std::size_t>(E),
                                      std::vector<int>(static_cast<std::size_t>(C), 0));
  std::vector<std::vector<char>> gave_up(static_cast<std::size_t>(E),
                                         std::vector<char>(static_cast<std::size_t>(C), 0));
  // Stream slots currently holding a dispatched-but-uncommitted chunk, and
  // the per-executor busy intervals for the occupied (union) ledger.
  std::vector<std::vector<InFlight>> fly(static_cast<std::size_t>(E));
  std::vector<std::vector<std::pair<double, double>>> intervals(static_cast<std::size_t>(E));
  // Pipeline intervals (compute + transfers) for the staging overlap span.
  std::vector<std::vector<std::pair<double, double>>> pipe(static_cast<std::size_t>(E));
  // Per-direction DMA lane clocks: copies in one direction serialize on
  // their lane, the two directions are independent engines.
  std::vector<double> h2d_free(static_cast<std::size_t>(E), 0.0);
  std::vector<double> d2h_free(static_cast<std::size_t>(E), 0.0);
  for (int e = 0; e < E; ++e)
    h2d_free[static_cast<std::size_t>(e)] = d2h_free[static_cast<std::size_t>(e)] =
        clock[static_cast<std::size_t>(e)];
  Rng rng(params.seed);
  int left = C;

  auto estimate_of = [&](int e, int c) {
    return params.estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto streamed_of = [&](int e) {
    return !params.h2d.empty() && !params.h2d[static_cast<std::size_t>(e)].empty();
  };
  auto h2d_of = [&](int e, int c) {
    return params.h2d[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto d2h_of = [&](int e, int c) {
    return params.d2h[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto arena_of = [&](int e) {
    return params.arena.empty() ? 0.0 : params.arena[static_cast<std::size_t>(e)];
  };
  auto occupancy_of = [&](int e, int c) {
    if (params.occupancy.empty()) return 1.0;
    return params.occupancy[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto streams_of = [&](int e) {
    return params.streams.empty() ? 1 : params.streams[static_cast<std::size_t>(e)];
  };
  // Pipeline slots the dispatcher may fill: the compute slots, plus one
  // prefetch slot on a streaming executor (double buffering — the extra
  // chunk stages while the others compute; compute concurrency itself stays
  // capped at streams_of below).
  auto capacity_of = [&](int e) {
    return streams_of(e) + ((params.prefetch && streamed_of(e)) ? 1 : 0);
  };
  auto remaining_load = [&](int e) {
    double load = 0.0;
    for (int c : deque_of[static_cast<std::size_t>(e)]) load += estimate_of(e, c);
    return load;
  };
  auto emit = [&](fault::FaultEvent ev) {
    if (on_fault) on_fault(ev);
    res.events.push_back(ev);
  };
  // Earliest time executor e can start another chunk: its dispatch clock if
  // a stream slot is free, else the first in-flight completion. With one
  // stream this is exactly the post-execution clock of the serial schedule.
  auto dispatch_ready = [&](int e) {
    if (static_cast<int>(fly[static_cast<std::size_t>(e)].size()) < capacity_of(e))
      return clock[static_cast<std::size_t>(e)];
    double first_free = kInf;
    for (const InFlight& f : fly[static_cast<std::size_t>(e)])
      first_free = std::min(first_free, f.end);
    return std::max(clock[static_cast<std::size_t>(e)], first_free);
  };
  // Lowest stream index not occupied by an in-flight chunk.
  auto free_stream = [&](int e) {
    const auto& fl = fly[static_cast<std::size_t>(e)];
    for (int s = 0;; ++s) {
      bool used = false;
      for (const InFlight& f : fl) used |= (f.stream == s);
      if (!used) return s;
    }
  };

  // Re-dispatches an orphaned chunk to the surviving executor that can
  // finish it earliest (greedy LPT over the live pool; ties go to the
  // lowest index). Executors that exhausted their retries on the chunk are
  // skipped; with nobody eligible the chunk is poisoned.
  auto redispatch = [&](int c) {
    int pick = -1;
    double pick_finish = kInf;
    for (int e = 0; e < E; ++e) {
      if (!alive[static_cast<std::size_t>(e)] || gave_up[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)])
        continue;
      const double f = dispatch_ready(e) + estimate_of(e, c);
      if (f < pick_finish) {
        pick = e;
        pick_finish = f;
      }
    }
    if (pick < 0) {
      res.poisoned[static_cast<std::size_t>(c)] = 1;
      ++res.chunks_poisoned;
      --left;
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::ChunkLost;
      ev.chunk = c;
      emit(ev);
      return;
    }
    deque_of[static_cast<std::size_t>(pick)].push_back(c);
    // New work exists: wake every surviving executor so idle peers get to
    // steal it (retirement is reversible until the pool drains).
    for (int e = 0; e < E; ++e)
      if (alive[static_cast<std::size_t>(e)]) retired[static_cast<std::size_t>(e)] = 0;
  };

  // Permanent executor loss at virtual time t_death: log it, abort every
  // chunk still in flight on the executor's streams (their numerics never
  // committed — the partial intervals are pure waste), then drain the
  // orphaned deque. Both sets re-dispatch through the LPT pass above.
  auto kill = [&](int e, double t_death) {
    alive[static_cast<std::size_t>(e)] = 0;
    retired[static_cast<std::size_t>(e)] = 1;
    res.lost[static_cast<std::size_t>(e)] = 1;
    ++res.executors_lost;
    clock[static_cast<std::size_t>(e)] = std::max(clock[static_cast<std::size_t>(e)], t_death);
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::ExecutorLoss;
    ev.exec = e;
    ev.start = t_death;
    emit(ev);
    std::vector<InFlight> doomed;
    doomed.swap(fly[static_cast<std::size_t>(e)]);
    std::deque<int> orphans;
    orphans.swap(deque_of[static_cast<std::size_t>(e)]);
    for (const InFlight& f : doomed) {
      fault::FaultEvent iv;
      iv.kind = fault::FaultKind::InFlightLost;
      iv.exec = e;
      iv.chunk = f.chunk;
      iv.attempt = f.attempt;
      iv.stream = f.stream;
      // A streamed chunk starts burning time at its H2D start — the staging
      // already done when the executor died is waste too.
      const double t_begin = f.streamed ? f.h2d_start : f.start;
      iv.start = t_begin;
      iv.waste_seconds = std::max(0.0, t_death - t_begin);
      res.busy[static_cast<std::size_t>(e)] += iv.waste_seconds;
      res.finish[static_cast<std::size_t>(e)] =
          std::max(res.finish[static_cast<std::size_t>(e)], t_death);
      if (iv.waste_seconds > 0.0) {
        intervals[static_cast<std::size_t>(e)].emplace_back(t_begin, t_death);
        if (f.streamed) pipe[static_cast<std::size_t>(e)].emplace_back(t_begin, t_death);
      }
      emit(iv);
    }
    for (const InFlight& f : doomed) redispatch(f.chunk);
    for (int c : orphans) redispatch(c);
  };

  while (left > 0) {
    // Earliest pending commit: the in-flight chunk with the smallest end
    // time (ties: lowest executor, then dispatch order).
    int ce = -1;
    std::size_t ci = 0;
    double ct = kInf;
    for (int e = 0; e < E; ++e) {
      const auto& fl = fly[static_cast<std::size_t>(e)];
      for (std::size_t i = 0; i < fl.size(); ++i) {
        if (fl[i].end < ct) {
          ct = fl[i].end;
          ce = e;
          ci = i;
        }
      }
    }
    // Earliest eligible dispatcher: a live, non-retired executor with a
    // free stream slot (ties: lowest index).
    int de = -1;
    double dt = kInf;
    for (int e = 0; e < E; ++e) {
      if (retired[static_cast<std::size_t>(e)] || !alive[static_cast<std::size_t>(e)]) continue;
      if (static_cast<int>(fly[static_cast<std::size_t>(e)].size()) >= capacity_of(e)) continue;
      if (clock[static_cast<std::size_t>(e)] < dt) {
        dt = clock[static_cast<std::size_t>(e)];
        de = e;
      }
    }
    // Commits fire before dispatches at equal virtual time: completed work
    // frees its slot (and may trigger a scheduled death) before new work is
    // placed.
    const bool committing = ce >= 0 && ct <= dt;
    const int actor = committing ? ce : de;
    if (actor < 0) {
      // Every executor is retired or lost with work outstanding — possible
      // only when the whole pool died. Poison whatever is left (the deques
      // of dead executors were already drained by kill/redispatch).
      require(plan != nullptr, "run_schedule: all executors retired with work left");
      break;
    }
    const double t_act = committing ? ct : clock[static_cast<std::size_t>(actor)];

    // Scheduled death fires the moment the executor would act again —
    // before the pending commit, so every chunk still in flight aborts.
    if (plan != nullptr) {
      const int after = plan->dies_after(actor);
      if (after >= 0 && completed[static_cast<std::size_t>(actor)] >= after) {
        kill(actor, t_act);
        continue;
      }
    }

    if (committing) {
      const InFlight f = fly[static_cast<std::size_t>(actor)][ci];
      fly[static_cast<std::size_t>(actor)].erase(
          fly[static_cast<std::size_t>(actor)].begin() + static_cast<std::ptrdiff_t>(ci));
      StreamSlot slot{f.stream, f.start, f.rate};
      if (f.streamed) {
        slot.h2d_start = f.h2d_start;
        slot.h2d_seconds = f.h2d_end - f.h2d_start;
        slot.d2h_start = f.d2h_start;
        slot.d2h_seconds = f.d2h_end - f.d2h_start;
        slot.bytes = f.bytes;
        slot.chunk = f.chunk;
      }
      execute(actor, f.chunk, slot);
      clock[static_cast<std::size_t>(actor)] =
          std::max(clock[static_cast<std::size_t>(actor)], f.end);
      res.busy[static_cast<std::size_t>(actor)] += f.dur;
      res.finish[static_cast<std::size_t>(actor)] =
          std::max(res.finish[static_cast<std::size_t>(actor)], f.end);
      res.chunks_run[static_cast<std::size_t>(actor)] += 1;
      if (f.stolen) res.chunks_stolen[static_cast<std::size_t>(actor)] += 1;
      res.executed_by[static_cast<std::size_t>(f.chunk)] = actor;
      completed[static_cast<std::size_t>(actor)] += 1;
      if (f.streamed) {
        // Busy/occupied track compute only; the staging ledger and the
        // pipeline span carry the transfers.
        intervals[static_cast<std::size_t>(actor)].emplace_back(f.start, f.start + f.dur);
        pipe[static_cast<std::size_t>(actor)].emplace_back(f.h2d_start, f.end);
        res.h2d_seconds[static_cast<std::size_t>(actor)] += f.h2d_end - f.h2d_start;
        res.d2h_seconds[static_cast<std::size_t>(actor)] += f.d2h_end - f.d2h_start;
        res.h2d_bytes[static_cast<std::size_t>(actor)] += f.bytes;
        res.d2h_bytes[static_cast<std::size_t>(actor)] += f.bytes;
        res.staging[static_cast<std::size_t>(f.chunk)] = {f.h2d_start, f.h2d_end, f.d2h_start,
                                                          f.d2h_end};
      } else {
        intervals[static_cast<std::size_t>(actor)].emplace_back(f.start, f.end);
        pipe[static_cast<std::size_t>(actor)].emplace_back(f.start, f.end);
      }
      --left;
      continue;
    }

    auto& own = deque_of[static_cast<std::size_t>(actor)];
    int chunk = -1;
    bool stolen = false;
    if (!own.empty()) {
      chunk = own.front();
      own.pop_front();
    } else if (params.work_stealing) {
      // Victim: non-empty peers whose back chunk this actor has not given
      // up on, ranked by policy; ties broken by the seeded stream so the
      // steal order is reproducible.
      std::vector<int> victims;
      for (int e = 0; e < E; ++e) {
        if (e == actor) continue;
        const auto& v = deque_of[static_cast<std::size_t>(e)];
        if (v.empty()) continue;
        if (gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(v.back())]) continue;
        victims.push_back(e);
      }
      if (!victims.empty()) {
        int victim;
        if (params.steal == StealPolicy::Random) {
          victim = victims[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(victims.size()) - 1))];
        } else {
          double best = -1.0;
          std::vector<int> tied;
          for (int e : victims) {
            const double load = remaining_load(e);
            if (load > best) {
              best = load;
              tied.assign(1, e);
            } else if (load == best) {
              tied.push_back(e);
            }
          }
          victim = tied.size() == 1
                       ? tied[0]
                       : tied[static_cast<std::size_t>(
                             rng.uniform_int(0, static_cast<std::int64_t>(tied.size()) - 1))];
        }
        auto& v = deque_of[static_cast<std::size_t>(victim)];
        chunk = v.back();
        v.pop_back();
        stolen = true;
      }
    }

    if (chunk < 0) {
      // Nothing owned, nothing stealable: this executor is idle for now
      // (re-dispatched orphans may wake it up again; chunks already in
      // flight on its streams still commit).
      retired[static_cast<std::size_t>(actor)] = 1;
      continue;
    }

    const int attempt = ++tried[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)];
    ++res.attempts[static_cast<std::size_t>(chunk)];
    const fault::FaultKind outcome =
        plan != nullptr ? plan->attempt_outcome(actor, chunk, attempt) : fault::FaultKind::None;

    if (outcome == fault::FaultKind::None) {
      const auto& fl = fly[static_cast<std::size_t>(actor)];
      const double occ = occupancy_of(actor, chunk);
      InFlight f;
      f.chunk = chunk;
      f.stream = free_stream(actor);
      f.attempt = attempt;
      f.stolen = stolen;
      f.occ = occ;
      if (!streamed_of(actor)) {
        // Resident dispatch (the classic schedule, kept bitwise intact).
        // Reserve a stream slot. The chunk contends with the occupancy the
        // chunks already in flight left behind: with free share s it runs
        // at rate min(1, s / occ) — an empty device always yields rate
        // exactly 1.0, which keeps single-stream durations bitwise equal to
        // the estimates. The rate is fixed at dispatch (later arrivals
        // yield instead of re-timing earlier chunks), keeping the event
        // loop causal and deterministic.
        double used = 0.0;
        for (const InFlight& g : fl) used += g.occ;
        const double share =
            std::max(1.0 - used, 1.0 / (static_cast<double>(fl.size()) + 1.0));
        f.rate = occ <= share ? 1.0 : share / occ;
        f.start = clock[static_cast<std::size_t>(actor)];
        f.dur = estimate_of(actor, chunk) / f.rate;
        f.end = f.start + f.dur;
      } else {
        // Out-of-core dispatch: the whole trajectory is fixed now, from the
        // per-direction lane clocks and the arena admission — deterministic
        // because every in-flight release time is already known.
        f.streamed = true;
        f.bytes = params.chunk_bytes[static_cast<std::size_t>(chunk)];
        const double h2d_sec = h2d_of(actor, chunk);
        const double d2h_sec = d2h_of(actor, chunk);
        // Arena admission: H2D may begin once the lane is free AND the
        // in-flight resident bytes leave room. In-flight chunks hold their
        // bytes until their D2H completes; walk the release times forward
        // until the chunk fits. Earlier chunks' H2D starts are all <= this
        // one's (the lane serializes), so the resident set at time t is
        // exactly the in-flight chunks with d2h_end > t.
        double t = std::max(clock[static_cast<std::size_t>(actor)],
                            h2d_free[static_cast<std::size_t>(actor)]);
        const double budget = arena_of(actor);
        if (budget > 0.0) {
          std::vector<std::pair<double, double>> releases;  // (d2h_end, bytes)
          double resident = 0.0;
          for (const InFlight& g : fl) {
            if (!g.streamed || g.d2h_end <= t) continue;
            resident += g.bytes;
            releases.emplace_back(g.d2h_end, g.bytes);
          }
          std::sort(releases.begin(), releases.end());
          std::size_t r = 0;
          while (resident + f.bytes > budget && r < releases.size()) {
            t = std::max(t, releases[r].first);
            resident -= releases[r].second;
            ++r;
          }
          require(resident + f.bytes <= budget,
                  "run_schedule: a single chunk's footprint exceeds the staging arena "
                  "(raise the arena budget or chunks_per_executor)");
        }
        f.h2d_start = t;
        f.h2d_end = t + h2d_sec;
        h2d_free[static_cast<std::size_t>(actor)] = f.h2d_end;
        // Compute waits for the copy and for one of the streams_of compute
        // slots — the prefetch slot stages, it never computes early.
        double avail = f.h2d_end;
        const int k = streams_of(actor);
        if (static_cast<int>(fl.size()) >= k) {
          std::vector<double> ends;
          ends.reserve(fl.size());
          for (const InFlight& g : fl) ends.push_back(g.start + g.dur);
          std::sort(ends.begin(), ends.end());
          avail = std::max(avail, ends[fl.size() - static_cast<std::size_t>(k)]);
        }
        f.start = avail;
        // Contention counts only the chunks still computing when this one
        // starts (the pipeline's staging phases don't occupy device slots).
        double used = 0.0;
        std::size_t computing = 0;
        for (const InFlight& g : fl) {
          if (g.start + g.dur <= avail) continue;
          used += g.occ;
          ++computing;
        }
        const double share =
            std::max(1.0 - used, 1.0 / (static_cast<double>(computing) + 1.0));
        f.rate = occ <= share ? 1.0 : share / occ;
        f.dur = estimate_of(actor, chunk) / f.rate;
        f.d2h_start = std::max(f.start + f.dur, d2h_free[static_cast<std::size_t>(actor)]);
        f.d2h_end = f.d2h_start + d2h_sec;
        d2h_free[static_cast<std::size_t>(actor)] = f.d2h_end;
        f.end = f.d2h_end;
      }
      fly[static_cast<std::size_t>(actor)].push_back(f);
      res.max_in_flight[static_cast<std::size_t>(actor)] =
          std::max(res.max_in_flight[static_cast<std::size_t>(actor)],
                   static_cast<int>(fly[static_cast<std::size_t>(actor)].size()));
      continue;
    }

    fault::FaultEvent ev;
    ev.exec = actor;
    ev.chunk = chunk;
    ev.attempt = attempt;
    ev.stream = free_stream(actor);
    ev.start = clock[static_cast<std::size_t>(actor)];
    if (outcome == fault::FaultKind::Hang) {
      // The attempt never completes; the watchdog declares the executor
      // lost after its virtual-time budget. The launch never commits, so
      // the chunk's matrices are untouched and it re-dispatches cleanly.
      ev.kind = fault::FaultKind::Hang;
      ev.waste_seconds = params.retry.watchdog_seconds;
      clock[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.finish[static_cast<std::size_t>(actor)] =
          std::max(res.finish[static_cast<std::size_t>(actor)],
                   clock[static_cast<std::size_t>(actor)]);
      if (ev.waste_seconds > 0.0)
        intervals[static_cast<std::size_t>(actor)].emplace_back(ev.start,
                                                                ev.start + ev.waste_seconds);
      ++res.hangs;
      emit(ev);
      kill(actor, clock[static_cast<std::size_t>(actor)]);
      redispatch(chunk);
      continue;
    }

    // Transient (simulated ECC / launch failure): the attempt's modelled
    // time is wasted, a deterministic exponential backoff precedes the
    // retry. The work never commits — numerics run only on success. The
    // wasted attempt serializes on the dispatch clock (the slot never
    // carried a live chunk); in-flight peers keep running. On a streaming
    // executor the staging is wasted too: the retry re-stages the chunk
    // from the pristine host input, so the faulted attempt charges its
    // transfers alongside the compute.
    ev.kind = fault::FaultKind::Transient;
    ev.waste_seconds = estimate_of(actor, chunk);
    if (streamed_of(actor)) {
      ev.waste_seconds += h2d_of(actor, chunk) + d2h_of(actor, chunk);
    }
    ev.backoff_seconds =
        params.retry.backoff_seconds *
        std::pow(params.retry.backoff_multiplier, static_cast<double>(attempt - 1));
    clock[static_cast<std::size_t>(actor)] += ev.waste_seconds + ev.backoff_seconds;
    res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
    res.finish[static_cast<std::size_t>(actor)] =
        std::max(res.finish[static_cast<std::size_t>(actor)],
                 clock[static_cast<std::size_t>(actor)]);
    if (ev.waste_seconds > 0.0)
      intervals[static_cast<std::size_t>(actor)].emplace_back(ev.start,
                                                              ev.start + ev.waste_seconds);
    res.retries[static_cast<std::size_t>(actor)] += 1;
    ++res.retries_total;
    res.backoff_seconds += ev.backoff_seconds;
    if (streamed_of(actor)) {
      // The failed attempt held both DMA lanes; they free with the clock.
      h2d_free[static_cast<std::size_t>(actor)] = std::max(
          h2d_free[static_cast<std::size_t>(actor)], clock[static_cast<std::size_t>(actor)]);
      d2h_free[static_cast<std::size_t>(actor)] = std::max(
          d2h_free[static_cast<std::size_t>(actor)], clock[static_cast<std::size_t>(actor)]);
      pipe[static_cast<std::size_t>(actor)].emplace_back(ev.start, ev.start + ev.waste_seconds);
    }
    emit(ev);
    if (attempt >= params.retry.max_attempts) {
      // This executor gives the chunk up; a surviving peer inherits it.
      gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)] = 1;
      redispatch(chunk);
    } else {
      // Retry next time this executor acts (its clock already carries the
      // wasted attempt plus the backoff). Peers may steal it first.
      own.push_front(chunk);
    }
  }

  for (int e = 0; e < E; ++e) {
    res.occupied[static_cast<std::size_t>(e)] = union_seconds(intervals[static_cast<std::size_t>(e)]);
    res.pipeline[static_cast<std::size_t>(e)] = union_seconds(pipe[static_cast<std::size_t>(e)]);
  }
  res.makespan = *std::max_element(res.finish.begin(), res.finish.end());
  return res;
}

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int)>& execute,
                            const std::function<void(const fault::FaultEvent&)>& on_fault) {
  return run_schedule(
      params,
      std::function<double(int, int, const StreamSlot&)>(
          [&execute](int e, int c, const StreamSlot&) { return execute(e, c); }),
      on_fault);
}

}  // namespace vbatch::hetero
