#include "vbatch/hetero/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::hetero {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One chunk occupying a stream slot between dispatch and commit. `dur` is
/// kept explicit (est / rate) rather than recomputed from end − start so a
/// rate-1.0 chunk charges exactly its estimate to the busy ledger — the
/// bitwise guarantee the single-stream compatibility tests pin.
struct InFlight {
  int chunk = -1;
  int stream = 0;
  int attempt = 0;
  bool stolen = false;
  double start = 0.0;
  double dur = 0.0;
  double end = 0.0;
  double occ = 1.0;
  double rate = 1.0;
};

/// Union length of [start, end) intervals — one executor's occupied time.
double union_seconds(std::vector<std::pair<double, double>>& iv) {
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  double total = 0.0;
  double lo = iv.front().first;
  double hi = iv.front().second;
  for (const auto& [s, e] : iv) {
    if (s > hi) {
      total += hi - lo;
      lo = s;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  return total + (hi - lo);
}

}  // namespace

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int, const StreamSlot&)>& execute,
                            const std::function<void(const fault::FaultEvent&)>& on_fault) {
  const int E = params.executors;
  const int C = static_cast<int>(params.owner.size());
  require(E >= 1, "run_schedule: need at least one executor");
  require(static_cast<int>(params.estimate.size()) == E,
          "run_schedule: estimate rows must match executor count");
  require(params.streams.empty() || static_cast<int>(params.streams.size()) == E,
          "run_schedule: streams must be empty or match executor count");
  for (const int k : params.streams) require(k >= 1, "run_schedule: streams entries must be >= 1");
  require(params.occupancy.empty() || static_cast<int>(params.occupancy.size()) == E,
          "run_schedule: occupancy rows must be empty or match executor count");
  for (const auto& row : params.occupancy)
    for (const double o : row)
      require(o > 0.0 && o <= 1.0, "run_schedule: occupancy values must be in (0, 1]");
  const fault::FaultPlan* plan =
      (params.faults != nullptr && !params.faults->empty()) ? params.faults : nullptr;
  if (plan != nullptr) {
    require(params.retry.max_attempts >= 1, "run_schedule: retry.max_attempts must be >= 1");
    require(params.retry.backoff_seconds >= 0.0 && params.retry.backoff_multiplier >= 1.0 &&
                params.retry.watchdog_seconds >= 0.0,
            "run_schedule: retry policy times must be non-negative");
  }

  // Owned deques in chunk order: front = biggest remaining chunk (chunks
  // follow the size-sorted batch order), back = trailing smallest — the
  // steal end.
  std::vector<std::deque<int>> deque_of(static_cast<std::size_t>(E));
  for (int c = 0; c < C; ++c) {
    const int e = params.owner[static_cast<std::size_t>(c)];
    require(e >= 0 && e < E, "run_schedule: chunk owner out of range");
    deque_of[static_cast<std::size_t>(e)].push_back(c);
  }

  ScheduleResult res;
  res.busy.assign(static_cast<std::size_t>(E), 0.0);
  res.finish.assign(static_cast<std::size_t>(E), 0.0);
  res.chunks_run.assign(static_cast<std::size_t>(E), 0);
  res.chunks_stolen.assign(static_cast<std::size_t>(E), 0);
  res.executed_by.assign(static_cast<std::size_t>(C), -1);
  res.occupied.assign(static_cast<std::size_t>(E), 0.0);
  res.max_in_flight.assign(static_cast<std::size_t>(E), 0);
  res.retries.assign(static_cast<std::size_t>(E), 0);
  res.lost.assign(static_cast<std::size_t>(E), 0);
  res.attempts.assign(static_cast<std::size_t>(C), 0);
  res.poisoned.assign(static_cast<std::size_t>(C), 0);

  std::vector<double> clock(static_cast<std::size_t>(E), 0.0);
  for (int e = 0; e < E && e < static_cast<int>(params.initial_clock.size()); ++e)
    clock[static_cast<std::size_t>(e)] = params.initial_clock[static_cast<std::size_t>(e)];
  res.finish = clock;

  // retired = nothing left to dispatch (reversible: re-dispatched orphans
  // wake a retired executor up; in-flight chunks of a retired executor still
  // commit); alive = not permanently lost.
  std::vector<char> retired(static_cast<std::size_t>(E), 0);
  std::vector<char> alive(static_cast<std::size_t>(E), 1);
  std::vector<int> completed(static_cast<std::size_t>(E), 0);
  // Per-(executor, chunk) attempt counters and retry-exhaustion flags.
  std::vector<std::vector<int>> tried(static_cast<std::size_t>(E),
                                      std::vector<int>(static_cast<std::size_t>(C), 0));
  std::vector<std::vector<char>> gave_up(static_cast<std::size_t>(E),
                                         std::vector<char>(static_cast<std::size_t>(C), 0));
  // Stream slots currently holding a dispatched-but-uncommitted chunk, and
  // the per-executor busy intervals for the occupied (union) ledger.
  std::vector<std::vector<InFlight>> fly(static_cast<std::size_t>(E));
  std::vector<std::vector<std::pair<double, double>>> intervals(static_cast<std::size_t>(E));
  Rng rng(params.seed);
  int left = C;

  auto estimate_of = [&](int e, int c) {
    return params.estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto occupancy_of = [&](int e, int c) {
    if (params.occupancy.empty()) return 1.0;
    return params.occupancy[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
  };
  auto streams_of = [&](int e) {
    return params.streams.empty() ? 1 : params.streams[static_cast<std::size_t>(e)];
  };
  auto remaining_load = [&](int e) {
    double load = 0.0;
    for (int c : deque_of[static_cast<std::size_t>(e)]) load += estimate_of(e, c);
    return load;
  };
  auto emit = [&](fault::FaultEvent ev) {
    if (on_fault) on_fault(ev);
    res.events.push_back(ev);
  };
  // Earliest time executor e can start another chunk: its dispatch clock if
  // a stream slot is free, else the first in-flight completion. With one
  // stream this is exactly the post-execution clock of the serial schedule.
  auto dispatch_ready = [&](int e) {
    if (static_cast<int>(fly[static_cast<std::size_t>(e)].size()) < streams_of(e))
      return clock[static_cast<std::size_t>(e)];
    double first_free = kInf;
    for (const InFlight& f : fly[static_cast<std::size_t>(e)])
      first_free = std::min(first_free, f.end);
    return std::max(clock[static_cast<std::size_t>(e)], first_free);
  };
  // Lowest stream index not occupied by an in-flight chunk.
  auto free_stream = [&](int e) {
    const auto& fl = fly[static_cast<std::size_t>(e)];
    for (int s = 0;; ++s) {
      bool used = false;
      for (const InFlight& f : fl) used |= (f.stream == s);
      if (!used) return s;
    }
  };

  // Re-dispatches an orphaned chunk to the surviving executor that can
  // finish it earliest (greedy LPT over the live pool; ties go to the
  // lowest index). Executors that exhausted their retries on the chunk are
  // skipped; with nobody eligible the chunk is poisoned.
  auto redispatch = [&](int c) {
    int pick = -1;
    double pick_finish = kInf;
    for (int e = 0; e < E; ++e) {
      if (!alive[static_cast<std::size_t>(e)] || gave_up[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)])
        continue;
      const double f = dispatch_ready(e) + estimate_of(e, c);
      if (f < pick_finish) {
        pick = e;
        pick_finish = f;
      }
    }
    if (pick < 0) {
      res.poisoned[static_cast<std::size_t>(c)] = 1;
      ++res.chunks_poisoned;
      --left;
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::ChunkLost;
      ev.chunk = c;
      emit(ev);
      return;
    }
    deque_of[static_cast<std::size_t>(pick)].push_back(c);
    // New work exists: wake every surviving executor so idle peers get to
    // steal it (retirement is reversible until the pool drains).
    for (int e = 0; e < E; ++e)
      if (alive[static_cast<std::size_t>(e)]) retired[static_cast<std::size_t>(e)] = 0;
  };

  // Permanent executor loss at virtual time t_death: log it, abort every
  // chunk still in flight on the executor's streams (their numerics never
  // committed — the partial intervals are pure waste), then drain the
  // orphaned deque. Both sets re-dispatch through the LPT pass above.
  auto kill = [&](int e, double t_death) {
    alive[static_cast<std::size_t>(e)] = 0;
    retired[static_cast<std::size_t>(e)] = 1;
    res.lost[static_cast<std::size_t>(e)] = 1;
    ++res.executors_lost;
    clock[static_cast<std::size_t>(e)] = std::max(clock[static_cast<std::size_t>(e)], t_death);
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::ExecutorLoss;
    ev.exec = e;
    ev.start = t_death;
    emit(ev);
    std::vector<InFlight> doomed;
    doomed.swap(fly[static_cast<std::size_t>(e)]);
    std::deque<int> orphans;
    orphans.swap(deque_of[static_cast<std::size_t>(e)]);
    for (const InFlight& f : doomed) {
      fault::FaultEvent iv;
      iv.kind = fault::FaultKind::InFlightLost;
      iv.exec = e;
      iv.chunk = f.chunk;
      iv.attempt = f.attempt;
      iv.stream = f.stream;
      iv.start = f.start;
      iv.waste_seconds = std::max(0.0, t_death - f.start);
      res.busy[static_cast<std::size_t>(e)] += iv.waste_seconds;
      res.finish[static_cast<std::size_t>(e)] =
          std::max(res.finish[static_cast<std::size_t>(e)], t_death);
      if (iv.waste_seconds > 0.0)
        intervals[static_cast<std::size_t>(e)].emplace_back(f.start, t_death);
      emit(iv);
    }
    for (const InFlight& f : doomed) redispatch(f.chunk);
    for (int c : orphans) redispatch(c);
  };

  while (left > 0) {
    // Earliest pending commit: the in-flight chunk with the smallest end
    // time (ties: lowest executor, then dispatch order).
    int ce = -1;
    std::size_t ci = 0;
    double ct = kInf;
    for (int e = 0; e < E; ++e) {
      const auto& fl = fly[static_cast<std::size_t>(e)];
      for (std::size_t i = 0; i < fl.size(); ++i) {
        if (fl[i].end < ct) {
          ct = fl[i].end;
          ce = e;
          ci = i;
        }
      }
    }
    // Earliest eligible dispatcher: a live, non-retired executor with a
    // free stream slot (ties: lowest index).
    int de = -1;
    double dt = kInf;
    for (int e = 0; e < E; ++e) {
      if (retired[static_cast<std::size_t>(e)] || !alive[static_cast<std::size_t>(e)]) continue;
      if (static_cast<int>(fly[static_cast<std::size_t>(e)].size()) >= streams_of(e)) continue;
      if (clock[static_cast<std::size_t>(e)] < dt) {
        dt = clock[static_cast<std::size_t>(e)];
        de = e;
      }
    }
    // Commits fire before dispatches at equal virtual time: completed work
    // frees its slot (and may trigger a scheduled death) before new work is
    // placed.
    const bool committing = ce >= 0 && ct <= dt;
    const int actor = committing ? ce : de;
    if (actor < 0) {
      // Every executor is retired or lost with work outstanding — possible
      // only when the whole pool died. Poison whatever is left (the deques
      // of dead executors were already drained by kill/redispatch).
      require(plan != nullptr, "run_schedule: all executors retired with work left");
      break;
    }
    const double t_act = committing ? ct : clock[static_cast<std::size_t>(actor)];

    // Scheduled death fires the moment the executor would act again —
    // before the pending commit, so every chunk still in flight aborts.
    if (plan != nullptr) {
      const int after = plan->dies_after(actor);
      if (after >= 0 && completed[static_cast<std::size_t>(actor)] >= after) {
        kill(actor, t_act);
        continue;
      }
    }

    if (committing) {
      const InFlight f = fly[static_cast<std::size_t>(actor)][ci];
      fly[static_cast<std::size_t>(actor)].erase(
          fly[static_cast<std::size_t>(actor)].begin() + static_cast<std::ptrdiff_t>(ci));
      execute(actor, f.chunk, StreamSlot{f.stream, f.start, f.rate});
      clock[static_cast<std::size_t>(actor)] =
          std::max(clock[static_cast<std::size_t>(actor)], f.end);
      res.busy[static_cast<std::size_t>(actor)] += f.dur;
      res.finish[static_cast<std::size_t>(actor)] =
          std::max(res.finish[static_cast<std::size_t>(actor)], f.end);
      res.chunks_run[static_cast<std::size_t>(actor)] += 1;
      if (f.stolen) res.chunks_stolen[static_cast<std::size_t>(actor)] += 1;
      res.executed_by[static_cast<std::size_t>(f.chunk)] = actor;
      completed[static_cast<std::size_t>(actor)] += 1;
      intervals[static_cast<std::size_t>(actor)].emplace_back(f.start, f.end);
      --left;
      continue;
    }

    auto& own = deque_of[static_cast<std::size_t>(actor)];
    int chunk = -1;
    bool stolen = false;
    if (!own.empty()) {
      chunk = own.front();
      own.pop_front();
    } else if (params.work_stealing) {
      // Victim: non-empty peers whose back chunk this actor has not given
      // up on, ranked by policy; ties broken by the seeded stream so the
      // steal order is reproducible.
      std::vector<int> victims;
      for (int e = 0; e < E; ++e) {
        if (e == actor) continue;
        const auto& v = deque_of[static_cast<std::size_t>(e)];
        if (v.empty()) continue;
        if (gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(v.back())]) continue;
        victims.push_back(e);
      }
      if (!victims.empty()) {
        int victim;
        if (params.steal == StealPolicy::Random) {
          victim = victims[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(victims.size()) - 1))];
        } else {
          double best = -1.0;
          std::vector<int> tied;
          for (int e : victims) {
            const double load = remaining_load(e);
            if (load > best) {
              best = load;
              tied.assign(1, e);
            } else if (load == best) {
              tied.push_back(e);
            }
          }
          victim = tied.size() == 1
                       ? tied[0]
                       : tied[static_cast<std::size_t>(
                             rng.uniform_int(0, static_cast<std::int64_t>(tied.size()) - 1))];
        }
        auto& v = deque_of[static_cast<std::size_t>(victim)];
        chunk = v.back();
        v.pop_back();
        stolen = true;
      }
    }

    if (chunk < 0) {
      // Nothing owned, nothing stealable: this executor is idle for now
      // (re-dispatched orphans may wake it up again; chunks already in
      // flight on its streams still commit).
      retired[static_cast<std::size_t>(actor)] = 1;
      continue;
    }

    const int attempt = ++tried[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)];
    ++res.attempts[static_cast<std::size_t>(chunk)];
    const fault::FaultKind outcome =
        plan != nullptr ? plan->attempt_outcome(actor, chunk, attempt) : fault::FaultKind::None;

    if (outcome == fault::FaultKind::None) {
      // Reserve a stream slot. The chunk contends with the occupancy the
      // chunks already in flight left behind: with free share s it runs at
      // rate min(1, s / occ) — an empty device always yields rate exactly
      // 1.0, which keeps single-stream durations bitwise equal to the
      // estimates. The rate is fixed at dispatch (later arrivals yield
      // instead of re-timing earlier chunks), keeping the event loop
      // causal and deterministic.
      const auto& fl = fly[static_cast<std::size_t>(actor)];
      double used = 0.0;
      for (const InFlight& f : fl) used += f.occ;
      const double share =
          std::max(1.0 - used, 1.0 / (static_cast<double>(fl.size()) + 1.0));
      const double occ = occupancy_of(actor, chunk);
      InFlight f;
      f.chunk = chunk;
      f.stream = free_stream(actor);
      f.attempt = attempt;
      f.stolen = stolen;
      f.occ = occ;
      f.rate = occ <= share ? 1.0 : share / occ;
      f.start = clock[static_cast<std::size_t>(actor)];
      f.dur = estimate_of(actor, chunk) / f.rate;
      f.end = f.start + f.dur;
      fly[static_cast<std::size_t>(actor)].push_back(f);
      res.max_in_flight[static_cast<std::size_t>(actor)] =
          std::max(res.max_in_flight[static_cast<std::size_t>(actor)],
                   static_cast<int>(fly[static_cast<std::size_t>(actor)].size()));
      continue;
    }

    fault::FaultEvent ev;
    ev.exec = actor;
    ev.chunk = chunk;
    ev.attempt = attempt;
    ev.stream = free_stream(actor);
    ev.start = clock[static_cast<std::size_t>(actor)];
    if (outcome == fault::FaultKind::Hang) {
      // The attempt never completes; the watchdog declares the executor
      // lost after its virtual-time budget. The launch never commits, so
      // the chunk's matrices are untouched and it re-dispatches cleanly.
      ev.kind = fault::FaultKind::Hang;
      ev.waste_seconds = params.retry.watchdog_seconds;
      clock[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
      res.finish[static_cast<std::size_t>(actor)] =
          std::max(res.finish[static_cast<std::size_t>(actor)],
                   clock[static_cast<std::size_t>(actor)]);
      if (ev.waste_seconds > 0.0)
        intervals[static_cast<std::size_t>(actor)].emplace_back(ev.start,
                                                                ev.start + ev.waste_seconds);
      ++res.hangs;
      emit(ev);
      kill(actor, clock[static_cast<std::size_t>(actor)]);
      redispatch(chunk);
      continue;
    }

    // Transient (simulated ECC / launch failure): the attempt's modelled
    // time is wasted, a deterministic exponential backoff precedes the
    // retry. The work never commits — numerics run only on success. The
    // wasted attempt serializes on the dispatch clock (the slot never
    // carried a live chunk); in-flight peers keep running.
    ev.kind = fault::FaultKind::Transient;
    ev.waste_seconds = estimate_of(actor, chunk);
    ev.backoff_seconds =
        params.retry.backoff_seconds *
        std::pow(params.retry.backoff_multiplier, static_cast<double>(attempt - 1));
    clock[static_cast<std::size_t>(actor)] += ev.waste_seconds + ev.backoff_seconds;
    res.busy[static_cast<std::size_t>(actor)] += ev.waste_seconds;
    res.finish[static_cast<std::size_t>(actor)] =
        std::max(res.finish[static_cast<std::size_t>(actor)],
                 clock[static_cast<std::size_t>(actor)]);
    if (ev.waste_seconds > 0.0)
      intervals[static_cast<std::size_t>(actor)].emplace_back(ev.start,
                                                              ev.start + ev.waste_seconds);
    res.retries[static_cast<std::size_t>(actor)] += 1;
    ++res.retries_total;
    res.backoff_seconds += ev.backoff_seconds;
    emit(ev);
    if (attempt >= params.retry.max_attempts) {
      // This executor gives the chunk up; a surviving peer inherits it.
      gave_up[static_cast<std::size_t>(actor)][static_cast<std::size_t>(chunk)] = 1;
      redispatch(chunk);
    } else {
      // Retry next time this executor acts (its clock already carries the
      // wasted attempt plus the backoff). Peers may steal it first.
      own.push_front(chunk);
    }
  }

  for (int e = 0; e < E; ++e)
    res.occupied[static_cast<std::size_t>(e)] = union_seconds(intervals[static_cast<std::size_t>(e)]);
  res.makespan = *std::max_element(res.finish.begin(), res.finish.end());
  return res;
}

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int)>& execute,
                            const std::function<void(const fault::FaultEvent&)>& on_fault) {
  return run_schedule(
      params,
      std::function<double(int, int, const StreamSlot&)>(
          [&execute](int e, int c, const StreamSlot&) { return execute(e, c); }),
      on_fault);
}

}  // namespace vbatch::hetero
