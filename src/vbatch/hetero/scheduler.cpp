#include "vbatch/hetero/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::hetero {

ScheduleResult run_schedule(const ScheduleParams& params,
                            const std::function<double(int, int)>& execute) {
  const int E = params.executors;
  const int C = static_cast<int>(params.owner.size());
  require(E >= 1, "run_schedule: need at least one executor");
  require(static_cast<int>(params.estimate.size()) == E,
          "run_schedule: estimate rows must match executor count");

  // Owned deques in chunk order: front = biggest remaining chunk (chunks
  // follow the size-sorted batch order), back = trailing smallest — the
  // steal end.
  std::vector<std::deque<int>> deque_of(static_cast<std::size_t>(E));
  for (int c = 0; c < C; ++c) {
    const int e = params.owner[static_cast<std::size_t>(c)];
    require(e >= 0 && e < E, "run_schedule: chunk owner out of range");
    deque_of[static_cast<std::size_t>(e)].push_back(c);
  }

  ScheduleResult res;
  res.busy.assign(static_cast<std::size_t>(E), 0.0);
  res.finish.assign(static_cast<std::size_t>(E), 0.0);
  res.chunks_run.assign(static_cast<std::size_t>(E), 0);
  res.chunks_stolen.assign(static_cast<std::size_t>(E), 0);
  res.executed_by.assign(static_cast<std::size_t>(C), -1);

  std::vector<double> clock(static_cast<std::size_t>(E), 0.0);
  for (int e = 0; e < E && e < static_cast<int>(params.initial_clock.size()); ++e)
    clock[static_cast<std::size_t>(e)] = params.initial_clock[static_cast<std::size_t>(e)];
  res.finish = clock;

  std::vector<char> retired(static_cast<std::size_t>(E), 0);
  Rng rng(params.seed);

  auto remaining_load = [&](int e) {
    double load = 0.0;
    for (int c : deque_of[static_cast<std::size_t>(e)])
      load += params.estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
    return load;
  };

  int left = C;
  while (left > 0) {
    // Next actor: earliest virtual clock among executors still in the game;
    // ties go to the lowest index (deterministic).
    int actor = -1;
    for (int e = 0; e < E; ++e) {
      if (retired[static_cast<std::size_t>(e)]) continue;
      if (actor < 0 || clock[static_cast<std::size_t>(e)] < clock[static_cast<std::size_t>(actor)])
        actor = e;
    }
    require(actor >= 0, "run_schedule: all executors retired with work left");
    auto& own = deque_of[static_cast<std::size_t>(actor)];

    int chunk = -1;
    bool stolen = false;
    if (!own.empty()) {
      chunk = own.front();
      own.pop_front();
    } else if (params.work_stealing) {
      // Victim: non-empty peers, ranked by policy; ties broken by the
      // seeded stream so the steal order is reproducible.
      std::vector<int> victims;
      for (int e = 0; e < E; ++e)
        if (e != actor && !deque_of[static_cast<std::size_t>(e)].empty()) victims.push_back(e);
      if (!victims.empty()) {
        int victim;
        if (params.steal == StealPolicy::Random) {
          victim = victims[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(victims.size()) - 1))];
        } else {
          double best = -1.0;
          std::vector<int> tied;
          for (int e : victims) {
            const double load = remaining_load(e);
            if (load > best) {
              best = load;
              tied.assign(1, e);
            } else if (load == best) {
              tied.push_back(e);
            }
          }
          victim = tied.size() == 1
                       ? tied[0]
                       : tied[static_cast<std::size_t>(
                             rng.uniform_int(0, static_cast<std::int64_t>(tied.size()) - 1))];
        }
        auto& v = deque_of[static_cast<std::size_t>(victim)];
        chunk = v.back();
        v.pop_back();
        stolen = true;
      }
    }

    if (chunk < 0) {
      // Nothing owned, nothing stealable: this executor is done.
      retired[static_cast<std::size_t>(actor)] = 1;
      continue;
    }

    const double seconds = execute(actor, chunk);
    clock[static_cast<std::size_t>(actor)] += seconds;
    res.busy[static_cast<std::size_t>(actor)] += seconds;
    res.finish[static_cast<std::size_t>(actor)] = clock[static_cast<std::size_t>(actor)];
    res.chunks_run[static_cast<std::size_t>(actor)] += 1;
    if (stolen) res.chunks_stolen[static_cast<std::size_t>(actor)] += 1;
    res.executed_by[static_cast<std::size_t>(chunk)] = actor;
    --left;
  }

  res.makespan = *std::max_element(res.finish.begin(), res.finish.end());
  return res;
}

}  // namespace vbatch::hetero
