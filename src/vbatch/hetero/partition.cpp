#include "vbatch/hetero/partition.hpp"

#include <algorithm>
#include <numeric>

#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::hetero {

std::vector<int> sort_indices_desc(std::span<const int> n) {
  std::vector<int> order(n.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return n[static_cast<std::size_t>(a)] > n[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<Chunk> build_chunks(std::span<const int> sorted_n, int window_nb,
                                int target_chunks) {
  require(!sorted_n.empty(), "build_chunks: empty batch");
  require(window_nb >= 1, "build_chunks: window_nb must be positive");
  require(target_chunks >= 1, "build_chunks: target_chunks must be positive");
  const int count = static_cast<int>(sorted_n.size());
  const int max_n = sorted_n[0];

  double total = 0.0;
  for (int ni : sorted_n) total += flops::potrf(ni);
  const double target = total / target_chunks;

  // Window id of a matrix: how many nb steps below the global maximum its
  // order sits. A boundary where the id changes is a "clean" cut — the next
  // chunk's local max drops by at least one whole blocking step.
  auto window_id = [&](int i) {
    return (max_n - sorted_n[static_cast<std::size_t>(i)]) / window_nb;
  };

  std::vector<Chunk> chunks;
  Chunk cur{0, 0, sorted_n[0], 0.0};
  for (int i = 0; i < count; ++i) {
    const bool window_edge = i > 0 && window_id(i) != window_id(i - 1);
    const bool over_target = cur.flops >= target;
    const bool force = cur.flops >= 1.5 * target;
    if (cur.count() > 0 && ((over_target && window_edge) || force)) {
      chunks.push_back(cur);
      cur = Chunk{i, i, sorted_n[static_cast<std::size_t>(i)], 0.0};
    }
    cur.end = i + 1;
    cur.flops += flops::potrf(sorted_n[static_cast<std::size_t>(i)]);
  }
  chunks.push_back(cur);
  return chunks;
}

std::vector<int> assign_chunks(const std::vector<std::vector<double>>& estimate,
                               Partition policy, int executors) {
  require(executors >= 1, "assign_chunks: need at least one executor");
  require(static_cast<int>(estimate.size()) == executors,
          "assign_chunks: estimate rows must match executor count");
  const int chunks = estimate.empty() ? 0 : static_cast<int>(estimate[0].size());
  std::vector<int> owner(static_cast<std::size_t>(chunks), 0);

  switch (policy) {
    case Partition::FirstOnly:
      break;
    case Partition::RoundRobin:
      for (int c = 0; c < chunks; ++c) owner[static_cast<std::size_t>(c)] = c % executors;
      break;
    case Partition::CostModel: {
      // Greedy LPT: visit chunks from most to least expensive (by the
      // fastest executor's estimate — a device-independent cost rank) and
      // give each to the executor whose finish time stays lowest.
      std::vector<int> by_cost(static_cast<std::size_t>(chunks));
      std::iota(by_cost.begin(), by_cost.end(), 0);
      auto best_time = [&](int c) {
        double best = estimate[0][static_cast<std::size_t>(c)];
        for (int e = 1; e < executors; ++e)
          best = std::min(best, estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)]);
        return best;
      };
      std::stable_sort(by_cost.begin(), by_cost.end(),
                       [&](int a, int b) { return best_time(a) > best_time(b); });
      std::vector<double> finish(static_cast<std::size_t>(executors), 0.0);
      for (int c : by_cost) {
        int pick = 0;
        double pick_finish = finish[0] + estimate[0][static_cast<std::size_t>(c)];
        for (int e = 1; e < executors; ++e) {
          const double f =
              finish[static_cast<std::size_t>(e)] + estimate[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
          if (f < pick_finish) {
            pick = e;
            pick_finish = f;
          }
        }
        owner[static_cast<std::size_t>(c)] = pick;
        finish[static_cast<std::size_t>(pick)] = pick_finish;
      }
      break;
    }
  }
  return owner;
}

std::vector<std::vector<double>> effective_load(
    const std::vector<std::vector<double>>& estimate,
    const std::vector<std::vector<double>>& occupancy, const std::vector<int>& streams) {
  require(estimate.size() == occupancy.size() && estimate.size() == streams.size(),
          "effective_load: estimate/occupancy/streams row counts must match");
  std::vector<std::vector<double>> eff(estimate.size());
  for (std::size_t e = 0; e < estimate.size(); ++e) {
    require(estimate[e].size() == occupancy[e].size(),
            "effective_load: estimate/occupancy column counts must match");
    require(streams[e] >= 1, "effective_load: streams entries must be >= 1");
    eff[e].resize(estimate[e].size());
    for (std::size_t c = 0; c < estimate[e].size(); ++c) {
      if (streams[e] == 1) {
        eff[e][c] = estimate[e][c];  // serial executor: the exact estimate, bitwise
      } else {
        const double share = std::max(occupancy[e][c], 1.0 / static_cast<double>(streams[e]));
        eff[e][c] = estimate[e][c] * share;
      }
    }
  }
  return eff;
}

std::vector<std::vector<double>> effective_load(
    const std::vector<std::vector<double>>& estimate,
    const std::vector<std::vector<double>>& occupancy, const std::vector<int>& streams,
    const std::vector<std::vector<double>>& h2d, const std::vector<std::vector<double>>& d2h,
    bool prefetch) {
  std::vector<std::vector<double>> eff = effective_load(estimate, occupancy, streams);
  require(h2d.empty() || h2d.size() == estimate.size(),
          "effective_load: h2d rows must be empty or match executor count");
  require(d2h.size() == h2d.size(), "effective_load: h2d/d2h row counts must match");
  for (std::size_t e = 0; e < h2d.size(); ++e) {
    if (h2d[e].empty()) continue;  // resident: the overlap-only load, bitwise
    require(h2d[e].size() == eff[e].size() && d2h[e].size() == eff[e].size(),
            "effective_load: transfer column counts must match estimate");
    for (std::size_t c = 0; c < eff[e].size(); ++c) {
      const double staging = h2d[e][c] + d2h[e][c];
      eff[e][c] = prefetch ? std::max(eff[e][c], staging) : eff[e][c] + staging;
    }
  }
  return eff;
}

}  // namespace vbatch::hetero
