#include "vbatch/hetero/device_pool.hpp"

#include <sstream>

#include "vbatch/util/error.hpp"

namespace vbatch::hetero {

Executor& DevicePool::add_gpu(const sim::DeviceSpec& spec, const energy::PowerModel& power,
                              std::string label) {
  if (label.empty()) label = spec.name;
  executors_.push_back(
      std::make_unique<GpuExecutor>(label + "#" + std::to_string(gpu_count()), spec, power));
  return *executors_.back();
}

Executor& DevicePool::add_cpu(const cpu::CpuSpec& spec, const energy::PowerModel& power) {
  require(!has_cpu(), "DevicePool: at most one CPU executor per pool");
  executors_.push_back(std::make_unique<CpuExecutor>("cpu", spec, power));
  return *executors_.back();
}

DevicePool DevicePool::parse(const std::string& csv) {
  DevicePool pool;
  require(!csv.empty(), "DevicePool: empty device list");
  std::stringstream ss(csv);
  std::string token;
  // getline drops a trailing empty segment ("k40c," yields one token), so a
  // trailing comma is checked up front.
  if (csv.back() == ',')
    throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                             "' (trailing comma)");
  while (std::getline(ss, token, ',')) {
    // Trim surrounding whitespace so "cpu, k40c" works; an all-blank
    // segment is still an error, not a silent skip.
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    token = first == std::string::npos ? std::string{} : token.substr(first, last - first + 1);
    if (token.empty())
      throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                               "' (doubled or stray comma)");
    if (token == "k40c") {
      pool.add_gpu(sim::DeviceSpec::k40c(), energy::PowerModel::k40c(), "k40c");
    } else if (token == "p100") {
      pool.add_gpu(sim::DeviceSpec::p100(), energy::PowerModel::p100(), "p100");
    } else if (token == "cpu") {
      pool.add_cpu();
    } else {
      throw_error(Status::InvalidArgument,
                  "DevicePool: unknown device '" + token + "' (expected k40c, p100, or cpu)");
    }
  }
  require(pool.size() > 0, "DevicePool: empty device list");
  return pool;
}

int DevicePool::gpu_count() const noexcept {
  int count = 0;
  for (const auto& e : executors_)
    if (e->is_gpu()) ++count;
  return count;
}

bool DevicePool::has_cpu() const noexcept { return gpu_count() != size(); }

std::string DevicePool::describe() const {
  std::string out;
  for (const auto& e : executors_) {
    if (!out.empty()) out += " + ";
    out += e->name();
  }
  return out;
}

}  // namespace vbatch::hetero
