#include "vbatch/hetero/device_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "vbatch/util/error.hpp"

namespace vbatch::hetero {

Executor& DevicePool::add_gpu(const sim::DeviceSpec& spec, const energy::PowerModel& power,
                              std::string label) {
  if (label.empty()) label = spec.name;
  executors_.push_back(
      std::make_unique<GpuExecutor>(label + "#" + std::to_string(gpu_count()), spec, power));
  return *executors_.back();
}

Executor& DevicePool::add_cpu(const cpu::CpuSpec& spec, const energy::PowerModel& power) {
  require(!has_cpu(), "DevicePool: at most one CPU executor per pool");
  executors_.push_back(std::make_unique<CpuExecutor>("cpu", spec, power));
  return *executors_.back();
}

namespace {

/// The optional ":..."-suffixes of a parse token: ":Nstreams" and/or
/// ":Xgb", in either order, each at most once.
struct TokenSuffix {
  int streams = 1;
  double arena_gb = 0.0;  ///< 0 = no arena suffix given
  bool has_arena = false;
};

/// Parses one ":Nstreams" segment (the leading ':' already stripped).
int parse_stream_segment(const std::string& digits, const std::string& full) {
  if (digits.empty())
    throw_error(Status::InvalidArgument, "DevicePool: stream count missing in '" + full +
                                             "' (expected ':Nstreams' with N >= 1)");
  for (const char ch : digits)
    if (ch < '0' || ch > '9')
      throw_error(Status::InvalidArgument, "DevicePool: stream count must be a positive integer in '" +
                                               full + "'");
  long value = 0;
  try {
    value = std::stol(digits);
  } catch (const std::out_of_range&) {
    throw_error(Status::InvalidArgument, "DevicePool: stream count out of range in '" + full + "'");
  }
  if (value < 1)
    throw_error(Status::InvalidArgument,
                "DevicePool: stream count must be >= 1 in '" + full + "'");
  return static_cast<int>(std::min<long>(value, 1 << 20));
}

/// Parses one ":Xgb" segment (the leading ':' already stripped): a positive
/// decimal arena budget in GiB.
double parse_arena_segment(const std::string& digits, const std::string& full) {
  if (digits.empty())
    throw_error(Status::InvalidArgument, "DevicePool: arena budget missing in '" + full +
                                             "' (expected ':Ngb' with N > 0)");
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (end != digits.c_str() + digits.size())
    throw_error(Status::InvalidArgument,
                "DevicePool: arena budget must be a number in '" + full + "'");
  if (!(value > 0.0) || !std::isfinite(value))
    throw_error(Status::InvalidArgument,
                "DevicePool: arena budget must be > 0 in '" + full + "'");
  return value;
}

/// Splits the optional suffixes off a parse token. Each ':'-separated
/// segment must end in "streams" (stream slots) or "gb" (staging-arena
/// budget); anything else, or a repeated suffix kind, names the offending
/// token — the same fail-loudly policy as the device-name matching below.
TokenSuffix split_suffixes(std::string& token) {
  TokenSuffix out;
  const std::string full = token;
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return out;
  std::string rest = token.substr(colon + 1);
  token = token.substr(0, colon);
  if (rest.empty())
    throw_error(Status::InvalidArgument, "DevicePool: malformed suffix in '" + full +
                                             "' (expected ':Nstreams' or ':Ngb')");
  bool has_streams = false;
  while (!rest.empty()) {
    const std::size_t next = rest.find(':');
    const std::string seg = next == std::string::npos ? rest : rest.substr(0, next);
    rest = next == std::string::npos ? std::string{} : rest.substr(next + 1);
    constexpr std::string_view kStreams = "streams";
    constexpr std::string_view kGb = "gb";
    if (seg.size() >= kStreams.size() &&
        seg.compare(seg.size() - kStreams.size(), kStreams.size(), kStreams) == 0) {
      if (has_streams)
        throw_error(Status::InvalidArgument,
                    "DevicePool: duplicate stream suffix in '" + full + "'");
      has_streams = true;
      out.streams = parse_stream_segment(seg.substr(0, seg.size() - kStreams.size()), full);
    } else if (seg.size() >= kGb.size() &&
               seg.compare(seg.size() - kGb.size(), kGb.size(), kGb) == 0) {
      if (out.has_arena)
        throw_error(Status::InvalidArgument,
                    "DevicePool: duplicate arena suffix in '" + full + "'");
      out.has_arena = true;
      out.arena_gb = parse_arena_segment(seg.substr(0, seg.size() - kGb.size()), full);
    } else {
      throw_error(Status::InvalidArgument, "DevicePool: malformed suffix ':" + seg + "' in '" +
                                               full + "' (expected ':Nstreams' or ':Ngb')");
    }
  }
  return out;
}

}  // namespace

DevicePool DevicePool::parse(const std::string& csv) {
  DevicePool pool;
  require(!csv.empty(), "DevicePool: empty device list");
  std::stringstream ss(csv);
  std::string token;
  // getline drops a trailing empty segment ("k40c," yields one token), so a
  // trailing comma is checked up front.
  if (csv.back() == ',')
    throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                             "' (trailing comma)");
  while (std::getline(ss, token, ',')) {
    // Trim surrounding whitespace so "cpu, k40c" works; an all-blank
    // segment is still an error, not a silent skip.
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    token = first == std::string::npos ? std::string{} : token.substr(first, last - first + 1);
    if (token.empty())
      throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                               "' (doubled or stray comma)");
    const TokenSuffix suffix = split_suffixes(token);
    Executor* added = nullptr;
    if (token == "k40c") {
      added = &pool.add_gpu(sim::DeviceSpec::k40c(), energy::PowerModel::k40c(), "k40c");
    } else if (token == "p100") {
      added = &pool.add_gpu(sim::DeviceSpec::p100(), energy::PowerModel::p100(), "p100");
    } else if (token == "cpu") {
      if (suffix.streams > 1)
        throw_error(Status::InvalidArgument,
                    "DevicePool: the cpu executor has a single queue (':" +
                        std::to_string(suffix.streams) + "streams' not supported)");
      if (suffix.has_arena)
        throw_error(Status::InvalidArgument,
                    "DevicePool: the cpu executor works in host memory (':...gb' arena suffix "
                    "not supported)");
      added = &pool.add_cpu();
    } else {
      throw_error(Status::InvalidArgument,
                  "DevicePool: unknown device '" + token + "' (expected k40c, p100, or cpu)");
    }
    added->set_streams(suffix.streams);  // clamps to the device's stream limit
    if (suffix.has_arena) added->set_arena_gb(suffix.arena_gb);
  }
  require(pool.size() > 0, "DevicePool: empty device list");
  return pool;
}

int DevicePool::gpu_count() const noexcept {
  int count = 0;
  for (const auto& e : executors_)
    if (e->is_gpu()) ++count;
  return count;
}

bool DevicePool::has_cpu() const noexcept { return gpu_count() != size(); }

double DevicePool::peak_gflops(Precision prec) const noexcept {
  double total = 0.0;
  for (const auto& e : executors_) total += e->peak_gflops(prec);
  return total;
}

std::string DevicePool::describe() const {
  std::string out;
  for (const auto& e : executors_) {
    if (!out.empty()) out += " + ";
    out += e->name();
    if (e->streams() > 1) out += ":" + std::to_string(e->streams()) + "streams";
    if (e->arena_explicit()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ":%ggb", e->arena_bytes() / (1024.0 * 1024.0 * 1024.0));
      out += buf;
    }
  }
  return out;
}

}  // namespace vbatch::hetero
