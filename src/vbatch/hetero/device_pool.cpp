#include "vbatch/hetero/device_pool.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "vbatch/util/error.hpp"

namespace vbatch::hetero {

Executor& DevicePool::add_gpu(const sim::DeviceSpec& spec, const energy::PowerModel& power,
                              std::string label) {
  if (label.empty()) label = spec.name;
  executors_.push_back(
      std::make_unique<GpuExecutor>(label + "#" + std::to_string(gpu_count()), spec, power));
  return *executors_.back();
}

Executor& DevicePool::add_cpu(const cpu::CpuSpec& spec, const energy::PowerModel& power) {
  require(!has_cpu(), "DevicePool: at most one CPU executor per pool");
  executors_.push_back(std::make_unique<CpuExecutor>("cpu", spec, power));
  return *executors_.back();
}

namespace {

/// Splits an optional ":Nstreams" suffix off a parse token, returning N
/// (1 when absent). Malformed suffixes name the offending token — the same
/// fail-loudly policy as the device-name matching below.
int split_stream_suffix(std::string& token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return 1;
  const std::string full = token;
  const std::string suffix = token.substr(colon + 1);
  token = token.substr(0, colon);
  constexpr std::string_view kTail = "streams";
  if (suffix.size() < kTail.size() ||
      suffix.compare(suffix.size() - kTail.size(), kTail.size(), kTail) != 0)
    throw_error(Status::InvalidArgument,
                "DevicePool: malformed stream suffix in '" + full + "' (expected ':Nstreams')");
  const std::string digits = suffix.substr(0, suffix.size() - kTail.size());
  if (digits.empty())
    throw_error(Status::InvalidArgument, "DevicePool: stream count missing in '" + full +
                                             "' (expected ':Nstreams' with N >= 1)");
  for (const char ch : digits)
    if (ch < '0' || ch > '9')
      throw_error(Status::InvalidArgument, "DevicePool: stream count must be a positive integer in '" +
                                               full + "'");
  long value = 0;
  try {
    value = std::stol(digits);
  } catch (const std::out_of_range&) {
    throw_error(Status::InvalidArgument, "DevicePool: stream count out of range in '" + full + "'");
  }
  if (value < 1)
    throw_error(Status::InvalidArgument,
                "DevicePool: stream count must be >= 1 in '" + full + "'");
  return static_cast<int>(std::min<long>(value, 1 << 20));
}

}  // namespace

DevicePool DevicePool::parse(const std::string& csv) {
  DevicePool pool;
  require(!csv.empty(), "DevicePool: empty device list");
  std::stringstream ss(csv);
  std::string token;
  // getline drops a trailing empty segment ("k40c," yields one token), so a
  // trailing comma is checked up front.
  if (csv.back() == ',')
    throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                             "' (trailing comma)");
  while (std::getline(ss, token, ',')) {
    // Trim surrounding whitespace so "cpu, k40c" works; an all-blank
    // segment is still an error, not a silent skip.
    const std::size_t first = token.find_first_not_of(" \t");
    const std::size_t last = token.find_last_not_of(" \t");
    token = first == std::string::npos ? std::string{} : token.substr(first, last - first + 1);
    if (token.empty())
      throw_error(Status::InvalidArgument, "DevicePool: empty device segment in '" + csv +
                                               "' (doubled or stray comma)");
    const int streams = split_stream_suffix(token);
    Executor* added = nullptr;
    if (token == "k40c") {
      added = &pool.add_gpu(sim::DeviceSpec::k40c(), energy::PowerModel::k40c(), "k40c");
    } else if (token == "p100") {
      added = &pool.add_gpu(sim::DeviceSpec::p100(), energy::PowerModel::p100(), "p100");
    } else if (token == "cpu") {
      if (streams > 1)
        throw_error(Status::InvalidArgument,
                    "DevicePool: the cpu executor has a single queue (':" +
                        std::to_string(streams) + "streams' not supported)");
      added = &pool.add_cpu();
    } else {
      throw_error(Status::InvalidArgument,
                  "DevicePool: unknown device '" + token + "' (expected k40c, p100, or cpu)");
    }
    added->set_streams(streams);  // clamps to the device's stream limit
  }
  require(pool.size() > 0, "DevicePool: empty device list");
  return pool;
}

int DevicePool::gpu_count() const noexcept {
  int count = 0;
  for (const auto& e : executors_)
    if (e->is_gpu()) ++count;
  return count;
}

bool DevicePool::has_cpu() const noexcept { return gpu_count() != size(); }

std::string DevicePool::describe() const {
  std::string out;
  for (const auto& e : executors_) {
    if (!out.empty()) out += " + ";
    out += e->name();
    if (e->streams() > 1) out += ":" + std::to_string(e->streams()) + "streams";
  }
  return out;
}

}  // namespace vbatch::hetero
