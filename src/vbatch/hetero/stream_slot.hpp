// StreamSlot: where the virtual-time scheduler placed one chunk inside its
// executor's concurrent stream slots.
//
// Executors with set_streams(k > 1) keep up to k chunks in flight; the
// scheduler hands every execution its slot so the executor can align the
// chunk's timeline records with the schedule (a GPU executor retimes the
// records it just appended into [start, start + serial/rate) on `stream`).
// With a single stream the slot is always {0, clock, 1.0} and the placement
// degenerates to the classic back-to-back layout.
#pragma once

namespace vbatch::hetero {

struct StreamSlot {
  int stream = 0;     ///< stream index inside the executor, 0-based
  double start = 0.0; ///< executor virtual clock where the compute begins
  /// Modelled progress rate under stream contention: the chunk occupies its
  /// stream for serial_seconds / rate. 1.0 = no contention (the chunk's
  /// occupancy fits in the device's free slot share at dispatch).
  double rate = 1.0;

  // --- Out-of-core staging placement (all zero for a resident chunk). A
  // streamed chunk's inputs occupy the executor's arena over
  // [h2d_start, d2h_start + d2h_seconds); the GPU executor records the two
  // copies on its timeline's transfer lane at these positions.
  double h2d_start = 0.0;
  double h2d_seconds = 0.0;
  double d2h_start = 0.0;
  double d2h_seconds = 0.0;
  double bytes = 0.0;  ///< chunk payload footprint staged each way
  int chunk = -1;      ///< chunk index (transfer-record label)
};

}  // namespace vbatch::hetero
