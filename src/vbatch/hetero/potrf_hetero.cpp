#include "vbatch/hetero/potrf_hetero.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "vbatch/core/arg_check.hpp"
#include "vbatch/core/crossover.hpp"
#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch::hetero {

namespace {

/// Gathered chunk-local metadata. The ChunkWork closures hold spans into
/// these vectors, so ChunkData must stay alive (and unmoved) for the whole
/// call — the driver stores them in a deque-like pre-sized vector.
template <typename T>
struct ChunkData {
  std::vector<T*> ptrs;
  std::vector<int> n;
  std::vector<int> lda;
  std::vector<int> info;  ///< chunk-local statuses, scattered back at the end
};

/// Same dimension rules as the single-device entry (potrf_vbatched.cpp).
template <typename T>
std::array<ArgRule, 2> potrf_rules(const VbatchedProblem<T>& prob) {
  ArgRule rn;
  rn.kind = ArgRule::Kind::NonNegative;
  rn.a = prob.n;
  rn.argument_index = 2;
  rn.name = "n";
  ArgRule rl;
  rl.kind = ArgRule::Kind::AtLeastOther;
  rl.a = prob.lda;
  rl.b = prob.n;
  rl.argument_index = 4;
  rl.name = "lda";
  return {rn, rl};
}

/// The reference device for option resolution: the first GPU executor's
/// spec, or the CPU executor's hidden numerics device for a CPU-only pool.
const sim::DeviceSpec& reference_spec(DevicePool& pool) {
  for (int e = 0; e < pool.size(); ++e)
    if (pool.executor(e).is_gpu())
      return static_cast<GpuExecutor&>(pool.executor(e)).spec();
  return pool.executor(0).queue().spec();
}

/// True when the pinned fused launch fits every executor the chunks might
/// land on (work stealing may route any chunk anywhere).
bool fused_fits_everywhere(DevicePool& pool, int nb, int max_n, std::size_t elem_size) {
  for (int e = 0; e < pool.size(); ++e) {
    const sim::DeviceSpec& spec = pool.executor(e).queue().spec();
    if (max_n > kernels::fused_max_size(spec, nb, elem_size)) return false;
  }
  return true;
}

template <typename T>
HeteroResult hetero_impl(DevicePool& pool, Uplo uplo, Batch<T>& batch, int caller_max_n,
                         bool reduce_max, const HeteroOptions& opts) {
  require(pool.size() >= 1, "potrf_vbatched_hetero: empty device pool");
  auto prob = batch.problem();
  require(prob.count() > 0, "potrf_vbatched_hetero: empty batch");
  require(static_cast<int>(prob.lda.size()) == prob.count() &&
              static_cast<int>(prob.info.size()) == prob.count(),
          "potrf_vbatched_hetero: metadata array size mismatch");

  const int E = pool.size();
  const sim::ExecMode mode = batch.queue().mode();
  for (int e = 0; e < E; ++e) pool.executor(e).begin_call(mode);

  // Metadata sweep (validation + info reset, plus the max reduction for the
  // LAPACK-like interface) runs on executor 0; the sweep seconds become its
  // initial virtual clock so the schedule charges the cost faithfully.
  Queue& q0 = pool.executor(0).queue();
  const double sweep_t0 = q0.time();
  const auto rules = potrf_rules(prob);
  const ArgSweep sweep =
      check_args_reduce(q0.device(), rules, reduce_max ? prob.n : std::span<const int>{},
                        prob.info);
  require_args_ok(sweep.report, "potrf_vbatched_hetero");
  int max_n = caller_max_n;
  if (reduce_max) {
    max_n = sweep.max_value;
    require(max_n >= 1, "potrf_vbatched_hetero: all matrices are empty");
  } else {
    require(max_n >= 1, "potrf_vbatched_hetero: max_n must be positive");
  }
  const double sweep_seconds = q0.time() - sweep_t0;

  // --- Pin the options once, from the GLOBAL maximum against the reference
  // device. Every chunk driver receives the same path and blocking sizes;
  // only its local max_n differs — which changes launch geometry (the
  // speedup) but never per-matrix math (the bit-identity guarantee).
  const Precision prec = precision_v<T>;
  const sim::DeviceSpec& ref = reference_spec(pool);
  bool fused = false;
  switch (opts.potrf.path) {
    case PotrfPath::Fused: fused = true; break;
    case PotrfPath::Separated: fused = false; break;
    case PotrfPath::Auto: fused = use_fused(ref, prec, max_n, opts.potrf.crossover); break;
  }
  int fused_nb = 0;
  if (fused) {
    fused_nb = opts.potrf.fused_nb > 0 ? opts.potrf.fused_nb
                                       : kernels::choose_fused_nb(ref, max_n, sizeof(T));
    if (opts.potrf.path == PotrfPath::Auto &&
        !fused_fits_everywhere(pool, fused_nb, max_n, sizeof(T)))
      fused = false;  // fall back rather than fail on a smaller-memory peer
  }
  const int separated_nb =
      opts.potrf.separated_nb > 0 ? opts.potrf.separated_nb : detail::default_separated_nb(sizeof(T));
  const int window_nb = fused ? fused_nb : separated_nb;
  const EtmMode etm = opts.potrf.etm;
  const bool sorting = opts.potrf.implicit_sorting;
  const int sort_window = opts.potrf.sort_window;
  const bool streamed_syrk = opts.potrf.streamed_syrk;
  const int num_streams = opts.potrf.num_streams;

  // --- Chunk the size-sorted order and build the per-chunk work units.
  const std::vector<int> order = sort_indices_desc(prob.n);
  std::vector<int> sorted_n(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    sorted_n[i] = prob.n[static_cast<std::size_t>(order[i])];
  require(opts.chunks_per_executor >= 1,
          "potrf_vbatched_hetero: chunks_per_executor must be positive");
  const std::vector<Chunk> chunks =
      build_chunks(sorted_n, window_nb, opts.chunks_per_executor * E);
  const int C = static_cast<int>(chunks.size());

  std::vector<ChunkData<T>> data(static_cast<std::size_t>(C));
  std::vector<ChunkWork> work(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    const Chunk& ck = chunks[static_cast<std::size_t>(c)];
    ChunkData<T>& d = data[static_cast<std::size_t>(c)];
    d.ptrs.reserve(static_cast<std::size_t>(ck.count()));
    d.n.reserve(static_cast<std::size_t>(ck.count()));
    d.lda.reserve(static_cast<std::size_t>(ck.count()));
    for (int i = ck.begin; i < ck.end; ++i) {
      const std::size_t src = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
      d.ptrs.push_back(prob.ptrs[src]);
      d.n.push_back(prob.n[src]);
      d.lda.push_back(prob.lda[src]);
    }
    d.info.assign(static_cast<std::size_t>(ck.count()), 0);

    ChunkWork& w = work[static_cast<std::size_t>(c)];
    w.n = d.n;
    w.flops = ck.flops;
    w.max_n = ck.max_n;
    w.prec = prec;
    const int chunk_max = ck.max_n;
    w.run = [&d, uplo, chunk_max, fused, fused_nb, separated_nb, etm, sorting, sort_window,
             streamed_syrk, num_streams](Queue& q, std::span<int> info) -> double {
      if (chunk_max < 1) return 0.0;  // an all-empty tail chunk has no work
      VbatchedProblem<T> cp{d.ptrs.data(), d.n, d.lda, info};
      if (fused)
        return detail::potrf_fused_run<T>(q, uplo, cp, chunk_max, etm, sorting, fused_nb,
                                          sort_window);
      return detail::potrf_separated_run<T>(q, uplo, cp, chunk_max, separated_nb,
                                            streamed_syrk, num_streams);
    };
  }

  // --- Estimate every (executor, chunk) pair: dry runs on the timing twins
  // (GPU) or the analytic CPU model. Exact by construction. The dry run
  // also yields the chunk's device occupancy — the overlap headroom the
  // multi-stream schedule exploits.
  std::vector<std::vector<double>> est(static_cast<std::size_t>(E));
  std::vector<std::vector<double>> occ(static_cast<std::size_t>(E));
  std::vector<int> streams(static_cast<std::size_t>(E), 1);
  for (int e = 0; e < E; ++e) {
    est[static_cast<std::size_t>(e)].resize(static_cast<std::size_t>(C));
    occ[static_cast<std::size_t>(e)].resize(static_cast<std::size_t>(C));
    streams[static_cast<std::size_t>(e)] = pool.executor(e).streams();
    for (int c = 0; c < C; ++c) {
      const ChunkEstimate ce = pool.executor(e).estimate(work[static_cast<std::size_t>(c)]);
      est[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] = ce.seconds;
      occ[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] = ce.occupancy;
    }
  }

  // --- Out-of-core staging decision (docs/heterogeneous.md, "Out-of-core
  // streaming"). A chunk's staged footprint is the sum of its matrices'
  // stored columns — lda × n elements each way. A GPU executor streams when
  // forced (Staging::Streamed) or when the whole batch cannot be resident
  // inside its arena budget (Staging::Auto); the budget itself is the
  // parse/CLI-pinned value, else the VBATCH_ARENA_GB environment default,
  // else the device's global memory.
  std::vector<double> chunk_bytes(static_cast<std::size_t>(C), 0.0);
  double footprint = 0.0;
  for (int c = 0; c < C; ++c) {
    const ChunkData<T>& d = data[static_cast<std::size_t>(c)];
    double bytes = 0.0;
    for (std::size_t i = 0; i < d.n.size(); ++i)
      bytes += static_cast<double>(d.lda[i]) * static_cast<double>(d.n[i]) *
               static_cast<double>(sizeof(T));
    chunk_bytes[static_cast<std::size_t>(c)] = bytes;
    footprint += bytes;
  }
  double env_arena_bytes = 0.0;
  if (const char* env = std::getenv("VBATCH_ARENA_GB"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double gb = std::strtod(env, &end);
    require(end != env && *end == '\0' && gb > 0.0,
            "potrf_vbatched_hetero: VBATCH_ARENA_GB must be a positive number");
    env_arena_bytes = gb * 1024.0 * 1024.0 * 1024.0;
  }
  std::vector<double> arena(static_cast<std::size_t>(E), 0.0);
  std::vector<char> streamed(static_cast<std::size_t>(E), 0);
  std::vector<std::vector<double>> h2d(static_cast<std::size_t>(E));
  std::vector<std::vector<double>> d2h(static_cast<std::size_t>(E));
  for (int e = 0; e < E; ++e) {
    Executor& ex = pool.executor(e);
    if (!ex.is_gpu()) continue;  // the CPU works in host memory: no staging
    double budget = ex.arena_bytes();
    if (!ex.arena_explicit() && env_arena_bytes > 0.0) budget = env_arena_bytes;
    arena[static_cast<std::size_t>(e)] = budget;
    const bool wants = opts.staging == HeteroOptions::Staging::Streamed ||
                       (opts.staging == HeteroOptions::Staging::Auto && footprint > budget);
    if (opts.staging == HeteroOptions::Staging::Resident)
      require(footprint <= budget,
              "potrf_vbatched_hetero: batch footprint exceeds the staging arena with "
              "Staging::Resident (stream the pool or raise the arena budget)");
    if (!wants) continue;
    streamed[static_cast<std::size_t>(e)] = 1;
    const sim::DeviceSpec& spec = static_cast<GpuExecutor&>(ex).spec();
    h2d[static_cast<std::size_t>(e)].resize(static_cast<std::size_t>(C));
    d2h[static_cast<std::size_t>(e)].resize(static_cast<std::size_t>(C));
    for (int c = 0; c < C; ++c) {
      const double bytes = chunk_bytes[static_cast<std::size_t>(c)];
      h2d[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] = spec.h2d_seconds(bytes);
      d2h[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] = spec.d2h_seconds(bytes);
    }
  }
  const bool any_streamed =
      std::any_of(streamed.begin(), streamed.end(), [](char s) { return s != 0; });

  // --- Static partition (overlap-aware: a multi-stream executor absorbs
  // low-occupancy chunks at their slot share, not their serial seconds;
  // transfer-aware: a streaming executor also pays its non-overlappable
  // staging share), then the virtual-time work-stealing schedule.
  ScheduleParams sp;
  sp.owner = assign_chunks(effective_load(est, occ, streams, h2d, d2h, opts.prefetch),
                           opts.partition, E);
  sp.estimate = est;
  sp.executors = E;
  sp.work_stealing = opts.work_stealing;
  sp.steal = opts.steal;
  sp.seed = opts.steal_seed;
  sp.streams = streams;
  sp.occupancy = occ;
  if (any_streamed) {
    sp.h2d = std::move(h2d);
    sp.d2h = std::move(d2h);
    sp.chunk_bytes = chunk_bytes;
    sp.arena = arena;
    sp.prefetch = opts.prefetch;
  }
  sp.initial_clock.assign(static_cast<std::size_t>(E), 0.0);
  sp.initial_clock[0] = sweep_seconds;

  // Fault injection: an explicit pool spec wins; the environment knob
  // applies only when no spec was set, so every layer (library, CLI, ops)
  // can exercise the recovery path without touching the one above it.
  fault::FaultSpec fault_spec = pool.faults();
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("VBATCH_INJECT_FAULTS"); env != nullptr && *env != '\0')
      fault_spec = fault::parse_fault_spec(env);
  }
  const fault::FaultPlan plan(std::move(fault_spec));
  sp.faults = plan.empty() ? nullptr : &plan;
  sp.retry = opts.retry;

  const ScheduleResult sched = run_schedule(
      sp,
      std::function<double(int, int, const StreamSlot&)>([&](int e, int c,
                                                             const StreamSlot& slot) {
        return pool.executor(e).execute(work[static_cast<std::size_t>(c)],
                                        data[static_cast<std::size_t>(c)].info, slot);
      }),
      [&](const fault::FaultEvent& ev) {
        // Make the wasted virtual time visible on the acting executor's
        // timing authority (GPU timeline records → profiler fault column
        // and energy integration; the CPU model is charged via busy). The
        // schedule position pins the record so overlapped streams report
        // their waste where it actually happened.
        if (ev.exec < 0) return;
        Executor& ex = pool.executor(ev.exec);
        if (ev.waste_seconds > 0.0)
          ex.charge_fault(std::string("fault.") + fault::to_string(ev.kind), ev.waste_seconds,
                          ev.start);
        if (ev.backoff_seconds > 0.0)
          ex.charge_fault("fault.backoff", ev.backoff_seconds, ev.start + ev.waste_seconds);
      });

  // --- Merge: scatter chunk-local statuses back to submission order. A
  // poisoned chunk (no surviving executor could complete it) marks every
  // one of its problems with the distinguished kInfoChunkLost code; its
  // matrices were never written (failed launches do not commit).
  for (int c = 0; c < C; ++c) {
    const Chunk& ck = chunks[static_cast<std::size_t>(c)];
    const ChunkData<T>& d = data[static_cast<std::size_t>(c)];
    const bool lost = sched.poisoned[static_cast<std::size_t>(c)] != 0;
    for (int i = ck.begin; i < ck.end; ++i)
      prob.info[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
          lost ? kInfoChunkLost : d.info[static_cast<std::size_t>(i - ck.begin)];
  }

  // --- Assemble the report: per-executor busy/flops/energy, pool totals.
  HeteroResult result;
  result.seconds = sched.makespan;
  result.flops = flops::potrf_batch(prob.n);
  result.path_taken = fused ? PotrfPath::Fused : PotrfPath::Separated;
  result.chunks = C;
  result.retries = sched.retries_total;
  result.hangs = sched.hangs;
  result.executors_lost = sched.executors_lost;
  result.chunks_poisoned = sched.chunks_poisoned;
  result.backoff_seconds = sched.backoff_seconds;
  result.fault_events = sched.events;
  energy::EnergyMeter meter;
  for (int e = 0; e < E; ++e) {
    Executor& ex = pool.executor(e);
    ExecutorReport rep;
    rep.name = ex.name();
    rep.busy_seconds = sched.busy[static_cast<std::size_t>(e)];
    rep.finish_seconds = sched.finish[static_cast<std::size_t>(e)];
    rep.chunks = sched.chunks_run[static_cast<std::size_t>(e)];
    rep.stolen = sched.chunks_stolen[static_cast<std::size_t>(e)];
    rep.streams = ex.streams();
    rep.overlap = sched.occupied[static_cast<std::size_t>(e)] > 0.0
                      ? rep.busy_seconds / sched.occupied[static_cast<std::size_t>(e)]
                      : 1.0;
    rep.retries = sched.retries[static_cast<std::size_t>(e)];
    rep.lost = sched.lost[static_cast<std::size_t>(e)] != 0;
    if (!rep.lost) result.surviving_peak_gflops += ex.peak_gflops(prec);
    rep.streamed = streamed[static_cast<std::size_t>(e)] != 0;
    rep.h2d_seconds = sched.h2d_seconds[static_cast<std::size_t>(e)];
    rep.d2h_seconds = sched.d2h_seconds[static_cast<std::size_t>(e)];
    rep.h2d_bytes = sched.h2d_bytes[static_cast<std::size_t>(e)];
    rep.d2h_bytes = sched.d2h_bytes[static_cast<std::size_t>(e)];
    rep.pipeline_seconds = sched.pipeline[static_cast<std::size_t>(e)];
    for (int c = 0; c < C; ++c) {
      if (sched.executed_by[static_cast<std::size_t>(c)] == e) {
        rep.flops += chunks[static_cast<std::size_t>(c)].flops;
        rep.matrices += chunks[static_cast<std::size_t>(c)].count();
      }
    }
    const energy::EnergyResult active = ex.call_energy(prec, rep.busy_seconds, rep.flops);
    rep.joules = active.joules;
    meter.add(active);
    // Staging copies keep the DMA engines and the PCIe PHY powered for
    // their wire time — charged on top of the compute integration.
    rep.transfer_joules =
        ex.power().transfer_watts * (rep.h2d_seconds + rep.d2h_seconds);
    if (rep.transfer_joules > 0.0)
      meter.add(energy::EnergyResult{rep.transfer_joules, 0.0});
    meter.add_idle(ex.power(), sched.makespan - sched.finish[static_cast<std::size_t>(e)]);
    result.steals += rep.stolen;
    result.h2d_bytes += rep.h2d_bytes;
    result.d2h_bytes += rep.d2h_bytes;
    result.executors.push_back(std::move(rep));
  }
  meter.set_wall_seconds(sched.makespan);
  result.energy = meter.total();
  return result;
}

}  // namespace

template <typename T>
HeteroResult potrf_vbatched_hetero(DevicePool& pool, Uplo uplo, Batch<T>& batch,
                                   const HeteroOptions& opts) {
  return hetero_impl<T>(pool, uplo, batch, 0, /*reduce_max=*/true, opts);
}

template <typename T>
HeteroResult potrf_vbatched_hetero_max(DevicePool& pool, Uplo uplo, Batch<T>& batch, int max_n,
                                       const HeteroOptions& opts) {
  return hetero_impl<T>(pool, uplo, batch, max_n, /*reduce_max=*/false, opts);
}

template HeteroResult potrf_vbatched_hetero<float>(DevicePool&, Uplo, Batch<float>&,
                                                   const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero<double>(DevicePool&, Uplo, Batch<double>&,
                                                    const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero<std::complex<float>>(
    DevicePool&, Uplo, Batch<std::complex<float>>&, const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero<std::complex<double>>(
    DevicePool&, Uplo, Batch<std::complex<double>>&, const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero_max<float>(DevicePool&, Uplo, Batch<float>&, int,
                                                       const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero_max<double>(DevicePool&, Uplo, Batch<double>&, int,
                                                        const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero_max<std::complex<float>>(
    DevicePool&, Uplo, Batch<std::complex<float>>&, int, const HeteroOptions&);
template HeteroResult potrf_vbatched_hetero_max<std::complex<double>>(
    DevicePool&, Uplo, Batch<std::complex<double>>&, int, const HeteroOptions&);

}  // namespace vbatch::hetero
