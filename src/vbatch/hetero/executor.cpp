#include "vbatch/hetero/executor.hpp"

#include "vbatch/cpu/cpu_batched.hpp"

namespace vbatch::hetero {

void Executor::begin_call(sim::ExecMode mode) { queue().device().set_mode(mode); }

void Executor::charge_fault(const std::string& /*what*/, double /*seconds*/) {}

// --- GpuExecutor -----------------------------------------------------------

GpuExecutor::GpuExecutor(std::string name, const sim::DeviceSpec& spec,
                         const energy::PowerModel& power)
    : Executor(std::move(name), power),
      queue_(spec, sim::ExecMode::Full),
      scratch_(spec, sim::ExecMode::TimingOnly) {}

GpuExecutor::~GpuExecutor() = default;

void GpuExecutor::begin_call(sim::ExecMode mode) {
  Executor::begin_call(mode);
  call_t0_ = queue_.time();
}

double GpuExecutor::estimate(const ChunkWork& work) {
  // Dry-run the chunk's driver on the timing-only twin: identical spec,
  // identical launch sequence, so the modelled seconds are exact — not a
  // fit. The twin's clock and timeline are scratch state.
  scratch_.device().reset_time();
  scratch_.device().clear_timeline();
  scratch_info_.assign(work.n.size(), 0);
  return work.run(scratch_, scratch_info_);
}

double GpuExecutor::execute(const ChunkWork& work, std::span<int> info) {
  return work.run(queue_, info);
}

void GpuExecutor::charge_fault(const std::string& what, double seconds) {
  queue_.device().charge_interval(what, seconds);
}

energy::EnergyResult GpuExecutor::call_energy(Precision prec, double /*busy_seconds*/,
                                              double /*flops*/) const {
  return energy::gpu_timeline_energy(queue_.spec(), power(), queue_.device().timeline(), prec,
                                     call_t0_);
}

// --- CpuExecutor -----------------------------------------------------------

CpuExecutor::CpuExecutor(std::string name, const cpu::CpuSpec& spec,
                         const energy::PowerModel& power)
    : Executor(std::move(name), power),
      spec_(spec),
      // The hidden queue exists to host the shared kernel math; any spec
      // works because its modelled clock is discarded.
      numerics_(sim::DeviceSpec::k40c(), sim::ExecMode::Full) {}

CpuExecutor::~CpuExecutor() = default;

double CpuExecutor::estimate(const ChunkWork& work) {
  // The paper's best CPU strategy (§IV-F): one core per matrix, dynamic
  // scheduling. Purely analytic, so estimate == execute time.
  return cpu::per_core_makespan(spec_, cpu::Schedule::Dynamic, work.prec, work.n);
}

double CpuExecutor::execute(const ChunkWork& work, std::span<int> info) {
  if (numerics_.full()) {
    work.run(numerics_, info);  // modelled GPU seconds discarded
  }
  return cpu::per_core_makespan(spec_, cpu::Schedule::Dynamic, work.prec, work.n);
}

energy::EnergyResult CpuExecutor::call_energy(Precision prec, double busy_seconds,
                                              double flops) const {
  const double achieved =
      busy_seconds > 0.0 ? flops / busy_seconds * 1e-9 : 0.0;
  return energy::cpu_interval_energy(power(), busy_seconds, achieved,
                                     spec_.total_peak_gflops(prec));
}

}  // namespace vbatch::hetero
