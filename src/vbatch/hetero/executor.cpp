#include "vbatch/hetero/executor.hpp"

#include <algorithm>

#include "vbatch/cpu/cpu_batched.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::hetero {

void Executor::begin_call(sim::ExecMode mode) { queue().device().set_mode(mode); }

void Executor::set_streams(int k) {
  if (k < 1)
    throw_error(Status::InvalidArgument, "Executor::set_streams: stream count must be >= 1 (got " +
                                             std::to_string(k) + ")");
  streams_ = std::min(k, max_streams());
}

void Executor::set_arena_gb(double gb) { set_arena_bytes(gb * 1024.0 * 1024.0 * 1024.0); }

void Executor::set_arena_bytes(double bytes) {
  if (!is_gpu())
    throw_error(Status::InvalidArgument,
                "Executor::set_arena_bytes: the CPU executor works in host memory and has no "
                "staging arena");
  if (!(bytes > 0.0))
    throw_error(Status::InvalidArgument,
                "Executor::set_arena_bytes: arena budget must be positive (got " +
                    std::to_string(bytes) + " bytes)");
  arena_bytes_ = bytes;
  arena_explicit_ = true;
}

void Executor::charge_fault(const std::string& /*what*/, double /*seconds*/, double /*start*/) {}

// --- GpuExecutor -----------------------------------------------------------

GpuExecutor::GpuExecutor(std::string name, const sim::DeviceSpec& spec,
                         const energy::PowerModel& power)
    : Executor(std::move(name), power),
      queue_(spec, sim::ExecMode::Full),
      scratch_(spec, sim::ExecMode::TimingOnly) {
  // Default staging budget: the whole card. Out-of-core streaming kicks in
  // only when the batch footprint exceeds it (or a caller shrinks it).
  init_arena_bytes(static_cast<double>(spec.global_mem_bytes));
}

GpuExecutor::~GpuExecutor() = default;

void GpuExecutor::begin_call(sim::ExecMode mode) {
  Executor::begin_call(mode);
  call_t0_ = queue_.time();
}

int GpuExecutor::max_streams() const noexcept { return queue_.spec().max_concurrent_streams; }

ChunkEstimate GpuExecutor::estimate(const ChunkWork& work) {
  // Dry-run the chunk's driver on the timing-only twin: identical spec,
  // identical launch sequence, so the modelled seconds are exact — not a
  // fit. The twin's clock and timeline are scratch state.
  scratch_.device().reset_time();
  scratch_.device().clear_timeline();
  scratch_info_.assign(work.n.size(), 0);
  ChunkEstimate ce;
  ce.seconds = work.run(scratch_, scratch_info_);
  if (ce.seconds > 0.0) {
    // Duration-weighted slot occupancy over the dry-run timeline: each
    // launch fills grid_blocks of the device's num_sms × resident slots.
    // Launch/enqueue gaps (intervals with no record) count as zero
    // occupancy, which is exactly the headroom overlapping streams hide.
    double weighted = 0.0;
    for (const auto& rec : scratch_.device().timeline().records()) {
      const double dur = rec.end - rec.start;
      if (dur <= 0.0 || rec.resident_per_sm <= 0 || rec.grid_blocks <= 0) continue;
      const double slots =
          static_cast<double>(queue_.spec().num_sms) * static_cast<double>(rec.resident_per_sm);
      weighted += std::min(1.0, static_cast<double>(rec.grid_blocks) / slots) * dur;
    }
    ce.occupancy = std::clamp(weighted / ce.seconds, 0.05, 1.0);
  }
  return ce;
}

double GpuExecutor::execute(const ChunkWork& work, std::span<int> info, const StreamSlot& slot) {
  sim::Device& dev = queue_.device();
  const std::size_t first = dev.timeline().size();
  const double base = dev.time();
  const double serial = work.run(queue_, info);
  // Move the records the chunk just appended into its scheduled slot. With
  // one stream this is the identity placement (slot.start is the executor
  // clock, rate 1) and the tag stays -1 so single-stream profiles look
  // exactly like before.
  dev.retime_tail(first, base, call_t0_ + slot.start, slot.rate,
                  streams() > 1 ? slot.stream : -1);
  // A streamed chunk also lands its two staging copies on the timeline's
  // transfer lane at the schedule's placement (resident chunks carry no
  // transfer fields and record nothing).
  if (slot.h2d_seconds > 0.0)
    dev.record_transfer(sim::TransferDir::H2D, slot.chunk, slot.bytes,
                        call_t0_ + slot.h2d_start, slot.h2d_seconds);
  if (slot.d2h_seconds > 0.0)
    dev.record_transfer(sim::TransferDir::D2H, slot.chunk, slot.bytes,
                        call_t0_ + slot.d2h_start, slot.d2h_seconds);
  return serial;
}

void GpuExecutor::charge_fault(const std::string& what, double seconds, double start) {
  if (start >= 0.0)
    queue_.device().charge_interval_at(what, call_t0_ + start, seconds);
  else
    queue_.device().charge_interval(what, seconds);
}

energy::EnergyResult GpuExecutor::call_energy(Precision prec, double /*busy_seconds*/,
                                              double /*flops*/) const {
  return energy::gpu_timeline_energy(queue_.spec(), power(), queue_.device().timeline(), prec,
                                     call_t0_);
}

// --- CpuExecutor -----------------------------------------------------------

CpuExecutor::CpuExecutor(std::string name, const cpu::CpuSpec& spec,
                         const energy::PowerModel& power)
    : Executor(std::move(name), power),
      spec_(spec),
      // The hidden queue exists to host the shared kernel math; any spec
      // works because its modelled clock is discarded.
      numerics_(sim::DeviceSpec::k40c(), sim::ExecMode::Full) {}

CpuExecutor::~CpuExecutor() = default;

ChunkEstimate CpuExecutor::estimate(const ChunkWork& work) {
  // The paper's best CPU strategy (§IV-F): one core per matrix, dynamic
  // scheduling. Purely analytic, so estimate == execute time. Every core is
  // already busy under that schedule — occupancy 1, no overlap headroom.
  return {cpu::per_core_makespan(spec_, cpu::Schedule::Dynamic, work.prec, work.n), 1.0};
}

double CpuExecutor::execute(const ChunkWork& work, std::span<int> info,
                            const StreamSlot& /*slot*/) {
  if (numerics_.full()) {
    work.run(numerics_, info);  // modelled GPU seconds discarded
  }
  return cpu::per_core_makespan(spec_, cpu::Schedule::Dynamic, work.prec, work.n);
}

energy::EnergyResult CpuExecutor::call_energy(Precision prec, double busy_seconds,
                                              double flops) const {
  const double achieved =
      busy_seconds > 0.0 ? flops / busy_seconds * 1e-9 : 0.0;
  return energy::cpu_interval_energy(power(), busy_seconds, achieved,
                                     spec_.total_peak_gflops(prec));
}

}  // namespace vbatch::hetero
