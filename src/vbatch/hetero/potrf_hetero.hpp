// Heterogeneous vbatched Cholesky: one variable-size batch split across a
// DevicePool of CPU and simulated-GPU executors.
//
// The paper targets "heterogeneous parallel architectures"; this entry
// point is the reproduction's answer for multi-device nodes. The batch is
// size-sorted, cut into nb-aligned chunks, statically partitioned by the
// executors' own cost estimates, then dynamically rebalanced by a
// deterministic work-stealing scheduler over the pool's virtual clocks
// (see partition.hpp / scheduler.hpp).
//
// Numerics guarantee: the options (path, blocking sizes) are resolved ONCE
// from the global maximum against a reference device and pinned for every
// chunk, and each matrix's factorization depends only on its own data and
// those pinned options — so the factors and info array are bit-identical
// to the single-device path and invariant under every partition policy,
// steal schedule, and pool composition. Only the modelled time and energy
// change; that is the point.
//
// Both §III-A interfaces are provided: potrf_vbatched_hetero computes the
// global maximum with a device reduction (on executor 0, whose clock pays
// the sweep), potrf_vbatched_hetero_max takes it from the caller.
//
// Self-healing: when the pool carries a fault spec (DevicePool::set_faults,
// CLI --inject-faults, or the VBATCH_INJECT_FAULTS environment knob), the
// schedule runs under the deterministic recovery loop of scheduler.hpp —
// bounded retries with virtual-time backoff, LPT re-dispatch of chunks
// orphaned by executor loss, a watchdog converting hangs into loss. As
// long as one executor survives, the factors and info stay bit-identical
// to the fault-free run (numerics only ever run on the one successful
// attempt); unrecoverable chunks poison their problems' info with
// kInfoChunkLost instead of throwing. See docs/robustness.md.
#pragma once

#include <string>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/hetero/device_pool.hpp"
#include "vbatch/hetero/partition.hpp"
#include "vbatch/hetero/scheduler.hpp"

namespace vbatch::hetero {

struct HeteroOptions {
  PotrfOptions potrf;  ///< forwarded to the per-chunk drivers (path pinned globally)
  Partition partition = Partition::CostModel;
  StealPolicy steal = StealPolicy::MostLoaded;
  bool work_stealing = true;
  /// Static chunks per executor: more chunks = finer rebalancing, more
  /// per-chunk launch overhead. 4 balances the two for the paper's batches.
  int chunks_per_executor = 4;
  std::uint64_t steal_seed = 2016;
  /// Retry/backoff/watchdog bounds for fault recovery (docs/robustness.md).
  /// Only consulted when the pool carries a fault spec (or the
  /// VBATCH_INJECT_FAULTS environment knob is set).
  fault::RetryPolicy retry;

  /// Out-of-core staging policy (docs/heterogeneous.md, "Out-of-core
  /// streaming"). Auto streams a GPU executor exactly when the batch
  /// footprint exceeds its arena budget; Streamed forces every GPU executor
  /// through the chunked pipeline (the testing/bench mode); Resident keeps
  /// the classic everything-fits schedule and throws if it doesn't.
  enum class Staging : std::uint8_t { Auto, Streamed, Resident };
  Staging staging = Staging::Auto;
  /// Double-buffered chunk prefetch on streaming executors: chunk k+1's H2D
  /// overlaps chunk k's compute. false = synchronous staging (the
  /// measurement baseline).
  bool prefetch = true;
};

/// Per-executor slice of a heterogeneous run.
struct ExecutorReport {
  std::string name;
  double busy_seconds = 0.0;    ///< modelled seconds executing chunks
  double finish_seconds = 0.0;  ///< virtual clock when the executor went idle
  double flops = 0.0;           ///< useful flops of the chunks it ran
  double joules = 0.0;          ///< active ∫P dt (idle tails are in the total)
  int chunks = 0;
  int stolen = 0;               ///< chunks acquired by stealing
  int matrices = 0;
  int streams = 1;              ///< concurrent stream slots (post-clamp)
  /// Overlap ratio: busy seconds over the union of busy intervals. 1.0 for
  /// a serial schedule; approaches `streams` under full overlap.
  double overlap = 1.0;
  int retries = 0;              ///< transient attempts wasted on this executor
  bool lost = false;            ///< permanently lost (death or hung watchdog)

  // --- Out-of-core staging slice (zeros for resident executors) ----------
  bool streamed = false;        ///< ran the chunked out-of-core pipeline
  double h2d_seconds = 0.0;     ///< committed host→device copy seconds
  double d2h_seconds = 0.0;     ///< committed device→host copy seconds
  double h2d_bytes = 0.0;       ///< bytes staged in
  double d2h_bytes = 0.0;       ///< bytes written back
  /// Union of compute + transfer intervals. (busy + h2d + d2h) / pipeline
  /// measures how much staging traffic the double buffering hid; 1.0 means
  /// everything overlapped, higher means exposed transfer time.
  double pipeline_seconds = 0.0;
  double transfer_joules = 0.0; ///< DMA/PHY energy of the staging copies
};

struct HeteroResult {
  double seconds = 0.0;  ///< pool makespan (max executor finish time)
  double flops = 0.0;
  PotrfPath path_taken = PotrfPath::Auto;
  int chunks = 0;
  int steals = 0;
  energy::EnergyResult energy;  ///< pool total: active + idle tails, over makespan
  std::vector<ExecutorReport> executors;
  double h2d_bytes = 0.0;       ///< pool-wide bytes staged host→device
  double d2h_bytes = 0.0;       ///< pool-wide bytes written back

  // --- Fault-recovery ledger (all zero/empty on a fault-free run) --------
  int retries = 0;              ///< transient attempts wasted pool-wide
  int hangs = 0;                ///< hung attempts the watchdog converted
  int executors_lost = 0;       ///< executors permanently lost mid-batch
  int chunks_poisoned = 0;      ///< chunks no survivor could complete
  /// Summed nominal peak of the executors that survived the call, in
  /// Gflop/s — the fault layer's capacity signal to the service admission
  /// controller (equals the pool peak on a fault-free run).
  double surviving_peak_gflops = 0.0;
  double backoff_seconds = 0.0; ///< total virtual retry backoff
  std::vector<fault::FaultEvent> fault_events;  ///< ordered recovery log

  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// LAPACK-like interface: the global maximum is computed with a device
/// reduction on executor 0 (its clock pays the metadata sweep, mirroring
/// the single-device potrf_vbatched).
template <typename T>
HeteroResult potrf_vbatched_hetero(DevicePool& pool, Uplo uplo, Batch<T>& batch,
                                   const HeteroOptions& opts = {});

/// Expert interface: the caller supplies max_n (must dominate every size).
template <typename T>
HeteroResult potrf_vbatched_hetero_max(DevicePool& pool, Uplo uplo, Batch<T>& batch, int max_n,
                                       const HeteroOptions& opts = {});

}  // namespace vbatch::hetero
