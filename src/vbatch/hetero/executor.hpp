// Executor: the unit of heterogeneity in the multi-device runtime.
//
// The paper's title promises *heterogeneous parallel architectures*; this
// layer delivers the abstraction that makes a simulated GPU queue and the
// host CPU pool interchangeable targets for one variable-size batch. An
// Executor accepts nb-aligned chunks of a size-sorted batch and provides
//   * an exact cost estimate per chunk (a timing-only dry run of the very
//     same driver the chunk would execute — the partitioner's input), and
//   * chunk execution: numerics (Full mode) plus modelled seconds.
//
// Numerics are device-independent by construction: every executor runs the
// identical pinned single-device driver (same path, same blocking), so a
// matrix factors to the same bits no matter which executor the partitioner
// or the work-stealing scheduler hands it to. Only the *time* differs:
//   * GpuExecutor charges its own sim::Device clock (occupancy, launch
//     overheads, roofline — everything the simulator models);
//   * CpuExecutor charges the calibrated one-core-per-matrix dynamic
//     schedule of cpu::CpuSpec (the paper's best CPU competitor, §IV-F)
//     while still running the shared kernel math for the payload.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vbatch/core/queue.hpp"
#include "vbatch/cpu/perf_model.hpp"
#include "vbatch/energy/energy_meter.hpp"
#include "vbatch/energy/power_model.hpp"
#include "vbatch/hetero/stream_slot.hpp"

namespace vbatch::hetero {

/// One chunk of a vbatched problem, ready for any executor. The metadata
/// spans view chunk-local gathered arrays owned by the hetero driver; `run`
/// is the pinned single-device driver bound to those arrays — calling it on
/// a queue executes the chunk there (numerics follow the queue's ExecMode)
/// and returns the modelled device seconds.
struct ChunkWork {
  std::span<const int> n;    ///< gathered per-matrix orders (descending)
  double flops = 0.0;        ///< useful flops of the chunk
  int max_n = 0;             ///< largest order in the chunk
  Precision prec = Precision::Double;
  /// Runs the chunk's driver on `q`, writing statuses into `info` (sized
  /// like `n`). The same closure serves execution and dry-run estimation.
  std::function<double(Queue& q, std::span<int> info)> run;
};

/// What an executor predicts for one chunk: the exact serial seconds (a
/// dry run of the same driver) plus the chunk's modelled device occupancy —
/// the fraction of the device's block slots its launches keep busy. Low
/// occupancy is the headroom multi-stream overlap exploits; occupancy 1.0
/// (the CPU executor, or a device-filling chunk) leaves none.
struct ChunkEstimate {
  double seconds = 0.0;
  double occupancy = 1.0;
};

class Executor {
 public:
  Executor(std::string name, energy::PowerModel power) noexcept
      : name_(std::move(name)), power_(power) {}
  virtual ~Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const energy::PowerModel& power() const noexcept { return power_; }
  [[nodiscard]] virtual bool is_gpu() const noexcept = 0;

  /// Nominal peak throughput of this executor in Gflop/s — the capacity
  /// currency of the service admission layer (a GPU reports its spec
  /// roofline, the CPU its all-core peak). Nominal, not achieved: callers
  /// calibrate against observed launches.
  [[nodiscard]] virtual double peak_gflops(Precision prec) const noexcept = 0;

  /// The queue numerics run through. For a GPU executor this is also the
  /// timing authority; the CPU executor uses it only to host the shared
  /// kernel math (its clock is ignored in favour of the CPU model).
  [[nodiscard]] virtual Queue& queue() noexcept = 0;

  /// Aligns the executor with the caller's execution mode and marks the
  /// start of a hetero call (energy slicing, busy accounting).
  virtual void begin_call(sim::ExecMode mode);

  /// Concurrent stream slots the scheduler may keep in flight here. Values
  /// above max_streams() clamp silently (mirroring launch_concurrent's
  /// device-limit clamp); k < 1 throws Status::InvalidArgument.
  void set_streams(int k);
  [[nodiscard]] int streams() const noexcept { return streams_; }
  /// Device stream limit: the GPU spec's max_concurrent_streams; the CPU
  /// executor's one-core-per-matrix model already uses every core, so 1.
  [[nodiscard]] virtual int max_streams() const noexcept = 0;

  /// Staging-arena budget for out-of-core streaming (docs/heterogeneous.md,
  /// "Out-of-core streaming"). A GPU executor defaults to its spec's global
  /// memory; when the batch footprint exceeds the budget the hetero driver
  /// stages chunks through the arena instead of assuming residency. The CPU
  /// executor works in host memory — it has no arena, and setting one
  /// throws Status::InvalidArgument. Budgets must be positive.
  void set_arena_gb(double gb);
  void set_arena_bytes(double bytes);
  [[nodiscard]] double arena_bytes() const noexcept { return arena_bytes_; }
  /// True once a caller pinned the budget (parse suffix, --arena-gb); the
  /// driver then leaves it alone when applying VBATCH_ARENA_GB defaults.
  [[nodiscard]] bool arena_explicit() const noexcept { return arena_explicit_; }

  /// Exact modelled cost of the chunk here: serial seconds from a
  /// timing-only dry run of the same driver `execute` uses, plus the
  /// chunk's modelled device occupancy (the overlap headroom).
  [[nodiscard]] virtual ChunkEstimate estimate(const ChunkWork& work) = 0;

  /// Executes the chunk (numerics in Full mode) into `info` and places its
  /// timeline records into the scheduled stream slot; returns the serial
  /// modelled seconds of the chunk.
  virtual double execute(const ChunkWork& work, std::span<int> info, const StreamSlot& slot) = 0;

  /// Charges a fault-recovery interval (a wasted faulted attempt, a retry
  /// backoff, a watchdog stall) to this executor's timing authority. GPU
  /// executors append a fault-flagged record to their device timeline so
  /// the profiler and the energy integration see the wasted time; the CPU
  /// executor's model has no timeline — its wasted seconds are carried by
  /// the schedule's busy accounting instead. `start >= 0` pins the record
  /// at that schedule position (relative to begin_call); negative keeps the
  /// legacy at-current-clock placement.
  virtual void charge_fault(const std::string& what, double seconds, double start = -1.0);

  /// ∫P dt of this executor's busy interval since begin_call. GPU executors
  /// integrate their timeline slice; the CPU executor integrates the given
  /// busy interval at the utilisation implied by `flops`.
  [[nodiscard]] virtual energy::EnergyResult call_energy(Precision prec, double busy_seconds,
                                                         double flops) const = 0;

 protected:
  /// GpuExecutor seeds the default budget (spec global memory) here without
  /// marking it explicit.
  void init_arena_bytes(double bytes) noexcept { arena_bytes_ = bytes; }

 private:
  std::string name_;
  energy::PowerModel power_;
  int streams_ = 1;
  double arena_bytes_ = 0.0;
  bool arena_explicit_ = false;
};

/// A simulated GPU device (K40c, P100, ...) wrapped in a core::Queue.
class GpuExecutor final : public Executor {
 public:
  GpuExecutor(std::string name, const sim::DeviceSpec& spec, const energy::PowerModel& power);
  ~GpuExecutor() override;

  [[nodiscard]] bool is_gpu() const noexcept override { return true; }
  [[nodiscard]] Queue& queue() noexcept override { return queue_; }
  [[nodiscard]] const sim::DeviceSpec& spec() const noexcept { return queue_.spec(); }
  [[nodiscard]] double peak_gflops(Precision prec) const noexcept override {
    return spec().peak_gflops(prec);
  }

  void begin_call(sim::ExecMode mode) override;
  [[nodiscard]] int max_streams() const noexcept override;
  [[nodiscard]] ChunkEstimate estimate(const ChunkWork& work) override;
  double execute(const ChunkWork& work, std::span<int> info, const StreamSlot& slot) override;
  void charge_fault(const std::string& what, double seconds, double start) override;
  [[nodiscard]] energy::EnergyResult call_energy(Precision prec, double busy_seconds,
                                                 double flops) const override;

 private:
  Queue queue_;    ///< the executor device (numerics + timing authority)
  Queue scratch_;  ///< same spec, pinned TimingOnly — the dry-run estimator
  std::vector<int> scratch_info_;
  double call_t0_ = 0.0;  ///< device clock at begin_call (energy slice start)
};

/// The host CPU pool as a first-class executor: numerics run through the
/// shared kernel math (bit-identical to every other executor); time follows
/// cpu::per_core_makespan's dynamic one-core-per-matrix schedule.
class CpuExecutor final : public Executor {
 public:
  CpuExecutor(std::string name, const cpu::CpuSpec& spec, const energy::PowerModel& power);
  ~CpuExecutor() override;

  [[nodiscard]] bool is_gpu() const noexcept override { return false; }
  [[nodiscard]] Queue& queue() noexcept override { return numerics_; }
  [[nodiscard]] const cpu::CpuSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double peak_gflops(Precision prec) const noexcept override {
    return spec_.total_peak_gflops(prec);
  }

  [[nodiscard]] int max_streams() const noexcept override { return 1; }
  [[nodiscard]] ChunkEstimate estimate(const ChunkWork& work) override;
  double execute(const ChunkWork& work, std::span<int> info, const StreamSlot& slot) override;
  [[nodiscard]] energy::EnergyResult call_energy(Precision prec, double busy_seconds,
                                                 double flops) const override;

 private:
  cpu::CpuSpec spec_;
  /// Hosts the shared kernel math so CPU-executed matrices factor to the
  /// same bits as GPU-executed ones; its modelled clock is never reported.
  Queue numerics_;
};

}  // namespace vbatch::hetero
