// DevicePool: the set of executors one heterogeneous vbatched call runs on.
//
// A pool owns its executors (simulated GPUs and/or the host CPU) and is the
// first argument of potrf_vbatched_hetero. Pools are built programmatically
// (add_gpu / add_cpu) or parsed from the CLI's comma-separated description,
// e.g. "cpu,k40c,p100" or "k40c,k40c" for a dual-GPU node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vbatch/fault/fault_plan.hpp"
#include "vbatch/hetero/executor.hpp"

namespace vbatch::hetero {

class DevicePool {
 public:
  DevicePool() = default;
  DevicePool(DevicePool&&) noexcept = default;
  DevicePool& operator=(DevicePool&&) noexcept = default;

  /// Adds a simulated GPU with its matching power preset. The executor name
  /// (`label`, defaulting to the spec name) gets a positional suffix so
  /// multi-GPU pools stay distinguishable in reports ("k40c#0", "k40c#1").
  Executor& add_gpu(const sim::DeviceSpec& spec, const energy::PowerModel& power,
                    std::string label = {});

  /// Adds the host CPU pool (at most one per pool).
  Executor& add_cpu(const cpu::CpuSpec& spec = cpu::CpuSpec::dual_e5_2670(),
                    const energy::PowerModel& power = energy::PowerModel::dual_e5_2670());

  /// Builds a pool from a comma-separated device list. Tokens: "k40c",
  /// "p100", "cpu" (surrounding whitespace is trimmed), each optionally
  /// suffixed ":Nstreams" (N >= 1) to give the executor N concurrent
  /// stream slots and/or ":Ngb" (N > 0, decimal GiB) to cap its staging
  /// arena for out-of-core streaming — "k40c:4streams:2gb,p100". Suffixes
  /// may appear in either order, each at most once. GPU stream counts above
  /// the device's max_concurrent_streams clamp silently (mirroring
  /// launch_concurrent); the CPU accepts only ":1streams" and no arena
  /// suffix (it works in host memory). Throws Status::InvalidArgument on
  /// unknown tokens, an empty list, an empty segment (stray / doubled
  /// comma), a repeated "cpu", or a malformed suffix (":streams",
  /// ":0streams", ":gb", ":0gb", non-numeric or duplicated values) — never
  /// silently builds a degenerate pool.
  [[nodiscard]] static DevicePool parse(const std::string& csv);

  /// Attaches a fault-injection spec (docs/robustness.md): every
  /// potrf_vbatched_hetero call on this pool runs under the given plan.
  /// An empty spec (the default) disables injection; the
  /// VBATCH_INJECT_FAULTS environment knob applies only when no spec was
  /// set explicitly.
  void set_faults(fault::FaultSpec spec) { faults_ = std::move(spec); }
  [[nodiscard]] const fault::FaultSpec& faults() const noexcept { return faults_; }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(executors_.size()); }
  [[nodiscard]] Executor& executor(int i) noexcept { return *executors_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Executor& executor(int i) const noexcept {
    return *executors_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int gpu_count() const noexcept;
  [[nodiscard]] bool has_cpu() const noexcept;

  /// Sum of the executors' nominal peaks in Gflop/s — the capacity seed of
  /// the service admission layer (docs/service.md, "Overload & admission").
  [[nodiscard]] double peak_gflops(Precision prec) const noexcept;

  /// "k40c#0:4streams:2gb + k40c#1 + cpu" — for logs and JSON labels (the
  /// stream suffix appears only for multi-stream executors, the arena
  /// suffix only for explicitly capped ones).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::unique_ptr<Executor>> executors_;
  fault::FaultSpec faults_;
};

}  // namespace vbatch::hetero
