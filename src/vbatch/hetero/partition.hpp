// Static partitioning of one variable-size batch over a device pool.
//
// The batch is first stable-sorted by matrix order, descending (the same
// trick the fused path's implicit sorting uses, §III-D2: neighbours in the
// sorted order have similar sizes, so a contiguous slice wastes almost no
// launch-grid slack). The sorted order is then cut into chunks whose
// boundaries prefer nb-window edges — positions where (max_n − n) / nb
// changes — so a chunk's local maximum drops by whole blocking steps and
// its driver runs strictly fewer panel iterations than the global one.
//
// Chunks are sized by modelled cost (flops as the proxy during cutting; the
// executors' exact dry-run estimates afterwards) and assigned by one of:
//   * CostModel — greedy LPT using each executor's own estimate for each
//     chunk: repeatedly give the largest unassigned chunk to the executor
//     whose finish time stays lowest. Near-optimal for makespan and the
//     default;
//   * RoundRobin — cyclic, cost-blind (a deliberately naive baseline);
//   * FirstOnly — everything on executor 0, which only the work-stealing
//     scheduler can then rebalance (the baseline that isolates stealing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vbatch::hetero {

/// Half-open range [begin, end) over the size-sorted index order.
struct Chunk {
  int begin = 0;
  int end = 0;
  int max_n = 0;      ///< largest order inside the chunk (first element)
  double flops = 0.0; ///< useful flops of the chunk
  [[nodiscard]] int count() const noexcept { return end - begin; }
};

enum class Partition : std::uint8_t { CostModel, RoundRobin, FirstOnly };

[[nodiscard]] constexpr const char* to_string(Partition p) noexcept {
  switch (p) {
    case Partition::CostModel: return "cost-model";
    case Partition::RoundRobin: return "round-robin";
    case Partition::FirstOnly: return "first-only";
  }
  return "?";
}

/// Returns the batch indices stable-sorted by order, descending. Stability
/// keeps equal sizes in submission order, making every downstream decision
/// (chunking, assignment, stealing) reproducible.
[[nodiscard]] std::vector<int> sort_indices_desc(std::span<const int> n);

/// Cuts the size-sorted order into at most `target_chunks` cost-balanced
/// chunks whose boundaries snap to nb-window edges where possible.
/// `sorted_n[i]` is the order of the i-th matrix in sorted order. Every
/// chunk is non-empty; a chunk is force-split once it exceeds 1.5× the
/// per-chunk cost target even mid-window.
[[nodiscard]] std::vector<Chunk> build_chunks(std::span<const int> sorted_n, int window_nb,
                                              int target_chunks);

/// Assigns chunks to executors. `estimate[e][c]` is executor e's modelled
/// seconds for chunk c (exact dry-run numbers). Returns chunk → executor.
[[nodiscard]] std::vector<int> assign_chunks(
    const std::vector<std::vector<double>>& estimate, Partition policy, int executors);

/// Overlap-aware load matrix for the LPT assignment: on an executor with k
/// concurrent streams, a chunk of occupancy o effectively costs
/// estimate × max(o, 1/k) seconds of device capacity — k overlapped
/// low-occupancy chunks share the device, so each charges only its slot
/// share. With streams[e] == 1 the result equals `estimate` bitwise (the
/// serial partition is unchanged). `occupancy[e][c]` ∈ (0, 1];
/// `streams[e]` ≥ 1.
[[nodiscard]] std::vector<std::vector<double>> effective_load(
    const std::vector<std::vector<double>>& estimate,
    const std::vector<std::vector<double>>& occupancy, const std::vector<int>& streams);

/// Transfer-aware variant for out-of-core streaming: `h2d[e][c]` /
/// `d2h[e][c]` are the per-chunk staging seconds (an empty row e keeps that
/// executor resident and its column bitwise equal to the overlap-only
/// overload). A streaming executor's chunk additionally pays its
/// non-overlappable transfer share: with prefetch the double-buffered
/// pipeline hides the smaller of compute and transfer behind the other, so
/// the chunk costs max(compute_eff, h2d + d2h); synchronous staging
/// serializes all three. The LPT assignment then stops over-subscribing a
/// bandwidth-starved device with work its link cannot feed.
[[nodiscard]] std::vector<std::vector<double>> effective_load(
    const std::vector<std::vector<double>>& estimate,
    const std::vector<std::vector<double>>& occupancy, const std::vector<int>& streams,
    const std::vector<std::vector<double>>& h2d, const std::vector<std::vector<double>>& d2h,
    bool prefetch);

}  // namespace vbatch::hetero
