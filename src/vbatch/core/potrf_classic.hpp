// The classic separated building-block batched Cholesky — the pre-fusion
// approach of Haidar et al. [13] that Fig. 4 compares kernel fusion
// against. Every factorization step launches the sub-operations as separate
// kernels (potf2 tile, trsm panel, generic syrk trailing update), each
// resident in global memory, with auxiliary pointer-displacement kernels in
// between. No data is reused across launches.
#pragma once

#include "vbatch/core/potrf_vbatched.hpp"

namespace vbatch {

struct ClassicOptions {
  /// Blocking size; 0 = autotuned by the maximum size (the pre-fusion
  /// batched BLAS used fine blocking for small batches and widened it for
  /// larger matrices where the gemm-shaped trailing update dominates).
  int nb = 0;
};

/// Factors a batch (fixed or variable sizes) with the classic separated
/// building-block approach.
template <typename T>
PotrfResult potrf_batched_classic(Queue& q, Uplo uplo, Batch<T>& batch,
                                  const ClassicOptions& opts = {});

}  // namespace vbatch
