// Fixed-size batched Cholesky — the pre-existing MAGMA functionality the
// paper extends (§III-D: "For simplicity, fused kernels were initially
// developed for fixed-size batched operations") and the baseline behind
// Fig. 4 and the padding comparison of Figs. 8/9.
#pragma once

#include "vbatch/core/potrf_vbatched.hpp"

namespace vbatch {

/// Factors `count` matrices of identical order n. `path` selects the fused
/// or separated implementation (Auto applies the crossover policy).
template <typename T>
PotrfResult potrf_batched_fixed(Queue& q, Uplo uplo, Batch<T>& batch,
                                const PotrfOptions& opts = {});

}  // namespace vbatch
