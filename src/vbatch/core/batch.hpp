// Batch containers: ownership of a set of matrices resident in (simulated)
// device memory together with the device metadata arrays a vbatched routine
// needs (paper §III-A: sizes, leading dimensions and pointers are arrays,
// and the metadata arrays live on the GPU).
//
// Metadata arrays (ints, pointers) are host-shadowed: their device residency
// is accounted against the arena and aux kernels model the cost of touching
// them, while the functional values are directly readable — which is what
// lets TimingOnly runs proceed without dereferencing matrix payloads.
#pragma once

#include <span>
#include <vector>

#include "vbatch/core/queue.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch {

/// A device-resident array with a host shadow. Matrix *payloads* do not use
/// this class (they live purely in the arena); metadata does.
template <typename T>
class DeviceVector {
 public:
  DeviceVector(Queue& q, std::size_t count)
      : queue_(&q), data_(count), accounting_(q.device().device_malloc(count * sizeof(T))) {}
  ~DeviceVector() {
    if (accounting_ != nullptr) queue_->device().device_free(accounting_);
  }
  DeviceVector(DeviceVector&& other) noexcept
      : queue_(other.queue_), data_(std::move(other.data_)), accounting_(other.accounting_) {
    other.accounting_ = nullptr;
  }
  DeviceVector& operator=(DeviceVector&&) = delete;
  DeviceVector(const DeviceVector&) = delete;
  DeviceVector& operator=(const DeviceVector&) = delete;

  [[nodiscard]] T* device_ptr() noexcept { return data_.data(); }
  [[nodiscard]] const T* device_ptr() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> host() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> host() const noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

 private:
  Queue* queue_;
  std::vector<T> data_;
  void* accounting_;
};

/// Low-level, MAGMA-style view of a vbatched problem handed to drivers.
template <typename T>
struct VbatchedProblem {
  T* const* ptrs = nullptr;      ///< device pointer array
  std::span<const int> n;        ///< per-matrix order (host shadow of device array)
  std::span<const int> lda;
  std::span<int> info;           ///< per-matrix status (host shadow of device array)
  [[nodiscard]] int count() const noexcept { return static_cast<int>(n.size()); }
};

/// Owner of a batch of square matrices in device memory plus the metadata
/// arrays. The convenience layer used by examples, tests and benches.
template <typename T>
class Batch {
 public:
  /// Allocates matrices of the given orders with lda_i = n_i + lda_pad
  /// (paper §III-A: every matrix carries an independent leading dimension;
  /// a non-zero pad exercises exactly that independence). Throws
  /// Status::OutOfDeviceMemory when the arena is exhausted.
  explicit Batch(Queue& q, std::span<const int> sizes, int lda_pad = 0);

  /// All matrices the same order (fixed-size batch).
  static Batch fixed(Queue& q, int count, int n);

  ~Batch();
  Batch(Batch&&) noexcept;
  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;
  Batch& operator=(Batch&&) = delete;

  [[nodiscard]] int count() const noexcept { return static_cast<int>(n_.size()); }
  [[nodiscard]] std::span<const int> sizes() const noexcept { return n_.host(); }
  [[nodiscard]] std::span<const int> ldas() const noexcept { return lda_.host(); }
  [[nodiscard]] T** device_ptrs() noexcept { return ptrs_.device_ptr(); }
  [[nodiscard]] std::span<int> info() noexcept { return info_.host(); }

  [[nodiscard]] VbatchedProblem<T> problem() noexcept {
    return {ptrs_.device_ptr(), n_.host(), lda_.host(), info_.host()};
  }

  /// Largest order in the batch (host-side; the device-side equivalent is
  /// kernels::imax_reduce, which the LAPACK-like interface uses).
  [[nodiscard]] int max_size() const noexcept;

  /// Sum of Cholesky flops over the batch (the paper's Gflop/s denominator).
  [[nodiscard]] double potrf_flops() const noexcept;

  /// Fills every matrix with a random SPD matrix (no-op in TimingOnly mode).
  void fill_spd(Rng& rng);

  /// View of matrix i (Full mode only).
  [[nodiscard]] MatrixView<T> matrix(int i) noexcept;

  /// Deep copy of matrix i into a fresh host buffer (Full mode only).
  [[nodiscard]] std::vector<T> copy_matrix(int i) const;

  [[nodiscard]] Queue& queue() noexcept { return *queue_; }

 private:
  void fill_spd_impl(Rng& rng, int i, int n);

  Queue* queue_;
  DeviceVector<int> n_;
  DeviceVector<int> lda_;
  DeviceVector<T*> ptrs_;
  DeviceVector<int> info_;
  void* slab_ = nullptr;   ///< arena allocation holding all matrix payloads
};

/// Rectangular batch for the LU/QR extensions: per-matrix m×n with lda = m.
template <typename T>
class RectBatch {
 public:
  RectBatch(Queue& q, std::span<const int> m, std::span<const int> n);
  ~RectBatch();
  RectBatch(RectBatch&&) noexcept;
  RectBatch(const RectBatch&) = delete;
  RectBatch& operator=(const RectBatch&) = delete;
  RectBatch& operator=(RectBatch&&) = delete;

  [[nodiscard]] int count() const noexcept { return static_cast<int>(m_.size()); }
  [[nodiscard]] std::span<const int> rows() const noexcept { return m_.host(); }
  [[nodiscard]] std::span<const int> cols() const noexcept { return n_.host(); }
  [[nodiscard]] std::span<const int> ldas() const noexcept { return lda_.host(); }
  [[nodiscard]] T** device_ptrs() noexcept { return ptrs_.device_ptr(); }
  [[nodiscard]] std::span<int> info() noexcept { return info_.host(); }

  void fill_general(Rng& rng);
  [[nodiscard]] MatrixView<T> matrix(int i) noexcept;
  [[nodiscard]] std::vector<T> copy_matrix(int i) const;
  [[nodiscard]] Queue& queue() noexcept { return *queue_; }

 private:
  Queue* queue_;
  DeviceVector<int> m_;
  DeviceVector<int> n_;
  DeviceVector<int> lda_;
  DeviceVector<T*> ptrs_;
  DeviceVector<int> info_;
  void* slab_ = nullptr;
};

}  // namespace vbatch
