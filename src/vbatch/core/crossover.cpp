#include "vbatch/core/crossover.hpp"

#include <algorithm>

#include "vbatch/kernels/fused_potrf.hpp"

namespace vbatch {

int fused_feasible_max(const sim::DeviceSpec& spec, Precision prec) {
  const std::size_t elem = prec == Precision::Double ? sizeof(double) : sizeof(float);
  // The narrowest supported blocking gives the loosest shared-memory bound.
  return kernels::fused_max_size(spec, 8, elem);
}

int crossover_max_size(const sim::DeviceSpec& spec, Precision prec) {
  // Calibrated against bench/fig07_crossover; always within feasibility.
  // The SP fused kernel stays ahead until its blocking drops to nb = 8
  // (beyond the nb = 16 shared-memory bound at 752); DP crosses much
  // earlier, where the wide panels throttle occupancy.
  const int perf = prec == Precision::Double ? 320 : 736;
  return std::min(perf, fused_feasible_max(spec, prec));
}

bool use_fused(const sim::DeviceSpec& spec, Precision prec, int max_n, int override_crossover) {
  const int threshold =
      override_crossover > 0
          ? std::min(override_crossover, fused_feasible_max(spec, prec))
          : crossover_max_size(spec, prec);
  return max_n <= threshold;
}

}  // namespace vbatch
