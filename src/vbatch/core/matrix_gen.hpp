// Structured test-matrix generators.
//
// The paper's experiments use random SPD matrices; applications and the
// property-test suites need finer control — spectra with a prescribed
// condition number, diagonally dominant operators, banded stencils. These
// generators produce them for single matrices and whole batches.
#pragma once

#include "vbatch/core/batch.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch {

/// SPD matrix with condition number ~`cond`: A = Q·D·Qᵀ with a random
/// orthogonal Q (Householder product) and log-spaced eigenvalues in
/// [1/cond, 1].
template <typename T>
void make_spd_cond(Rng& rng, MatrixView<T> a, double cond);

/// Symmetric strictly diagonally dominant matrix: off-diagonal uniform in
/// [-1, 1], diagonal = `dominance` × (row absolute sum). SPD for
/// dominance > 1.
template <typename T>
void make_diag_dominant(Rng& rng, MatrixView<T> a, double dominance = 1.5);

/// SPD tridiagonal stencil (2 on the diagonal, -1 off) with random positive
/// diagonal jitter — the 1-D Poisson operator family.
template <typename T>
void make_tridiag_spd(Rng& rng, MatrixView<T> a, double jitter = 0.1);

/// Fills every matrix of a batch with make_spd_cond (no-op in TimingOnly).
template <typename T>
void fill_batch_spd_cond(Rng& rng, Batch<T>& batch, double cond);

/// 2-norm condition estimate via a few power/inverse-power iterations on
/// AᵀA (diagnostic; used by tests to validate the generators).
template <typename T>
double estimate_condition(ConstMatrixView<T> a, int iterations = 60);

}  // namespace vbatch
