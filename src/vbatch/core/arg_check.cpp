#include "vbatch/core/arg_check.hpp"

#include <algorithm>

#include "vbatch/util/error.hpp"

namespace vbatch {

namespace {

/// Applies the rules to matrix `i`, stopping at the first offence (LAPACK
/// style) and folding it into the report.
void check_matrix(std::span<const ArgRule> rules, int i, std::span<int> info,
                  ArgCheckReport& report) {
  for (const ArgRule& rule : rules) {
    const int a = rule.a[static_cast<std::size_t>(i)];
    bool bad = false;
    switch (rule.kind) {
      case ArgRule::Kind::NonNegative:
        bad = a < 0;
        break;
      case ArgRule::Kind::AtLeastOther:
        bad = a < std::max(1, rule.b[static_cast<std::size_t>(i)]);
        break;
      case ArgRule::Kind::EqualOther:
        bad = a != rule.b[static_cast<std::size_t>(i)];
        break;
    }
    if (!bad) continue;
    ++report.violations;
    if (report.first_matrix < 0) {
      report.first_matrix = i;
      report.first_argument = rule.argument_index;
      report.first_name = rule.name;
    }
    if (!info.empty()) info[static_cast<std::size_t>(i)] = -rule.argument_index;
    return;
  }
}

/// The modelled sweep: one 256-thread block per 256 metadata entries,
/// reading `bytes_per_elem` per entry.
void launch_sweep(sim::Device& dev, const char* name, int count, double bytes_per_elem) {
  sim::LaunchConfig cfg;
  cfg.name = name;
  cfg.block_threads = 256;
  cfg.grid_blocks = std::max(1, (count + 255) / 256);
  cfg.precision = Precision::Single;
  dev.launch(cfg, [count, bytes_per_elem](const sim::ExecContext&, int block) {
    sim::BlockCost c;
    const int lo = block * 256;
    const int elems = std::clamp(count - lo, 0, 256);
    c.active_threads = elems;
    c.live_threads = 256;
    c.flops = elems;
    c.bytes = elems * bytes_per_elem;
    c.sync_steps = 2;
    return c;
  });
}

}  // namespace

ArgCheckReport check_args(sim::Device& dev, std::span<const ArgRule> rules,
                          std::span<int> info) {
  ArgCheckReport report;
  if (rules.empty()) return report;
  const int count = static_cast<int>(rules.front().a.size());

  // One sweep kernel reads every rule's arrays once.
  launch_sweep(dev, "aux_check_args", count,
               static_cast<double>(rules.size()) * 2.0 * sizeof(int));
  for (int i = 0; i < count; ++i) check_matrix(rules, i, info, report);
  return report;
}

ArgSweep check_args_reduce(sim::Device& dev, std::span<const ArgRule> rules,
                           std::span<const int> maxed, std::span<int> info) {
  ArgSweep sweep;
  const int count = static_cast<int>(
      !rules.empty() ? rules.front().a.size() : std::max(maxed.size(), info.size()));
  if (count == 0) return sweep;

  // One kernel sweeps the rule arrays, the reduction input and the info
  // writes together; tree-reduction barriers come on top of the check's.
  double bytes_per_elem = static_cast<double>(rules.size()) * 2.0 * sizeof(int);
  if (!maxed.empty()) bytes_per_elem += sizeof(int);
  if (!info.empty()) bytes_per_elem += sizeof(int);
  launch_sweep(dev, !maxed.empty() ? "aux_imax_reduce_check" : "aux_check_args", count,
               bytes_per_elem);

  for (int i = 0; i < count; ++i) {
    if (!info.empty()) info[static_cast<std::size_t>(i)] = 0;
    if (!maxed.empty())
      sweep.max_value = std::max(sweep.max_value, maxed[static_cast<std::size_t>(i)]);
    if (!rules.empty()) check_matrix(rules, i, info, sweep.report);
  }
  return sweep;
}

void require_args_ok(const ArgCheckReport& report, const char* routine) {
  if (report.ok()) return;
  throw_error(Status::InvalidArgument,
              std::string(routine) + ": parameter " + std::to_string(-report.first_argument) +
                  " (" + report.first_name + ") had an illegal value for " +
                  std::to_string(report.violations) + " matrices, first at batch index " +
                  std::to_string(report.first_matrix));
}

}  // namespace vbatch
