#include "vbatch/core/arg_check.hpp"

#include <algorithm>

#include "vbatch/util/error.hpp"

namespace vbatch {

ArgCheckReport check_args(sim::Device& dev, std::span<const ArgRule> rules,
                          std::span<int> info) {
  ArgCheckReport report;
  if (rules.empty()) return report;
  const int count = static_cast<int>(rules.front().a.size());

  // One sweep kernel reads every rule's arrays once.
  sim::LaunchConfig cfg;
  cfg.name = "aux_check_args";
  cfg.block_threads = 256;
  cfg.grid_blocks = std::max(1, (count + 255) / 256);
  cfg.precision = Precision::Single;
  const double bytes_per_elem = static_cast<double>(rules.size()) * 2.0 * sizeof(int);
  dev.launch(cfg, [count, bytes_per_elem](const sim::ExecContext&, int block) {
    sim::BlockCost c;
    const int lo = block * 256;
    const int elems = std::clamp(count - lo, 0, 256);
    c.active_threads = elems;
    c.live_threads = 256;
    c.flops = elems;
    c.bytes = elems * bytes_per_elem;
    c.sync_steps = 2;
    return c;
  });

  for (int i = 0; i < count; ++i) {
    for (const ArgRule& rule : rules) {
      const int a = rule.a[static_cast<std::size_t>(i)];
      bool bad = false;
      switch (rule.kind) {
        case ArgRule::Kind::NonNegative:
          bad = a < 0;
          break;
        case ArgRule::Kind::AtLeastOther:
          bad = a < std::max(1, rule.b[static_cast<std::size_t>(i)]);
          break;
        case ArgRule::Kind::EqualOther:
          bad = a != rule.b[static_cast<std::size_t>(i)];
          break;
      }
      if (!bad) continue;
      ++report.violations;
      if (report.first_matrix < 0) {
        report.first_matrix = i;
        report.first_argument = rule.argument_index;
        report.first_name = rule.name;
      }
      if (!info.empty()) info[static_cast<std::size_t>(i)] = -rule.argument_index;
      break;  // first offending rule per matrix, LAPACK style
    }
  }
  return report;
}

void require_args_ok(const ArgCheckReport& report, const char* routine) {
  if (report.ok()) return;
  throw_error(Status::InvalidArgument,
              std::string(routine) + ": parameter " + std::to_string(-report.first_argument) +
                  " (" + report.first_name + ") had an illegal value for " +
                  std::to_string(report.violations) + " matrices, first at batch index " +
                  std::to_string(report.first_matrix));
}

}  // namespace vbatch
