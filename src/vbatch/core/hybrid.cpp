#include "vbatch/core/hybrid.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
PotrfResult potrf_hybrid_sequence(Queue& q, const cpu::CpuSpec& cpu_spec, Uplo uplo,
                                  Batch<T>& batch, const HybridOptions& opts) {
  const auto& spec = q.spec();
  const Precision prec = precision_v<T>;
  const double pcie_lat = spec.pcie_latency_us * 1e-6;
  const double pcie_bw = spec.pcie_bandwidth_gbps * 1e9;
  const double launch = spec.kernel_launch_overhead_us * 1e-6;
  // GPU trailing updates on a *single* small matrix reach only a small
  // fraction of peak (few blocks in flight); ramp with the update size.
  const auto gpu_update_rate = [&](int m) {
    const double frac = std::min(1.0, static_cast<double>(m) * m / (1024.0 * 1024.0));
    return std::max(spec.peak_gflops(prec) * 1e9 * frac, 1e9);
  };

  PotrfResult result;
  result.path_taken = PotrfPath::Separated;
  result.flops = batch.potrf_flops();
  const int nb = opts.panel_nb;

  for (int i = 0; i < batch.count(); ++i) {
    const int n = batch.sizes()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    double t = 0.0;
    // Initial H2D transfer of the matrix, final D2H of the factor.
    t += 2.0 * (pcie_lat + static_cast<double>(n) * n * sizeof(T) / pcie_bw);
    for (int j = 0; j < n; j += nb) {
      const int jb = std::min(nb, n - j);
      const int m2 = n - j - jb;
      // Panel D2H, CPU potf2+trsm of the (n-j)×jb panel, panel H2D.
      const double panel_flops =
          flops::potrf(jb) + flops::trsm(m2, jb, false);
      t += 2.0 * (pcie_lat + static_cast<double>(n - j) * jb * sizeof(T) / pcie_bw);
      t += panel_flops / (cpu_spec.core_peak_gflops(prec) * 1e9 *
                          cpu_spec.lapack_efficiency(prec, jb));
      // GPU trailing update (syrk), one kernel launch per step.
      if (m2 > 0) {
        t += launch + flops::syrk(m2, jb) / gpu_update_rate(m2);
      }
    }
    result.seconds += t;

    if (q.full()) {
      auto a = batch.matrix(i);
      batch.info()[static_cast<std::size_t>(i)] = blas::potrf<T>(uplo, a);
    }
  }
  return result;
}

template PotrfResult potrf_hybrid_sequence<float>(Queue&, const cpu::CpuSpec&, Uplo,
                                                  Batch<float>&, const HybridOptions&);
template PotrfResult potrf_hybrid_sequence<double>(Queue&, const cpu::CpuSpec&, Uplo,
                                                   Batch<double>&, const HybridOptions&);

}  // namespace vbatch
