// The zero-padding adapter (paper §IV-F).
//
// "There exist libraries developed and optimized for batch computation but
// for fixed-size matrices only ... the users need to pad the matrices with
// zeros in order to make them fixed-size." This adapter does exactly that:
// it embeds each n_i×n_i matrix in the top-left corner of an Nmax×Nmax
// matrix whose remaining diagonal is the identity (keeping it SPD), runs
// the fixed-size batched factorization, and copies the factors back.
//
// The adapter allocates count×Nmax² device elements — which is what makes
// the paper's padding curves run out of GPU memory ("truncated due to
// running out of the GPU memory").
#pragma once

#include "vbatch/core/potrf_vbatched.hpp"

namespace vbatch {

struct PaddedPotrfResult {
  double seconds = 0.0;
  double useful_flops = 0.0;    ///< sum of per-matrix factorization flops
  double executed_flops = 0.0;  ///< count × potrf(Nmax) actually performed
  /// Effective rate on the paper's metric: useful flops over elapsed time.
  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? useful_flops / seconds * 1e-9 : 0.0;
  }
};

/// Factors a variable-size batch through zero-padding to max_n. Throws
/// Status::OutOfDeviceMemory when the padded copies exceed device memory.
/// In Full mode the factors are copied back into `batch`.
template <typename T>
PaddedPotrfResult potrf_vbatched_via_padding(Queue& q, Uplo uplo, Batch<T>& batch, int max_n,
                                             const PotrfOptions& opts = {});

}  // namespace vbatch
