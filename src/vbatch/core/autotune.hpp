// Offline autotuning for the vbatched Cholesky (paper §III-D: "We autotuned
// this kernel for all the possible sizes"; cf. Kurzak et al.'s tuning
// framework for batched Cholesky).
//
// The tuner sweeps candidate configurations — algorithmic path, fused
// blocking size, sorting window, streamed-vs-vbatched trailing update — on
// a (sub)sample of the target batch in TimingOnly mode, and returns the
// best configuration as ready-to-use PotrfOptions. Because the device model
// is deterministic, one sweep at "packaging and deployment at the user
// site" (paper §III) fixes the configuration for a workload class.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"

namespace vbatch {

struct TuneCandidate {
  PotrfOptions options;
  double gflops = 0.0;
  bool feasible = true;
  [[nodiscard]] std::string describe() const;
};

struct TuneResult {
  PotrfOptions best;                    ///< ready to pass to potrf_vbatched
  double best_gflops = 0.0;
  std::vector<TuneCandidate> candidates;  ///< the whole sweep, for inspection
};

struct TuneSettings {
  int max_sample = 512;   ///< cap on the metadata sample driving the sweep
  bool try_streamed = true;
  bool try_classic_etm = false;  ///< also sweep ETM-classic (normally dominated)
};

/// Tunes the configuration for factoring batches shaped like `sizes` on
/// the queue's device. Runs entirely in TimingOnly mode on an internal
/// device clone; the caller's queue is not touched.
template <typename T>
TuneResult autotune_potrf(const Queue& q, std::span<const int> sizes,
                          const TuneSettings& settings = {});

}  // namespace vbatch
