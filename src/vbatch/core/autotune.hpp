// Offline autotuning for the vbatched Cholesky (paper §III-D: "We autotuned
// this kernel for all the possible sizes"; cf. Kurzak et al.'s tuning
// framework for batched Cholesky).
//
// The tuner sweeps candidate configurations — algorithmic path, fused
// blocking size, sorting window, streamed-vs-vbatched trailing update — on
// a (sub)sample of the target batch in TimingOnly mode, and returns the
// best configuration as ready-to-use PotrfOptions. Because the device model
// is deterministic, one sweep at "packaging and deployment at the user
// site" (paper §III) fixes the configuration for a workload class.
// PR 6 extends the tuner to the host BLAS layer: CacheInfo probes the
// machine's cache hierarchy (sysfs, with conservative fallbacks), candidate
// register tiles and KC/MC/NC blocking depths are derived per precision from
// the Goto residency constraints, the shortlist is microbenchmarked through
// the packed engine, and the winning TuningProfile is persisted to
// ~/.cache/vbatch (VBATCH_TUNING_FILE overrides) so later runs load it
// instead of re-sweeping. See ensure_blas_tuned().
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "vbatch/blas/tuning.hpp"
#include "vbatch/core/potrf_vbatched.hpp"

namespace vbatch {

struct TuneCandidate {
  PotrfOptions options;
  double gflops = 0.0;
  bool feasible = true;
  [[nodiscard]] std::string describe() const;
};

struct TuneResult {
  PotrfOptions best;                    ///< ready to pass to potrf_vbatched
  double best_gflops = 0.0;
  std::vector<TuneCandidate> candidates;  ///< the whole sweep, for inspection
};

struct TuneSettings {
  int max_sample = 512;   ///< cap on the metadata sample driving the sweep
  bool try_streamed = true;
  bool try_classic_etm = false;  ///< also sweep ETM-classic (normally dominated)
};

/// Tunes the configuration for factoring batches shaped like `sizes` on
/// the queue's device. Runs entirely in TimingOnly mode on an internal
/// device clone; the caller's queue is not touched.
template <typename T>
TuneResult autotune_potrf(const Queue& q, std::span<const int> sizes,
                          const TuneSettings& settings = {});

/// Host cache hierarchy, in bytes per core (L3 shared). detect() reads
/// /sys/devices/system/cpu/cpu0/cache on Linux and falls back to
/// conservative defaults (32K/512K/8M) when sysfs is absent — fallback
/// values steer the blocking derivation safely on any machine.
struct CacheInfo {
  std::size_t l1d = 32 * 1024;
  std::size_t l2 = 512 * 1024;
  std::size_t l3 = 8 * 1024 * 1024;
  bool detected = false;  ///< true when at least L1d came from the OS
  [[nodiscard]] static CacheInfo detect();
};

/// One measured candidate of the BLAS sweep, kept for inspection.
struct BlasTuneCandidate {
  int type = 0;  ///< scalar-type index: float, double, cfloat, cdouble
  blas::micro::KernelShape shape;
  double gflops = 0.0;
};

struct BlasTuneSettings {
  index_t bench_n = 192;  ///< NT-gemm order of the microbenchmark
  int reps = 3;           ///< best-of reps per candidate
  bool use_cache_file = true;  ///< load a persisted profile / save the winner
  std::string cache_path;      ///< override; empty = blas::micro::tuning_cache_path
  bool verbose = false;        ///< log every candidate to stderr
};

struct BlasTuneResult {
  blas::micro::TuningProfile profile;  ///< the installed profile
  bool loaded_from_cache = false;      ///< true: no sweep ran this process
  std::string cache_path;              ///< file consulted / written
  CacheInfo cache;                     ///< hierarchy the derivation used
  int candidates_swept = 0;            ///< 0 when loaded_from_cache
  std::vector<BlasTuneCandidate> candidates;
};

/// Ensures the process's micro-kernel TuningProfile is tuned for this host
/// and the active ISA: loads the persisted profile when a valid one exists
/// (rejecting corrupted files and stale format versions with a re-tune),
/// otherwise derives tile/blocking candidates from the cache hierarchy,
/// microbenchmarks the shortlist, installs the winner and persists it.
/// Every blocking decision downstream is a pure function of the installed
/// profile, so a reloaded profile reproduces the tuned run's factors byte
/// for byte.
BlasTuneResult ensure_blas_tuned(const BlasTuneSettings& settings = {});

}  // namespace vbatch
