// The MAGMA hybrid CPU+GPU baseline (paper §II, §IV-F).
//
// Hybrid one-sided factorizations process one matrix at a time: the panel
// is factored on the CPU while the GPU applies the trailing-matrix updates,
// with panel transfers over PCIe in between. For large single matrices this
// wins; for a batch of small matrices the per-step transfer latencies and
// kernel launches cannot be hidden, which is why the paper shows it as the
// weakest alternative ("obviously ... not the correct choice for this type
// of workload").
#pragma once

#include <span>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/cpu/perf_model.hpp"

namespace vbatch {

struct HybridOptions {
  int panel_nb = 128;  ///< hybrid panel width
};

/// Factors the batch one matrix at a time with the hybrid algorithm.
/// Numerics run on the host in Full mode; the reported seconds combine the
/// CPU panel model, PCIe transfers and the GPU update kernels.
template <typename T>
PotrfResult potrf_hybrid_sequence(Queue& q, const cpu::CpuSpec& cpu_spec, Uplo uplo,
                                  Batch<T>& batch, const HybridOptions& opts = {});

}  // namespace vbatch
