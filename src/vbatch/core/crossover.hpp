// Crossover policy between the fused and separated approaches (paper §IV-E).
//
// "For the test cases generated here, the crossover point is marked by the
// maximum size in the batch. The reason behind choosing the maximum as the
// deciding criteria is that the kernel fusion approach cannot work for any
// matrix size, due to its shared memory requirements."
#pragma once

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch {

/// Hard feasibility bound: the largest max-size the fused kernel can launch
/// at all for this precision (shared memory + thread-count limits).
[[nodiscard]] int fused_feasible_max(const sim::DeviceSpec& spec, Precision prec);

/// Performance crossover: below this max-size the fused approach wins;
/// above it the separated vbatched BLAS approach takes over. Values are
/// calibrated against bench/fig07_crossover (see EXPERIMENTS.md).
[[nodiscard]] int crossover_max_size(const sim::DeviceSpec& spec, Precision prec);

/// The decision: true = run fused, false = run separated.
[[nodiscard]] bool use_fused(const sim::DeviceSpec& spec, Precision prec, int max_n,
                             int override_crossover = 0);

}  // namespace vbatch
