#include "vbatch/core/geqrf_vbatched.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/geqrf_kernels.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
TauArrays<T>::TauArrays(Queue& q, std::span<const int> mn)
    : queue_(&q), ptrs_(mn.size()), lengths_(mn.begin(), mn.end()) {
  std::size_t total = 0;
  for (int v : mn) total += static_cast<std::size_t>(std::max(0, v));
  slab_ = q.device().device_malloc(std::max<std::size_t>(1, total) * sizeof(T));
  T* base = static_cast<T*>(slab_);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < mn.size(); ++i) {
    ptrs_[i] = base + offset;
    offset += static_cast<std::size_t>(std::max(0, mn[i]));
  }
}

template <typename T>
TauArrays<T>::~TauArrays() {
  if (slab_ != nullptr) queue_->device().device_free(slab_);
}

template <typename T>
std::span<const T> TauArrays<T>::tau(int i) const noexcept {
  return {ptrs_[static_cast<std::size_t>(i)],
          static_cast<std::size_t>(std::max(0, lengths_[static_cast<std::size_t>(i)]))};
}

template <typename T>
FactorResult geqrf_vbatched(Queue& q, RectBatch<T>& batch, TauArrays<T>& tau,
                            const GeqrfOptions& opts) {
  sim::Device& dev = q.device();
  const int count = batch.count();
  const int NB = std::max(8, opts.panel_nb);
  const auto m = batch.rows();
  const auto n = batch.cols();
  const auto lda = batch.ldas();

  FactorResult result;
  result.flops = flops::geqrf_batch(m, n);

  std::vector<int> mn(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    mn[static_cast<std::size_t>(i)] =
        std::min(m[static_cast<std::size_t>(i)], n[static_cast<std::size_t>(i)]);
  // All three maxima come from one metadata sweep instead of three
  // back-to-back reduction launches.
  const auto [max_mn, max_m, max_n] = kernels::imax_reduce3(dev, mn, m, n);
  if (max_mn == 0) return result;

  double seconds = 0.0;
  for (int j = 0; j < max_mn; j += NB) {
    if (kernels::count_live(dev, mn, j) == 0) break;

    kernels::GeqrfPanelArgs<T> panel;
    panel.a = batch.device_ptrs();
    panel.lda = lda;
    panel.m = m;
    panel.n = n;
    panel.offset = j;
    panel.NB = NB;
    panel.tau = tau.ptrs();
    seconds += kernels::launch_geqrf_panel(dev, panel);

    if (max_n - j - NB > 0) {
      kernels::LarfbArgs<T> update;
      update.a = batch.device_ptrs();
      update.lda = lda;
      update.m = m;
      update.n = n;
      update.offset = j;
      update.NB = NB;
      update.max_m = max_m;
      update.max_n = max_n - j - NB;
      update.tau = tau.ptrs();
      seconds += kernels::launch_larfb_update(dev, update);
    }
  }
  result.seconds = seconds;
  return result;
}

namespace {

// Shared kernel for ormqr (apply Qᵀ) with an optional fused R-backsolve
// (the geqrs case). One block per (matrix, rhs strip).
template <typename T>
FactorResult apply_qt_kernel(Queue& q, RectBatch<T>& factors, const TauArrays<T>& tau,
                             RectBatch<T>& rhs, bool backsolve, const char* name) {
  require(factors.count() == rhs.count(), "ormqr/geqrs: batch count mismatch");
  const int count = factors.count();
  sim::Device& dev = q.device();

  int max_m = 0, max_rhs = 0;
  double total_flops = 0.0;
  for (int i = 0; i < count; ++i) {
    const int mi = factors.rows()[static_cast<std::size_t>(i)];
    const int ni = factors.cols()[static_cast<std::size_t>(i)];
    require(mi >= ni, "ormqr/geqrs: requires m >= n");
    require(rhs.rows()[static_cast<std::size_t>(i)] == mi, "ormqr/geqrs: rhs rows != m");
    max_m = std::max(max_m, mi);
    max_rhs = std::max(max_rhs, rhs.cols()[static_cast<std::size_t>(i)]);
    const int nrhs = rhs.cols()[static_cast<std::size_t>(i)];
    total_flops += 4.0 * mi * ni * nrhs;  // reflector applications
    if (backsolve) total_flops += flops::trsm(ni, nrhs, true);
  }

  FactorResult result;
  result.flops = total_flops;
  if (max_m == 0 || max_rhs == 0) return result;

  const int strip = 8;
  const int strips = (max_rhs + strip - 1) / strip;

  sim::LaunchConfig cfg;
  cfg.name = name;
  cfg.grid_blocks = count * strips;
  cfg.block_threads = kernels::round_up_warp(dev.spec(), std::min(max_m, 512));
  cfg.shared_mem = std::min<std::size_t>(
      static_cast<std::size_t>(std::min(max_m, 512)) * strip * sizeof(T),
      dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  auto frows = factors.rows();
  auto fcols = factors.cols();
  auto fldas = factors.ldas();
  T** fptrs = factors.device_ptrs();
  auto rcols = rhs.cols();
  auto rldas = rhs.ldas();
  T** rptrs = rhs.device_ptrs();
  T* const* tptrs = tau.ptrs();

  result.seconds = dev.launch(cfg, [&, backsolve, threads = cfg.block_threads](
                                       const sim::ExecContext& ctx, int block) {
    const int i = block / strips;
    const index_t s = block % strips;
    const index_t m = frows[static_cast<std::size_t>(i)];
    const index_t n = fcols[static_cast<std::size_t>(i)];
    const index_t c0 = s * strip;
    const index_t nrhs = rcols[static_cast<std::size_t>(i)];

    sim::BlockCost cost;
    cost.live_threads = threads;
    if (m == 0 || n == 0 || c0 >= nrhs) {
      cost.early_exit = true;
      return cost;
    }

    const index_t nc = std::min<index_t>(strip, nrhs - c0);
    cost.active_threads = static_cast<int>(std::min<index_t>(m, threads));
    cost.flops = 4.0 * static_cast<double>(m) * static_cast<double>(n) *
                 static_cast<double>(nc);
    cost.bytes = static_cast<double>(m * n + 2 * m * nc) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * n);      // per-reflector dot + axpy
    cost.serial_ops = static_cast<double>(n);
    if (backsolve) {
      cost.flops += flops::trsm(n, nc, true);
      cost.sync_steps += static_cast<int>(n);
      cost.serial_ops += static_cast<double>(n);
    }

    if (ctx.full()) {
      const index_t lda = fldas[static_cast<std::size_t>(i)];
      const index_t ldb = rldas[static_cast<std::size_t>(i)];
      const T* A = fptrs[i];
      T* B = rptrs[i] + c0 * ldb;
      const T* tv = tptrs[i];
      // Apply H(0) … H(n-1) to the strip: Qᵀ = H(n-1)…H(0) applied in
      // ascending order.
      for (index_t kk = 0; kk < n; ++kk) {
        const T tk = tv[kk];
        if (tk == T(0)) continue;
        const T* v = A + kk + kk * lda;  // v(0) implicit 1
        for (index_t c = 0; c < nc; ++c) {
          T* col = B + c * ldb;
          T w = col[kk];
          for (index_t r = kk + 1; r < m; ++r) w += v[r - kk] * col[r];
          w *= tk;
          col[kk] -= w;
          for (index_t r = kk + 1; r < m; ++r) col[r] -= v[r - kk] * w;
        }
      }
      if (backsolve) {
        ConstMatrixView<T> R(A, n, n, lda);
        MatrixView<T> x(B, n, nc, ldb);
        blas::trsm<T>(Side::Left, Uplo::Upper, Trans::NoTrans, Diag::NonUnit, T(1), R, x);
      }
    }
    return cost;
  });
  return result;
}

}  // namespace

template <typename T>
FactorResult ormqr_vbatched(Queue& q, RectBatch<T>& factors, const TauArrays<T>& tau,
                            RectBatch<T>& c) {
  return apply_qt_kernel<T>(q, factors, tau, c, false, "vbatched_ormqr");
}

template <typename T>
FactorResult geqrs_vbatched(Queue& q, RectBatch<T>& factors, const TauArrays<T>& tau,
                            RectBatch<T>& rhs) {
  return apply_qt_kernel<T>(q, factors, tau, rhs, true, "vbatched_geqrs");
}

template class TauArrays<float>;
template class TauArrays<double>;
template FactorResult geqrf_vbatched<float>(Queue&, RectBatch<float>&, TauArrays<float>&,
                                            const GeqrfOptions&);
template FactorResult geqrf_vbatched<double>(Queue&, RectBatch<double>&, TauArrays<double>&,
                                             const GeqrfOptions&);
template FactorResult ormqr_vbatched<float>(Queue&, RectBatch<float>&, const TauArrays<float>&,
                                            RectBatch<float>&);
template FactorResult ormqr_vbatched<double>(Queue&, RectBatch<double>&,
                                             const TauArrays<double>&, RectBatch<double>&);
template FactorResult geqrs_vbatched<float>(Queue&, RectBatch<float>&, const TauArrays<float>&,
                                            RectBatch<float>&);
template FactorResult geqrs_vbatched<double>(Queue&, RectBatch<double>&,
                                             const TauArrays<double>&, RectBatch<double>&);

}  // namespace vbatch
