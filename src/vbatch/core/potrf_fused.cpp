// Approach 1 driver: the fused-kernel vbatched Cholesky (paper §III-D).
//
// Without implicit sorting the driver walks factorization steps globally:
// every step launches the fused kernel over the whole batch, with block
// width shaped by the largest *remaining* panel height; finished matrices
// terminate through the selected ETM.
//
// With implicit sorting the driver walks "active size" windows from the
// largest sizes downward (window width defaults to nb): each window's
// matrices form a ready queue processed as a sub-batch of nearly similar
// sizes, improving occupancy and wave balance (§III-D2).
#include <algorithm>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::detail {

namespace {

template <typename T>
double run_steps(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob,
                 std::span<const int> active, int local_max, EtmMode etm, int nb) {
  double seconds = 0.0;
  const auto& spec = q.spec();
  kernels::FusedStepArgs<T> args;
  args.batch = {prob.ptrs, prob.n, prob.lda};
  args.active = active;
  args.uplo = uplo;
  args.nb = nb;
  args.etm = etm;
  args.info = prob.info;

  for (int step = 0; step * nb < local_max; ++step) {
    const int max_m = local_max - step * nb;  // largest possible panel height
    args.step = step;
    args.block_threads = kernels::round_up_warp(spec, max_m);
    seconds += kernels::launch_fused_step(q.device(), args);
  }
  return seconds;
}

}  // namespace

template <typename T>
double potrf_fused_run(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                       EtmMode etm, bool sorting, int nb, int sort_window) {
  require(max_n >= 1, "potrf_fused: max_n must be positive");
  if (nb <= 0) nb = kernels::choose_fused_nb(q.spec(), max_n, sizeof(T));
  require(max_n <= kernels::fused_max_size(q.spec(), nb, sizeof(T)),
          "potrf_fused: batch exceeds the fused kernel's shared-memory bound");

  if (!sorting) {
    return run_steps<T>(q, uplo, prob, {}, max_n, etm, nb);
  }

  // Implicit sorting (§III-D2): at every factorization step, a window of
  // "active sizes" walks down from the largest remaining size; the matrices
  // inside each window form a ready queue launched together, so every
  // launch covers blocks of nearly similar sizes with a block width shaped
  // to the window instead of to the global maximum. The window width is nb
  // by default, widened (in nb quanta) so one step needs at most a handful
  // of launches.
  const auto& spec = q.spec();
  double seconds = 0.0;
  std::vector<int> prefix;
  std::vector<std::vector<int>> windows(4);
  kernels::FusedStepArgs<T> args;
  args.batch = {prob.ptrs, prob.n, prob.lda};
  args.uplo = uplo;
  args.nb = nb;
  args.etm = etm;
  args.info = prob.info;

  for (int step = 0; step * nb < max_n; ++step) {
    const int j = step * nb;
    const int live_max = max_n - j;  // largest possible remaining panel height
    args.step = step;

    // While the remaining panels are tall (or the kernel runs at its
    // narrowest blocking, i.e. near its shared-memory feasibility edge),
    // every block is slot-starved anyway and splitting the step into
    // per-window launches only fragments the schedule; the step then runs
    // as a single ready-queue launch covering exactly the live matrices.
    // The windows pay off once blocks are short enough that occupancy
    // (tight block widths) is the lever.
    if (live_max > 4 * 64 || nb < 16) {
      seconds += kernels::build_size_window(q.device(), prob.n, j, max_n, prefix);
      if (prefix.empty()) break;
      args.active = prefix;
      args.block_threads = kernels::round_up_warp(spec, live_max);
      seconds += kernels::launch_fused_step(q.device(), args);
      continue;
    }

    // Ready-queue windows, at most 4 per step, built in one aux sweep.
    int width = sort_window > 0 ? sort_window : nb;
    const int min_width = ((live_max / 4 + nb - 1) / nb) * nb;
    width = std::max(width, std::max(nb, min_width));
    seconds += kernels::build_size_partition(q.device(), prob.n, j, live_max, width, windows);

    int hi = live_max;
    for (const auto& window : windows) {
      if (!window.empty()) {
        args.active = window;
        args.block_threads = kernels::round_up_warp(spec, hi);
        seconds += kernels::launch_fused_step(q.device(), args);
      }
      hi = std::max(0, hi - width);
    }
  }
  return seconds;
}

template double potrf_fused_run<float>(Queue&, Uplo, const VbatchedProblem<float>&, int,
                                       EtmMode, bool, int, int);
template double potrf_fused_run<double>(Queue&, Uplo, const VbatchedProblem<double>&, int,
                                        EtmMode, bool, int, int);
template double potrf_fused_run<std::complex<float>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<float>>&, int, EtmMode, bool, int, int);
template double potrf_fused_run<std::complex<double>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<double>>&, int, EtmMode, bool, int, int);

}  // namespace vbatch::detail
