#include "vbatch/core/batch.hpp"

#include <algorithm>
#include <numeric>

#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
Batch<T>::Batch(Queue& q, std::span<const int> sizes, int lda_pad)
    : queue_(&q),
      n_(q, sizes.size()),
      lda_(q, sizes.size()),
      ptrs_(q, sizes.size()),
      info_(q, sizes.size()) {
  require(!sizes.empty(), "Batch: empty size list");
  require(lda_pad >= 0, "Batch: negative lda pad");
  std::size_t total = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    require(sizes[i] >= 0, "Batch: negative matrix size");
    n_.host()[i] = sizes[i];
    lda_.host()[i] = std::max(1, sizes[i] + lda_pad);
    info_.host()[i] = 0;
    total += static_cast<std::size_t>(lda_.host()[i]) * static_cast<std::size_t>(sizes[i]);
  }
  slab_ = q.device().device_malloc(std::max<std::size_t>(1, total) * sizeof(T));
  T* base = static_cast<T*>(slab_);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ptrs_.host()[i] = base + offset;
    offset += static_cast<std::size_t>(lda_.host()[i]) * static_cast<std::size_t>(sizes[i]);
  }
}

template <typename T>
Batch<T> Batch<T>::fixed(Queue& q, int count, int n) {
  std::vector<int> sizes(static_cast<std::size_t>(count), n);
  return Batch(q, sizes);
}

template <typename T>
Batch<T>::~Batch() {
  if (slab_ != nullptr) queue_->device().device_free(slab_);
}

template <typename T>
Batch<T>::Batch(Batch&& other) noexcept
    : queue_(other.queue_),
      n_(std::move(other.n_)),
      lda_(std::move(other.lda_)),
      ptrs_(std::move(other.ptrs_)),
      info_(std::move(other.info_)),
      slab_(other.slab_) {
  other.slab_ = nullptr;
}

template <typename T>
int Batch<T>::max_size() const noexcept {
  int m = 0;
  for (int v : n_.host()) m = std::max(m, v);
  return m;
}

template <typename T>
double Batch<T>::potrf_flops() const noexcept {
  return flops::potrf_batch(n_.host());
}

template <typename T>
void Batch<T>::fill_spd(Rng& rng) {
  if (!queue_->full()) return;
  for (int i = 0; i < count(); ++i) {
    const int n = n_.host()[static_cast<std::size_t>(i)];
    if (n > 0) fill_spd_impl(rng, i, n);
  }
}

template <typename T>
MatrixView<T> Batch<T>::matrix(int i) noexcept {
  const int n = n_.host()[static_cast<std::size_t>(i)];
  return MatrixView<T>(ptrs_.host()[static_cast<std::size_t>(i)], n, n,
                       lda_.host()[static_cast<std::size_t>(i)]);
}

template <typename T>
std::vector<T> Batch<T>::copy_matrix(int i) const {
  require(queue_->full(), "copy_matrix requires Full execution mode");
  const int n = n_.host()[static_cast<std::size_t>(i)];
  const int lda = lda_.host()[static_cast<std::size_t>(i)];
  const T* src = ptrs_.host()[static_cast<std::size_t>(i)];
  std::vector<T> out(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    for (int r = 0; r < n; ++r)
      out[static_cast<std::size_t>(r) + static_cast<std::size_t>(j) * static_cast<std::size_t>(n)] =
          src[r + static_cast<std::ptrdiff_t>(j) * lda];
  return out;
}

// Private helper kept out of the header: SPD fill for one matrix.
template <typename T>
void Batch<T>::fill_spd_impl(Rng& rng, int i, int n) {
  vbatch::fill_spd<T>(rng, ptrs_.host()[static_cast<std::size_t>(i)], n,
                      lda_.host()[static_cast<std::size_t>(i)]);
}

// --- RectBatch --------------------------------------------------------------

template <typename T>
RectBatch<T>::RectBatch(Queue& q, std::span<const int> m, std::span<const int> n)
    : queue_(&q),
      m_(q, m.size()),
      n_(q, n.size()),
      lda_(q, m.size()),
      ptrs_(q, m.size()),
      info_(q, m.size()) {
  require(!m.empty() && m.size() == n.size(), "RectBatch: bad dimension arrays");
  std::size_t total = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    require(m[i] >= 0 && n[i] >= 0, "RectBatch: negative dimension");
    m_.host()[i] = m[i];
    n_.host()[i] = n[i];
    lda_.host()[i] = std::max(1, m[i]);
    info_.host()[i] = 0;
    total += static_cast<std::size_t>(lda_.host()[i]) * static_cast<std::size_t>(n[i]);
  }
  slab_ = q.device().device_malloc(std::max<std::size_t>(1, total) * sizeof(T));
  T* base = static_cast<T*>(slab_);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    ptrs_.host()[i] = base + offset;
    offset += static_cast<std::size_t>(lda_.host()[i]) * static_cast<std::size_t>(n_.host()[i]);
  }
}

template <typename T>
RectBatch<T>::~RectBatch() {
  if (slab_ != nullptr) queue_->device().device_free(slab_);
}

template <typename T>
RectBatch<T>::RectBatch(RectBatch&& other) noexcept
    : queue_(other.queue_),
      m_(std::move(other.m_)),
      n_(std::move(other.n_)),
      lda_(std::move(other.lda_)),
      ptrs_(std::move(other.ptrs_)),
      info_(std::move(other.info_)),
      slab_(other.slab_) {
  other.slab_ = nullptr;
}

template <typename T>
void RectBatch<T>::fill_general(Rng& rng) {
  if (!queue_->full()) return;
  for (int i = 0; i < count(); ++i) {
    vbatch::fill_general<T>(rng, ptrs_.host()[static_cast<std::size_t>(i)],
                            m_.host()[static_cast<std::size_t>(i)],
                            n_.host()[static_cast<std::size_t>(i)],
                            lda_.host()[static_cast<std::size_t>(i)]);
  }
}

template <typename T>
MatrixView<T> RectBatch<T>::matrix(int i) noexcept {
  return MatrixView<T>(ptrs_.host()[static_cast<std::size_t>(i)],
                       m_.host()[static_cast<std::size_t>(i)],
                       n_.host()[static_cast<std::size_t>(i)],
                       lda_.host()[static_cast<std::size_t>(i)]);
}

template <typename T>
std::vector<T> RectBatch<T>::copy_matrix(int i) const {
  require(queue_->full(), "copy_matrix requires Full execution mode");
  const int m = m_.host()[static_cast<std::size_t>(i)];
  const int n = n_.host()[static_cast<std::size_t>(i)];
  const int lda = lda_.host()[static_cast<std::size_t>(i)];
  const T* src = ptrs_.host()[static_cast<std::size_t>(i)];
  std::vector<T> out(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    for (int r = 0; r < m; ++r)
      out[static_cast<std::size_t>(r) + static_cast<std::size_t>(j) * static_cast<std::size_t>(m)] =
          src[r + static_cast<std::ptrdiff_t>(j) * lda];
  return out;
}

template class Batch<float>;
template class Batch<double>;
template class Batch<std::complex<float>>;
template class Batch<std::complex<double>>;
template class RectBatch<float>;
template class RectBatch<double>;
template class RectBatch<std::complex<float>>;
template class RectBatch<std::complex<double>>;

}  // namespace vbatch
