// Matrix-size distribution generators (paper §IV-B, Fig. 3).
//
// The paper's two pseudo-random generators shape the vbatched test batches:
// a uniform distribution over [1, Nmax] and a Gaussian centred at ⌊Nmax/2⌋
// with few sizes near the interval boundaries. Two stress shapes extend the
// pair for the end-to-end benches: Skewed (a right-tailed log-uniform pile
// of small matrices with rare large ones — the irregular workloads the
// paper's Fig. 10 sweeps) and Cluster (a few tight size groups, the shape a
// fixed-size batched library would bucket by).
#pragma once

#include <cstdint>
#include <vector>

#include "vbatch/util/rng.hpp"

namespace vbatch {

enum class SizeDist : std::uint8_t { Uniform, Gaussian, Skewed, Cluster };

[[nodiscard]] constexpr const char* to_string(SizeDist d) noexcept {
  switch (d) {
    case SizeDist::Uniform: return "uniform";
    case SizeDist::Gaussian: return "gaussian";
    case SizeDist::Skewed: return "skewed";
    case SizeDist::Cluster: return "cluster";
  }
  return "?";
}

/// Sizes drawn uniformly from [1, nmax].
[[nodiscard]] std::vector<int> uniform_sizes(Rng& rng, int count, int nmax);

/// Sizes drawn from N(⌊nmax/2⌋, (nmax/6)²), clamped to [1, nmax].
[[nodiscard]] std::vector<int> gaussian_sizes(Rng& rng, int count, int nmax);

/// Right-tailed sizes: exp(U · ln nmax) rounded, i.e. log-uniform over
/// [1, nmax] — most matrices small, a thin tail of large ones.
[[nodiscard]] std::vector<int> skewed_sizes(Rng& rng, int count, int nmax);

/// Sizes drawn from 4 tight clusters centred at ~{0.2, 0.45, 0.7, 0.95}·nmax
/// with ±5% jitter, clamped to [1, nmax].
[[nodiscard]] std::vector<int> cluster_sizes(Rng& rng, int count, int nmax);

/// Dispatch on the enum.
[[nodiscard]] std::vector<int> make_sizes(SizeDist dist, Rng& rng, int count, int nmax);

/// Simple summary statistics used by tests and Fig. 3's bench.
struct SizeStats {
  double mean = 0.0;
  double stddev = 0.0;
  int min = 0;
  int max = 0;
};
[[nodiscard]] SizeStats size_stats(const std::vector<int>& sizes);

}  // namespace vbatch
