// Matrix-size distribution generators (paper §IV-B, Fig. 3).
//
// Two pseudo-random generators shape the vbatched test batches: a uniform
// distribution over [1, Nmax] and a Gaussian centred at ⌊Nmax/2⌋ with few
// sizes near the interval boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "vbatch/util/rng.hpp"

namespace vbatch {

enum class SizeDist : std::uint8_t { Uniform, Gaussian };

[[nodiscard]] constexpr const char* to_string(SizeDist d) noexcept {
  return d == SizeDist::Uniform ? "uniform" : "gaussian";
}

/// Sizes drawn uniformly from [1, nmax].
[[nodiscard]] std::vector<int> uniform_sizes(Rng& rng, int count, int nmax);

/// Sizes drawn from N(⌊nmax/2⌋, (nmax/6)²), clamped to [1, nmax].
[[nodiscard]] std::vector<int> gaussian_sizes(Rng& rng, int count, int nmax);

/// Dispatch on the enum.
[[nodiscard]] std::vector<int> make_sizes(SizeDist dist, Rng& rng, int count, int nmax);

/// Simple summary statistics used by tests and Fig. 3's bench.
struct SizeStats {
  double mean = 0.0;
  double stddev = 0.0;
  int min = 0;
  int max = 0;
};
[[nodiscard]] SizeStats size_stats(const std::vector<int>& sizes);

}  // namespace vbatch
