// vbatched LU factorization with partial pivoting — the first of the
// paper's announced extensions (§V): the driver reuses the vbatched gemm
// foundation out of the box and adds LU-specific panel/pivot kernels.
//
// Restricted to square matrices (the batched-solver use case); the
// rectangular generalization only changes the trailing-extent bookkeeping.
#pragma once

#include <span>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/queue.hpp"

namespace vbatch {

/// Owner of per-matrix pivot arrays (a device int slab + pointer array).
class PivotArrays {
 public:
  PivotArrays(Queue& q, std::span<const int> mn);
  ~PivotArrays();
  PivotArrays(const PivotArrays&) = delete;
  PivotArrays& operator=(const PivotArrays&) = delete;

  [[nodiscard]] int* const* ptrs() const noexcept { return ptrs_.data(); }
  [[nodiscard]] std::span<const int> pivots(int i) const noexcept;

 private:
  Queue* queue_;
  void* slab_;
  std::vector<int*> ptrs_;
  std::vector<int> lengths_;
};

struct GetrfOptions {
  int panel_nb = 32;
};

struct FactorResult {
  double seconds = 0.0;
  double flops = 0.0;
  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// Factors every (square) matrix in the batch as P·A = L·U. Pivots land in
/// `ipiv` (global 1-based row indices), statuses in batch.info().
template <typename T>
FactorResult getrf_vbatched(Queue& q, Batch<T>& batch, PivotArrays& ipiv,
                            const GetrfOptions& opts = {});

/// Solves A_i X_i = B_i from the LU factors (xGETRS): applies the row
/// interchanges to each right-hand side, then the unit-lower and upper
/// triangular sweeps, one fused kernel block per (matrix, rhs strip).
/// Matrices whose factorization reported info != 0 are skipped.
template <typename T>
FactorResult getrs_vbatched(Queue& q, Batch<T>& factors, const PivotArrays& ipiv,
                            RectBatch<T>& rhs);

}  // namespace vbatch
