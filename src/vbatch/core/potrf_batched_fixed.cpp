#include "vbatch/core/potrf_batched_fixed.hpp"

#include "vbatch/util/error.hpp"

namespace vbatch {

template <typename T>
PotrfResult potrf_batched_fixed(Queue& q, Uplo uplo, Batch<T>& batch,
                                const PotrfOptions& opts) {
  const auto sizes = batch.sizes();
  const int n = sizes.front();
  for (int s : sizes) require(s == n, "potrf_batched_fixed: sizes differ (use potrf_vbatched)");

  // Fixed-size batches need neither implicit sorting (all sizes equal) nor
  // per-size windows; the ETM never fires except on potf2 failures.
  PotrfOptions fixed = opts;
  fixed.implicit_sorting = false;
  return potrf_vbatched_max<T>(q, uplo, batch, n, fixed);
}

template PotrfResult potrf_batched_fixed<float>(Queue&, Uplo, Batch<float>&,
                                                const PotrfOptions&);
template PotrfResult potrf_batched_fixed<double>(Queue&, Uplo, Batch<double>&,
                                                 const PotrfOptions&);
template PotrfResult potrf_batched_fixed<std::complex<float>>(
    Queue&, Uplo, Batch<std::complex<float>>&, const PotrfOptions&);
template PotrfResult potrf_batched_fixed<std::complex<double>>(
    Queue&, Uplo, Batch<std::complex<double>>&, const PotrfOptions&);

}  // namespace vbatch
