// Approach 2 driver: separated vbatched BLAS kernels (paper §III-E, §III-F).
//
// The "factorization driver" runs on the host and controls the launches of
// the vbatched building blocks for a right-looking blocked Cholesky:
//   potf2 (NB panel, reusing the fused kernel internally) → trsm (trtri of
//   32×32 diagonal blocks + gemm sweeps) → syrk trailing update (vbatched
//   grid or streamed per-matrix kernels).
// Between steps, auxiliary kernels shift the size arrays and displace the
// pointer arrays so fully factorized matrices are ignored without
// out-of-bound accesses.
#include <algorithm>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"
#include "vbatch/kernels/potf2_panel.hpp"
#include "vbatch/kernels/trsm_vbatched.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::detail {

/// Panel blocking for the separated path: the largest square panel the
/// potf2 kernel can stage, rounded to the trtri block quantum.
int default_separated_nb(std::size_t elem_size) noexcept {
  return elem_size == sizeof(double) ? 64 : 96;
}

template <typename T>
double potrf_separated_run(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                           int NB, bool streamed_syrk, int num_streams) {
  require(max_n >= 1, "potrf_separated: max_n must be positive");
  if (NB <= 0) NB = default_separated_nb(sizeof(T));
  const int batch = prob.count();
  sim::Device& dev = q.device();
  double seconds = 0.0;

  // Workspace: per-matrix NB×NB buffer for the inverted diagonal blocks of
  // the trsm (freed at the end of the call).
  void* inv_slab = dev.device_malloc(static_cast<std::size_t>(batch) * NB * NB * sizeof(T));
  T* inv_base = static_cast<T*>(inv_slab);
  std::vector<T*> inv_ptrs(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i)
    inv_ptrs[static_cast<std::size_t>(i)] = inv_base + static_cast<std::size_t>(i) * NB * NB;

  std::vector<int> trail_m(static_cast<std::size_t>(batch));
  std::vector<int> trail_ib(static_cast<std::size_t>(batch));
  // Displaced-pointer scratch, reused across panel steps (one buffer per
  // operand for the whole call instead of three allocations per step).
  std::vector<T*> diag_ptrs, sub_ptrs, trail_ptrs;

  for (int j = 0; j < max_n; j += NB) {
    // §III-F: the driver checks whether any matrix still has work; fully
    // factorized matrices are ignored from here on.
    if (kernels::count_live(dev, prob.n, j) == 0) break;

    kernels::Potf2PanelArgs<T> panel;
    panel.batch = {prob.ptrs, prob.n, prob.lda};
    panel.uplo = uplo;
    panel.offset = j;
    panel.NB = NB;
    panel.nb_inner = 16;
    panel.info = prob.info;
    seconds += kernels::launch_potf2_panel(dev, panel);

    const int max_m2 = max_n - j - NB;
    if (max_m2 <= 0) continue;

    // Trailing extents: only matrices with n_i > j + NB have a trailing
    // part, and for those the panel is exactly NB wide.
    seconds += kernels::shift_sizes(dev, prob.n, trail_m, j + NB);
    int live_trailing = 0;
    for (int i = 0; i < batch; ++i) {
      trail_ib[static_cast<std::size_t>(i)] = trail_m[static_cast<std::size_t>(i)] > 0 ? NB : 0;
      if (trail_m[static_cast<std::size_t>(i)] > 0) ++live_trailing;
    }
    if (live_trailing == 0) continue;

    std::span<T* const> base{prob.ptrs, static_cast<std::size_t>(batch)};
    kernels::displace_ptrs<T>(dev, base, prob.lda, j, j, diag_ptrs);
    if (uplo == Uplo::Lower) {
      kernels::displace_ptrs<T>(dev, base, prob.lda, j + NB, j, sub_ptrs);
    } else {
      kernels::displace_ptrs<T>(dev, base, prob.lda, j, j + NB, sub_ptrs);
    }
    kernels::displace_ptrs<T>(dev, base, prob.lda, j + NB, j + NB, trail_ptrs);

    kernels::TrsmVbatchedArgs<T> trsm;
    trsm.uplo = uplo;
    trsm.a = diag_ptrs.data();
    trsm.lda = prob.lda;
    trsm.ib = trail_ib;
    trsm.b = sub_ptrs.data();
    trsm.ldb = prob.lda;
    trsm.m = trail_m;
    trsm.max_ib = NB;
    trsm.max_m = max_m2;
    trsm.inv = inv_ptrs.data();
    trsm.inv_ld = NB;
    seconds += kernels::launch_trsm_vbatched(dev, trsm);

    kernels::SyrkVbatchedArgs<T> syrk;
    syrk.uplo = uplo;
    syrk.trans = uplo == Uplo::Lower ? Trans::NoTrans : Trans::Trans;
    syrk.n = trail_m;
    syrk.k = trail_ib;
    syrk.max_n = max_m2;
    syrk.alpha = T(-1);
    syrk.beta = T(1);
    syrk.a = sub_ptrs.data();
    syrk.lda = prob.lda;
    syrk.c = trail_ptrs.data();
    syrk.ldc = prob.lda;
    if (streamed_syrk) {
      seconds += kernels::launch_syrk_streamed(dev, syrk, num_streams);
    } else {
      seconds += kernels::launch_syrk_vbatched(dev, syrk);
    }
  }

  dev.device_free(inv_slab);
  return seconds;
}

template double potrf_separated_run<float>(Queue&, Uplo, const VbatchedProblem<float>&, int,
                                           int, bool, int);
template double potrf_separated_run<double>(Queue&, Uplo, const VbatchedProblem<double>&, int,
                                            int, bool, int);
template double potrf_separated_run<std::complex<float>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<float>>&, int, int, bool, int);
template double potrf_separated_run<std::complex<double>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<double>>&, int, int, bool, int);

}  // namespace vbatch::detail
