#include "vbatch/core/queue.hpp"

namespace vbatch {

Queue::Queue(sim::DeviceSpec spec, sim::ExecMode mode)
    : device_(std::make_unique<sim::Device>(std::move(spec), mode)) {}

Queue::~Queue() = default;

}  // namespace vbatch
