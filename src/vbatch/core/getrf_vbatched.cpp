#include "vbatch/core/getrf_vbatched.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/getrf_kernels.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

PivotArrays::PivotArrays(Queue& q, std::span<const int> mn)
    : queue_(&q), ptrs_(mn.size()), lengths_(mn.begin(), mn.end()) {
  std::size_t total = 0;
  for (int v : mn) total += static_cast<std::size_t>(std::max(0, v));
  slab_ = q.device().device_malloc(std::max<std::size_t>(1, total) * sizeof(int));
  int* base = static_cast<int*>(slab_);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < mn.size(); ++i) {
    ptrs_[i] = base + offset;
    offset += static_cast<std::size_t>(std::max(0, mn[i]));
  }
}

PivotArrays::~PivotArrays() {
  if (slab_ != nullptr) queue_->device().device_free(slab_);
}

std::span<const int> PivotArrays::pivots(int i) const noexcept {
  return {ptrs_[static_cast<std::size_t>(i)],
          static_cast<std::size_t>(std::max(0, lengths_[static_cast<std::size_t>(i)]))};
}

template <typename T>
FactorResult getrf_vbatched(Queue& q, Batch<T>& batch, PivotArrays& ipiv,
                            const GetrfOptions& opts) {
  sim::Device& dev = q.device();
  auto prob = batch.problem();
  const int batch_count = prob.count();
  const int NB = std::max(8, opts.panel_nb);
  for (int i = 0; i < batch_count; ++i) prob.info[static_cast<std::size_t>(i)] = 0;

  FactorResult result;
  result.flops = flops::getrf_batch(prob.n, prob.n);
  const int max_n = kernels::imax_reduce(dev, prob.n);
  if (max_n == 0) return result;

  std::vector<int> trail(static_cast<std::size_t>(batch_count));
  std::vector<int> full_nb(static_cast<std::size_t>(batch_count));
  // Displaced-pointer scratch, reused across panel steps.
  std::vector<T*> l11_ptrs, u12_ptrs, l21_ptrs, a22_ptrs;

  double seconds = 0.0;
  for (int j = 0; j < max_n; j += NB) {
    if (kernels::count_live(dev, prob.n, j) == 0) break;
    const int jb_max = std::min(NB, max_n - j);

    kernels::GetrfPanelArgs<T> panel;
    panel.batch = {prob.ptrs, prob.n, prob.lda};
    panel.m = prob.n;  // square
    panel.offset = j;
    panel.NB = NB;
    panel.ipiv = ipiv.ptrs();
    panel.info = prob.info;
    seconds += kernels::launch_getrf_panel(dev, panel);

    // Row interchanges left of the panel.
    if (j > 0) {
      kernels::LaswpArgs<T> left;
      left.batch = {prob.ptrs, prob.n, prob.lda};
      left.m = prob.n;
      left.k1 = j;
      left.k2 = j + jb_max;
      left.col0 = 0;
      left.col1 = j;
      left.max_cols = j;
      left.ipiv = ipiv.ptrs();
      seconds += kernels::launch_laswp(dev, left);
    }

    const int max_t = max_n - j - NB;
    if (max_t <= 0) continue;

    // Row interchanges right of the panel, then the U12 solve and the
    // trailing gemm update — only matrices with n_i > j + NB participate.
    kernels::LaswpArgs<T> right;
    right.batch = {prob.ptrs, prob.n, prob.lda};
    right.m = prob.n;
    right.k1 = j;
    right.k2 = j + NB;
    right.col0 = j + NB;
    right.col1 = max_n;
    right.max_cols = max_t;
    right.ipiv = ipiv.ptrs();
    seconds += kernels::launch_laswp(dev, right);

    seconds += kernels::shift_sizes(dev, prob.n, trail, j + NB);
    for (int i = 0; i < batch_count; ++i)
      full_nb[static_cast<std::size_t>(i)] = trail[static_cast<std::size_t>(i)] > 0 ? NB : 0;

    std::span<T* const> base{prob.ptrs, static_cast<std::size_t>(batch_count)};
    kernels::displace_ptrs<T>(dev, base, prob.lda, j, j, l11_ptrs);
    kernels::displace_ptrs<T>(dev, base, prob.lda, j, j + NB, u12_ptrs);
    kernels::displace_ptrs<T>(dev, base, prob.lda, j + NB, j, l21_ptrs);
    kernels::displace_ptrs<T>(dev, base, prob.lda, j + NB, j + NB, a22_ptrs);

    kernels::LuTrsmArgs<T> trsm;
    trsm.l11 = l11_ptrs.data();
    trsm.lda = prob.lda;
    trsm.ib = full_nb;
    trsm.b = u12_ptrs.data();
    trsm.ldb = prob.lda;
    trsm.n2 = trail;
    trsm.max_ib = NB;
    trsm.max_n2 = max_t;
    seconds += kernels::launch_lu_trsm(dev, trsm);

    kernels::GemmVbatchedArgs<T> gemm;
    gemm.trans_a = Trans::NoTrans;
    gemm.trans_b = Trans::NoTrans;
    gemm.m = trail;
    gemm.n = trail;
    gemm.k = full_nb;
    gemm.max_m = max_t;
    gemm.max_n = max_t;
    gemm.alpha = T(-1);
    gemm.beta = T(1);
    gemm.a = l21_ptrs.data();
    gemm.lda = prob.lda;
    gemm.b = u12_ptrs.data();
    gemm.ldb = prob.lda;
    gemm.c = a22_ptrs.data();
    gemm.ldc = prob.lda;
    seconds += kernels::launch_gemm_vbatched(dev, gemm);
  }
  result.seconds = seconds;
  return result;
}

template <typename T>
FactorResult getrs_vbatched(Queue& q, Batch<T>& factors, const PivotArrays& ipiv,
                            RectBatch<T>& rhs) {
  require(factors.count() == rhs.count(), "getrs_vbatched: batch count mismatch");
  const int count = factors.count();
  sim::Device& dev = q.device();

  int max_n = 0, max_rhs = 0;
  double total_flops = 0.0;
  for (int i = 0; i < count; ++i) {
    require(factors.sizes()[static_cast<std::size_t>(i)] ==
                rhs.rows()[static_cast<std::size_t>(i)],
            "getrs_vbatched: rhs rows != matrix order");
    max_n = std::max(max_n, factors.sizes()[static_cast<std::size_t>(i)]);
    max_rhs = std::max(max_rhs, rhs.cols()[static_cast<std::size_t>(i)]);
    total_flops += 2.0 * flops::trsm(factors.sizes()[static_cast<std::size_t>(i)],
                                     rhs.cols()[static_cast<std::size_t>(i)], true);
  }

  FactorResult result;
  result.flops = total_flops;
  if (max_n == 0 || max_rhs == 0) return result;

  // One fused kernel block per (matrix, rhs strip): apply the row
  // interchanges, then the unit-lower and upper triangular sweeps.
  const int strip = 8;
  const int strips = (max_rhs + strip - 1) / strip;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_getrs";
  cfg.grid_blocks = count * strips;
  cfg.block_threads = kernels::round_up_warp(dev.spec(), std::min(max_n, 512));
  cfg.shared_mem = static_cast<std::size_t>(std::min(max_n, 512)) * strip * sizeof(T);
  cfg.shared_mem = std::min(cfg.shared_mem, dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  auto fsizes = factors.sizes();
  auto fldas = factors.ldas();
  auto finfo = factors.info();
  T** fptrs = factors.device_ptrs();
  auto rcols = rhs.cols();
  auto rldas = rhs.ldas();
  T** rptrs = rhs.device_ptrs();
  int* const* piv = ipiv.ptrs();

  result.seconds = dev.launch(cfg, [&, threads = cfg.block_threads](
                                       const sim::ExecContext& ctx, int block) {
    const int i = block / strips;
    const index_t s = block % strips;
    const index_t n = fsizes[static_cast<std::size_t>(i)];
    const index_t c0 = s * strip;
    const index_t nrhs = rcols[static_cast<std::size_t>(i)];

    sim::BlockCost cost;
    cost.live_threads = threads;
    if (n == 0 || c0 >= nrhs || finfo[static_cast<std::size_t>(i)] != 0) {
      cost.early_exit = true;
      return cost;
    }

    const index_t nc = std::min<index_t>(strip, nrhs - c0);
    cost.active_threads = static_cast<int>(std::min<index_t>(n, threads));
    cost.flops = 2.0 * flops::trsm(n, nc, true);
    cost.bytes = static_cast<double>(n * n + 2 * n * nc) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * n);
    cost.serial_ops = static_cast<double>(n);  // upper sweep reciprocal chain

    if (ctx.full()) {
      const index_t ldb = rldas[static_cast<std::size_t>(i)];
      ConstMatrixView<T> lu(fptrs[i], n, n, fldas[static_cast<std::size_t>(i)]);
      MatrixView<T> b(rptrs[i] + c0 * ldb, n, nc, ldb);
      std::span<const int> pv{piv[i], static_cast<std::size_t>(n)};
      blas::laswp<T>(b, pv, 0, n);
      blas::trsm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, T(1), lu, b);
      blas::trsm<T>(Side::Left, Uplo::Upper, Trans::NoTrans, Diag::NonUnit, T(1), lu, b);
    }
    return cost;
  });
  return result;
}

template FactorResult getrf_vbatched<float>(Queue&, Batch<float>&, PivotArrays&,
                                            const GetrfOptions&);
template FactorResult getrf_vbatched<double>(Queue&, Batch<double>&, PivotArrays&,
                                             const GetrfOptions&);
template FactorResult getrs_vbatched<float>(Queue&, Batch<float>&, const PivotArrays&,
                                            RectBatch<float>&);
template FactorResult getrs_vbatched<double>(Queue&, Batch<double>&, const PivotArrays&,
                                             RectBatch<double>&);

}  // namespace vbatch
