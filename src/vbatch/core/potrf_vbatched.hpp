// Public vbatched Cholesky factorization API — the paper's case study.
//
// Mirrors the two-interface design of §III-A:
//   * potrf_vbatched_max — the expert interface taking the maximum matrix
//     size from the caller ("recommended when the user has such
//     information so that computing the maximums is waived");
//   * potrf_vbatched — the LAPACK-like wrapper that computes the maximum
//     with a device reduction kernel first.
//
// Both select between the fused-kernel path (§III-D) and the separated
// vbatched-BLAS path (§III-E) through the crossover policy of §IV-E unless
// the options pin a path.
#pragma once

#include <span>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/queue.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch {

/// Which algorithmic approach a vbatched factorization uses.
enum class PotrfPath : std::uint8_t { Auto, Fused, Separated };

[[nodiscard]] constexpr const char* to_string(PotrfPath p) noexcept {
  switch (p) {
    case PotrfPath::Auto: return "auto";
    case PotrfPath::Fused: return "fused";
    case PotrfPath::Separated: return "separated";
  }
  return "?";
}

struct PotrfOptions {
  PotrfPath path = PotrfPath::Auto;
  EtmMode etm = EtmMode::Aggressive;       ///< fused-path ETM flavour (§III-D1)
  bool implicit_sorting = true;            ///< fused-path active-size windows (§III-D2)
  int sort_window = 0;                     ///< window width; 0 = the fused nb
  int fused_nb = 0;                        ///< fused blocking size; 0 = autotuned
  int separated_nb = 0;                    ///< separated panel NB; 0 = autotuned
  int crossover = 0;                       ///< fused↔separated max-size threshold; 0 = policy
  bool streamed_syrk = false;              ///< use the per-matrix streamed syrk (§III-E3)
  int num_streams = 16;
};

/// Outcome of one vbatched factorization call.
struct PotrfResult {
  double seconds = 0.0;       ///< modelled device time consumed by the call
  double flops = 0.0;         ///< useful flops (sum of per-matrix counts, §IV-B)
  PotrfPath path_taken = PotrfPath::Auto;
  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

/// LAPACK-like interface: the maximum size is computed on the device.
template <typename T>
PotrfResult potrf_vbatched(Queue& q, Uplo uplo, Batch<T>& batch,
                           const PotrfOptions& opts = {});

/// Expert interface: the caller supplies max_n (must dominate every size).
template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, Batch<T>& batch, int max_n,
                               const PotrfOptions& opts = {});

/// Low-level entry operating on raw MAGMA-style arrays.
template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                               const PotrfOptions& opts = {});

// --- Internal drivers (exposed for tests and the ablation benches) ---------

namespace detail {

/// Approach 1: fused kernels with ETMs and optional implicit sorting.
template <typename T>
double potrf_fused_run(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                       EtmMode etm, bool sorting, int nb, int sort_window);

/// Approach 2: separated vbatched BLAS kernels (potf2 panel, trsm, syrk).
template <typename T>
double potrf_separated_run(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                           int NB, bool streamed_syrk, int num_streams);

/// The separated path's default panel blocking for the given element size
/// (what potrf_separated_run picks when NB <= 0). Exposed so layers that
/// must pin one NB across several sub-batches (vbatch::hetero) replicate
/// the single-device choice exactly.
[[nodiscard]] int default_separated_nb(std::size_t elem_size) noexcept;

}  // namespace detail

}  // namespace vbatch
