#include "vbatch/core/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "vbatch/blas/microkernel.hpp"
#include "vbatch/core/crossover.hpp"
#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch {

std::string TuneCandidate::describe() const {
  std::string s = to_string(options.path);
  if (options.path == PotrfPath::Fused) {
    s += " nb=" + std::to_string(options.fused_nb);
    s += " ";
    s += to_string(options.etm);
    s += options.implicit_sorting ? " +sort" : " -sort";
  } else if (options.streamed_syrk) {
    s += " streamed-syrk";
  }
  if (!feasible) return s + " (infeasible)";
  char buf[32];
  std::snprintf(buf, sizeof buf, " -> %.1f GF", gflops);
  return s + buf;
}

template <typename T>
TuneResult autotune_potrf(const Queue& q, std::span<const int> sizes,
                          const TuneSettings& settings) {
  require(!sizes.empty(), "autotune: empty size list");

  // Deterministic subsample (every k-th element) keeps the sweep cheap for
  // huge batches while preserving the size distribution.
  std::vector<int> sample;
  const int stride =
      std::max<int>(1, static_cast<int>(sizes.size()) / std::max(1, settings.max_sample));
  for (std::size_t i = 0; i < sizes.size(); i += static_cast<std::size_t>(stride))
    sample.push_back(sizes[i]);
  int max_n = 0;
  for (int s : sample) max_n = std::max(max_n, s);
  require(max_n >= 1, "autotune: all sampled matrices empty");

  // Candidate configurations.
  std::vector<PotrfOptions> candidates;
  const int feasible_bound = fused_feasible_max(q.spec(), precision_v<T>);
  for (int nb : {8, 16, 24, 32}) {
    if (max_n > kernels::fused_max_size(q.spec(), nb, sizeof(T))) continue;
    for (bool sorting : {false, true}) {
      PotrfOptions o;
      o.path = PotrfPath::Fused;
      o.fused_nb = nb;
      o.etm = EtmMode::Aggressive;
      o.implicit_sorting = sorting;
      candidates.push_back(o);
      if (settings.try_classic_etm) {
        o.etm = EtmMode::Classic;
        candidates.push_back(o);
      }
    }
  }
  {
    PotrfOptions o;
    o.path = PotrfPath::Separated;
    candidates.push_back(o);
    if (settings.try_streamed) {
      o.streamed_syrk = true;
      candidates.push_back(o);
    }
  }
  (void)feasible_bound;

  TuneResult result;
  for (const PotrfOptions& opts : candidates) {
    TuneCandidate cand;
    cand.options = opts;
    // Fresh TimingOnly device per candidate: identical spec, clean clock.
    Queue probe(q.spec(), sim::ExecMode::TimingOnly);
    try {
      Batch<T> batch(probe, sample);
      const PotrfResult r = potrf_vbatched_max<T>(probe, Uplo::Lower, batch, max_n, opts);
      cand.gflops = r.gflops();
    } catch (const Error&) {
      cand.feasible = false;
    }
    if (cand.feasible && cand.gflops > result.best_gflops) {
      result.best_gflops = cand.gflops;
      result.best = opts;
    }
    result.candidates.push_back(std::move(cand));
  }
  require(result.best_gflops > 0.0, "autotune: no feasible configuration");
  return result;
}

template TuneResult autotune_potrf<float>(const Queue&, std::span<const int>,
                                          const TuneSettings&);
template TuneResult autotune_potrf<double>(const Queue&, std::span<const int>,
                                           const TuneSettings&);

// ---------------------------------------------------------------------------
// Host BLAS tuner
// ---------------------------------------------------------------------------

namespace {

// Reads one sysfs cache attribute ("32K", "512K", "20480K"...); 0 on failure.
std::size_t read_cache_size(const std::string& dir) {
  std::ifstream f(dir + "/size");
  std::string s;
  if (!(f >> s) || s.empty()) return 0;
  char suffix = s.back();
  std::size_t mult = 1;
  if (suffix == 'K' || suffix == 'k') {
    mult = 1024;
    s.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    mult = 1024 * 1024;
    s.pop_back();
  }
  try {
    return static_cast<std::size_t>(std::stoull(s)) * mult;
  } catch (...) {
    return 0;
  }
}

// Rounds `v` down to a multiple of `unit`, staying at least `unit`.
index_t round_down(index_t v, index_t unit) {
  return std::max(unit, v / unit * unit);
}

// Derives KC/MC/NC for an MR×NR tile from the Goto residency constraints:
//   * a KC×NR sliver of B̃ plus a KC×MR sliver of Ã stream through L1 — keep
//     their footprint under roughly half of it so the C tile and the stack
//     stay resident;
//   * the packed MC×KC block of Ã owns about half of L2;
//   * the packed KC×NC panel of B̃ owns about half of L3.
blas::micro::KernelShape derive_shape(const CacheInfo& ci, std::size_t elem, int mr, int nr,
                                      index_t min_m) {
  blas::micro::KernelShape s;
  s.mr = mr;
  s.nr = nr;
  const auto l1 = static_cast<index_t>(ci.l1d / (2 * elem * static_cast<std::size_t>(mr + nr)));
  s.kc = std::clamp<index_t>(round_down(l1, 32), 64, 512);
  const auto l2 = static_cast<index_t>(ci.l2 / (2 * elem * static_cast<std::size_t>(s.kc)));
  s.mc = std::clamp<index_t>(round_down(l2, mr), mr, 4096);
  const auto l3 = static_cast<index_t>(ci.l3 / (2 * elem * static_cast<std::size_t>(s.kc)));
  s.nc = std::clamp<index_t>(round_down(l3, nr), nr, 8192);
  s.min_m = min_m;
  s.min_mnk = 4096.0;
  return s;
}

template <typename T>
void sweep_type(const CacheInfo& ci, const BlasTuneSettings& settings,
                blas::micro::TuningProfile& profile, BlasTuneResult& result) {
  using namespace blas::micro;
  constexpr int kType = std::is_same_v<T, float>                ? 0
                        : std::is_same_v<T, double>             ? 1
                        : std::is_same_v<T, std::complex<float>> ? 2
                                                                 : 3;
  KernelShape& winner = profile.shapes[kType];
  // The crossover floor stays at the analytic default: the sweep sizes are
  // far above it, so measuring it here would be noise.
  const index_t min_m = winner.min_m;

  std::vector<KernelShape> shortlist;
  shortlist.push_back(winner);  // the per-ISA analytic default
  for (const TilePair& t : supported_tiles<T>(profile.isa))
    shortlist.push_back(derive_shape(ci, sizeof(T), t.mr, t.nr, std::min<index_t>(min_m, t.mr)));

  double best = 0.0;
  for (const KernelShape& cand : shortlist) {
    const double gf = benchmark_shape<T>(cand, settings.bench_n, settings.reps);
    result.candidates.push_back({kType, cand, gf});
    ++result.candidates_swept;
    if (settings.verbose)
      std::fprintf(stderr,
                   "vbatch: blas autotune: type=%d tile=%dx%d kc=%lld mc=%lld nc=%lld -> %.2f GF\n",
                   kType, cand.mr, cand.nr, static_cast<long long>(cand.kc),
                   static_cast<long long>(cand.mc), static_cast<long long>(cand.nc), gf);
    if (gf > best) {
      best = gf;
      winner = cand;
    }
  }
}

}  // namespace

CacheInfo CacheInfo::detect() {
  CacheInfo ci;
#if defined(__linux__)
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx);
    std::ifstream lvl_f(dir + "/level"), type_f(dir + "/type");
    int level = 0;
    std::string type;
    if (!(lvl_f >> level) || !(type_f >> type)) break;
    const std::size_t size = read_cache_size(dir);
    if (size == 0) continue;
    if (level == 1 && (type == "Data" || type == "Unified")) {
      ci.l1d = size;
      ci.detected = true;
    } else if (level == 2 && type != "Instruction") {
      ci.l2 = size;
    } else if (level == 3 && type != "Instruction") {
      ci.l3 = size;
    }
  }
#endif
  // A machine without an L3 reports nothing at level 3; blocking NC against
  // the L2 in that case keeps the B panel resident somewhere real.
  if (ci.detected && ci.l3 < ci.l2) ci.l3 = ci.l2;
  return ci;
}

BlasTuneResult ensure_blas_tuned(const BlasTuneSettings& settings) {
  using namespace blas::micro;
  BlasTuneResult result;
  const Isa isa = active_isa();
  result.cache_path =
      settings.cache_path.empty() ? tuning_cache_path(isa) : settings.cache_path;

  if (settings.use_cache_file) {
    std::string why;
    if (auto loaded = load_tuning_profile(result.cache_path, &why)) {
      if (loaded->isa == isa) {
        set_tuning_profile(*loaded);
        result.profile = *loaded;
        result.loaded_from_cache = true;
        if (settings.verbose)
          std::fprintf(stderr, "vbatch: blas autotune: loaded profile from %s (no sweep)\n",
                       result.cache_path.c_str());
        return result;
      }
      why = std::string("profile is for ") + to_string(loaded->isa) + ", active ISA is " +
            to_string(isa);
    }
    if (settings.verbose)
      std::fprintf(stderr, "vbatch: blas autotune: %s; sweeping\n", why.c_str());
  }

  result.cache = CacheInfo::detect();
  TuningProfile profile = TuningProfile::defaults(isa);
  sweep_type<float>(result.cache, settings, profile, result);
  sweep_type<double>(result.cache, settings, profile, result);
  sweep_type<std::complex<float>>(result.cache, settings, profile, result);
  sweep_type<std::complex<double>>(result.cache, settings, profile, result);

  set_tuning_profile(profile);
  result.profile = profile;
  if (settings.use_cache_file) {
    std::string err;
    if (!save_tuning_profile(profile, result.cache_path, &err) && settings.verbose)
      std::fprintf(stderr, "vbatch: blas autotune: %s\n", err.c_str());
  }
  if (settings.verbose)
    std::fprintf(stderr, "vbatch: blas autotune: swept %d candidates, saved %s\n",
                 result.candidates_swept, result.cache_path.c_str());
  return result;
}

}  // namespace vbatch
