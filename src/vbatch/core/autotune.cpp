#include "vbatch/core/autotune.hpp"

#include <algorithm>
#include <cstdio>

#include "vbatch/core/crossover.hpp"
#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch {

std::string TuneCandidate::describe() const {
  std::string s = to_string(options.path);
  if (options.path == PotrfPath::Fused) {
    s += " nb=" + std::to_string(options.fused_nb);
    s += " ";
    s += to_string(options.etm);
    s += options.implicit_sorting ? " +sort" : " -sort";
  } else if (options.streamed_syrk) {
    s += " streamed-syrk";
  }
  if (!feasible) return s + " (infeasible)";
  char buf[32];
  std::snprintf(buf, sizeof buf, " -> %.1f GF", gflops);
  return s + buf;
}

template <typename T>
TuneResult autotune_potrf(const Queue& q, std::span<const int> sizes,
                          const TuneSettings& settings) {
  require(!sizes.empty(), "autotune: empty size list");

  // Deterministic subsample (every k-th element) keeps the sweep cheap for
  // huge batches while preserving the size distribution.
  std::vector<int> sample;
  const int stride =
      std::max<int>(1, static_cast<int>(sizes.size()) / std::max(1, settings.max_sample));
  for (std::size_t i = 0; i < sizes.size(); i += static_cast<std::size_t>(stride))
    sample.push_back(sizes[i]);
  int max_n = 0;
  for (int s : sample) max_n = std::max(max_n, s);
  require(max_n >= 1, "autotune: all sampled matrices empty");

  // Candidate configurations.
  std::vector<PotrfOptions> candidates;
  const int feasible_bound = fused_feasible_max(q.spec(), precision_v<T>);
  for (int nb : {8, 16, 24, 32}) {
    if (max_n > kernels::fused_max_size(q.spec(), nb, sizeof(T))) continue;
    for (bool sorting : {false, true}) {
      PotrfOptions o;
      o.path = PotrfPath::Fused;
      o.fused_nb = nb;
      o.etm = EtmMode::Aggressive;
      o.implicit_sorting = sorting;
      candidates.push_back(o);
      if (settings.try_classic_etm) {
        o.etm = EtmMode::Classic;
        candidates.push_back(o);
      }
    }
  }
  {
    PotrfOptions o;
    o.path = PotrfPath::Separated;
    candidates.push_back(o);
    if (settings.try_streamed) {
      o.streamed_syrk = true;
      candidates.push_back(o);
    }
  }
  (void)feasible_bound;

  TuneResult result;
  for (const PotrfOptions& opts : candidates) {
    TuneCandidate cand;
    cand.options = opts;
    // Fresh TimingOnly device per candidate: identical spec, clean clock.
    Queue probe(q.spec(), sim::ExecMode::TimingOnly);
    try {
      Batch<T> batch(probe, sample);
      const PotrfResult r = potrf_vbatched_max<T>(probe, Uplo::Lower, batch, max_n, opts);
      cand.gflops = r.gflops();
    } catch (const Error&) {
      cand.feasible = false;
    }
    if (cand.feasible && cand.gflops > result.best_gflops) {
      result.best_gflops = cand.gflops;
      result.best = opts;
    }
    result.candidates.push_back(std::move(cand));
  }
  require(result.best_gflops > 0.0, "autotune: no feasible configuration");
  return result;
}

template TuneResult autotune_potrf<float>(const Queue&, std::span<const int>,
                                          const TuneSettings&);
template TuneResult autotune_potrf<double>(const Queue&, std::span<const int>,
                                           const TuneSettings&);

}  // namespace vbatch
