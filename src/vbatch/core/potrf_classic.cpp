#include "vbatch/core/potrf_classic.hpp"

#include <algorithm>

#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/classic_kernels.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
PotrfResult potrf_batched_classic(Queue& q, Uplo uplo, Batch<T>& batch,
                                  const ClassicOptions& opts) {
  sim::Device& dev = q.device();
  auto prob = batch.problem();
  const int batch_count = prob.count();
  for (int i = 0; i < batch_count; ++i) prob.info[static_cast<std::size_t>(i)] = 0;

  PotrfResult result;
  result.path_taken = PotrfPath::Separated;
  result.flops = flops::potrf_batch(prob.n);
  const int max_n = kernels::imax_reduce(dev, prob.n);
  if (max_n == 0) return result;

  int nb = opts.nb;
  if (nb <= 0) nb = std::clamp((max_n / 8) / 8 * 8, 8, 64);

  std::vector<int> trail(static_cast<std::size_t>(batch_count));
  std::vector<int> kdim(static_cast<std::size_t>(batch_count));

  double seconds = 0.0;
  for (int j = 0; j < max_n; j += nb) {
    kernels::ClassicPotf2Args<T> tile;
    tile.batch = {prob.ptrs, prob.n, prob.lda};
    tile.uplo = uplo;
    tile.offset = j;
    tile.nb = nb;
    tile.info = prob.info;
    seconds += kernels::launch_classic_potf2(dev, tile);

    const int max_m2 = max_n - j - nb;
    if (max_m2 <= 0) continue;

    kernels::ClassicTrsmArgs<T> trsm;
    trsm.batch = {prob.ptrs, prob.n, prob.lda};
    trsm.uplo = uplo;
    trsm.offset = j;
    trsm.nb = nb;
    trsm.info = prob.info;
    seconds += kernels::launch_classic_trsm(dev, trsm);

    // Trailing update through the generic large-tile syrk, with the usual
    // aux kernels for size arithmetic and pointer displacement — none of
    // the customization the fused kernel applies (§III-D).
    seconds += kernels::shift_sizes(dev, prob.n, trail, j + nb);
    int live = 0;
    for (int i = 0; i < batch_count; ++i) {
      kdim[static_cast<std::size_t>(i)] = trail[static_cast<std::size_t>(i)] > 0 ? nb : 0;
      if (trail[static_cast<std::size_t>(i)] > 0) ++live;
    }
    if (live == 0) break;

    std::span<T* const> base{prob.ptrs, static_cast<std::size_t>(batch_count)};
    const auto sub_ptrs = uplo == Uplo::Lower
                              ? kernels::displace_ptrs<T>(dev, base, prob.lda, j + nb, j)
                              : kernels::displace_ptrs<T>(dev, base, prob.lda, j, j + nb);
    const auto trail_ptrs = kernels::displace_ptrs<T>(dev, base, prob.lda, j + nb, j + nb);

    kernels::SyrkVbatchedArgs<T> syrk;
    syrk.uplo = uplo;
    syrk.trans = uplo == Uplo::Lower ? Trans::NoTrans : Trans::Trans;
    syrk.n = trail;
    syrk.k = kdim;
    syrk.max_n = max_m2;
    syrk.alpha = T(-1);
    syrk.beta = T(1);
    syrk.a = sub_ptrs.data();
    syrk.lda = prob.lda;
    syrk.c = trail_ptrs.data();
    syrk.ldc = prob.lda;
    seconds += kernels::launch_syrk_vbatched(dev, syrk);
  }
  result.seconds = seconds;
  return result;
}

template PotrfResult potrf_batched_classic<float>(Queue&, Uplo, Batch<float>&,
                                                  const ClassicOptions&);
template PotrfResult potrf_batched_classic<double>(Queue&, Uplo, Batch<double>&,
                                                   const ClassicOptions&);

}  // namespace vbatch
