// vbatched Householder QR — the second announced extension (§V), following
// the block-reflector scheme of the batched QR in Haidar et al. [14].
// Supports rectangular m_i ≥ n_i batches (the multifrontal sparse-QR use
// case of the paper's introduction).
#pragma once

#include <span>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/getrf_vbatched.hpp"  // FactorResult
#include "vbatch/core/queue.hpp"

namespace vbatch {

/// Owner of per-matrix tau (reflector scalar) arrays.
template <typename T>
class TauArrays {
 public:
  TauArrays(Queue& q, std::span<const int> mn);
  ~TauArrays();
  TauArrays(const TauArrays&) = delete;
  TauArrays& operator=(const TauArrays&) = delete;

  [[nodiscard]] T* const* ptrs() const noexcept { return ptrs_.data(); }
  [[nodiscard]] std::span<const T> tau(int i) const noexcept;

 private:
  Queue* queue_;
  void* slab_;
  std::vector<T*> ptrs_;
  std::vector<int> lengths_;
};

struct GeqrfOptions {
  int panel_nb = 32;
};

/// Factors every matrix as A = Q·R (reflectors stored below the diagonal,
/// scalars in `tau`).
template <typename T>
FactorResult geqrf_vbatched(Queue& q, RectBatch<T>& batch, TauArrays<T>& tau,
                            const GeqrfOptions& opts = {});

/// Applies Q_iᵀ (from geqrf_vbatched factors) to every C_i (m_i × nrhs_i):
/// the Left/Trans case of xORMQR, which is what least-squares solves need.
template <typename T>
FactorResult ormqr_vbatched(Queue& q, RectBatch<T>& factors, const TauArrays<T>& tau,
                            RectBatch<T>& c);

/// Batched least squares (xGELS-style, m_i ≥ n_i, full rank): overwrites
/// the top n_i rows of each rhs with argmin‖A_i·x − b_i‖₂, using the QR
/// factors: x = R⁻¹ · (Qᵀ b)₁.
template <typename T>
FactorResult geqrs_vbatched(Queue& q, RectBatch<T>& factors, const TauArrays<T>& tau,
                            RectBatch<T>& rhs);

}  // namespace vbatch
