// LAPACK-compliant argument checking for vbatched routines.
//
// Paper §V: "Another open direction is to investigate LAPACK compliance of
// these routines, especially with respect to error checking, and to
// propose an alternate scheme to report possible errors to the user."
//
// The scheme implemented here: a device kernel sweeps the metadata arrays
// (sizes, leading dimensions) and produces a per-call report — how many
// matrices violate which argument, and the first offender. Public vbatched
// routines run the check up front and raise Status::InvalidArgument with a
// LAPACK-style "argument -k" message; the per-matrix `info` array receives
// -k for every offending matrix so the caller can identify them all (the
// "alternate scheme": errors are data, not just a scalar return).
#pragma once

#include <span>
#include <string>

#include "vbatch/sim/device.hpp"

namespace vbatch {

/// One dimension rule: value_a[i] (relation) bound derived from value_b[i].
struct ArgRule {
  enum class Kind {
    NonNegative,   ///< a[i] >= 0
    AtLeastOther,  ///< a[i] >= max(1, b[i])
    EqualOther,    ///< a[i] == b[i] (dimension consistency across operands)
  };
  Kind kind = Kind::NonNegative;
  std::span<const int> a;
  std::span<const int> b;       ///< used by AtLeastOther
  int argument_index = 0;       ///< 1-based position in the routine signature
  const char* name = "";        ///< e.g. "n", "lda"
};

/// Outcome of a metadata sweep.
struct ArgCheckReport {
  int violations = 0;        ///< total offending matrices (first rule hit counts)
  int first_matrix = -1;     ///< batch index of the first offender
  int first_argument = 0;    ///< 1-based argument index of the first offence
  const char* first_name = "";
  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

/// Sweeps the rules with a device kernel (modelled cost) and returns the
/// report. When `info` is non-empty, every offending matrix i receives
/// info[i] = -argument_index (and non-offenders are left untouched).
ArgCheckReport check_args(sim::Device& dev, std::span<const ArgRule> rules,
                          std::span<int> info = {});

/// Outcome of a combined metadata pass.
struct ArgSweep {
  ArgCheckReport report;
  int max_value = 0;  ///< max over `maxed` (0 when no reduction requested)
};

/// One-pass metadata sweep for the vbatched entry points: zeroes `info`,
/// applies the rules (offenders then receive -argument_index), and — when
/// `maxed` is non-empty — reduces its maximum, all in a single modelled
/// kernel and a single host loop. This replaces the separate
/// validation / info-reset / imax_reduce sweeps the entry points used to
/// pay. The kernel is recorded as `aux_imax_reduce_check` when a reduction
/// is requested (it subsumes the standalone aux_imax_reduce launch) and as
/// `aux_check_args` otherwise.
ArgSweep check_args_reduce(sim::Device& dev, std::span<const ArgRule> rules,
                           std::span<const int> maxed, std::span<int> info);

/// Raises Status::InvalidArgument with a LAPACK-style message when the
/// report has violations ("parameter -k had an illegal value for N
/// matrices, first at batch index j").
void require_args_ok(const ArgCheckReport& report, const char* routine);

}  // namespace vbatch
