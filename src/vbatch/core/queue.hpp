// Queue: the library handle, analogous to magma_queue_t.
//
// A Queue owns the simulated device every vbatched routine executes on. The
// execution mode (Full vs TimingOnly, see vbatch/sim/kernel_launch.hpp)
// is fixed per queue so a whole run is consistently either numerical or
// timing-only.
#pragma once

#include <memory>

#include "vbatch/sim/device.hpp"

namespace vbatch {

class Queue {
 public:
  explicit Queue(sim::DeviceSpec spec = sim::DeviceSpec::k40c(),
                 sim::ExecMode mode = sim::ExecMode::Full);
  ~Queue();

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  [[nodiscard]] sim::Device& device() noexcept { return *device_; }
  [[nodiscard]] const sim::Device& device() const noexcept { return *device_; }
  [[nodiscard]] const sim::DeviceSpec& spec() const noexcept { return device_->spec(); }
  [[nodiscard]] sim::ExecMode mode() const noexcept { return device_->mode(); }
  [[nodiscard]] bool full() const noexcept { return mode() == sim::ExecMode::Full; }

  /// Device-model time in seconds (advanced by every kernel launch).
  [[nodiscard]] double time() const noexcept { return device_->time(); }

 private:
  std::unique_ptr<sim::Device> device_;
};

}  // namespace vbatch
