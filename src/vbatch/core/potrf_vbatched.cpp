// Public vbatched Cholesky entry points (paper §III-A interfaces).
#include "vbatch/core/potrf_vbatched.hpp"

#include <array>

#include "vbatch/core/arg_check.hpp"
#include "vbatch/core/crossover.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

namespace {

/// LAPACK-style dimension rules for potrf(uplo, n, A, lda, info):
/// n >= 0 (argument 2), lda >= max(1, n) (argument 4).
template <typename T>
std::array<ArgRule, 2> potrf_rules(const VbatchedProblem<T>& prob) {
  ArgRule rn;
  rn.kind = ArgRule::Kind::NonNegative;
  rn.a = prob.n;
  rn.argument_index = 2;
  rn.name = "n";
  ArgRule rl;
  rl.kind = ArgRule::Kind::AtLeastOther;
  rl.a = prob.lda;
  rl.b = prob.n;
  rl.argument_index = 4;
  rl.name = "lda";
  return {rn, rl};
}

template <typename T>
void require_metadata_sizes(const VbatchedProblem<T>& prob) {
  require(prob.count() > 0, "potrf_vbatched: empty batch");
  require(static_cast<int>(prob.lda.size()) == prob.count() &&
              static_cast<int>(prob.info.size()) == prob.count(),
          "potrf_vbatched: metadata array size mismatch");
}

/// Path selection and execution; the caller has already validated the
/// metadata and reset `info`.
template <typename T>
PotrfResult dispatch(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                     const PotrfOptions& opts) {
  PotrfResult result;
  result.flops = flops::potrf_batch(prob.n);

  const Precision prec = precision_v<T>;
  bool fused = false;
  switch (opts.path) {
    case PotrfPath::Fused: fused = true; break;
    case PotrfPath::Separated: fused = false; break;
    case PotrfPath::Auto:
      fused = use_fused(q.spec(), prec, max_n, opts.crossover);
      break;
  }

  if (fused) {
    result.path_taken = PotrfPath::Fused;
    result.seconds = detail::potrf_fused_run<T>(q, uplo, prob, max_n, opts.etm,
                                                opts.implicit_sorting, opts.fused_nb,
                                                opts.sort_window);
  } else {
    result.path_taken = PotrfPath::Separated;
    result.seconds = detail::potrf_separated_run<T>(q, uplo, prob, max_n, opts.separated_nb,
                                                    opts.streamed_syrk, opts.num_streams);
  }
  return result;
}

}  // namespace

template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                               const PotrfOptions& opts) {
  require_metadata_sizes(prob);
  // One metadata pass validates the rules and resets info (no reduction —
  // the expert interface takes max_n from the caller, §III-A).
  const auto rules = potrf_rules(prob);
  const ArgSweep sweep = check_args_reduce(q.device(), rules, {}, prob.info);
  require_args_ok(sweep.report, "potrf_vbatched");
  return dispatch<T>(q, uplo, prob, max_n, opts);
}

template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, Batch<T>& batch, int max_n,
                               const PotrfOptions& opts) {
  return potrf_vbatched_max<T>(q, uplo, batch.problem(), max_n, opts);
}

template <typename T>
PotrfResult potrf_vbatched(Queue& q, Uplo uplo, Batch<T>& batch, const PotrfOptions& opts) {
  // LAPACK-like interface: the maximum comes from a device reduction (§III-A:
  // "The latter wraps the first interface and calls GPU kernels to compute
  // these maximums"). The reduction shares one metadata sweep with the
  // argument checks and the info reset — the arrays are read once, not once
  // per concern. The sweep's (negligible) time is part of this call and is
  // reported with it.
  auto prob = batch.problem();
  require_metadata_sizes(prob);
  const double t0 = q.time();
  const auto rules = potrf_rules(prob);
  const ArgSweep sweep = check_args_reduce(q.device(), rules, prob.n, prob.info);
  require_args_ok(sweep.report, "potrf_vbatched");
  require(sweep.max_value >= 1, "potrf_vbatched: all matrices are empty");
  PotrfResult result = dispatch<T>(q, uplo, prob, sweep.max_value, opts);
  result.seconds = q.time() - t0;
  return result;
}

template PotrfResult potrf_vbatched_max<float>(Queue&, Uplo, const VbatchedProblem<float>&,
                                               int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<double>(Queue&, Uplo, const VbatchedProblem<double>&,
                                                int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<float>(Queue&, Uplo, Batch<float>&, int,
                                               const PotrfOptions&);
template PotrfResult potrf_vbatched_max<double>(Queue&, Uplo, Batch<double>&, int,
                                                const PotrfOptions&);
template PotrfResult potrf_vbatched<float>(Queue&, Uplo, Batch<float>&, const PotrfOptions&);
template PotrfResult potrf_vbatched<double>(Queue&, Uplo, Batch<double>&, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<float>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<float>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<double>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<double>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<float>>(
    Queue&, Uplo, Batch<std::complex<float>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<double>>(
    Queue&, Uplo, Batch<std::complex<double>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched<std::complex<float>>(Queue&, Uplo,
                                                         Batch<std::complex<float>>&,
                                                         const PotrfOptions&);
template PotrfResult potrf_vbatched<std::complex<double>>(Queue&, Uplo,
                                                          Batch<std::complex<double>>&,
                                                          const PotrfOptions&);

}  // namespace vbatch
