// Public vbatched Cholesky entry points (paper §III-A interfaces).
#include "vbatch/core/potrf_vbatched.hpp"

#include "vbatch/core/crossover.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, const VbatchedProblem<T>& prob, int max_n,
                               const PotrfOptions& opts) {
  require(prob.count() > 0, "potrf_vbatched: empty batch");
  require(static_cast<int>(prob.lda.size()) == prob.count() &&
              static_cast<int>(prob.info.size()) == prob.count(),
          "potrf_vbatched: metadata array size mismatch");
  for (int i = 0; i < prob.count(); ++i) {
    require(prob.lda[static_cast<std::size_t>(i)] >= std::max(1, prob.n[static_cast<std::size_t>(i)]),
            "potrf_vbatched: lda < n");
    prob.info[static_cast<std::size_t>(i)] = 0;
  }

  PotrfResult result;
  result.flops = flops::potrf_batch(prob.n);

  const Precision prec = precision_v<T>;
  bool fused = false;
  switch (opts.path) {
    case PotrfPath::Fused: fused = true; break;
    case PotrfPath::Separated: fused = false; break;
    case PotrfPath::Auto:
      fused = use_fused(q.spec(), prec, max_n, opts.crossover);
      break;
  }

  if (fused) {
    result.path_taken = PotrfPath::Fused;
    result.seconds = detail::potrf_fused_run<T>(q, uplo, prob, max_n, opts.etm,
                                                opts.implicit_sorting, opts.fused_nb,
                                                opts.sort_window);
  } else {
    result.path_taken = PotrfPath::Separated;
    result.seconds = detail::potrf_separated_run<T>(q, uplo, prob, max_n, opts.separated_nb,
                                                    opts.streamed_syrk, opts.num_streams);
  }
  return result;
}

template <typename T>
PotrfResult potrf_vbatched_max(Queue& q, Uplo uplo, Batch<T>& batch, int max_n,
                               const PotrfOptions& opts) {
  return potrf_vbatched_max<T>(q, uplo, batch.problem(), max_n, opts);
}

template <typename T>
PotrfResult potrf_vbatched(Queue& q, Uplo uplo, Batch<T>& batch, const PotrfOptions& opts) {
  // LAPACK-like interface: compute the maximum with a device reduction
  // kernel, then delegate (§III-A: "The latter wraps the first interface
  // and calls GPU kernels to compute these maximums"). The reduction's
  // (negligible) time is part of this call and is reported with it.
  auto prob = batch.problem();
  const double t0 = q.time();
  const int max_n = kernels::imax_reduce(q.device(), prob.n);
  require(max_n >= 1, "potrf_vbatched: all matrices are empty");
  PotrfResult result = potrf_vbatched_max<T>(q, uplo, prob, max_n, opts);
  result.seconds = q.time() - t0;
  return result;
}

template PotrfResult potrf_vbatched_max<float>(Queue&, Uplo, const VbatchedProblem<float>&,
                                               int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<double>(Queue&, Uplo, const VbatchedProblem<double>&,
                                                int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<float>(Queue&, Uplo, Batch<float>&, int,
                                               const PotrfOptions&);
template PotrfResult potrf_vbatched_max<double>(Queue&, Uplo, Batch<double>&, int,
                                                const PotrfOptions&);
template PotrfResult potrf_vbatched<float>(Queue&, Uplo, Batch<float>&, const PotrfOptions&);
template PotrfResult potrf_vbatched<double>(Queue&, Uplo, Batch<double>&, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<float>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<float>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<double>>(
    Queue&, Uplo, const VbatchedProblem<std::complex<double>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<float>>(
    Queue&, Uplo, Batch<std::complex<float>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched_max<std::complex<double>>(
    Queue&, Uplo, Batch<std::complex<double>>&, int, const PotrfOptions&);
template PotrfResult potrf_vbatched<std::complex<float>>(Queue&, Uplo,
                                                         Batch<std::complex<float>>&,
                                                         const PotrfOptions&);
template PotrfResult potrf_vbatched<std::complex<double>>(Queue&, Uplo,
                                                          Batch<std::complex<double>>&,
                                                          const PotrfOptions&);

}  // namespace vbatch
