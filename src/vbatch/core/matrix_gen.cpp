#include "vbatch/core/matrix_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch {

template <typename T>
void make_spd_cond(Rng& rng, MatrixView<T> a, double cond) {
  const index_t n = a.rows();
  require(a.cols() == n, "make_spd_cond: square matrix required");
  require(cond >= 1.0, "make_spd_cond: condition number must be >= 1");
  if (n == 0) return;

  // Random orthogonal Q: QR of a random matrix, Q materialized via orgqr.
  std::vector<T> qbuf(static_cast<std::size_t>(n) * n);
  MatrixView<T> q(qbuf.data(), n, n, n);
  fill_general(rng, q.data(), n, n, n);
  std::vector<T> tau(static_cast<std::size_t>(n));
  blas::geqrf<T>(q, tau);
  blas::orgqr<T>(q, tau);

  // Log-spaced eigenvalues in [1/cond, 1].
  std::vector<T> d(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const double frac = n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    d[static_cast<std::size_t>(i)] = static_cast<T>(std::pow(cond, -frac));
  }

  // A = Q·D·Qᵀ.
  std::vector<T> qd(static_cast<std::size_t>(n) * n);
  MatrixView<T> qdv(qd.data(), n, n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) qdv(i, j) = q(i, j) * d[static_cast<std::size_t>(j)];
  blas::gemm<T>(Trans::NoTrans, Trans::Trans, T(1),
                ConstMatrixView<T>(qd.data(), n, n, n), ConstMatrixView<T>(qbuf.data(), n, n, n),
                T(0), a);
  // Enforce exact symmetry (floating-point drift breaks potrf tests).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) {
      const T s = static_cast<T>(0.5) * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
}

template <typename T>
void make_diag_dominant(Rng& rng, MatrixView<T> a, double dominance) {
  const index_t n = a.rows();
  require(a.cols() == n, "make_diag_dominant: square matrix required");
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) = static_cast<T>(rng.uniform(-1.0, 1.0));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) a(j, i) = a(i, j);
  for (index_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (index_t j = 0; j < n; ++j)
      if (j != i) row_sum += std::abs(static_cast<double>(a(i, j)));
    a(i, i) = static_cast<T>(dominance * std::max(row_sum, 1.0));
  }
}

template <typename T>
void make_tridiag_spd(Rng& rng, MatrixView<T> a, double jitter) {
  const index_t n = a.rows();
  require(a.cols() == n, "make_tridiag_spd: square matrix required");
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) = T(0);
  for (index_t i = 0; i < n; ++i) {
    a(i, i) = static_cast<T>(2.0 + jitter * rng.uniform());
    if (i + 1 < n) {
      a(i + 1, i) = T(-1);
      a(i, i + 1) = T(-1);
    }
  }
}

template <typename T>
void fill_batch_spd_cond(Rng& rng, Batch<T>& batch, double cond) {
  if (!batch.queue().full()) return;
  for (int i = 0; i < batch.count(); ++i) {
    if (batch.sizes()[static_cast<std::size_t>(i)] > 0) make_spd_cond(rng, batch.matrix(i), cond);
  }
}

template <typename T>
double estimate_condition(ConstMatrixView<T> a, int iterations) {
  const index_t n = a.rows();
  if (n == 0) return 1.0;
  Rng rng(0xC0DE);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);

  auto normalize = [&](std::vector<double>& x) {
    double s = 0.0;
    for (double e : x) s += e * e;
    s = std::sqrt(s);
    for (double& e : x) e /= s;
    return s;
  };
  normalize(v);

  // λmax by power iteration.
  std::vector<double> w(static_cast<std::size_t>(n));
  double lmax = 0.0;
  for (int it = 0; it < iterations; ++it) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t j = 0; j < n; ++j) s += static_cast<double>(a(i, j)) * v[static_cast<std::size_t>(j)];
      w[static_cast<std::size_t>(i)] = s;
    }
    lmax = normalize(w);
    v = w;
  }

  // λmin by inverse iteration through a Cholesky solve on a double copy.
  std::vector<double> fac(static_cast<std::size_t>(n) * n);
  MatrixView<double> f(fac.data(), n, n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) f(i, j) = static_cast<double>(a(i, j));
  if (blas::potrf<double>(Uplo::Lower, f) != 0) return std::numeric_limits<double>::infinity();
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  normalize(v);
  double inv_norm = 0.0;
  for (int it = 0; it < iterations; ++it) {
    w = v;
    MatrixView<double> wv(w.data(), n, 1, n);
    blas::potrs<double>(Uplo::Lower, f, wv);
    inv_norm = normalize(w);
    v = w;
  }
  const double lmin = 1.0 / inv_norm;
  return lmax / lmin;
}

#define VBATCH_INSTANTIATE_GEN(T)                                        \
  template void make_spd_cond<T>(Rng&, MatrixView<T>, double);           \
  template void make_diag_dominant<T>(Rng&, MatrixView<T>, double);      \
  template void make_tridiag_spd<T>(Rng&, MatrixView<T>, double);        \
  template void fill_batch_spd_cond<T>(Rng&, Batch<T>&, double);         \
  template double estimate_condition<T>(ConstMatrixView<T>, int);

VBATCH_INSTANTIATE_GEN(float)
VBATCH_INSTANTIATE_GEN(double)

#undef VBATCH_INSTANTIATE_GEN

}  // namespace vbatch
