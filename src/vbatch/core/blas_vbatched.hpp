// Public variable-size batched BLAS — "these kernels are a foundation for
// other variable-size batched factorizations (LU and QR) as well as other
// higher level LAPACK algorithms" (paper §III-E).
//
// Every routine comes as the §III-A interface pair:
//   * the expert `_max` form taking the maximum dimension(s) from the
//     caller, and
//   * the LAPACK-like form that computes the maxima with device reduction
//     kernels first.
// All routines run LAPACK-compliant argument checking (§V) through
// vbatch/core/arg_check before launching anything: inconsistent per-matrix
// dimensions raise Status::InvalidArgument identifying the parameter and
// the first offending batch index.
#pragma once

#include "vbatch/core/batch.hpp"
#include "vbatch/core/queue.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch {

/// Outcome of a vbatched BLAS call.
struct BlasResult {
  double seconds = 0.0;
  double flops = 0.0;
  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
};

// ---------------------------------------------------------------------------
// GEMM: C_i = alpha · op(A_i) · op(B_i) + beta · C_i
// ---------------------------------------------------------------------------

template <typename T>
BlasResult gemm_vbatched(Queue& q, Trans trans_a, Trans trans_b, T alpha, RectBatch<T>& a,
                         RectBatch<T>& b, T beta, RectBatch<T>& c);

template <typename T>
BlasResult gemm_vbatched_max(Queue& q, Trans trans_a, Trans trans_b, T alpha, RectBatch<T>& a,
                             RectBatch<T>& b, T beta, RectBatch<T>& c, int max_m, int max_n);

// ---------------------------------------------------------------------------
// SYRK: C_i = alpha · op(A_i) · op(A_i)ᵀ + beta · C_i on the uplo triangle
// ---------------------------------------------------------------------------

template <typename T>
BlasResult syrk_vbatched(Queue& q, Uplo uplo, Trans trans, T alpha, RectBatch<T>& a, T beta,
                         Batch<T>& c);

template <typename T>
BlasResult syrk_vbatched_max(Queue& q, Uplo uplo, Trans trans, T alpha, RectBatch<T>& a,
                             T beta, Batch<T>& c, int max_n);

// ---------------------------------------------------------------------------
// TRSM / TRMM: all side/uplo/trans/diag combinations. A_i is the m_i×m_i
// (Left) or n_i×n_i (Right) triangle of the square batch; B_i is m_i×n_i.
// ---------------------------------------------------------------------------

template <typename T>
BlasResult trsm_vbatched(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                         Batch<T>& a, RectBatch<T>& b);

template <typename T>
BlasResult trsm_vbatched_max(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                             Batch<T>& a, RectBatch<T>& b, int max_m, int max_n);

template <typename T>
BlasResult trmm_vbatched(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                         Batch<T>& a, RectBatch<T>& b);

template <typename T>
BlasResult trmm_vbatched_max(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                             Batch<T>& a, RectBatch<T>& b, int max_m, int max_n);

}  // namespace vbatch
