#include "vbatch/core/padding.hpp"

#include "vbatch/core/potrf_batched_fixed.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
PaddedPotrfResult potrf_vbatched_via_padding(Queue& q, Uplo uplo, Batch<T>& batch, int max_n,
                                             const PotrfOptions& opts) {
  require(max_n >= batch.max_size(), "padding: max_n smaller than the largest matrix");
  const int count = batch.count();

  // The padded fixed-size batch: this allocation is what exhausts device
  // memory for large Nmax (Figs. 8/9's truncated curves). The Batch
  // constructor throws Status::OutOfDeviceMemory in that case.
  Batch<T> padded = Batch<T>::fixed(q, count, max_n);

  const double t0 = q.time();
  if (q.full()) {
    // Pad: original in the top-left, identity on the remaining diagonal.
    for (int i = 0; i < count; ++i) {
      auto dst = padded.matrix(i);
      auto src = batch.matrix(i);
      const index_t n = src.rows();
      for (index_t c = 0; c < max_n; ++c)
        for (index_t r = 0; r < max_n; ++r) dst(r, c) = T(0);
      for (index_t c = 0; c < n; ++c)
        for (index_t r = 0; r < n; ++r) dst(r, c) = src(r, c);
      for (index_t d = n; d < max_n; ++d) dst(d, d) = T(1);
    }
  }

  PotrfOptions fixed = opts;
  if (fixed.path == PotrfPath::Auto) fixed.path = PotrfPath::Separated;
  const PotrfResult inner = potrf_batched_fixed<T>(q, uplo, padded, fixed);

  if (q.full()) {
    // Copy the useful triangle back and propagate info.
    for (int i = 0; i < count; ++i) {
      auto dst = batch.matrix(i);
      auto src = padded.matrix(i);
      const index_t n = dst.rows();
      for (index_t c = 0; c < n; ++c)
        for (index_t r = 0; r < n; ++r) dst(r, c) = src(r, c);
      const int inner_info = padded.info()[static_cast<std::size_t>(i)];
      batch.info()[static_cast<std::size_t>(i)] =
          inner_info > static_cast<int>(n) ? 0 : inner_info;
    }
  }

  PaddedPotrfResult result;
  // The device clock already accounts for the inner factorization; report
  // the call's whole device-time span.
  result.seconds = std::max(q.time() - t0, inner.seconds);
  result.useful_flops = batch.potrf_flops();
  result.executed_flops = static_cast<double>(count) * flops::potrf(max_n);
  return result;
}

template PaddedPotrfResult potrf_vbatched_via_padding<float>(Queue&, Uplo, Batch<float>&, int,
                                                             const PotrfOptions&);
template PaddedPotrfResult potrf_vbatched_via_padding<double>(Queue&, Uplo, Batch<double>&,
                                                              int, const PotrfOptions&);

}  // namespace vbatch
