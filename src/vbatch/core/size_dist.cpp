#include "vbatch/core/size_dist.hpp"

#include <algorithm>
#include <cmath>

#include "vbatch/util/error.hpp"

namespace vbatch {

std::vector<int> uniform_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "uniform_sizes: bad arguments");
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) s = static_cast<int>(rng.uniform_int(1, nmax));
  return sizes;
}

std::vector<int> gaussian_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "gaussian_sizes: bad arguments");
  const double mean = std::floor(static_cast<double>(nmax) / 2.0);
  const double stddev = static_cast<double>(nmax) / 6.0;
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    const double v = rng.gaussian(mean, stddev);
    s = std::clamp(static_cast<int>(std::lround(v)), 1, nmax);
  }
  return sizes;
}

std::vector<int> make_sizes(SizeDist dist, Rng& rng, int count, int nmax) {
  return dist == SizeDist::Uniform ? uniform_sizes(rng, count, nmax)
                                   : gaussian_sizes(rng, count, nmax);
}

SizeStats size_stats(const std::vector<int>& sizes) {
  SizeStats st;
  if (sizes.empty()) return st;
  st.min = *std::min_element(sizes.begin(), sizes.end());
  st.max = *std::max_element(sizes.begin(), sizes.end());
  double sum = 0.0;
  for (int s : sizes) sum += s;
  st.mean = sum / static_cast<double>(sizes.size());
  double var = 0.0;
  for (int s : sizes) {
    const double d = s - st.mean;
    var += d * d;
  }
  st.stddev = std::sqrt(var / static_cast<double>(sizes.size()));
  return st;
}

}  // namespace vbatch
