#include "vbatch/core/size_dist.hpp"

#include <algorithm>
#include <cmath>

#include "vbatch/util/error.hpp"

namespace vbatch {

std::vector<int> uniform_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "uniform_sizes: bad arguments");
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) s = static_cast<int>(rng.uniform_int(1, nmax));
  return sizes;
}

std::vector<int> gaussian_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "gaussian_sizes: bad arguments");
  const double mean = std::floor(static_cast<double>(nmax) / 2.0);
  const double stddev = static_cast<double>(nmax) / 6.0;
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    const double v = rng.gaussian(mean, stddev);
    s = std::clamp(static_cast<int>(std::lround(v)), 1, nmax);
  }
  return sizes;
}

std::vector<int> skewed_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "skewed_sizes: bad arguments");
  const double ln_max = std::log(static_cast<double>(nmax));
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    const double v = std::exp(rng.uniform() * ln_max);
    s = std::clamp(static_cast<int>(std::lround(v)), 1, nmax);
  }
  return sizes;
}

std::vector<int> cluster_sizes(Rng& rng, int count, int nmax) {
  require(count > 0 && nmax >= 1, "cluster_sizes: bad arguments");
  static constexpr double kCentres[] = {0.2, 0.45, 0.7, 0.95};
  std::vector<int> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    const double centre = kCentres[rng.uniform_int(0, 3)] * static_cast<double>(nmax);
    const double v = centre * rng.uniform(0.95, 1.05);
    s = std::clamp(static_cast<int>(std::lround(v)), 1, nmax);
  }
  return sizes;
}

std::vector<int> make_sizes(SizeDist dist, Rng& rng, int count, int nmax) {
  switch (dist) {
    case SizeDist::Uniform: return uniform_sizes(rng, count, nmax);
    case SizeDist::Gaussian: return gaussian_sizes(rng, count, nmax);
    case SizeDist::Skewed: return skewed_sizes(rng, count, nmax);
    case SizeDist::Cluster: return cluster_sizes(rng, count, nmax);
  }
  return uniform_sizes(rng, count, nmax);
}

SizeStats size_stats(const std::vector<int>& sizes) {
  SizeStats st;
  if (sizes.empty()) return st;
  st.min = *std::min_element(sizes.begin(), sizes.end());
  st.max = *std::max_element(sizes.begin(), sizes.end());
  double sum = 0.0;
  for (int s : sizes) sum += s;
  st.mean = sum / static_cast<double>(sizes.size());
  double var = 0.0;
  for (int s : sizes) {
    const double d = s - st.mean;
    var += d * d;
  }
  st.stddev = std::sqrt(var / static_cast<double>(sizes.size()));
  return st;
}

}  // namespace vbatch
