#include "vbatch/core/blas_vbatched.hpp"

#include <algorithm>
#include <vector>

#include "vbatch/core/arg_check.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"
#include "vbatch/kernels/trsm_vbatched.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

namespace {

// op(X) dimensions for a rectangular batch operand.
struct OpDims {
  std::vector<int> rows, cols;
};

OpDims op_dims(Trans t, std::span<const int> m, std::span<const int> n) {
  OpDims d;
  if (t == Trans::NoTrans) {
    d.rows.assign(m.begin(), m.end());
    d.cols.assign(n.begin(), n.end());
  } else {
    d.rows.assign(n.begin(), n.end());
    d.cols.assign(m.begin(), m.end());
  }
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

template <typename T>
BlasResult gemm_vbatched_max(Queue& q, Trans trans_a, Trans trans_b, T alpha, RectBatch<T>& a,
                             RectBatch<T>& b, T beta, RectBatch<T>& c, int max_m, int max_n) {
  require(a.count() == b.count() && a.count() == c.count(),
          "gemm_vbatched: batch count mismatch");
  const auto opa = op_dims(trans_a, a.rows(), a.cols());
  const auto opb = op_dims(trans_b, b.rows(), b.cols());

  // LAPACK-style metadata validation (§V): per-matrix dimension
  // consistency plus the leading-dimension bounds.
  const ArgRule rules[] = {
      {ArgRule::Kind::NonNegative, c.rows(), {}, 8, "m (C rows)"},
      {ArgRule::Kind::NonNegative, c.cols(), {}, 8, "n (C cols)"},
      {ArgRule::Kind::EqualOther, opa.rows, c.rows(), 5, "op(A) rows vs C rows"},
      {ArgRule::Kind::EqualOther, opb.rows, opa.cols, 6, "op(B) rows vs op(A) cols"},
      {ArgRule::Kind::EqualOther, opb.cols, c.cols(), 6, "op(B) cols vs C cols"},
      {ArgRule::Kind::AtLeastOther, a.ldas(), a.rows(), 5, "lda"},
      {ArgRule::Kind::AtLeastOther, b.ldas(), b.rows(), 6, "ldb"},
      {ArgRule::Kind::AtLeastOther, c.ldas(), c.rows(), 8, "ldc"},
  };
  require_args_ok(check_args(q.device(), rules, c.info()), "gemm_vbatched");

  kernels::GemmVbatchedArgs<T> args;
  args.trans_a = trans_a;
  args.trans_b = trans_b;
  args.m = c.rows();
  args.n = c.cols();
  args.k = opa.cols;
  args.max_m = max_m;
  args.max_n = max_n;
  args.alpha = alpha;
  args.beta = beta;
  args.a = a.device_ptrs();
  args.lda = a.ldas();
  args.b = b.device_ptrs();
  args.ldb = b.ldas();
  args.c = c.device_ptrs();
  args.ldc = c.ldas();

  BlasResult result;
  for (int i = 0; i < c.count(); ++i) {
    result.flops += flops::gemm(c.rows()[static_cast<std::size_t>(i)],
                                c.cols()[static_cast<std::size_t>(i)],
                                opa.cols[static_cast<std::size_t>(i)]);
  }
  result.seconds = kernels::launch_gemm_vbatched(q.device(), args);
  return result;
}

template <typename T>
BlasResult gemm_vbatched(Queue& q, Trans trans_a, Trans trans_b, T alpha, RectBatch<T>& a,
                         RectBatch<T>& b, T beta, RectBatch<T>& c) {
  const int max_m = kernels::imax_reduce(q.device(), c.rows());
  const int max_n = kernels::imax_reduce(q.device(), c.cols());
  if (max_m == 0 || max_n == 0) return {};
  return gemm_vbatched_max<T>(q, trans_a, trans_b, alpha, a, b, beta, c, max_m, max_n);
}

// ---------------------------------------------------------------------------
// SYRK
// ---------------------------------------------------------------------------

template <typename T>
BlasResult syrk_vbatched_max(Queue& q, Uplo uplo, Trans trans, T alpha, RectBatch<T>& a,
                             T beta, Batch<T>& c, int max_n) {
  require(a.count() == c.count(), "syrk_vbatched: batch count mismatch");
  const auto opa = op_dims(trans, a.rows(), a.cols());

  const ArgRule rules[] = {
      {ArgRule::Kind::NonNegative, c.sizes(), {}, 7, "n"},
      {ArgRule::Kind::EqualOther, opa.rows, c.sizes(), 5, "op(A) rows vs n"},
      {ArgRule::Kind::AtLeastOther, a.ldas(), a.rows(), 5, "lda"},
      {ArgRule::Kind::AtLeastOther, c.ldas(), c.sizes(), 7, "ldc"},
  };
  require_args_ok(check_args(q.device(), rules, c.info()), "syrk_vbatched");

  kernels::SyrkVbatchedArgs<T> args;
  args.uplo = uplo;
  args.trans = trans;
  args.n = c.sizes();
  args.k = opa.cols;
  args.max_n = max_n;
  args.alpha = alpha;
  args.beta = beta;
  args.a = a.device_ptrs();
  args.lda = a.ldas();
  args.c = c.device_ptrs();
  args.ldc = c.ldas();

  BlasResult result;
  for (int i = 0; i < c.count(); ++i) {
    result.flops += flops::syrk(c.sizes()[static_cast<std::size_t>(i)],
                                opa.cols[static_cast<std::size_t>(i)]);
  }
  result.seconds = kernels::launch_syrk_vbatched(q.device(), args);
  return result;
}

template <typename T>
BlasResult syrk_vbatched(Queue& q, Uplo uplo, Trans trans, T alpha, RectBatch<T>& a, T beta,
                         Batch<T>& c) {
  const int max_n = kernels::imax_reduce(q.device(), c.sizes());
  if (max_n == 0) return {};
  return syrk_vbatched_max<T>(q, uplo, trans, alpha, a, beta, c, max_n);
}

// ---------------------------------------------------------------------------
// TRSM / TRMM
// ---------------------------------------------------------------------------

namespace {

template <typename T, bool Solve>
BlasResult triangular_vbatched_max(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag,
                                   T alpha, Batch<T>& a, RectBatch<T>& b, int max_m,
                                   int max_n) {
  require(a.count() == b.count(), "trsm/trmm_vbatched: batch count mismatch");
  const auto side_dim = side == Side::Left ? b.rows() : b.cols();
  const char* routine = Solve ? "trsm_vbatched" : "trmm_vbatched";

  const ArgRule rules[] = {
      {ArgRule::Kind::NonNegative, b.rows(), {}, 7, "m"},
      {ArgRule::Kind::NonNegative, b.cols(), {}, 7, "n"},
      {ArgRule::Kind::EqualOther, a.sizes(), side_dim, 6, "A order vs B side dimension"},
      {ArgRule::Kind::AtLeastOther, a.ldas(), a.sizes(), 6, "lda"},
      {ArgRule::Kind::AtLeastOther, b.ldas(), b.rows(), 7, "ldb"},
  };
  require_args_ok(check_args(q.device(), rules, b.info()), routine);

  kernels::TriangularVbatchedArgs<T> args;
  args.side = side;
  args.uplo = uplo;
  args.trans = trans;
  args.diag = diag;
  args.alpha = alpha;
  args.a = a.device_ptrs();
  args.lda = a.ldas();
  args.b = b.device_ptrs();
  args.ldb = b.ldas();
  args.m = b.rows();
  args.n = b.cols();
  args.max_m = max_m;
  args.max_n = max_n;

  BlasResult result;
  for (int i = 0; i < b.count(); ++i) {
    const int mi = b.rows()[static_cast<std::size_t>(i)];
    const int ni = b.cols()[static_cast<std::size_t>(i)];
    result.flops += side == Side::Left ? flops::trsm(mi, ni, true) : flops::trsm(mi, ni, false);
  }
  result.seconds = Solve ? kernels::launch_trsm_general(q.device(), args)
                         : kernels::launch_trmm_general(q.device(), args);
  return result;
}

}  // namespace

template <typename T>
BlasResult trsm_vbatched_max(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                             Batch<T>& a, RectBatch<T>& b, int max_m, int max_n) {
  return triangular_vbatched_max<T, true>(q, side, uplo, trans, diag, alpha, a, b, max_m,
                                          max_n);
}

template <typename T>
BlasResult trsm_vbatched(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                         Batch<T>& a, RectBatch<T>& b) {
  const int max_m = kernels::imax_reduce(q.device(), b.rows());
  const int max_n = kernels::imax_reduce(q.device(), b.cols());
  if (max_m == 0 || max_n == 0) return {};
  return trsm_vbatched_max<T>(q, side, uplo, trans, diag, alpha, a, b, max_m, max_n);
}

template <typename T>
BlasResult trmm_vbatched_max(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                             Batch<T>& a, RectBatch<T>& b, int max_m, int max_n) {
  return triangular_vbatched_max<T, false>(q, side, uplo, trans, diag, alpha, a, b, max_m,
                                           max_n);
}

template <typename T>
BlasResult trmm_vbatched(Queue& q, Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
                         Batch<T>& a, RectBatch<T>& b) {
  const int max_m = kernels::imax_reduce(q.device(), b.rows());
  const int max_n = kernels::imax_reduce(q.device(), b.cols());
  if (max_m == 0 || max_n == 0) return {};
  return trmm_vbatched_max<T>(q, side, uplo, trans, diag, alpha, a, b, max_m, max_n);
}

// --- Explicit instantiations ------------------------------------------------

#define VBATCH_INSTANTIATE_BLAS(T)                                                            \
  template BlasResult gemm_vbatched<T>(Queue&, Trans, Trans, T, RectBatch<T>&, RectBatch<T>&, \
                                       T, RectBatch<T>&);                                     \
  template BlasResult gemm_vbatched_max<T>(Queue&, Trans, Trans, T, RectBatch<T>&,            \
                                           RectBatch<T>&, T, RectBatch<T>&, int, int);        \
  template BlasResult syrk_vbatched<T>(Queue&, Uplo, Trans, T, RectBatch<T>&, T, Batch<T>&);  \
  template BlasResult syrk_vbatched_max<T>(Queue&, Uplo, Trans, T, RectBatch<T>&, T,          \
                                           Batch<T>&, int);                                   \
  template BlasResult trsm_vbatched<T>(Queue&, Side, Uplo, Trans, Diag, T, Batch<T>&,         \
                                       RectBatch<T>&);                                        \
  template BlasResult trsm_vbatched_max<T>(Queue&, Side, Uplo, Trans, Diag, T, Batch<T>&,     \
                                           RectBatch<T>&, int, int);                          \
  template BlasResult trmm_vbatched<T>(Queue&, Side, Uplo, Trans, Diag, T, Batch<T>&,         \
                                       RectBatch<T>&);                                        \
  template BlasResult trmm_vbatched_max<T>(Queue&, Side, Uplo, Trans, Diag, T, Batch<T>&,     \
                                           RectBatch<T>&, int, int);

VBATCH_INSTANTIATE_BLAS(float)
VBATCH_INSTANTIATE_BLAS(double)
VBATCH_INSTANTIATE_BLAS(std::complex<float>)
VBATCH_INSTANTIATE_BLAS(std::complex<double>)

#undef VBATCH_INSTANTIATE_BLAS

}  // namespace vbatch
