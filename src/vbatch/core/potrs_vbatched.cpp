#include "vbatch/core/potrs_vbatched.hpp"

#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/kernels/common.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/flops.hpp"

namespace vbatch {

template <typename T>
FactorResult potrs_vbatched(Queue& q, Uplo uplo, Batch<T>& factors, RectBatch<T>& rhs) {
  require(factors.count() == rhs.count(), "potrs_vbatched: batch count mismatch");
  const int count = factors.count();
  sim::Device& dev = q.device();

  int max_n = 0, max_rhs = 0;
  double total_flops = 0.0;
  for (int i = 0; i < count; ++i) {
    require(factors.sizes()[static_cast<std::size_t>(i)] ==
                rhs.rows()[static_cast<std::size_t>(i)],
            "potrs_vbatched: rhs rows != matrix order");
    max_n = std::max(max_n, factors.sizes()[static_cast<std::size_t>(i)]);
    max_rhs = std::max(max_rhs, rhs.cols()[static_cast<std::size_t>(i)]);
    total_flops += flops::potrs(factors.sizes()[static_cast<std::size_t>(i)],
                                rhs.cols()[static_cast<std::size_t>(i)]);
  }

  FactorResult result;
  result.flops = total_flops;
  if (max_n == 0 || max_rhs == 0) return result;

  // One block per (matrix, rhs-column-strip): the two triangular sweeps are
  // fused into a single kernel, the rhs strip staged through shared memory.
  const int strip = 8;
  const int strips = (max_rhs + strip - 1) / strip;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_potrs";
  cfg.grid_blocks = count * strips;
  cfg.block_threads = kernels::round_up_warp(dev.spec(), std::min(max_n, 512));
  cfg.shared_mem = static_cast<std::size_t>(std::min(max_n, 512)) * strip * sizeof(T);
  cfg.shared_mem = std::min(cfg.shared_mem, dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  auto fsizes = factors.sizes();
  auto fldas = factors.ldas();
  auto finfo = factors.info();
  T** fptrs = factors.device_ptrs();
  auto rrows = rhs.rows();
  auto rcols = rhs.cols();
  auto rldas = rhs.ldas();
  T** rptrs = rhs.device_ptrs();

  result.seconds = dev.launch(cfg, [&, threads = cfg.block_threads](
                                       const sim::ExecContext& ctx, int block) {
    const int i = block / strips;
    const index_t s = block % strips;
    const index_t n = fsizes[static_cast<std::size_t>(i)];
    const index_t c0 = s * strip;
    const index_t nrhs = rcols[static_cast<std::size_t>(i)];

    sim::BlockCost cost;
    cost.live_threads = threads;
    if (n == 0 || c0 >= nrhs || finfo[static_cast<std::size_t>(i)] != 0) {
      cost.early_exit = true;
      return cost;
    }

    const index_t nc = std::min<index_t>(strip, nrhs - c0);
    cost.active_threads = static_cast<int>(std::min<index_t>(n, threads));
    cost.flops = flops::potrs(n, nc);
    cost.bytes = static_cast<double>(n * n / 2 + 2 * n * nc) * sizeof(T);
    cost.sync_steps = static_cast<int>(2 * n);  // forward + backward column sweeps
    cost.serial_ops = static_cast<double>(2 * n);

    if (ctx.full()) {
      ConstMatrixView<T> a(fptrs[i], n, n, fldas[static_cast<std::size_t>(i)]);
      MatrixView<T> b(rptrs[i] + c0 * rldas[static_cast<std::size_t>(i)], n, nc,
                      rldas[static_cast<std::size_t>(i)]);
      blas::potrs<T>(uplo, a, b);
    }
    return cost;
  });
  return result;
}

template <typename T>
FactorResult posv_vbatched(Queue& q, Uplo uplo, Batch<T>& a, RectBatch<T>& rhs,
                           const PotrfOptions& opts) {
  const PotrfResult fac = potrf_vbatched<T>(q, uplo, a, opts);
  const FactorResult sol = potrs_vbatched<T>(q, uplo, a, rhs);
  FactorResult result;
  result.seconds = fac.seconds + sol.seconds;
  result.flops = fac.flops + sol.flops;
  return result;
}

template <typename T>
FactorResult potri_vbatched(Queue& q, Uplo uplo, Batch<T>& factors) {
  sim::Device& dev = q.device();
  const int count = factors.count();

  int max_n = 0;
  double total_flops = 0.0;
  for (int i = 0; i < count; ++i) {
    const int n = factors.sizes()[static_cast<std::size_t>(i)];
    max_n = std::max(max_n, n);
    total_flops += 2.0 * flops::trtri(n);  // trtri + the lauum product
  }

  FactorResult result;
  result.flops = total_flops;
  if (max_n == 0) return result;

  sim::LaunchConfig cfg;
  cfg.name = "vbatched_potri";
  cfg.grid_blocks = count;
  cfg.block_threads = kernels::round_up_warp(dev.spec(), std::min(max_n, 512));
  cfg.shared_mem = std::min<std::size_t>(
      static_cast<std::size_t>(std::min(max_n, 256)) * 16 * sizeof(T),
      dev.spec().shared_mem_per_block);
  cfg.precision = precision_v<T>;

  auto sizes = factors.sizes();
  auto ldas = factors.ldas();
  auto info = factors.info();
  T** ptrs = factors.device_ptrs();

  result.seconds =
      dev.launch(cfg, [&, threads = cfg.block_threads](const sim::ExecContext& ctx, int i) {
        const index_t n = sizes[static_cast<std::size_t>(i)];
        sim::BlockCost cost;
        cost.live_threads = threads;
        if (n == 0 || info[static_cast<std::size_t>(i)] != 0) {
          cost.early_exit = true;
          return cost;
        }
        cost.active_threads = static_cast<int>(std::min<index_t>(n, threads));
        cost.flops = 2.0 * flops::trtri(n);
        cost.bytes = static_cast<double>(2 * n * n) * sizeof(T);
        cost.sync_steps = static_cast<int>(2 * n);
        cost.serial_ops = static_cast<double>(n);  // the trtri reciprocal chain

        if (ctx.full()) {
          MatrixView<T> a(ptrs[i], n, n, ldas[static_cast<std::size_t>(i)]);
          const int local = blas::potri<T>(uplo, a);
          if (local != 0) info[static_cast<std::size_t>(i)] = local;
        }
        return cost;
      });
  return result;
}

template FactorResult potri_vbatched<float>(Queue&, Uplo, Batch<float>&);
template FactorResult potri_vbatched<double>(Queue&, Uplo, Batch<double>&);

template FactorResult potrs_vbatched<float>(Queue&, Uplo, Batch<float>&, RectBatch<float>&);
template FactorResult potrs_vbatched<double>(Queue&, Uplo, Batch<double>&, RectBatch<double>&);
template FactorResult posv_vbatched<float>(Queue&, Uplo, Batch<float>&, RectBatch<float>&,
                                           const PotrfOptions&);
template FactorResult posv_vbatched<double>(Queue&, Uplo, Batch<double>&, RectBatch<double>&,
                                            const PotrfOptions&);
template FactorResult potrs_vbatched<std::complex<float>>(Queue&, Uplo,
                                                          Batch<std::complex<float>>&,
                                                          RectBatch<std::complex<float>>&);
template FactorResult potrs_vbatched<std::complex<double>>(Queue&, Uplo,
                                                           Batch<std::complex<double>>&,
                                                           RectBatch<std::complex<double>>&);
template FactorResult potri_vbatched<std::complex<float>>(Queue&, Uplo,
                                                          Batch<std::complex<float>>&);
template FactorResult potri_vbatched<std::complex<double>>(Queue&, Uplo,
                                                           Batch<std::complex<double>>&);
template FactorResult posv_vbatched<std::complex<float>>(Queue&, Uplo,
                                                         Batch<std::complex<float>>&,
                                                         RectBatch<std::complex<float>>&,
                                                         const PotrfOptions&);
template FactorResult posv_vbatched<std::complex<double>>(Queue&, Uplo,
                                                          Batch<std::complex<double>>&,
                                                          RectBatch<std::complex<double>>&,
                                                          const PotrfOptions&);

}  // namespace vbatch
