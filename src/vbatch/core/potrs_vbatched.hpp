// vbatched triangular solves after Cholesky (xPOTRS) and the combined
// factor-and-solve (xPOSV) — the "solve routines" the paper's framework is
// a foundation for (§I, §V).
#pragma once

#include <span>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/getrf_vbatched.hpp"  // FactorResult
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/queue.hpp"

namespace vbatch {

/// Solves A_i X_i = B_i for every matrix, where `factors` holds the
/// Cholesky factors (output of potrf_vbatched) and `rhs` the right-hand
/// sides (n_i × nrhs_i, overwritten with the solutions).
template <typename T>
FactorResult potrs_vbatched(Queue& q, Uplo uplo, Batch<T>& factors, RectBatch<T>& rhs);

/// Factor + solve in one call (xPOSV). Returns the combined result; the
/// factorization options behave as in potrf_vbatched.
template <typename T>
FactorResult posv_vbatched(Queue& q, Uplo uplo, Batch<T>& a, RectBatch<T>& rhs,
                           const PotrfOptions& opts = {});

/// SPD inverse from the Cholesky factors (xPOTRI): overwrites the `uplo`
/// triangle of every factor with the same triangle of A_i⁻¹ (trtri of the
/// factor followed by the lauum triangular product). Matrices whose
/// factorization reported info != 0 are skipped.
template <typename T>
FactorResult potri_vbatched(Queue& q, Uplo uplo, Batch<T>& factors);

}  // namespace vbatch
