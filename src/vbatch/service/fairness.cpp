#include "vbatch/service/fairness.hpp"

#include <algorithm>

#include "vbatch/util/error.hpp"

namespace vbatch::service {

DrrScheduler::TenantQueue& DrrScheduler::tenant_queue(const std::string& tenant) {
  for (TenantQueue& q : queues_)
    if (q.tenant == tenant) return q;
  queues_.push_back(TenantQueue{tenant, 1.0, 0.0, {}});
  return queues_.back();
}

void DrrScheduler::set_weight(const std::string& tenant, double weight) {
  require(weight > 0.0, "DrrScheduler: tenant weights must be strictly positive "
                        "(a zero weight would starve the tenant)");
  tenant_queue(tenant).weight = weight;
}

double DrrScheduler::weight(const std::string& tenant) const noexcept {
  for (const TenantQueue& q : queues_)
    if (q.tenant == tenant) return q.weight;
  return 1.0;
}

void DrrScheduler::push(const std::string& tenant, const DrrItem& item) {
  tenant_queue(tenant).items.push_back(item);
  ++pending_;
  pending_matrices_ += item.matrices;
  pending_bytes_ += item.bytes;
}

bool DrrScheduler::remove(const std::string& tenant, std::uint64_t id) {
  for (TenantQueue& q : queues_) {
    if (q.tenant != tenant) continue;
    const auto it = std::find_if(q.items.begin(), q.items.end(),
                                 [id](const DrrItem& item) { return item.id == id; });
    if (it == q.items.end()) return false;
    --pending_;
    pending_matrices_ -= it->matrices;
    pending_bytes_ -= it->bytes;
    q.items.erase(it);
    return true;
  }
  return false;
}

std::vector<std::string> DrrScheduler::tenants() const {
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const TenantQueue& q : queues_) names.push_back(q.tenant);
  return names;
}

std::vector<std::uint64_t> DrrScheduler::admit(const DrrCaps& caps, double quantum) {
  std::vector<std::uint64_t> admitted;
  if (queues_.empty() || pending_ == 0) return admitted;

  if (quantum <= 0.0) {
    // Auto quantum: the largest head cost per unit weight, so every full
    // round covers at least one admission and the loop always progresses.
    for (const TenantQueue& q : queues_)
      if (!q.items.empty())
        quantum = std::max(quantum, q.items.front().cost / std::max(q.weight, 1e-12));
    quantum = std::max(quantum, 1.0);
  }

  int taken_matrices = 0;
  double taken_bytes = 0.0;
  auto fits = [&](const DrrItem& item) {
    if (caps.max_matrices > 0 && taken_matrices + item.matrices > caps.max_matrices)
      return false;
    if (caps.max_bytes > 0.0 && taken_bytes + item.bytes > caps.max_bytes) return false;
    return true;
  };
  auto take = [&](TenantQueue& q) {
    const DrrItem item = q.items.front();
    q.items.pop_front();
    admitted.push_back(item.id);
    taken_matrices += item.matrices;
    taken_bytes += item.bytes;
    --pending_;
    pending_matrices_ -= item.matrices;
    pending_bytes_ -= item.bytes;
    q.deficit -= item.cost;
  };

  bool capped = false;
  // A cap interrupts one tenant's visit mid-drain; the next admit resumes
  // that same visit, so the tenant must not collect a second quantum for it.
  bool resume = resume_visit_;
  resume_visit_ = false;
  bool first_round = true;
  while (pending_ > 0 && !capped) {
    // One DRR round: every tenant (starting at the persistent cursor) tops
    // up its deficit and drains what the deficit and the caps allow.
    for (std::size_t step = 0; step < queues_.size() && !capped; ++step) {
      TenantQueue& q = queues_[(cursor_ + step) % queues_.size()];
      if (q.items.empty()) continue;
      if (!(resume && first_round && step == 0)) q.deficit += quantum * q.weight;
      while (!q.items.empty() && q.items.front().cost <= q.deficit) {
        if (!fits(q.items.front())) {
          // An oversized first candidate is admitted alone (atomic
          // requests must still make progress); otherwise the launch is
          // full — remember who is next and stop.
          if (admitted.empty()) {
            take(q);
          }
          cursor_ = (cursor_ + step) % queues_.size();
          capped = true;
          resume_visit_ = true;
          break;
        }
        take(q);
      }
      // An emptied queue forfeits its carry-over (classic DRR): idle
      // tenants must not bank credit against the future.
      if (q.items.empty()) q.deficit = 0.0;
    }
    first_round = false;
  }
  if (!capped) cursor_ = 0;  // queues drained; next burst starts a fresh rotation
  return admitted;
}

}  // namespace vbatch::service
