// Scripted request traces — the deterministic input of the service's
// virtual-time replay mode (docs/service.md, "Trace grammar").
//
// A trace is a plain-text script of tenant declarations and timed requests:
//
//   # comment
//   tenant bursty weight=2
//   req id=1 t=0.0    tenant=bursty op=potrf prec=d n=32,48,64
//   req id=2 t=0.0005 tenant=quiet  op=posv  prec=s n=24 nrhs=4 seed=7
//
// Parsing is hardened in the DevicePool::parse style: every malformed line
// raises Status::InvalidArgument naming the line number and the problem —
// unknown directives, missing/duplicated fields, bad tenant ids, zero or
// negative sizes, unknown ops/precisions, duplicate request ids, negative
// times, non-positive weights — never a silently degenerate trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/service/request.hpp"

namespace vbatch::service {

/// Parsed trace: requests in replay order (stably sorted by (t, id)) plus
/// the declared tenant weights. Tenants referenced by requests without a
/// declaration default to weight 1.
struct Trace {
  std::vector<Request> requests;
  /// Declaration-ordered (tenant, weight) pairs — the deterministic tenant
  /// registration order the fairness scheduler uses.
  std::vector<std::pair<std::string, double>> tenants;

  [[nodiscard]] int count() const noexcept { return static_cast<int>(requests.size()); }
};

/// Parses the trace grammar from a stream / string. Throws
/// Status::InvalidArgument with "trace:<line>: ..." messages on malformed
/// input (see the header comment for the error classes).
[[nodiscard]] Trace parse_trace(std::istream& in);
[[nodiscard]] Trace parse_trace(const std::string& text);

/// Loads and parses a trace file; file-open failures also raise
/// Status::InvalidArgument (naming the path).
[[nodiscard]] Trace load_trace(const std::string& path);

/// Renders a trace back into the grammar (round-trips through parse_trace).
[[nodiscard]] std::string format_trace(const Trace& trace);

/// Synthetic trace generator for benches and the trace_replay tool: `count`
/// requests spread over `tenants` tenants, arrivals spaced by deterministic
/// exponential gaps of mean 1/rate seconds, each request carrying
/// [1, max_matrices] matrices drawn from `dist` capped at nmax.
struct TraceGenConfig {
  int count = 100;
  int tenants = 2;
  double rate = 50000.0;     ///< mean arrivals per virtual second
  SizeDist dist = SizeDist::Uniform;
  int nmax = 64;
  int max_matrices = 4;
  bool mix_ops = false;      ///< sprinkle posv requests among the potrfs
  bool mix_precisions = false;
  std::uint64_t seed = 2016;
  /// Overload-trace knobs (docs/service.md, "Overload & admission"):
  /// burst > 1 compresses the inter-arrival gaps of the middle third of the
  /// trace by that factor — a sustained burst at burst× the nominal rate,
  /// the shape admission control exists for. 0 or 1 = steady arrivals.
  double burst = 0.0;
  /// Fraction of requests (deterministically chosen) carrying a completion
  /// deadline of `deadline_seconds`. 0 = no SLOs.
  double deadline_frac = 0.0;
  double deadline_seconds = 5e-3;
};
[[nodiscard]] Trace make_trace(const TraceGenConfig& cfg);

}  // namespace vbatch::service
