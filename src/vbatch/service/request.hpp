// Request-shaped front-end API of the vbatch service (docs/service.md).
//
// The library's entry points take one pre-built Batch per call; a serving
// system sees the opposite shape — many small concurrent jobs, each a
// handful of matrices, arriving over time from independent tenants. A
// Request is that unit of admission: tenant, operation, precision, the
// matrix orders, and a payload seed that makes the job's numerics a pure
// function of the request itself (so a request factors to the same bits no
// matter which merged launch the coalescer lands it in, which pool runs it,
// or how many stream slots the executors carry).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "vbatch/util/flops.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::service {

/// Operation a request asks for. Posv = factor + triangular solve (the
/// paper's "solve routines" served end to end).
enum class Op : std::uint8_t { Potrf, Posv };

[[nodiscard]] constexpr const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::Potrf: return "potrf";
    case Op::Posv: return "posv";
  }
  return "?";
}

/// One job submitted to the service: a small variable-size SPD batch owned
/// by a tenant. The payload is generated from `seed` (deterministic SPD
/// fill), so results are reproducible and independent of coalescing.
struct Request {
  std::uint64_t id = 0;          ///< unique per trace / service lifetime
  std::string tenant;            ///< fairness accounting key
  Op op = Op::Potrf;
  Precision prec = Precision::Double;
  std::vector<int> sizes;        ///< per-matrix orders (>= 1 each)
  int nrhs = 1;                  ///< right-hand-side columns (Posv only)
  std::uint64_t seed = 0;        ///< payload seed; 0 = derived from id
  double submit_time = 0.0;      ///< virtual arrival instant (trace mode)
  /// Completion SLO relative to submit_time, in seconds (0 = none). The
  /// admission layer refuses requests whose deadline cannot be met by the
  /// current capacity estimate, and the dispatcher sheds admitted requests
  /// whose deadline expired while they queued — before wasting launch time.
  double deadline = 0.0;

  [[nodiscard]] int matrices() const noexcept { return static_cast<int>(sizes.size()); }

  /// Useful flops of the job — the DRR fairness quantum currency and the
  /// denominator of the per-request energy slice.
  [[nodiscard]] double flops() const noexcept {
    double f = flops::potrf_batch(sizes);
    if (op == Op::Posv)
      for (int n : sizes) f += flops::potrs(n, nrhs);
    return f;
  }

  /// Payload footprint in the merged batch (lda = n, no pad), the currency
  /// of the coalescer's arena-footprint cap.
  [[nodiscard]] double bytes() const noexcept {
    const double elem = prec == Precision::Double ? 8.0 : 4.0;
    double b = 0.0;
    for (int n : sizes) {
      b += static_cast<double>(n) * static_cast<double>(n) * elem;
      if (op == Op::Posv) b += static_cast<double>(n) * static_cast<double>(nrhs) * elem;
    }
    return b;
  }

  /// The payload RNG seed actually used (0 falls back to a mix of the id so
  /// distinct requests never share a stream by accident).
  [[nodiscard]] std::uint64_t payload_seed() const noexcept {
    return seed != 0 ? seed : (id + 1) * 0x9E3779B97F4A7C15ull;
  }

  /// Absolute completion deadline on the service clock; +infinity when the
  /// request carries no SLO.
  [[nodiscard]] double absolute_deadline() const noexcept {
    return deadline > 0.0 ? submit_time + deadline
                          : std::numeric_limits<double>::infinity();
  }
};

/// Terminal state of a served request. The Rejected* states are the named
/// overload-shedding statuses: the request never reached a launch, and its
/// outcome says exactly why (docs/service.md, "Overload & admission").
enum class RequestStatus : std::uint8_t {
  Pending,   ///< not yet completed (only visible through a live JobTicket)
  Ok,        ///< every matrix factored (and solved) cleanly
  Failed,    ///< some matrix reported a numerical failure (info > 0)
  Poisoned,  ///< some matrix was lost to an unrecoverable system fault
  RejectedTenantRate,  ///< shed at admission: tenant token bucket exhausted
  RejectedQueueFull,   ///< shed: queue watermarks, or capacity-drop shedding
  RejectedDeadline,    ///< shed: deadline unmeetable at the capacity estimate
};

[[nodiscard]] constexpr const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::Pending: return "pending";
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Failed: return "failed";
    case RequestStatus::Poisoned: return "poisoned";
    case RequestStatus::RejectedTenantRate: return "rejected-tenant-rate";
    case RequestStatus::RejectedQueueFull: return "rejected-queue-full";
    case RequestStatus::RejectedDeadline: return "rejected-deadline";
  }
  return "?";
}

/// True for the overload-shedding terminal states (the request was never
/// dispatched; its outcome carries no launch slice).
[[nodiscard]] constexpr bool is_rejected(RequestStatus s) noexcept {
  return s == RequestStatus::RejectedTenantRate || s == RequestStatus::RejectedQueueFull ||
         s == RequestStatus::RejectedDeadline;
}

/// What the service hands back per request, demultiplexed from the merged
/// launch that served it: per-matrix statuses, the timing slice on the
/// service clock, the energy slice (proportional to the request's flops
/// share of its launch), and — in Full mode with keep_payloads — the raw
/// factor/solution bytes for bit-exact replay comparison.
struct RequestOutcome {
  std::uint64_t id = 0;
  std::string tenant;
  RequestStatus status = RequestStatus::Pending;
  std::vector<int> info;          ///< per-matrix LAPACK-style statuses

  // --- Timing slice (virtual seconds in trace mode, wall in Service mode)
  double submit_time = 0.0;       ///< when the request entered the queue
  double dispatch_time = 0.0;     ///< when its merged launch started
  double complete_time = 0.0;     ///< when its merged launch finished
  double deadline = 0.0;          ///< the request's relative SLO (0 = none)
  [[nodiscard]] double latency() const noexcept { return complete_time - submit_time; }
  [[nodiscard]] double queue_delay() const noexcept { return dispatch_time - submit_time; }
  /// Served within its SLO (vacuously false for rejected / deadline-free
  /// requests — SLO attainment counts only deadline-carrying completions).
  [[nodiscard]] bool met_deadline() const noexcept {
    return deadline > 0.0 && !is_rejected(status) && status != RequestStatus::Pending &&
           complete_time <= submit_time + deadline;
  }

  // --- Accounting slice
  double flops = 0.0;             ///< useful flops of this request
  double joules = 0.0;            ///< launch energy × (request / launch flops)
  int batch_id = -1;              ///< merged launch that served it
  int merged_with = 0;            ///< matrices sharing that launch

  // --- Payload (Full mode + keep_payloads only): column-major factor bytes
  // per matrix, and for Posv the n×nrhs solution bytes. Stored as raw bytes
  // so determinism sweeps can memcmp across precisions uniformly.
  std::vector<std::vector<unsigned char>> factors;
  std::vector<std::vector<unsigned char>> solutions;
};

}  // namespace vbatch::service
