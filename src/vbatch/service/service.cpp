#include "vbatch/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/hetero/executor.hpp"
#include "vbatch/service/request_queue.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::service {

namespace {

/// Result of one merged launch, before the caller stamps the service-clock
/// times and batch id onto the outcomes.
struct LaunchResult {
  double seconds = 0.0;  ///< modelled seconds (factor + solve)
  double flops = 0.0;
  double joules = 0.0;
  std::vector<RequestOutcome> outcomes;  ///< admission order
};

/// The host queue a merged batch lives on mirrors the pool's first GPU (or
/// the K40c default for CPU-only pools) so arena accounting and the potrs
/// solve stage are charged against a consistent device model.
sim::DeviceSpec host_spec(const hetero::DevicePool& pool) {
  for (int i = 0; i < pool.size(); ++i)
    if (pool.executor(i).is_gpu())
      return static_cast<const hetero::GpuExecutor&>(pool.executor(i)).spec();
  return sim::DeviceSpec::k40c();
}

template <typename T>
std::vector<unsigned char> to_bytes(const std::vector<T>& v) {
  std::vector<unsigned char> bytes(v.size() * sizeof(T));
  if (!bytes.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

/// Executes one coalesced flush as a single variable-size launch and
/// demultiplexes the per-request slices. Payload rule: every request is
/// filled from its own payload_seed, sequentially over its own matrices —
/// so its numerics are a pure function of the request, not of whatever the
/// coalescer merged it with.
template <typename T>
LaunchResult run_merged(hetero::DevicePool& pool, const Coalescer::Flush& flush,
                        const ServiceConfig& cfg) {
  std::vector<int> sizes;
  for (const Request& r : flush.admitted)
    sizes.insert(sizes.end(), r.sizes.begin(), r.sizes.end());
  const int total = static_cast<int>(sizes.size());

  Queue q(host_spec(pool), cfg.mode);
  Batch<T> batch(q, sizes);
  if (q.full()) {
    int k = 0;
    for (const Request& r : flush.admitted) {
      Rng rng(r.payload_seed());
      for (std::size_t j = 0; j < r.sizes.size(); ++j, ++k) {
        MatrixView<T> v = batch.matrix(k);
        fill_spd(rng, v.data(), v.rows(), v.ld());
      }
    }
  }

  const auto hr = hetero::potrf_vbatched_hetero<T>(pool, cfg.uplo, batch, cfg.hetero);

  LaunchResult out;
  out.seconds = hr.seconds;
  out.flops = hr.flops;
  out.joules = hr.energy.joules;

  // Posv requests continue into the vbatched triangular solve on the host
  // queue (matrices whose factorization failed or was poisoned are skipped
  // by potrs itself). The solve's modelled seconds extend the launch.
  std::unique_ptr<RectBatch<T>> rhs;
  if (flush.key.op == Op::Posv) {
    std::vector<int> cols;
    cols.reserve(sizes.size());
    for (const Request& r : flush.admitted)
      cols.insert(cols.end(), r.sizes.size(), r.nrhs);
    rhs = std::make_unique<RectBatch<T>>(q, sizes, cols);
    if (q.full()) {
      int k = 0;
      for (const Request& r : flush.admitted) {
        // A different stream than the SPD fill so A and B are independent.
        Rng rng(r.payload_seed() ^ 0xD1B54A32D192ED03ull);
        for (std::size_t j = 0; j < r.sizes.size(); ++j, ++k) {
          MatrixView<T> v = rhs->matrix(k);
          fill_general(rng, v.data(), v.rows(), v.cols(), v.ld());
        }
      }
    }
    const auto sr = potrs_vbatched<T>(q, cfg.uplo, batch, *rhs);
    out.seconds += sr.seconds;
    out.flops += sr.flops;
  }

  const std::span<const int> info = batch.info();
  int k = 0;
  for (const Request& r : flush.admitted) {
    RequestOutcome o;
    o.id = r.id;
    o.tenant = r.tenant;
    o.submit_time = r.submit_time;
    o.flops = r.flops();
    o.merged_with = total;
    o.info.assign(info.begin() + k, info.begin() + k + r.matrices());
    o.status = RequestStatus::Ok;
    for (int s : o.info) {
      if (s == kInfoChunkLost) {
        o.status = RequestStatus::Poisoned;
        break;
      }
      if (s != 0) o.status = RequestStatus::Failed;
    }
    // Energy slice: the launch's ∫P dt split by useful-flops share — the
    // same currency the fairness scheduler budgets with.
    o.joules = out.flops > 0.0 ? out.joules * (o.flops / out.flops) : 0.0;
    if (cfg.keep_payloads && q.full()) {
      for (int j = 0; j < r.matrices(); ++j) {
        // Payload bytes only for cleanly completed matrices: a poisoned
        // matrix's buffer holds whatever the aborted schedule left behind.
        o.factors.push_back(info[k + j] == 0 ? to_bytes(batch.copy_matrix(k + j))
                                             : std::vector<unsigned char>{});
        if (rhs)
          o.solutions.push_back(info[k + j] == 0 ? to_bytes(rhs->copy_matrix(k + j))
                                                 : std::vector<unsigned char>{});
      }
    }
    k += r.matrices();
    out.outcomes.push_back(std::move(o));
  }
  return out;
}

LaunchResult run_flush(hetero::DevicePool& pool, const Coalescer::Flush& flush,
                       const ServiceConfig& cfg) {
  return flush.key.prec == Precision::Single ? run_merged<float>(pool, flush, cfg)
                                             : run_merged<double>(pool, flush, cfg);
}

BatchRecord record_of(int id, const Coalescer::Flush& flush, const LaunchResult& lr,
                      double dispatch_time) {
  BatchRecord b;
  b.id = id;
  b.key = flush.key;
  b.reason = flush.reason;
  b.requests = static_cast<int>(flush.admitted.size());
  for (const Request& r : flush.admitted) b.matrices += r.matrices();
  b.dispatch_time = dispatch_time;
  b.seconds = lr.seconds;
  b.flops = lr.flops;
  b.joules = lr.joules;
  return b;
}

}  // namespace

ServiceReport replay_trace(hetero::DevicePool& pool, const Trace& trace,
                           const ServiceConfig& cfg) {
  Coalescer coalescer(cfg.coalesce);
  std::map<std::string, double> weights;
  for (const auto& [tenant, weight] : trace.tenants) {
    coalescer.set_weight(tenant, weight);
    weights[tenant] = weight;
  }
  for (const auto& [tenant, weight] : cfg.tenant_weights) {
    coalescer.set_weight(tenant, weight);
    weights[tenant] = weight;
  }

  ServiceReport report;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double pool_free = 0.0;    // single-server model: one merged launch at a time
  double last_event = 0.0;   // queue-depth integration point
  double depth_integral = 0.0;
  std::size_t next = 0;
  int batch_seq = 0;
  const auto advance = [&](double t) {
    depth_integral += coalescer.depth() * (t - last_event);
    last_event = t;
  };

  while (next < trace.requests.size() || !coalescer.empty()) {
    const double t_arrival =
        next < trace.requests.size() ? trace.requests[next].submit_time : kInf;
    // Earliest instant the pool could start the next merged launch: it must
    // be free AND some group must be flushable.
    const double t_dispatch = std::max(pool_free, coalescer.next_ready());
    if (t_arrival <= t_dispatch) {
      // Arrivals up to the dispatch instant join the queue first — a busy
      // pool is exactly what deepens batches under load.
      advance(t_arrival);
      coalescer.add(trace.requests[next], t_arrival);
      report.peak_queue_depth = std::max(report.peak_queue_depth, coalescer.depth());
      ++next;
      continue;
    }
    advance(t_dispatch);
    auto flush = coalescer.pop_ready(t_dispatch);
    require(flush.has_value(), "replay_trace: internal scheduling error (no ready group)");
    const LaunchResult lr = run_flush(pool, *flush, cfg);
    const double t_done = t_dispatch + lr.seconds;
    pool_free = t_done;
    const BatchRecord b = record_of(batch_seq++, *flush, lr, t_dispatch);
    for (RequestOutcome o : lr.outcomes) {
      o.dispatch_time = t_dispatch;
      o.complete_time = t_done;
      o.batch_id = b.id;
      report.outcomes.push_back(std::move(o));
    }
    report.batch_log.push_back(b);
  }

  report.finalize(weights);
  report.mean_queue_depth = report.makespan > 0.0 ? depth_integral / report.makespan : 0.0;
  return report;
}

// ---------------------------------------------------------------------------
// Wall-clock Service
// ---------------------------------------------------------------------------

namespace detail {
struct TicketState {
  std::uint64_t id = 0;
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  RequestOutcome outcome;
};
}  // namespace detail

std::uint64_t JobTicket::id() const noexcept { return state_ ? state_->id : 0; }

bool JobTicket::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

struct Service::Impl {
  hetero::DevicePool* pool = nullptr;
  ServiceConfig cfg;
  RequestQueue queue;
  Coalescer coalescer;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  std::thread worker;

  std::mutex mutex;  // guards tickets / results / next_id across threads
  std::map<std::uint64_t, std::shared_ptr<detail::TicketState>> tickets;
  std::vector<BatchRecord> batch_log;
  std::vector<RequestOutcome> outcomes;
  std::uint64_t next_id = 0;
  int batch_seq = 0;
  int peak_depth = 0;  // dispatcher-only
  bool drained = false;
  ServiceReport report;

  explicit Impl(hetero::DevicePool& p, ServiceConfig c)
      : pool(&p), cfg(std::move(c)), coalescer(cfg.coalesce) {
    for (const auto& [tenant, weight] : cfg.tenant_weights)
      coalescer.set_weight(tenant, weight);
  }

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }

  void dispatch(const Coalescer::Flush& flush) {
    const double t_dispatch = now();
    const LaunchResult lr = run_flush(*pool, flush, cfg);
    const double t_done = now();
    const BatchRecord b = [&] {
      std::lock_guard<std::mutex> lock(mutex);
      return record_of(batch_seq++, flush, lr, t_dispatch);
    }();
    std::vector<std::shared_ptr<detail::TicketState>> to_signal;
    {
      std::lock_guard<std::mutex> lock(mutex);
      batch_log.push_back(b);
      for (RequestOutcome o : lr.outcomes) {
        o.dispatch_time = t_dispatch;
        o.complete_time = t_done;
        o.batch_id = b.id;
        if (const auto it = tickets.find(o.id); it != tickets.end()) {
          {
            std::lock_guard<std::mutex> tl(it->second->mutex);
            it->second->outcome = o;
            it->second->done = true;
          }
          to_signal.push_back(it->second);
        }
        outcomes.push_back(std::move(o));
      }
    }
    for (const auto& st : to_signal) st->cv.notify_all();
  }

  void loop() {
    for (;;) {
      // Sleep until the next flush is due (bounded so close() is noticed).
      double timeout = 0.05;
      const double ready = coalescer.next_ready();
      if (std::isfinite(ready)) timeout = std::min(timeout, std::max(0.0, ready - now()));
      std::vector<Request> incoming = queue.wait_drain(timeout);
      const bool closing = queue.closed();
      const double t = now();
      for (Request& r : incoming) coalescer.add(std::move(r), t);
      peak_depth = std::max(peak_depth, coalescer.depth());
      const bool force = closing && queue.depth() == 0;
      while (auto flush = coalescer.pop_ready(now(), force)) dispatch(*flush);
      if (closing && queue.depth() == 0 && coalescer.empty()) return;
    }
  }
};

Service::Service(hetero::DevicePool& pool, ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(pool, std::move(cfg))) {
  impl_->worker = std::thread([impl = impl_.get()] { impl->loop(); });
}

Service::~Service() {
  impl_->queue.close();
  if (impl_->worker.joinable()) impl_->worker.join();
}

JobTicket Service::submit(Request r) {
  auto state = std::make_shared<detail::TicketState>();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    require(!impl_->drained, "Service: submit after drain");
    if (r.id == 0) r.id = ++impl_->next_id;
    else impl_->next_id = std::max(impl_->next_id, r.id);
    if (!impl_->tickets.emplace(r.id, state).second)
      throw_error(Status::InvalidArgument,
                  "Service: duplicate request id " + std::to_string(r.id));
  }
  state->id = r.id;
  r.submit_time = impl_->now();
  impl_->queue.push(std::move(r));
  return JobTicket(state);
}

RequestOutcome Service::wait(const JobTicket& ticket) const {
  require(ticket.valid(), "Service: wait on an empty JobTicket");
  detail::TicketState& st = *ticket.state_;
  std::unique_lock<std::mutex> lock(st.mutex);
  st.cv.wait(lock, [&st] { return st.done; });
  return st.outcome;
}

ServiceReport Service::drain() {
  impl_->queue.close();
  if (impl_->worker.joinable()) impl_->worker.join();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->drained) {
    ServiceReport report;
    report.batch_log = impl_->batch_log;
    report.outcomes = impl_->outcomes;
    std::map<std::string, double> weights(impl_->cfg.tenant_weights.begin(),
                                          impl_->cfg.tenant_weights.end());
    report.finalize(weights);
    report.peak_queue_depth = impl_->peak_depth;
    impl_->report = std::move(report);
    impl_->drained = true;
  }
  return impl_->report;
}

}  // namespace vbatch::service
