#include "vbatch/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "vbatch/core/batch.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/hetero/executor.hpp"
#include "vbatch/service/request_queue.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::service {

namespace {

/// Result of one merged launch, before the caller stamps the service-clock
/// times and batch id onto the outcomes.
struct LaunchResult {
  double seconds = 0.0;  ///< modelled seconds (factor + solve)
  double flops = 0.0;
  double joules = 0.0;
  std::vector<RequestOutcome> outcomes;  ///< admission order
  /// Per-executor permanent-loss flags from the fault layer — the capacity
  /// feedback the admission controller tightens on.
  std::vector<char> lost;
};

/// Resolves the admission config: an explicitly enabled config wins;
/// otherwise the VBATCH_ADMISSION env knob applies (mirroring the
/// VBATCH_INJECT_FAULTS precedence rule).
AdmissionConfig resolve_admission(const AdmissionConfig& explicit_cfg) {
  if (explicit_cfg.enabled) return explicit_cfg;
  if (const char* env = std::getenv("VBATCH_ADMISSION"); env != nullptr && *env != '\0')
    return parse_admission_spec(env);
  return explicit_cfg;
}

/// Nominal per-executor peaks seeding the capacity model. Double precision:
/// the conservative end — single-precision requests only make the estimate
/// safer, and calibration corrects it after the first launch anyway.
std::vector<double> executor_peaks(const hetero::DevicePool& pool) {
  std::vector<double> peaks;
  peaks.reserve(static_cast<std::size_t>(pool.size()));
  for (int e = 0; e < pool.size(); ++e)
    peaks.push_back(pool.executor(e).peak_gflops(Precision::Double));
  return peaks;
}

/// Outcome of a request shed by the admission layer at instant `t`: no
/// launch slice, zero latency (it never queued past the decision point).
RequestOutcome rejected_outcome(const Request& r, RequestStatus status, double t) {
  RequestOutcome o;
  o.id = r.id;
  o.tenant = r.tenant;
  o.status = status;
  o.submit_time = r.submit_time;
  o.dispatch_time = t;
  o.complete_time = t;
  o.deadline = r.deadline;
  o.flops = r.flops();
  return o;
}

/// The host queue a merged batch lives on mirrors the pool's first GPU (or
/// the K40c default for CPU-only pools) so arena accounting and the potrs
/// solve stage are charged against a consistent device model.
sim::DeviceSpec host_spec(const hetero::DevicePool& pool) {
  for (int i = 0; i < pool.size(); ++i)
    if (pool.executor(i).is_gpu())
      return static_cast<const hetero::GpuExecutor&>(pool.executor(i)).spec();
  return sim::DeviceSpec::k40c();
}

template <typename T>
std::vector<unsigned char> to_bytes(const std::vector<T>& v) {
  std::vector<unsigned char> bytes(v.size() * sizeof(T));
  if (!bytes.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

/// Executes one coalesced flush as a single variable-size launch and
/// demultiplexes the per-request slices. Payload rule: every request is
/// filled from its own payload_seed, sequentially over its own matrices —
/// so its numerics are a pure function of the request, not of whatever the
/// coalescer merged it with.
template <typename T>
LaunchResult run_merged(hetero::DevicePool& pool, const Coalescer::Flush& flush,
                        const ServiceConfig& cfg) {
  std::vector<int> sizes;
  for (const Request& r : flush.admitted)
    sizes.insert(sizes.end(), r.sizes.begin(), r.sizes.end());
  const int total = static_cast<int>(sizes.size());

  Queue q(host_spec(pool), cfg.mode);
  Batch<T> batch(q, sizes);
  if (q.full()) {
    int k = 0;
    for (const Request& r : flush.admitted) {
      Rng rng(r.payload_seed());
      for (std::size_t j = 0; j < r.sizes.size(); ++j, ++k) {
        MatrixView<T> v = batch.matrix(k);
        fill_spd(rng, v.data(), v.rows(), v.ld());
      }
    }
  }

  const auto hr = hetero::potrf_vbatched_hetero<T>(pool, cfg.uplo, batch, cfg.hetero);

  LaunchResult out;
  out.seconds = hr.seconds;
  out.flops = hr.flops;
  out.joules = hr.energy.joules;
  out.lost.reserve(hr.executors.size());
  for (const auto& rep : hr.executors) out.lost.push_back(rep.lost ? 1 : 0);

  // Posv requests continue into the vbatched triangular solve on the host
  // queue (matrices whose factorization failed or was poisoned are skipped
  // by potrs itself). The solve's modelled seconds extend the launch.
  std::unique_ptr<RectBatch<T>> rhs;
  if (flush.key.op == Op::Posv) {
    std::vector<int> cols;
    cols.reserve(sizes.size());
    for (const Request& r : flush.admitted)
      cols.insert(cols.end(), r.sizes.size(), r.nrhs);
    rhs = std::make_unique<RectBatch<T>>(q, sizes, cols);
    if (q.full()) {
      int k = 0;
      for (const Request& r : flush.admitted) {
        // A different stream than the SPD fill so A and B are independent.
        Rng rng(r.payload_seed() ^ 0xD1B54A32D192ED03ull);
        for (std::size_t j = 0; j < r.sizes.size(); ++j, ++k) {
          MatrixView<T> v = rhs->matrix(k);
          fill_general(rng, v.data(), v.rows(), v.cols(), v.ld());
        }
      }
    }
    const auto sr = potrs_vbatched<T>(q, cfg.uplo, batch, *rhs);
    out.seconds += sr.seconds;
    out.flops += sr.flops;
  }

  const std::span<const int> info = batch.info();
  int k = 0;
  for (const Request& r : flush.admitted) {
    RequestOutcome o;
    o.id = r.id;
    o.tenant = r.tenant;
    o.submit_time = r.submit_time;
    o.deadline = r.deadline;
    o.flops = r.flops();
    o.merged_with = total;
    o.info.assign(info.begin() + k, info.begin() + k + r.matrices());
    o.status = RequestStatus::Ok;
    for (int s : o.info) {
      if (s == kInfoChunkLost) {
        o.status = RequestStatus::Poisoned;
        break;
      }
      if (s != 0) o.status = RequestStatus::Failed;
    }
    // Energy slice: the launch's ∫P dt split by useful-flops share — the
    // same currency the fairness scheduler budgets with.
    o.joules = out.flops > 0.0 ? out.joules * (o.flops / out.flops) : 0.0;
    if (cfg.keep_payloads && q.full()) {
      for (int j = 0; j < r.matrices(); ++j) {
        // Payload bytes only for cleanly completed matrices: a poisoned
        // matrix's buffer holds whatever the aborted schedule left behind.
        o.factors.push_back(info[k + j] == 0 ? to_bytes(batch.copy_matrix(k + j))
                                             : std::vector<unsigned char>{});
        if (rhs)
          o.solutions.push_back(info[k + j] == 0 ? to_bytes(rhs->copy_matrix(k + j))
                                                 : std::vector<unsigned char>{});
      }
    }
    k += r.matrices();
    out.outcomes.push_back(std::move(o));
  }
  return out;
}

LaunchResult run_flush(hetero::DevicePool& pool, const Coalescer::Flush& flush,
                       const ServiceConfig& cfg) {
  return flush.key.prec == Precision::Single ? run_merged<float>(pool, flush, cfg)
                                             : run_merged<double>(pool, flush, cfg);
}

BatchRecord record_of(int id, const Coalescer::Flush& flush, const LaunchResult& lr,
                      double dispatch_time) {
  BatchRecord b;
  b.id = id;
  b.key = flush.key;
  b.reason = flush.reason;
  b.requests = static_cast<int>(flush.admitted.size());
  for (const Request& r : flush.admitted) b.matrices += r.matrices();
  b.dispatch_time = dispatch_time;
  b.seconds = lr.seconds;
  b.flops = lr.flops;
  b.joules = lr.joules;
  return b;
}

}  // namespace

ServiceReport replay_trace(hetero::DevicePool& pool, const Trace& trace,
                           const ServiceConfig& cfg) {
  Coalescer coalescer(cfg.coalesce);
  AdmissionController admission(resolve_admission(cfg.admission), executor_peaks(pool));
  std::map<std::string, double> weights;
  for (const auto& [tenant, weight] : trace.tenants) {
    coalescer.set_weight(tenant, weight);
    admission.set_weight(tenant, weight);
    weights[tenant] = weight;
  }
  for (const auto& [tenant, weight] : cfg.tenant_weights) {
    coalescer.set_weight(tenant, weight);
    admission.set_weight(tenant, weight);
    weights[tenant] = weight;
  }

  ServiceReport report;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double pool_free = 0.0;    // single-server model: one merged launch at a time
  double last_event = 0.0;   // queue-depth integration point
  double depth_integral = 0.0;
  std::size_t next = 0;
  int batch_seq = 0;
  const auto advance = [&](double t) {
    depth_integral += coalescer.depth() * (t - last_event);
    last_event = t;
  };

  while (next < trace.requests.size() || !coalescer.empty()) {
    const double t_arrival =
        next < trace.requests.size() ? trace.requests[next].submit_time : kInf;
    // Earliest instant the pool could start the next merged launch: it must
    // be free AND some group must be flushable.
    const double t_dispatch = std::max(pool_free, coalescer.next_ready());
    if (t_arrival <= t_dispatch) {
      // Arrivals up to the dispatch instant join the queue first — a busy
      // pool is exactly what deepens batches under load. Admission runs at
      // the arrival instant against the backlog snapshot; a shed request
      // resolves immediately with its named rejection status.
      advance(t_arrival);
      const Request& r = trace.requests[next];
      const QueueSnapshot snap{coalescer.depth(), coalescer.pending_bytes(),
                               coalescer.pending_flops(), pool_free};
      const AdmissionDecision verdict = admission.admit(r, t_arrival, snap);
      if (verdict != AdmissionDecision::Admit) {
        report.outcomes.push_back(rejected_outcome(r, status_of(verdict), t_arrival));
        ++next;
        continue;
      }
      coalescer.add(r, t_arrival);
      report.peak_queue_depth = std::max(report.peak_queue_depth, coalescer.depth());
      ++next;
      continue;
    }
    advance(t_dispatch);
    auto flush = coalescer.pop_ready(t_dispatch);
    require(flush.has_value(), "replay_trace: internal scheduling error (no ready group)");
    // Deadline shedding at dispatch: drop what queued past its SLO before
    // spending launch time on it (the shrunken launch may rescue the rest).
    auto filtered = admission.filter_deadlines(std::move(flush->admitted), t_dispatch);
    for (const Request& r : filtered.dropped)
      report.outcomes.push_back(
          rejected_outcome(r, RequestStatus::RejectedDeadline, t_dispatch));
    if (filtered.kept.empty()) continue;
    flush->admitted = std::move(filtered.kept);
    const LaunchResult lr = run_flush(pool, *flush, cfg);
    const double t_done = t_dispatch + lr.seconds;
    pool_free = t_done;
    const BatchRecord b = record_of(batch_seq++, *flush, lr, t_dispatch);
    for (RequestOutcome o : lr.outcomes) {
      o.dispatch_time = t_dispatch;
      o.complete_time = t_done;
      o.batch_id = b.id;
      report.outcomes.push_back(std::move(o));
    }
    report.batch_log.push_back(b);
    // Capacity feedback: calibrate on the observed launch; an executor the
    // fault layer reports permanently lost cuts the estimate and triggers
    // one graceful-degradation shed pass over the queued backlog
    // (lowest-weight tenants first), effective at the completion instant.
    admission.observe_launch(lr.flops, lr.seconds, lr.lost);
    if (admission.take_capacity_drop()) {
      std::vector<PendingItem> backlog;
      for (const auto& p : coalescer.pending())
        backlog.push_back(PendingItem{p.id, p.tenant, p.flops});
      for (std::uint64_t id : admission.shed_plan(backlog)) {
        const Request victim = coalescer.remove(id);
        report.outcomes.push_back(
            rejected_outcome(victim, RequestStatus::RejectedQueueFull, t_done));
      }
    }
  }

  report.finalize(weights);
  report.mean_queue_depth = report.makespan > 0.0 ? depth_integral / report.makespan : 0.0;
  report.capacity_gflops = admission.capacity_gflops();
  report.admission_enabled = admission.enabled();
  return report;
}

// ---------------------------------------------------------------------------
// Wall-clock Service
// ---------------------------------------------------------------------------

namespace detail {
struct TicketState {
  std::uint64_t id = 0;
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  RequestOutcome outcome;
};
}  // namespace detail

std::uint64_t JobTicket::id() const noexcept { return state_ ? state_->id : 0; }

bool JobTicket::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

struct Service::Impl {
  hetero::DevicePool* pool = nullptr;
  ServiceConfig cfg;
  AdmissionConfig acfg;  ///< resolved (explicit > VBATCH_ADMISSION > off)
  RequestQueue queue;    ///< bounded by acfg.max_queue (0 = unbounded)
  Coalescer coalescer;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  std::thread worker;

  std::mutex mutex;  // guards tickets / results / admission across threads
  AdmissionController admission;
  std::map<std::uint64_t, std::shared_ptr<detail::TicketState>> tickets;
  std::vector<BatchRecord> batch_log;
  std::vector<RequestOutcome> outcomes;
  std::uint64_t next_id = 0;
  int batch_seq = 0;
  int peak_depth = 0;  // dispatcher-only
  // Backlog snapshot the submit-side admission check reads; the dispatcher
  // refreshes it after every coalescer mutation (guarded by `mutex`).
  int pending_depth = 0;
  double pending_bytes = 0.0;
  double pending_flops = 0.0;
  bool drained = false;
  ServiceReport report;

  explicit Impl(hetero::DevicePool& p, ServiceConfig c)
      : pool(&p),
        cfg(std::move(c)),
        acfg(resolve_admission(cfg.admission)),
        queue(acfg.max_queue),
        coalescer(cfg.coalesce),
        admission(acfg, executor_peaks(p)) {
    for (const auto& [tenant, weight] : cfg.tenant_weights) {
      coalescer.set_weight(tenant, weight);
      admission.set_weight(tenant, weight);
    }
  }

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }

  /// Records a terminal outcome and signals its ticket (launch completions
  /// and admission rejections share this path, so a shed request's
  /// JobTicket::wait returns instead of hanging).
  void complete(RequestOutcome o) {
    std::shared_ptr<detail::TicketState> to_signal;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (const auto it = tickets.find(o.id); it != tickets.end()) {
        {
          std::lock_guard<std::mutex> tl(it->second->mutex);
          it->second->outcome = o;
          it->second->done = true;
        }
        to_signal = it->second;
      }
      outcomes.push_back(std::move(o));
    }
    if (to_signal) to_signal->cv.notify_all();
  }

  void refresh_backlog() {
    std::lock_guard<std::mutex> lock(mutex);
    pending_depth = coalescer.depth();
    pending_bytes = coalescer.pending_bytes();
    pending_flops = coalescer.pending_flops();
  }

  void dispatch(Coalescer::Flush flush) {
    const double t_dispatch = now();
    AdmissionController::Filtered filtered;
    {
      std::lock_guard<std::mutex> lock(mutex);
      filtered = admission.filter_deadlines(std::move(flush.admitted), t_dispatch);
    }
    for (const Request& r : filtered.dropped)
      complete(rejected_outcome(r, RequestStatus::RejectedDeadline, t_dispatch));
    if (filtered.kept.empty()) return;
    flush.admitted = std::move(filtered.kept);
    const LaunchResult lr = run_flush(*pool, flush, cfg);
    const double t_done = now();
    const BatchRecord b = [&] {
      std::lock_guard<std::mutex> lock(mutex);
      batch_log.push_back(record_of(batch_seq++, flush, lr, t_dispatch));
      admission.observe_launch(lr.flops, lr.seconds, lr.lost);
      return batch_log.back();
    }();
    for (RequestOutcome o : lr.outcomes) {
      o.dispatch_time = t_dispatch;
      o.complete_time = t_done;
      o.batch_id = b.id;
      complete(std::move(o));
    }
  }

  /// One graceful-degradation shed pass after a capacity drop: victims are
  /// removed from the coalescer (dispatcher-owned) and resolved with the
  /// queue-full rejection status.
  void shed_after_drop() {
    bool dropped;
    std::vector<PendingItem> backlog;
    for (const auto& p : coalescer.pending())
      backlog.push_back(PendingItem{p.id, p.tenant, p.flops});
    std::vector<std::uint64_t> plan;
    {
      std::lock_guard<std::mutex> lock(mutex);
      dropped = admission.take_capacity_drop();
      if (dropped) plan = admission.shed_plan(backlog);
    }
    const double t = now();
    for (std::uint64_t id : plan) {
      const Request victim = coalescer.remove(id);
      complete(rejected_outcome(victim, RequestStatus::RejectedQueueFull, t));
    }
  }

  void loop() {
    for (;;) {
      // Sleep until the next flush is due (bounded so close() is noticed).
      double timeout = 0.05;
      const double ready = coalescer.next_ready();
      if (std::isfinite(ready)) timeout = std::min(timeout, std::max(0.0, ready - now()));
      std::vector<Request> incoming = queue.wait_drain(timeout);
      const bool closing = queue.closed();
      const double t = now();
      for (Request& r : incoming) coalescer.add(std::move(r), t);
      peak_depth = std::max(peak_depth, coalescer.depth());
      refresh_backlog();
      const bool force = closing && queue.depth() == 0;
      while (auto flush = coalescer.pop_ready(now(), force)) {
        dispatch(std::move(*flush));
        shed_after_drop();
        refresh_backlog();
      }
      if (closing && queue.depth() == 0 && coalescer.empty()) return;
    }
  }
};

Service::Service(hetero::DevicePool& pool, ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(pool, std::move(cfg))) {
  impl_->worker = std::thread([impl = impl_.get()] { impl->loop(); });
}

Service::~Service() {
  impl_->queue.close();
  if (impl_->worker.joinable()) impl_->worker.join();
}

JobTicket Service::submit(Request r) {
  auto state = std::make_shared<detail::TicketState>();
  r.submit_time = impl_->now();
  RequestStatus rejection = RequestStatus::Pending;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    require(!impl_->drained, "Service: submit after drain");
    if (r.id == 0) r.id = ++impl_->next_id;
    else impl_->next_id = std::max(impl_->next_id, r.id);
    if (!impl_->tickets.emplace(r.id, state).second)
      throw_error(Status::InvalidArgument,
                  "Service: duplicate request id " + std::to_string(r.id));
    // Admission at the submit instant: the backlog snapshot covers the
    // ingress queue plus the dispatcher's coalescer state.
    const QueueSnapshot snap{impl_->queue.depth() + impl_->pending_depth,
                             impl_->pending_bytes, impl_->pending_flops, r.submit_time};
    const AdmissionDecision verdict = impl_->admission.admit(r, r.submit_time, snap);
    if (verdict != AdmissionDecision::Admit) rejection = status_of(verdict);
  }
  state->id = r.id;
  if (rejection == RequestStatus::Pending) {
    // Bounded ingress: a full queue sheds (non-blocking) rather than
    // stalling the submitter — the ticket resolves with QueueFull below.
    if (impl_->queue.try_submit(r) == Status::QueueFull)
      rejection = RequestStatus::RejectedQueueFull;
  }
  if (rejection != RequestStatus::Pending)
    impl_->complete(rejected_outcome(r, rejection, r.submit_time));
  return JobTicket(state);
}

RequestOutcome Service::wait(const JobTicket& ticket) const {
  require(ticket.valid(), "Service: wait on an empty JobTicket");
  detail::TicketState& st = *ticket.state_;
  std::unique_lock<std::mutex> lock(st.mutex);
  st.cv.wait(lock, [&st] { return st.done; });
  return st.outcome;
}

ServiceReport Service::drain() {
  impl_->queue.close();
  if (impl_->worker.joinable()) impl_->worker.join();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->drained) {
    ServiceReport report;
    report.batch_log = impl_->batch_log;
    report.outcomes = impl_->outcomes;
    std::map<std::string, double> weights(impl_->cfg.tenant_weights.begin(),
                                          impl_->cfg.tenant_weights.end());
    report.finalize(weights);
    report.peak_queue_depth = impl_->peak_depth;
    report.capacity_gflops = impl_->admission.capacity_gflops();
    report.admission_enabled = impl_->admission.enabled();
    impl_->report = std::move(report);
    impl_->drained = true;
  }
  return impl_->report;
}

}  // namespace vbatch::service
