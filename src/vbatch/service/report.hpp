// Service-level observability: per-launch batch log, per-tenant latency
// statistics, and the aggregate ServiceReport returned by trace replay and
// Service::drain (docs/service.md, "Metrics").
//
// Everything is computed from the per-request outcomes, so the report is as
// deterministic as the replay that produced it — the determinism tests
// memcmp whole reports across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "vbatch/service/coalescer.hpp"
#include "vbatch/service/request.hpp"

namespace vbatch::service {

/// One merged launch in the service timeline.
struct BatchRecord {
  int id = 0;                  ///< launch sequence number
  GroupKey key;                ///< (op, precision) of the merged batch
  FlushReason reason = FlushReason::Budget;
  int requests = 0;            ///< requests merged into this launch
  int matrices = 0;            ///< total matrices across those requests
  double dispatch_time = 0.0;  ///< service-clock instant the launch started
  double seconds = 0.0;        ///< modelled launch makespan
  double flops = 0.0;          ///< useful flops of the launch
  double joules = 0.0;         ///< modelled energy of the launch
};

/// Latency statistics of one tenant (seconds, submission → completion).
/// Latencies and flops/joules cover accepted (served) requests only; the
/// overload slice counts what admission shed.
struct TenantStats {
  std::string tenant;
  double weight = 1.0;
  int requests = 0;  ///< everything submitted (accepted + shed + expired)
  int failed = 0;    ///< numerical failures (info > 0)
  int poisoned = 0;  ///< fault-injection losses (kInfoChunkLost)
  double flops = 0.0;
  double joules = 0.0;
  std::vector<double> latencies;  ///< per served request, completion order

  // --- Overload slice (docs/service.md, "Overload & admission") ----------
  int accepted = 0;   ///< reached a launch (Ok / Failed / Poisoned)
  int shed = 0;       ///< RejectedTenantRate + RejectedQueueFull
  int expired = 0;    ///< RejectedDeadline (arrival or dispatch)
  int slo_total = 0;  ///< accepted requests that carried a deadline
  int slo_met = 0;    ///< ... and completed within it

  [[nodiscard]] double mean_latency() const noexcept;
  [[nodiscard]] double max_latency() const noexcept;
  /// Nearest-rank percentile (p in [0, 100]); 0 when no samples.
  [[nodiscard]] double percentile(double p) const;
  /// Fraction of deadline-carrying accepted requests served in time
  /// (1.0 when none carried a deadline).
  [[nodiscard]] double slo_attainment() const noexcept {
    return slo_total > 0 ? static_cast<double>(slo_met) / slo_total : 1.0;
  }
};

/// Aggregate result of a replay / service run.
struct ServiceReport {
  int requests = 0;  ///< everything submitted (accepted + shed + expired)
  int matrices = 0;
  int batches = 0;   ///< merged launches actually dispatched
  int failed = 0;    ///< requests with any info > 0
  int poisoned = 0;  ///< requests hit by injected faults
  double makespan = 0.0;  ///< last completion instant on the service clock
  double flops = 0.0;
  double joules = 0.0;
  /// accepted / batches — the headline coalescing win (1.0 = no merging).
  double coalescing_ratio = 0.0;
  double mean_queue_depth = 0.0;  ///< time-averaged pending requests
  int peak_queue_depth = 0;
  double p50_latency = 0.0;  ///< across accepted (served) requests, seconds
  double p99_latency = 0.0;

  // --- Overload slice (docs/service.md, "Overload & admission") ----------
  bool admission_enabled = false;
  int accepted = 0;   ///< requests that reached a launch
  int shed = 0;       ///< RejectedTenantRate + RejectedQueueFull
  int expired = 0;    ///< RejectedDeadline
  int slo_total = 0;  ///< accepted requests carrying a deadline
  int slo_met = 0;
  /// Flops of on-time useful completions (status Ok, deadline met or
  /// absent) — the goodput numerator; under overload this is what
  /// separates admission control from queue-everything collapse.
  double goodput_flops = 0.0;
  /// The admission controller's final pool-throughput estimate (Gflop/s).
  double capacity_gflops = 0.0;

  std::vector<BatchRecord> batch_log;        ///< dispatch order
  std::vector<TenantStats> tenants;          ///< registration order
  std::vector<RequestOutcome> outcomes;      ///< completion order

  [[nodiscard]] double gflops() const noexcept {
    return makespan > 0.0 ? flops / makespan * 1e-9 : 0.0;
  }
  [[nodiscard]] double throughput_rps() const noexcept {
    return makespan > 0.0 ? requests / makespan : 0.0;
  }
  /// On-time useful throughput in Gflop/s — the overload bench's gate
  /// currency (raw gflops() cannot distinguish admission from collapse:
  /// both eventually serve at capacity, but only admission serves work
  /// anyone still wants).
  [[nodiscard]] double goodput_gflops() const noexcept {
    return makespan > 0.0 ? goodput_flops / makespan * 1e-9 : 0.0;
  }
  [[nodiscard]] double slo_attainment() const noexcept {
    return slo_total > 0 ? static_cast<double>(slo_met) / slo_total : 1.0;
  }

  /// Fills the derived aggregates (counts, percentiles, coalescing ratio)
  /// from batch_log/outcomes. Idempotent.
  void finalize(const std::map<std::string, double>& tenant_weights);

  /// One-line summary ("42 reqs in 7 launches, 6.0x coalesced, ...").
  [[nodiscard]] std::string describe() const;

  /// Full report: summary, per-tenant table, batch log, latency histogram —
  /// rendered with the profiler table machinery.
  void print(std::ostream& os) const;
};

}  // namespace vbatch::service
