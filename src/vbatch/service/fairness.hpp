// Per-tenant fairness for the coalescing layer: weighted deficit
// round-robin (DRR) admission over tenant FIFOs (docs/service.md,
// "Fairness policy").
//
// When a merged launch cannot take every pending request (batch-size or
// footprint caps), admission must not let one tenant's burst starve the
// others. Classic DRR does exactly that with O(1) state per tenant: each
// round, a tenant's deficit counter grows by quantum × weight, and the
// tenant admits queued requests (FIFO) while its deficit covers their cost;
// unspent deficit carries to the next round, an emptied queue forfeits it.
// Costs here are useful flops — the same currency the partitioner and the
// energy slices use — so "fair" means fair shares of machine time, not of
// request counts.
//
// Everything is deterministic: tenants take turns in registration order
// from a persistent cursor, and ties never need a coin flip.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace vbatch::service {

/// Admission caps of one merged launch. 0 = unbounded.
struct DrrCaps {
  int max_matrices = 0;
  double max_bytes = 0.0;
};

/// One admission candidate in a tenant's FIFO.
struct DrrItem {
  std::uint64_t id = 0;     ///< request id (returned in admission order)
  double cost = 0.0;        ///< useful flops (the deficit currency)
  double bytes = 0.0;       ///< payload footprint (the cap currency)
  int matrices = 0;         ///< matrix count (the cap currency)
};

/// Deterministic weighted-DRR admission state over one group's tenants.
/// Tenants register on first use (registration order = service order); the
/// deficit counters and the round-robin cursor persist across flushes.
class DrrScheduler {
 public:
  /// Sets a tenant's weight (registering it if new). Weights must be
  /// strictly positive — a zero weight would starve the tenant forever, so
  /// it raises Status::InvalidArgument instead of being accepted.
  void set_weight(const std::string& tenant, double weight);
  [[nodiscard]] double weight(const std::string& tenant) const noexcept;

  /// Enqueues an admission candidate for `tenant` (registering it with
  /// weight 1 if unknown). FIFO per tenant.
  void push(const std::string& tenant, const DrrItem& item);

  /// Removes a queued candidate by id (the overload shed path). Returns
  /// false when no tenant queue holds the id. Deficit counters and the
  /// round-robin cursor are untouched — shedding must not change what the
  /// surviving requests are owed.
  bool remove(const std::string& tenant, std::uint64_t id);

  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }
  [[nodiscard]] int pending() const noexcept { return pending_; }
  [[nodiscard]] int pending_matrices() const noexcept { return pending_matrices_; }
  [[nodiscard]] double pending_bytes() const noexcept { return pending_bytes_; }

  /// Runs DRR rounds until the caps fill or the queues drain; returns the
  /// admitted ids in admission order. A request is atomic (never split); if
  /// the very first candidate alone exceeds a cap it is admitted alone so
  /// oversized requests still make progress (they stream out-of-core
  /// downstream). `quantum` <= 0 picks max head cost over active tenants,
  /// which guarantees every round admits at least one request.
  [[nodiscard]] std::vector<std::uint64_t> admit(const DrrCaps& caps, double quantum = 0.0);

  /// Tenants in registration order (the deterministic round-robin order).
  [[nodiscard]] std::vector<std::string> tenants() const;

 private:
  struct TenantQueue {
    std::string tenant;
    double weight = 1.0;
    double deficit = 0.0;
    std::deque<DrrItem> items;
  };
  TenantQueue& tenant_queue(const std::string& tenant);

  std::vector<TenantQueue> queues_;  ///< registration order
  std::size_t cursor_ = 0;           ///< next tenant to serve
  bool resume_visit_ = false;        ///< cap interrupted cursor_'s visit mid-drain
  int pending_ = 0;
  int pending_matrices_ = 0;
  double pending_bytes_ = 0.0;
};

}  // namespace vbatch::service
