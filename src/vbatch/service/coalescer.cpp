#include "vbatch/service/coalescer.hpp"

#include <algorithm>

#include "vbatch/util/error.hpp"

namespace vbatch::service {

void Coalescer::set_weight(const std::string& tenant, double weight) {
  require(weight > 0.0, "Coalescer: tenant weights must be strictly positive "
                        "(a zero weight would starve the tenant)");
  weights_[tenant] = weight;
  for (auto& [key, group] : groups_) group.drr.set_weight(tenant, weight);
}

void Coalescer::refresh_cap(Group& g, double now) {
  if (g.cap_hit >= 0.0) return;  // already armed; earliest crossing wins
  if (cfg_.max_batch > 0 && g.drr.pending_matrices() >= cfg_.max_batch) {
    g.cap_hit = now;
    g.cap_kind = FlushReason::CountCap;
  } else if (cfg_.max_bytes > 0.0 && g.drr.pending_bytes() >= cfg_.max_bytes) {
    g.cap_hit = now;
    g.cap_kind = FlushReason::BytesCap;
  }
}

void Coalescer::add(const Request& r, double now) {
  if (r.sizes.empty())
    throw_error(Status::InvalidArgument,
                "Coalescer: request " + std::to_string(r.id) + " has no matrices");
  Group& g = groups_[GroupKey{r.op, r.prec}];
  if (g.drr.tenants().empty())  // fresh group: seed the known tenant weights
    for (const auto& [tenant, weight] : weights_) g.drr.set_weight(tenant, weight);
  g.fifo.push_back(Pending{r, now + cfg_.latency_budget});
  g.drr.push(r.tenant, DrrItem{r.id, r.flops(), static_cast<double>(r.bytes()),
                               r.matrices()});
  ++depth_;
  pending_flops_ += r.flops();
  pending_bytes_ += r.bytes();
  refresh_cap(g, now);
}

std::vector<Coalescer::PendingView> Coalescer::pending() const {
  std::vector<PendingView> out;
  out.reserve(static_cast<std::size_t>(depth_));
  for (const auto& [key, group] : groups_)
    for (const Pending& p : group.fifo)
      out.push_back(PendingView{p.req.id, p.req.tenant, p.req.flops(), p.req.submit_time});
  return out;
}

Request Coalescer::remove(std::uint64_t id) {
  for (auto& [key, g] : groups_) {
    const auto it = std::find_if(g.fifo.begin(), g.fifo.end(),
                                 [id](const Pending& p) { return p.req.id == id; });
    if (it == g.fifo.end()) continue;
    Request r = std::move(it->req);
    g.drr.remove(r.tenant, id);
    g.fifo.erase(it);
    --depth_;
    pending_flops_ -= r.flops();
    pending_bytes_ -= r.bytes();
    // Shedding may bring the group back under its caps; re-derive the cap
    // state so a stale crossing instant cannot force a premature flush.
    if (g.cap_hit >= 0.0) {
      const bool still_capped =
          (cfg_.max_batch > 0 && g.drr.pending_matrices() >= cfg_.max_batch) ||
          (cfg_.max_bytes > 0.0 && g.drr.pending_bytes() >= cfg_.max_bytes);
      if (!still_capped) g.cap_hit = -1.0;
    }
    return r;
  }
  throw_error(Status::InvalidArgument,
              "Coalescer: cannot remove id " + std::to_string(id) + " (not queued)");
}

double Coalescer::next_ready() const noexcept {
  double t = std::numeric_limits<double>::infinity();
  for (const auto& [key, group] : groups_) t = std::min(t, group.ready_at());
  return t;
}

std::optional<Coalescer::Flush> Coalescer::pop_ready(double now, bool force) {
  // Most urgent group first; key order breaks ties so replay never depends
  // on map iteration luck (std::map is ordered, but be explicit).
  const Group* best = nullptr;
  GroupKey best_key;
  for (const auto& [key, group] : groups_) {
    if (group.fifo.empty()) continue;
    if (best == nullptr || group.ready_at() < best->ready_at() ||
        (group.ready_at() == best->ready_at() && key < best_key)) {
      best = &group;
      best_key = key;
    }
  }
  if (best == nullptr) return std::nullopt;
  if (!force && best->ready_at() > now) return std::nullopt;

  Group& g = groups_[best_key];
  Flush flush;
  flush.key = best_key;
  if (g.cap_hit >= 0.0 && g.cap_hit <= (force ? g.cap_hit : now))
    flush.reason = g.cap_kind;
  else if (!g.fifo.empty() && g.fifo.front().deadline <= now)
    flush.reason = FlushReason::Budget;
  else
    flush.reason = FlushReason::Drain;  // only reachable via force

  const DrrCaps caps{cfg_.max_batch, cfg_.max_bytes};
  const std::vector<std::uint64_t> ids = g.drr.admit(caps, cfg_.drr_quantum);
  flush.admitted.reserve(ids.size());
  for (std::uint64_t id : ids) {
    const auto it = std::find_if(g.fifo.begin(), g.fifo.end(),
                                 [id](const Pending& p) { return p.req.id == id; });
    flush.admitted.push_back(it->req);
    pending_flops_ -= it->req.flops();
    pending_bytes_ -= it->req.bytes();
    g.fifo.erase(it);
    --depth_;
  }
  // Requests left behind by the caps re-arm the flush clock: the cap state
  // is recomputed from what remains, and their budget deadlines still hold.
  g.cap_hit = -1.0;
  refresh_cap(g, now);
  return flush;
}

}  // namespace vbatch::service
