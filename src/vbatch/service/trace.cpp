#include "vbatch/service/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace vbatch::service {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw_error(Status::InvalidArgument, "trace:" + std::to_string(line) + ": " + what);
}

bool valid_tenant_id(const std::string& id) {
  if (id.empty()) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t parse_u64(int line, const std::string& field, const std::string& v) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    fail(line, field + " must be a non-negative integer (got '" + v + "')");
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    fail(line, field + " is out of range (got '" + v + "')");
  }
}

double parse_double(int line, const std::string& field, const std::string& v) {
  std::size_t pos = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (v.empty() || pos != v.size() || !std::isfinite(d))
    fail(line, field + " must be a finite number (got '" + v + "')");
  return d;
}

/// Splits "key=value" tokens of one line; duplicate keys are an error.
std::map<std::string, std::string> parse_fields(int line, std::istringstream& tokens,
                                                const std::set<std::string>& known) {
  std::map<std::string, std::string> fields;
  std::string tok;
  while (tokens >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      fail(line, "expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    if (known.find(key) == known.end()) fail(line, "unknown field '" + key + "'");
    if (!fields.emplace(key, tok.substr(eq + 1)).second)
      fail(line, "duplicate field '" + key + "'");
  }
  return fields;
}

const std::string& required(int line, const std::map<std::string, std::string>& fields,
                            const char* key) {
  const auto it = fields.find(key);
  if (it == fields.end()) fail(line, std::string("missing required field '") + key + "'");
  return it->second;
}

}  // namespace

Trace parse_trace(std::istream& in) {
  Trace trace;
  std::set<std::uint64_t> seen_ids;
  std::set<std::string> declared;
  std::set<std::string> referenced;  // request tenants, declaration-ordered via trace.tenants
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::istringstream tokens(raw);
    std::string directive;
    if (!(tokens >> directive) || directive[0] == '#') continue;  // blank / comment

    if (directive == "tenant") {
      std::string name;
      if (!(tokens >> name)) fail(line, "tenant declaration needs a name");
      if (!valid_tenant_id(name))
        fail(line, "bad tenant id '" + name + "' (allowed: [A-Za-z0-9_.-]+)");
      if (declared.count(name) != 0) fail(line, "duplicate tenant '" + name + "'");
      const auto fields = parse_fields(line, tokens, {"weight"});
      double weight = 1.0;
      if (const auto it = fields.find("weight"); it != fields.end()) {
        weight = parse_double(line, "weight", it->second);
        if (weight <= 0.0)
          fail(line, "tenant weight must be positive (got " + it->second + ")");
      }
      declared.insert(name);
      if (referenced.count(name) == 0)
        trace.tenants.emplace_back(name, weight);
      else  // declared after first use: update the default-weight entry
        for (auto& [t, w] : trace.tenants)
          if (t == name) w = weight;
    } else if (directive == "req") {
      const auto fields = parse_fields(
          line, tokens, {"id", "t", "tenant", "op", "prec", "n", "nrhs", "seed", "deadline"});
      Request r;
      r.id = parse_u64(line, "id", required(line, fields, "id"));
      if (!seen_ids.insert(r.id).second)
        fail(line, "duplicate request id " + std::to_string(r.id));
      r.submit_time = parse_double(line, "t", required(line, fields, "t"));
      if (r.submit_time < 0.0) fail(line, "t must be non-negative");
      r.tenant = required(line, fields, "tenant");
      if (!valid_tenant_id(r.tenant))
        fail(line, "bad tenant id '" + r.tenant + "' (allowed: [A-Za-z0-9_.-]+)");
      const std::string& op = required(line, fields, "op");
      if (op == "potrf") r.op = Op::Potrf;
      else if (op == "posv") r.op = Op::Posv;
      else fail(line, "unknown op '" + op + "' (potrf|posv)");
      const std::string& prec = required(line, fields, "prec");
      if (prec == "s") r.prec = Precision::Single;
      else if (prec == "d") r.prec = Precision::Double;
      else fail(line, "unknown precision '" + prec + "' (s|d)");
      const std::string& sizes = required(line, fields, "n");
      std::istringstream slist(sizes);
      std::string item;
      while (std::getline(slist, item, ',')) {
        const std::size_t digits = item.size() > 1 && item[0] == '-' ? 1 : 0;
        if (item.empty() || item.size() == digits ||
            item.find_first_not_of("0123456789", digits) != std::string::npos)
          fail(line, "bad matrix size '" + item + "' in n=" + sizes);
        const long long n = std::stoll(item);
        if (n <= 0)
          fail(line, "matrix sizes must be positive (got " + item + ")");
        if (n > 100000) fail(line, "matrix size " + item + " is implausibly large");
        r.sizes.push_back(static_cast<int>(n));
      }
      if (r.sizes.empty()) fail(line, "n= needs at least one matrix size");
      if (const auto it = fields.find("nrhs"); it != fields.end()) {
        const double v = parse_double(line, "nrhs", it->second);
        if (v < 1.0 || v != std::floor(v)) fail(line, "nrhs must be a positive integer");
        r.nrhs = static_cast<int>(v);
      }
      if (const auto it = fields.find("seed"); it != fields.end())
        r.seed = parse_u64(line, "seed", it->second);
      if (const auto it = fields.find("deadline"); it != fields.end()) {
        r.deadline = parse_double(line, "deadline", it->second);
        if (r.deadline <= 0.0)
          fail(line, "deadline must be positive seconds (omit the field for no SLO)");
      }
      if (declared.count(r.tenant) == 0 && referenced.count(r.tenant) == 0)
        trace.tenants.emplace_back(r.tenant, 1.0);
      referenced.insert(r.tenant);
      trace.requests.push_back(std::move(r));
    } else {
      fail(line, "unknown directive '" + directive + "' (tenant|req|#)");
    }
  }
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const Request& a, const Request& b) {
                     if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
                     return a.id < b.id;
                   });
  return trace;
}

Trace parse_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw_error(Status::InvalidArgument, "trace: cannot open '" + path + "'");
  return parse_trace(in);
}

std::string format_trace(const Trace& trace) {
  std::ostringstream out;
  out << "# vbatch service trace: " << trace.requests.size() << " requests, "
      << trace.tenants.size() << " tenants\n";
  for (const auto& [tenant, weight] : trace.tenants)
    out << "tenant " << tenant << " weight=" << weight << "\n";
  for (const Request& r : trace.requests) {
    out << "req id=" << r.id << " t=" << r.submit_time << " tenant=" << r.tenant
        << " op=" << to_string(r.op) << " prec=" << (r.prec == Precision::Double ? 'd' : 's')
        << " n=";
    for (std::size_t i = 0; i < r.sizes.size(); ++i)
      out << (i > 0 ? "," : "") << r.sizes[i];
    if (r.op == Op::Posv) out << " nrhs=" << r.nrhs;
    if (r.seed != 0) out << " seed=" << r.seed;
    if (r.deadline > 0.0) out << " deadline=" << r.deadline;
    out << "\n";
  }
  return out.str();
}

Trace make_trace(const TraceGenConfig& cfg) {
  require(cfg.count >= 1 && cfg.tenants >= 1 && cfg.nmax >= 1 && cfg.max_matrices >= 1 &&
              cfg.rate > 0.0,
          "make_trace: count/tenants/nmax/max_matrices/rate must be positive");
  require(cfg.burst >= 0.0, "make_trace: burst must be non-negative");
  require(cfg.deadline_frac >= 0.0 && cfg.deadline_frac <= 1.0,
          "make_trace: deadline_frac must be in [0, 1]");
  require(cfg.deadline_seconds > 0.0, "make_trace: deadline_seconds must be positive");
  Trace trace;
  for (int t = 0; t < cfg.tenants; ++t)
    trace.tenants.emplace_back("tenant" + std::to_string(t), 1.0);
  Rng rng(cfg.seed);
  double t = 0.0;
  for (int i = 0; i < cfg.count; ++i) {
    Request r;
    r.id = static_cast<std::uint64_t>(i + 1);
    r.tenant = trace.tenants[static_cast<std::size_t>(
                                 rng.uniform_int(0, cfg.tenants - 1))]
                   .first;
    r.op = cfg.mix_ops && rng.uniform() < 0.25 ? Op::Posv : Op::Potrf;
    r.prec = cfg.mix_precisions && rng.uniform() < 0.5 ? Precision::Single : Precision::Double;
    const int matrices = static_cast<int>(rng.uniform_int(1, cfg.max_matrices));
    Rng sz(cfg.seed ^ (r.id * 0x9E3779B97F4A7C15ull));
    r.sizes = make_sizes(cfg.dist, sz, matrices, cfg.nmax);
    if (r.op == Op::Posv) r.nrhs = static_cast<int>(rng.uniform_int(1, 4));
    if (cfg.deadline_frac > 0.0 && rng.uniform() < cfg.deadline_frac)
      r.deadline = cfg.deadline_seconds;
    r.submit_time = t;
    // Deterministic exponential inter-arrival gap of mean 1/rate; the
    // middle third of an overload trace arrives burst× faster.
    double rate = cfg.rate;
    if (cfg.burst > 1.0 && i >= cfg.count / 3 && i < 2 * cfg.count / 3) rate *= cfg.burst;
    t += -std::log(1.0 - rng.uniform()) / rate;
    trace.requests.push_back(std::move(r));
  }
  return trace;
}

}  // namespace vbatch::service
