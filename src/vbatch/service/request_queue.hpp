// Thread-safe ingress queue of the wall-clock Service: client threads push
// requests, the dispatcher thread drains them in submission order. A small
// mutex+condvar MPSC queue — the service layer's only cross-thread handoff
// besides the per-ticket completion signal.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "vbatch/service/request.hpp"

namespace vbatch::service {

class RequestQueue {
 public:
  /// Enqueues a request; Status::InvalidArgument after close().
  void push(Request r);

  /// Moves out every queued request (possibly none) without blocking.
  [[nodiscard]] std::vector<Request> drain();

  /// Blocks up to `seconds` for the queue to become non-empty or closed,
  /// then drains. A non-positive wait just drains.
  [[nodiscard]] std::vector<Request> wait_drain(double seconds);

  /// Marks the queue closed: pushes start throwing, waiters wake. Queued
  /// requests stay drainable.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] int depth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> items_;
  bool closed_ = false;
};

}  // namespace vbatch::service
