// Thread-safe ingress queue of the wall-clock Service: client threads push
// requests, the dispatcher thread drains them in submission order. A small
// mutex+condvar MPSC queue — the service layer's only cross-thread handoff
// besides the per-ticket completion signal.
//
// The queue is optionally bounded (the memory-safety half of overload
// protection, docs/service.md "Overload & admission"): at capacity,
// `submit` blocks for space while `try_submit` returns the named
// Status::QueueFull immediately so callers can shed instead of stall.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "vbatch/service/request.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::service {

class RequestQueue {
 public:
  /// `capacity` bounds the queued requests; 0 = unbounded (the default
  /// preserves the pre-admission behaviour).
  explicit RequestQueue(int capacity = 0);

  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Enqueues a request, blocking while the queue is at capacity;
  /// Status::InvalidArgument after close() (including a close that arrives
  /// mid-wait).
  void submit(Request r);

  /// Backwards-compatible alias of the blocking submit.
  void push(Request r) { submit(std::move(r)); }

  /// Non-blocking enqueue: Status::Ok on success, Status::QueueFull when
  /// the queue is at capacity (the request is NOT enqueued — the caller
  /// owns the shed decision). Throws Status::InvalidArgument after close().
  [[nodiscard]] Status try_submit(Request r);

  /// Moves out every queued request (possibly none) without blocking.
  [[nodiscard]] std::vector<Request> drain();

  /// Blocks up to `seconds` for the queue to become non-empty or closed,
  /// then drains. A non-positive wait just drains.
  [[nodiscard]] std::vector<Request> wait_drain(double seconds);

  /// Marks the queue closed: pushes start throwing, waiters wake. Queued
  /// requests stay drainable.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] int depth() const;

 private:
  [[nodiscard]] bool full_locked() const noexcept {
    return capacity_ > 0 && static_cast<int>(items_.size()) >= capacity_;
  }

  const int capacity_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< signals the dispatcher (non-empty / closed)
  std::condition_variable cv_space_;  ///< signals blocked submitters (space freed)
  std::deque<Request> items_;
  bool closed_ = false;
};

}  // namespace vbatch::service
