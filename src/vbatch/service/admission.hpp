// Admission control — the overload-protection layer of the batch service
// (docs/service.md, "Overload & admission").
//
// PR 8's service admits unboundedly: a burst beyond pool capacity, or an
// executor dying mid-trace, turns the coalescer queue into an unbounded
// latency amplifier. The AdmissionController closes that hole with three
// deterministic policies, all pure functions of the virtual clock and the
// request stream (so trace replay stays bit-reproducible):
//
//   * per-tenant token buckets in flops currency — each tenant accrues
//     tokens at (tenant-rate × weight) Gflop/s, capped at a burst window;
//     a request costing more flops than the bucket holds is shed with
//     RejectedTenantRate. Rates tighten automatically by the surviving
//     share of nominal peak when an executor dies, so degradation is
//     graceful.
//   * global queue watermarks — pending-request depth and pending payload
//     bytes; crossing either sheds with RejectedQueueFull instead of
//     letting the queue (and host memory) grow without bound.
//   * deadline feasibility — a request whose deadline cannot be met by the
//     current capacity estimate (backlog + its own service time) is shed on
//     arrival with RejectedDeadline; admitted requests whose deadline
//     expired while queueing are shed again at dispatch, before wasting a
//     launch slot on work nobody will wait for.
//
// Capacity feedback: the controller starts from the pool's nominal peak
// flops (scaled by a conservative efficiency), then calibrates with an EWMA
// of observed launch throughput and cuts the estimate multiplicatively when
// the fault layer reports an executor permanently lost. After a drop, a
// shed plan drains the queued backlog to a bounded horizon, lowest-weight
// tenants first.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "vbatch/service/request.hpp"

namespace vbatch::service {

/// Verdict of one admission check (maps onto RequestStatus for outcomes).
enum class AdmissionDecision : std::uint8_t {
  Admit,
  RejectedTenantRate,
  RejectedQueueFull,
  RejectedDeadline,
};

[[nodiscard]] constexpr const char* to_string(AdmissionDecision d) noexcept {
  switch (d) {
    case AdmissionDecision::Admit: return "admit";
    case AdmissionDecision::RejectedTenantRate: return "rejected-tenant-rate";
    case AdmissionDecision::RejectedQueueFull: return "rejected-queue-full";
    case AdmissionDecision::RejectedDeadline: return "rejected-deadline";
  }
  return "?";
}

/// The RequestStatus a rejected request's outcome carries.
[[nodiscard]] constexpr RequestStatus status_of(AdmissionDecision d) noexcept {
  switch (d) {
    case AdmissionDecision::RejectedTenantRate: return RequestStatus::RejectedTenantRate;
    case AdmissionDecision::RejectedQueueFull: return RequestStatus::RejectedQueueFull;
    case AdmissionDecision::RejectedDeadline: return RequestStatus::RejectedDeadline;
    case AdmissionDecision::Admit: break;
  }
  return RequestStatus::Pending;
}

/// Knobs of the overload-protection layer. Defaults keep every policy off
/// (enabled=false reproduces the PR 8 admit-everything service exactly);
/// the CLI's --max-queue/--tenant-rate and the VBATCH_ADMISSION env knob
/// turn individual policies on.
struct AdmissionConfig {
  bool enabled = false;
  /// Pending-request watermark across the whole service (ingress queue +
  /// coalescer). 0 = unbounded.
  int max_queue = 0;
  /// Pending payload watermark in bytes (the footprint half of the queue
  /// bound). 0 = unbounded.
  double max_queue_bytes = 0.0;
  /// Token refill per tenant in Gflop/s, scaled by the tenant's fairness
  /// weight. 0 = no rate limiting.
  double tenant_rate_gflops = 0.0;
  /// Bucket capacity as a burst window: capacity = rate × burst_seconds.
  double burst_seconds = 0.05;
  /// Absolute per-tenant rate overrides in Gflop/s (weight is not applied).
  std::vector<std::pair<std::string, double>> tenant_rates;
  /// After a capacity drop, shed queued work (lowest-weight tenants first)
  /// until the backlog drains within this horizon at the new capacity.
  /// 0 = never shed retroactively.
  double shed_horizon_seconds = 0.1;
  /// Fraction of nominal peak flops assumed before the first launch
  /// calibrates the estimate. Must be in (0, 1].
  double initial_efficiency = 0.5;
  /// Deadline feasibility checks (arrival + dispatch). Off leaves deadlines
  /// as pure reporting (SLO attainment) without shedding.
  bool respect_deadlines = true;
};

/// Parses the VBATCH_ADMISSION grammar: semicolon-separated key=value pairs
/// from {max-queue=N, max-gb=X, tenant-rate=G, burst=S, shed-horizon=S,
/// deadlines=on|off}. Any recognised key enables admission. Malformed specs
/// raise Status::InvalidArgument naming the offending token — never a
/// silently-default config.
[[nodiscard]] AdmissionConfig parse_admission_spec(const std::string& spec);

/// Queue state snapshot an admission check runs against.
struct QueueSnapshot {
  int depth = 0;          ///< pending requests (ingress + coalescer)
  double bytes = 0.0;     ///< pending payload bytes
  double flops = 0.0;     ///< pending useful flops (the backlog)
  double busy_until = 0.0;  ///< service-clock instant the pool frees up
};

/// One queued candidate of a capacity-drop shed plan.
struct PendingItem {
  std::uint64_t id = 0;
  std::string tenant;
  double flops = 0.0;
};

class AdmissionController {
 public:
  AdmissionController() = default;
  /// `executor_peak_gflops` are the pool's nominal per-executor peaks (the
  /// capacity-model seed and the per-executor loss accounting unit).
  AdmissionController(AdmissionConfig cfg, std::vector<double> executor_peak_gflops);

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Registers a tenant fairness weight (scales its token refill rate and
  /// orders capacity-drop shedding). Must be > 0.
  void set_weight(const std::string& tenant, double weight);

  /// Full admission check at instant `now`: watermarks, then deadline
  /// feasibility, then the tenant token bucket (cheapest rejection first so
  /// a shed request never drains tokens). Admit consumes the request's
  /// flops from its tenant's bucket.
  [[nodiscard]] AdmissionDecision admit(const Request& r, double now, const QueueSnapshot& q);

  /// Dispatch-time shedding: iterates to a fixed point dropping requests
  /// whose deadline precedes the estimated completion of the (shrinking)
  /// merged launch. Order of survivors is preserved.
  struct Filtered {
    std::vector<Request> kept;
    std::vector<Request> dropped;
  };
  [[nodiscard]] Filtered filter_deadlines(std::vector<Request> admitted, double now) const;

  /// Capacity feedback from one merged launch: calibrates the throughput
  /// EWMA and applies the loss of any executor the fault layer reported
  /// permanently dead (`lost[e] != 0`). Loss is cumulative across launches.
  void observe_launch(double flops, double seconds, const std::vector<char>& lost);

  /// True once after an observe_launch that newly lost an executor; reading
  /// it clears the flag (the caller runs one shed pass per drop).
  [[nodiscard]] bool take_capacity_drop() noexcept;

  /// Current pool throughput estimate in Gflop/s (never below a small
  /// positive floor so feasibility math stays finite).
  [[nodiscard]] double capacity_gflops() const noexcept;
  [[nodiscard]] int executors_lost() const noexcept { return lost_count_; }

  /// Capacity-drop shed plan over the queued backlog: victims are chosen
  /// lowest-weight tenant first (name-ordered ties), newest request first
  /// within a tenant, until the remaining backlog drains within
  /// shed_horizon_seconds at the current capacity estimate. Returns the
  /// victim ids in shed order.
  [[nodiscard]] std::vector<std::uint64_t> shed_plan(
      const std::vector<PendingItem>& pending) const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    bool primed = false;  ///< buckets start full on first use
  };
  [[nodiscard]] double weight_of(const std::string& tenant) const noexcept;
  /// Effective refill rate in flops/s: the per-tenant base rate tightened
  /// by the surviving share of the pool's nominal peak.
  [[nodiscard]] double rate_flops(const std::string& tenant) const noexcept;
  void refill(Bucket& b, const std::string& tenant, double now) const;

  AdmissionConfig cfg_;
  std::map<std::string, double> weights_;
  std::map<std::string, Bucket> buckets_;
  std::vector<double> peaks_;   ///< nominal per-executor Gflop/s
  std::vector<char> alive_;     ///< cumulative loss mask
  int lost_count_ = 0;
  double initial_capacity_ = 0.0;  ///< Gflop/s at construction
  double capacity_ = 0.0;          ///< current estimate, Gflop/s
  bool capacity_dropped_ = false;
};

}  // namespace vbatch::service
