// Request coalescing — the admission layer that turns many small concurrent
// requests into few large variable-size launches (docs/service.md).
//
// The paper's core economics apply directly to serving: a vbatched launch
// amortizes its fixed costs (kernel launches, the metadata sweep) over the
// whole batch, so merging compatible pending requests into one launch buys
// throughput at the price of a bounded queueing delay. The Coalescer holds
// pending requests in groups keyed by (op, precision) — incompatible
// requests are never merged — and flushes a group when the oldest member's
// latency budget expires, when the pending matrix count reaches the
// batch-size cap, or when the pending payload reaches the arena-footprint
// cap (so a flushed launch composes with the out-of-core staging budget
// downstream). Cap flushes fire immediately on the arrival that crosses the
// cap — before any budget expiry — and admission within a flush is the
// weighted-DRR fairness pass of fairness.hpp.
//
// The class is clock-agnostic: callers feed it "now" instants (virtual
// seconds in replay mode, wall seconds in the live Service), and it answers
// "when is the next flush due". All decisions are pure functions of the
// arrival history, which is what makes trace replay bit-reproducible.
#pragma once

#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "vbatch/service/fairness.hpp"
#include "vbatch/service/request.hpp"

namespace vbatch::service {

/// Merge-compatibility key: only requests with identical op and precision
/// share a launch.
struct GroupKey {
  Op op = Op::Potrf;
  Precision prec = Precision::Double;
  bool operator<(const GroupKey& o) const noexcept {
    if (op != o.op) return op < o.op;
    return prec < o.prec;
  }
  bool operator==(const GroupKey& o) const noexcept { return op == o.op && prec == o.prec; }
};

/// Why a flush fired (tests assert the cap-before-budget ordering).
enum class FlushReason : std::uint8_t { Budget, CountCap, BytesCap, Drain };

[[nodiscard]] constexpr const char* to_string(FlushReason r) noexcept {
  switch (r) {
    case FlushReason::Budget: return "budget";
    case FlushReason::CountCap: return "count-cap";
    case FlushReason::BytesCap: return "bytes-cap";
    case FlushReason::Drain: return "drain";
  }
  return "?";
}

struct CoalescerConfig {
  /// Seconds a request may wait for merge partners before its group must
  /// flush. 0 = flush immediately (per-arrival launches unless requests
  /// share an arrival instant).
  double latency_budget = 1e-3;
  /// Matrices per merged launch (0 = unbounded). Reaching it flushes
  /// immediately.
  int max_batch = 0;
  /// Payload bytes per merged launch (0 = unbounded). Reaching it flushes
  /// immediately; one oversized request is still admitted alone.
  double max_bytes = 0.0;
  /// DRR quantum in flops (0 = auto: max head cost per round).
  double drr_quantum = 0.0;
};

class Coalescer {
 public:
  explicit Coalescer(CoalescerConfig cfg = {}) : cfg_(cfg) {}

  /// Registers a tenant weight (Status::InvalidArgument unless > 0).
  void set_weight(const std::string& tenant, double weight);

  /// Adds a pending request at instant `now` (its latency budget starts
  /// ticking here, not at Request::submit_time).
  void add(const Request& r, double now);

  [[nodiscard]] bool empty() const noexcept { return depth_ == 0; }
  /// Pending requests across all groups — the queue-depth metric.
  [[nodiscard]] int depth() const noexcept { return depth_; }
  /// Pending useful flops / payload bytes across all groups — the backlog
  /// currencies of admission watermarks and deadline feasibility.
  [[nodiscard]] double pending_flops() const noexcept { return pending_flops_; }
  [[nodiscard]] double pending_bytes() const noexcept { return pending_bytes_; }

  /// One queued request as seen by the shed planner.
  struct PendingView {
    std::uint64_t id = 0;
    std::string tenant;
    double flops = 0.0;
    double submit_time = 0.0;
  };
  /// Every queued request in deterministic order (group key, then arrival
  /// order within the group).
  [[nodiscard]] std::vector<PendingView> pending() const;

  /// Removes a queued request by id (the capacity-drop shed path) and
  /// returns it. Status::InvalidArgument when the id is not queued. The
  /// group's cap state is re-derived from what remains.
  Request remove(std::uint64_t id);

  /// Earliest instant any group becomes flushable (budget deadline, or the
  /// past instant a cap was crossed). +infinity when nothing is pending.
  [[nodiscard]] double next_ready() const noexcept;

  /// One merged launch worth of admitted requests.
  struct Flush {
    GroupKey key;
    FlushReason reason = FlushReason::Budget;
    std::vector<Request> admitted;  ///< DRR admission order
  };

  /// Pops the most urgent flushable group at `now` (none if no group is
  /// ready yet). `force` flushes the most urgent group regardless of
  /// deadlines — the drain path. Groups tie-break by key order, so replay
  /// is deterministic.
  [[nodiscard]] std::optional<Flush> pop_ready(double now, bool force = false);

 private:
  struct Pending {
    Request req;
    double deadline = 0.0;  ///< arrival + latency budget
  };
  struct Group {
    std::deque<Pending> fifo;        ///< arrival order (deadline order too)
    DrrScheduler drr;                ///< fairness state, persistent per group
    double cap_hit = -1.0;           ///< instant a cap was crossed, < 0 = none
    FlushReason cap_kind = FlushReason::Budget;
    [[nodiscard]] double ready_at() const noexcept {
      double t = fifo.empty() ? std::numeric_limits<double>::infinity()
                              : fifo.front().deadline;
      if (cap_hit >= 0.0) t = std::min(t, cap_hit);
      return t;
    }
  };

  void refresh_cap(Group& g, double now);

  CoalescerConfig cfg_;
  std::map<GroupKey, Group> groups_;
  std::map<std::string, double> weights_;  ///< applied to every group's DRR
  int depth_ = 0;
  double pending_flops_ = 0.0;
  double pending_bytes_ = 0.0;
};

}  // namespace vbatch::service
