// vbatch::service — the long-running batch service front-end
// (docs/service.md).
//
// Two front doors over the same engine:
//
//   * replay_trace: the scripted virtual-time mode. Arrivals come from a
//     Trace, the clock is the deterministic service clock (a single-server
//     queueing model over the pool's modelled makespans), and the returned
//     ServiceReport — makespan, queue depths, per-tenant p50/p99, every
//     per-request factor — is bit-for-bit reproducible for a given
//     (trace, config, pool). This is the mode the determinism sweeps,
//     benches and CI gates run.
//
//   * Service: the wall-clock mode. Real threads submit() requests and
//     block on JobTickets while a dispatcher thread coalesces and launches
//     merged batches on the pool. Same coalescer, same fairness, same
//     demux — but timestamps are wall seconds, so only the numerics (not
//     the timings) are reproducible.
//
// The engine itself: pop a Coalescer flush, concatenate the admitted
// requests into one variable-size Batch (payloads seeded per request, so a
// request's bits never depend on its launch-mates), run the heterogeneous
// potrf (plus the vbatched triangular solve for posv requests), then demux
// per-request info slices, energy shares and payload bytes back to the
// requests. Faults poison only the requests whose matrices were lost —
// everything else in the merged launch completes normally.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "vbatch/core/queue.hpp"
#include "vbatch/hetero/device_pool.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"
#include "vbatch/service/admission.hpp"
#include "vbatch/service/coalescer.hpp"
#include "vbatch/service/report.hpp"
#include "vbatch/service/trace.hpp"

namespace vbatch::service {

struct ServiceConfig {
  CoalescerConfig coalesce;
  /// Overload protection (token buckets, watermarks, deadline shedding,
  /// capacity feedback). Disabled by default; the VBATCH_ADMISSION env knob
  /// applies only when no explicit config enabled it.
  AdmissionConfig admission;
  hetero::HeteroOptions hetero;  ///< forwarded to every merged launch
  Uplo uplo = Uplo::Lower;
  /// TimingOnly (default) replays pure queueing/timing studies; Full runs
  /// the numerics so outcomes carry real info statuses and payloads.
  sim::ExecMode mode = sim::ExecMode::TimingOnly;
  /// Full mode only: copy each request's factor (and solution) bytes into
  /// its RequestOutcome — the determinism sweeps memcmp these.
  bool keep_payloads = false;
  /// Extra tenant weights (override trace declarations; Service mode's only
  /// weight source). Order is the fairness registration order.
  std::vector<std::pair<std::string, double>> tenant_weights;
};

/// Replays a scripted trace on the pool under the deterministic virtual
/// clock and returns the full report. Single-server model: the pool serves
/// one merged launch at a time; while it is busy, arrivals queue in the
/// coalescer (and become merge candidates — busy periods deepen batches,
/// exactly like a real serving system under load).
[[nodiscard]] ServiceReport replay_trace(hetero::DevicePool& pool, const Trace& trace,
                                         const ServiceConfig& cfg = {});

namespace detail {
struct TicketState;
}

/// Handle to one in-flight wall-clock request (see Service::submit).
class JobTicket {
 public:
  JobTicket() = default;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept;
  [[nodiscard]] bool done() const;

 private:
  friend class Service;
  explicit JobTicket(std::shared_ptr<detail::TicketState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::TicketState> state_;
};

/// The live, wall-clock service: a dispatcher thread owns the pool and the
/// coalescer; any number of client threads submit() and wait(). Lifecycle:
/// construct → submit/wait from anywhere → drain() once (flushes what is
/// pending, stops the dispatcher, returns the report).
class Service {
 public:
  explicit Service(hetero::DevicePool& pool, ServiceConfig cfg = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Thread-safe. Stamps the request's submit_time with the service wall
  /// clock; id 0 auto-assigns the next free id. Duplicate ids and
  /// submissions after drain() raise Status::InvalidArgument.
  [[nodiscard]] JobTicket submit(Request r);

  /// Blocks until the ticket's request completes; returns its outcome.
  [[nodiscard]] RequestOutcome wait(const JobTicket& ticket) const;

  /// Closes intake, flushes every pending request, stops the dispatcher and
  /// returns the aggregate report. Idempotent (later calls return the same
  /// report).
  [[nodiscard]] ServiceReport drain();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vbatch::service
