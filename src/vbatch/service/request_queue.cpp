#include "vbatch/service/request_queue.hpp"

#include <chrono>
#include <utility>

#include "vbatch/util/error.hpp"

namespace vbatch::service {

void RequestQueue::push(Request r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(!closed_, "RequestQueue: push after close");
    items_.push_back(std::move(r));
  }
  cv_.notify_one();
}

std::vector<Request> RequestQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Request> out(std::make_move_iterator(items_.begin()),
                           std::make_move_iterator(items_.end()));
  items_.clear();
  return out;
}

std::vector<Request> RequestQueue::wait_drain(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (seconds > 0.0 && items_.empty() && !closed_)
    cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                 [this] { return !items_.empty() || closed_; });
  std::vector<Request> out(std::make_move_iterator(items_.begin()),
                           std::make_move_iterator(items_.end()));
  items_.clear();
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(items_.size());
}

}  // namespace vbatch::service
