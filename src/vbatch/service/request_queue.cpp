#include "vbatch/service/request_queue.hpp"

#include <chrono>
#include <utility>

namespace vbatch::service {

RequestQueue::RequestQueue(int capacity) : capacity_(capacity) {
  require(capacity >= 0, "RequestQueue: capacity must be non-negative (0 = unbounded)");
}

void RequestQueue::submit(Request r) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [this] { return !full_locked() || closed_; });
    require(!closed_, "RequestQueue: submit after close");
    items_.push_back(std::move(r));
  }
  cv_.notify_one();
}

Status RequestQueue::try_submit(Request r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(!closed_, "RequestQueue: submit after close");
    if (full_locked()) return Status::QueueFull;
    items_.push_back(std::move(r));
  }
  cv_.notify_one();
  return Status::Ok;
}

std::vector<Request> RequestQueue::drain() {
  std::vector<Request> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.assign(std::make_move_iterator(items_.begin()),
               std::make_move_iterator(items_.end()));
    items_.clear();
  }
  cv_space_.notify_all();
  return out;
}

std::vector<Request> RequestQueue::wait_drain(double seconds) {
  std::vector<Request> out;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (seconds > 0.0 && items_.empty() && !closed_)
      cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                   [this] { return !items_.empty() || closed_; });
    out.assign(std::make_move_iterator(items_.begin()),
               std::make_move_iterator(items_.end()));
    items_.clear();
  }
  cv_space_.notify_all();
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  cv_space_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(items_.size());
}

}  // namespace vbatch::service
