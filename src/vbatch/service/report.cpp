#include "vbatch/service/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "vbatch/util/table.hpp"

namespace vbatch::service {

namespace {

double nearest_rank(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based; p=0 maps to the minimum.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

double TenantStats::mean_latency() const noexcept {
  if (latencies.empty()) return 0.0;
  double sum = 0.0;
  for (double l : latencies) sum += l;
  return sum / static_cast<double>(latencies.size());
}

double TenantStats::max_latency() const noexcept {
  double m = 0.0;
  for (double l : latencies) m = std::max(m, l);
  return m;
}

double TenantStats::percentile(double p) const { return nearest_rank(latencies, p); }

void ServiceReport::finalize(const std::map<std::string, double>& tenant_weights) {
  requests = static_cast<int>(outcomes.size());
  batches = static_cast<int>(batch_log.size());
  matrices = 0;
  failed = 0;
  poisoned = 0;
  flops = 0.0;
  joules = 0.0;
  makespan = 0.0;
  accepted = 0;
  shed = 0;
  expired = 0;
  slo_total = 0;
  slo_met = 0;
  goodput_flops = 0.0;
  tenants.clear();

  for (const BatchRecord& b : batch_log) {
    matrices += b.matrices;
    flops += b.flops;
    joules += b.joules;
  }

  auto tenant_stats = [&](const std::string& name) -> TenantStats& {
    for (TenantStats& t : tenants)
      if (t.tenant == name) return t;
    TenantStats t;
    t.tenant = name;
    if (const auto it = tenant_weights.find(name); it != tenant_weights.end())
      t.weight = it->second;
    tenants.push_back(std::move(t));
    return tenants.back();
  };
  // Register declared tenants first so the table order matches the trace.
  for (const auto& [name, weight] : tenant_weights) (void)tenant_stats(name);

  std::vector<double> all_latencies;
  all_latencies.reserve(outcomes.size());
  for (const RequestOutcome& o : outcomes) {
    TenantStats& t = tenant_stats(o.tenant);
    ++t.requests;
    makespan = std::max(makespan, o.complete_time);
    if (is_rejected(o.status)) {
      // Shed requests never reached a launch: no latency sample, no
      // flops/energy accounting — only the overload counters.
      if (o.status == RequestStatus::RejectedDeadline) {
        ++expired;
        ++t.expired;
      } else {
        ++shed;
        ++t.shed;
      }
      continue;
    }
    ++accepted;
    ++t.accepted;
    t.flops += o.flops;
    t.joules += o.joules;
    t.latencies.push_back(o.latency());
    all_latencies.push_back(o.latency());
    if (o.deadline > 0.0) {
      ++slo_total;
      ++t.slo_total;
      if (o.met_deadline()) {
        ++slo_met;
        ++t.slo_met;
      }
    }
    if (o.status == RequestStatus::Failed) {
      ++failed;
      ++t.failed;
    } else if (o.status == RequestStatus::Poisoned) {
      ++poisoned;
      ++t.poisoned;
    }
    // Goodput: clean completions someone still wants (deadline met or no
    // deadline at all).
    if (o.status == RequestStatus::Ok && (o.deadline <= 0.0 || o.met_deadline()))
      goodput_flops += o.flops;
  }
  coalescing_ratio = batches > 0 ? static_cast<double>(accepted) / batches : 0.0;
  p50_latency = nearest_rank(all_latencies, 50.0);
  p99_latency = nearest_rank(all_latencies, 99.0);
}

std::string ServiceReport::describe() const {
  std::ostringstream os;
  os << requests << " reqs (" << matrices << " matrices) in " << batches
     << " launches, coalescing " << std::fixed;
  os.precision(2);
  os << coalescing_ratio << "x, makespan " << std::scientific;
  os.precision(3);
  os << makespan << " s, " << std::fixed;
  os.precision(1);
  os << gflops() << " Gflop/s";
  if (failed > 0) os << ", " << failed << " failed";
  if (poisoned > 0) os << ", " << poisoned << " poisoned";
  if (shed > 0) os << ", " << shed << " shed";
  if (expired > 0) os << ", " << expired << " expired";
  return os.str();
}

void ServiceReport::print(std::ostream& os) const {
  os << "service: " << describe() << "\n";
  os << "queue depth: mean ";
  std::ostringstream depth;
  depth.precision(2);
  depth << std::fixed << mean_queue_depth;
  os << depth.str() << ", peak " << peak_queue_depth << "; latency p50 "
     << p50_latency << " s, p99 " << p99_latency << " s\n";
  if (admission_enabled) {
    std::ostringstream adm;
    adm.precision(1);
    adm << std::fixed << "admission: " << accepted << " accepted, " << shed << " shed, "
        << expired << " expired; SLO " << slo_attainment() * 100.0 << "% (" << slo_met
        << "/" << slo_total << "); goodput " << goodput_gflops()
        << " Gflop/s; capacity est " << capacity_gflops << " Gflop/s";
    os << adm.str() << "\n";
  }
  os << "\n";

  util::Table tenants_table({"tenant", "weight", "reqs", "accepted", "shed", "expired",
                             "failed", "poisoned", "slo%", "mean lat (ms)", "p50 (ms)",
                             "p99 (ms)", "max (ms)", "gflop", "joules"});
  for (const TenantStats& t : tenants) {
    tenants_table.new_row()
        .add(t.tenant)
        .add(t.weight, 2)
        .add(t.requests)
        .add(t.accepted)
        .add(t.shed)
        .add(t.expired)
        .add(t.failed)
        .add(t.poisoned)
        .add(t.slo_attainment() * 100.0, 1)
        .add(t.mean_latency() * 1e3, 3)
        .add(t.percentile(50.0) * 1e3, 3)
        .add(t.percentile(99.0) * 1e3, 3)
        .add(t.max_latency() * 1e3, 3)
        .add(t.flops * 1e-9, 2)
        .add(t.joules, 2);
  }
  tenants_table.print(os);
  os << "\n";

  util::Table batches_table({"batch", "op", "prec", "flush", "reqs", "matrices",
                             "t_dispatch (ms)", "seconds", "gflop/s"});
  for (const BatchRecord& b : batch_log) {
    batches_table.new_row()
        .add(b.id)
        .add(to_string(b.key.op))
        .add(b.key.prec == Precision::Double ? "d" : "s")
        .add(to_string(b.reason))
        .add(b.requests)
        .add(b.matrices)
        .add(b.dispatch_time * 1e3, 3)
        .add(b.seconds, 6)
        .add(b.seconds > 0.0 ? b.flops / b.seconds * 1e-9 : 0.0, 1);
  }
  batches_table.print(os);

  // Latency histogram in microseconds (bucketed for readability).
  std::vector<int> micros;
  micros.reserve(outcomes.size());
  int max_us = 0;
  for (const RequestOutcome& o : outcomes) {
    if (is_rejected(o.status)) continue;  // shed requests have no service latency
    const int us = static_cast<int>(o.latency() * 1e6);
    micros.push_back(us);
    max_us = std::max(max_us, us);
  }
  if (!micros.empty() && max_us > 0) {
    os << "\nrequest latency (us):\n";
    const int bucket = std::max(1, max_us / 16);
    util::print_histogram(os, micros, bucket, max_us);
  }
}

}  // namespace vbatch::service
