#include "vbatch/service/admission.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "vbatch/util/error.hpp"

namespace vbatch::service {

namespace {

/// Throughput floor (Gflop/s) so feasibility estimates stay finite even if
/// every executor died — the service keeps shedding instead of dividing by
/// zero.
constexpr double kMinCapacityGflops = 1e-3;

/// EWMA weight of one observed launch against the running estimate. Low
/// enough that one pathological launch (a tiny batch, a retry storm) does
/// not whipsaw admission, high enough to converge within a few launches.
constexpr double kCalibrationAlpha = 0.3;

[[noreturn]] void fail_spec(const std::string& what) {
  throw_error(Status::InvalidArgument, "admission: " + what);
}

double parse_spec_number(const std::string& key, const std::string& v) {
  std::size_t pos = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (v.empty() || pos != v.size() || !std::isfinite(d))
    fail_spec(key + " must be a finite number (got '" + v + "')");
  return d;
}

}  // namespace

AdmissionConfig parse_admission_spec(const std::string& spec) {
  AdmissionConfig cfg;
  std::size_t start = 0;
  std::set<std::string> seen;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    std::string tok = spec.substr(start, end - start);
    // Trim surrounding whitespace.
    const std::size_t first = tok.find_first_not_of(" \t");
    if (first == std::string::npos) {
      if (end == spec.size()) break;
      start = end + 1;
      continue;
    }
    tok = tok.substr(first, tok.find_last_not_of(" \t") - first + 1);
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      fail_spec("expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (!seen.insert(key).second) fail_spec("duplicate key '" + key + "'");
    if (key == "max-queue") {
      const double v = parse_spec_number(key, value);
      if (v < 1.0 || v != std::floor(v)) fail_spec("max-queue must be a positive integer");
      cfg.max_queue = static_cast<int>(v);
    } else if (key == "max-gb") {
      const double v = parse_spec_number(key, value);
      if (v <= 0.0) fail_spec("max-gb must be positive");
      cfg.max_queue_bytes = v * (1024.0 * 1024.0 * 1024.0);
    } else if (key == "tenant-rate") {
      const double v = parse_spec_number(key, value);
      if (v <= 0.0) fail_spec("tenant-rate must be positive (Gflop/s)");
      cfg.tenant_rate_gflops = v;
    } else if (key == "burst") {
      const double v = parse_spec_number(key, value);
      if (v <= 0.0) fail_spec("burst must be positive (seconds)");
      cfg.burst_seconds = v;
    } else if (key == "shed-horizon") {
      const double v = parse_spec_number(key, value);
      if (v < 0.0) fail_spec("shed-horizon must be non-negative (seconds)");
      cfg.shed_horizon_seconds = v;
    } else if (key == "deadlines") {
      if (value == "on") cfg.respect_deadlines = true;
      else if (value == "off") cfg.respect_deadlines = false;
      else fail_spec("deadlines must be on|off (got '" + value + "')");
    } else {
      fail_spec("unknown key '" + key +
                "' (max-queue|max-gb|tenant-rate|burst|shed-horizon|deadlines)");
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  if (seen.empty()) fail_spec("empty spec (expected key=value[;key=value...])");
  cfg.enabled = true;
  return cfg;
}

AdmissionController::AdmissionController(AdmissionConfig cfg,
                                         std::vector<double> executor_peak_gflops)
    : cfg_(std::move(cfg)), peaks_(std::move(executor_peak_gflops)) {
  require(cfg_.initial_efficiency > 0.0 && cfg_.initial_efficiency <= 1.0,
          "AdmissionController: initial_efficiency must be in (0, 1]");
  require(cfg_.burst_seconds > 0.0, "AdmissionController: burst_seconds must be positive");
  alive_.assign(peaks_.size(), 1);
  double nominal = 0.0;
  for (double p : peaks_) nominal += p;
  initial_capacity_ = std::max(nominal * cfg_.initial_efficiency, kMinCapacityGflops);
  capacity_ = initial_capacity_;
  for (const auto& [tenant, rate] : cfg_.tenant_rates)
    require(rate > 0.0, "AdmissionController: per-tenant rates must be positive");
}

void AdmissionController::set_weight(const std::string& tenant, double weight) {
  require(weight > 0.0, "AdmissionController: tenant weights must be strictly positive");
  weights_[tenant] = weight;
}

double AdmissionController::weight_of(const std::string& tenant) const noexcept {
  const auto it = weights_.find(tenant);
  return it != weights_.end() ? it->second : 1.0;
}

double AdmissionController::rate_flops(const std::string& tenant) const noexcept {
  double gflops = 0.0;
  bool overridden = false;
  for (const auto& [name, rate] : cfg_.tenant_rates) {
    if (name == tenant) {
      gflops = rate;
      overridden = true;
      break;
    }
  }
  if (!overridden) {
    if (cfg_.tenant_rate_gflops <= 0.0) return 0.0;  // unlimited
    gflops = cfg_.tenant_rate_gflops * weight_of(tenant);
  }
  // Graceful degradation: when executors die, every tenant's refill
  // tightens by the surviving share of nominal peak, so the pool sheds the
  // lost capacity instead of queueing it. EWMA calibration drift does NOT
  // tighten rates — a pessimistic efficiency seed must not starve tenants
  // whose configured rate the healthy pool can serve.
  double nominal = 0.0;
  double alive = 0.0;
  for (std::size_t e = 0; e < peaks_.size(); ++e) {
    nominal += peaks_[e];
    if (alive_[e] != 0) alive += peaks_[e];
  }
  const double tighten = nominal > 0.0 ? alive / nominal : 1.0;
  return gflops * 1e9 * tighten;
}

void AdmissionController::refill(Bucket& b, const std::string& tenant, double now) const {
  const double rate = rate_flops(tenant);
  const double burst = rate * cfg_.burst_seconds;
  if (!b.primed) {
    b.tokens = burst;
    b.last_refill = now;
    b.primed = true;
    return;
  }
  const double dt = std::max(0.0, now - b.last_refill);
  b.tokens = std::min(burst, b.tokens + dt * rate);
  b.last_refill = now;
}

AdmissionDecision AdmissionController::admit(const Request& r, double now,
                                             const QueueSnapshot& q) {
  if (!cfg_.enabled) return AdmissionDecision::Admit;

  // Watermarks first: they are the memory-safety bound and consume nothing.
  if (cfg_.max_queue > 0 && q.depth >= cfg_.max_queue)
    return AdmissionDecision::RejectedQueueFull;
  if (cfg_.max_queue_bytes > 0.0 && q.bytes + r.bytes() > cfg_.max_queue_bytes)
    return AdmissionDecision::RejectedQueueFull;

  // Deadline feasibility: earliest completion = pool frees up, backlog
  // drains, then this request's own service time — all at the current
  // capacity estimate.
  if (cfg_.respect_deadlines && r.deadline > 0.0) {
    const double cap = capacity_gflops() * 1e9;
    const double backlog = std::max(0.0, q.busy_until - now) + q.flops / cap;
    const double est_done = now + backlog + r.flops() / cap;
    if (est_done > r.absolute_deadline()) return AdmissionDecision::RejectedDeadline;
  }

  // Token bucket last, so requests shed by cheaper policies never drain
  // tokens. An oversized request (cost > bucket capacity) is admitted when
  // the bucket is full and pushes it into debt — the DRR oversized rule in
  // rate-limiter form, so huge jobs still make progress.
  const double rate = rate_flops(r.tenant);
  if (rate > 0.0) {
    Bucket& b = buckets_[r.tenant];
    refill(b, r.tenant, now);
    const double cost = r.flops();
    const double need = std::min(cost, rate * cfg_.burst_seconds);
    if (b.tokens < need) return AdmissionDecision::RejectedTenantRate;
    b.tokens -= cost;
  }
  return AdmissionDecision::Admit;
}

AdmissionController::Filtered AdmissionController::filter_deadlines(
    std::vector<Request> admitted, double now) const {
  Filtered out;
  if (!cfg_.enabled || !cfg_.respect_deadlines) {
    out.kept = std::move(admitted);
    return out;
  }
  out.kept = std::move(admitted);
  const double cap = capacity_gflops() * 1e9;
  // Fixed point: dropping a request shrinks the launch, which may rescue a
  // tighter deadline, so re-estimate until the kept set is stable.
  for (;;) {
    double total = 0.0;
    for (const Request& r : out.kept) total += r.flops();
    const double est_done = now + total / cap;
    bool changed = false;
    std::vector<Request> survivors;
    survivors.reserve(out.kept.size());
    for (Request& r : out.kept) {
      if (r.deadline > 0.0 && est_done > r.absolute_deadline()) {
        out.dropped.push_back(std::move(r));
        changed = true;
      } else {
        survivors.push_back(std::move(r));
      }
    }
    out.kept = std::move(survivors);
    if (!changed) break;
  }
  return out;
}

void AdmissionController::observe_launch(double flops, double seconds,
                                         const std::vector<char>& lost) {
  if (!cfg_.enabled) return;
  double alive_before = 0.0;
  for (std::size_t e = 0; e < peaks_.size(); ++e)
    if (alive_[e] != 0) alive_before += peaks_[e];
  bool newly_lost = false;
  for (std::size_t e = 0; e < lost.size() && e < alive_.size(); ++e) {
    if (lost[e] != 0 && alive_[e] != 0) {
      alive_[e] = 0;
      ++lost_count_;
      newly_lost = true;
    }
  }
  // Calibrate with the observed launch throughput (it already prices in
  // launch overheads, retries and the fault layer's wasted attempts).
  if (seconds > 0.0 && flops > 0.0) {
    const double observed = flops / seconds * 1e-9;
    capacity_ = (1.0 - kCalibrationAlpha) * capacity_ + kCalibrationAlpha * observed;
  }
  if (newly_lost) {
    double alive_after = 0.0;
    for (std::size_t e = 0; e < peaks_.size(); ++e)
      if (alive_[e] != 0) alive_after += peaks_[e];
    // Multiplicative cut by the nominal share that just died — immediate,
    // before any post-death launch can confirm it the slow way.
    if (alive_before > 0.0) capacity_ *= std::max(alive_after / alive_before, 0.0);
    capacity_dropped_ = true;
  }
  capacity_ = std::max(capacity_, kMinCapacityGflops);
}

bool AdmissionController::take_capacity_drop() noexcept {
  const bool dropped = capacity_dropped_;
  capacity_dropped_ = false;
  return dropped;
}

double AdmissionController::capacity_gflops() const noexcept {
  return std::max(capacity_, kMinCapacityGflops);
}

std::vector<std::uint64_t> AdmissionController::shed_plan(
    const std::vector<PendingItem>& pending) const {
  std::vector<std::uint64_t> victims;
  if (!cfg_.enabled || cfg_.shed_horizon_seconds <= 0.0) return victims;
  double backlog = 0.0;
  for (const PendingItem& p : pending) backlog += p.flops;
  const double budget = capacity_gflops() * 1e9 * cfg_.shed_horizon_seconds;
  if (backlog <= budget) return victims;

  // Victim order: lowest weight first (name breaks ties), newest request
  // first within a tenant — the oldest admitted work of the most important
  // tenants survives.
  std::vector<std::string> order;
  for (const PendingItem& p : pending)
    if (std::find(order.begin(), order.end(), p.tenant) == order.end())
      order.push_back(p.tenant);
  std::sort(order.begin(), order.end(), [&](const std::string& a, const std::string& b) {
    const double wa = weight_of(a);
    const double wb = weight_of(b);
    if (wa != wb) return wa < wb;
    return a < b;
  });
  for (const std::string& tenant : order) {
    for (auto it = pending.rbegin(); it != pending.rend() && backlog > budget; ++it) {
      if (it->tenant != tenant) continue;
      victims.push_back(it->id);
      backlog -= it->flops;
    }
    if (backlog <= budget) break;
  }
  return victims;
}

}  // namespace vbatch::service
