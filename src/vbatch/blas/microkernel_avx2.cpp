// AVX2+FMA tiles (256-bit). This TU is the only one compiled with
// -mavx2 -mfma (src/CMakeLists.txt adds it on x86-64 when the compiler
// accepts the flags and defines VBATCH_HAVE_AVX2_TU); the runtime dispatcher
// only hands these pointers out after __builtin_cpu_supports("avx2") &&
// ("fma"), so no illegal instruction can ever execute on an older host.
#include "vbatch/blas/microkernel_tile.hpp"

namespace vbatch::blas::micro::detail {

namespace {

// float W=8 → MR ∈ {8, 16, 24}; double W=4 → MR ∈ {4, 8, 12}.
const KernelEntry kEntries[] = {
    VBATCH_TILE_FAMILY(Isa::Avx2, float, 8),
    VBATCH_TILE_FAMILY(Isa::Avx2, double, 4),
};

}  // namespace

std::span<const KernelEntry> kernels_avx2() noexcept { return kEntries; }

}  // namespace vbatch::blas::micro::detail
