// Runtime tuning profile for the micro-kernel engine.
//
// PR 2 pinned the register tile (MR×NR) and the cache blocking depths
// (KC/MC/NC) as `constexpr` guesses per precision. This header turns them
// into a runtime-resolved `TuningProfile`: one `KernelShape` per scalar
// type, resolved once per process (defaults derived from the active ISA,
// or a profile the cache-hierarchy autotuner in core/autotune measured) and
// threaded through gemm/syrk/trsm/trmm packing and dispatch.
//
// Profiles persist to a small versioned JSON file —
// `~/.cache/vbatch/tuning-<host>-<isa>.json` by default,
// `VBATCH_TUNING_FILE` overrides — so one autotune sweep per (host, ISA)
// serves every later run: load_tuning_profile() rejects corrupted files and
// stale format versions (the caller then re-tunes), and a loaded profile
// reproduces the tuned run's factors byte for byte because every blocking
// decision the engine makes is a pure function of (ISA, profile, shape).
#pragma once

#include <optional>
#include <string>

#include "vbatch/blas/isa.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::blas::micro {

/// On-disk format version; bump when the JSON schema or the meaning of a
/// field changes so stale caches re-tune instead of mis-steering the engine.
inline constexpr int kTuningFormatVersion = 2;

/// Hard bounds on the register tile (the widest compiled tile is the
/// AVX-512 float 48×8); write-back scratch buffers are sized from these.
inline constexpr int kMaxMR = 48;
inline constexpr int kMaxNR = 8;

/// Blocking decisions for one scalar type. MR×NR is the register tile,
/// KC/MC/NC the cache blocking depths, and min_m/min_mnk the `use_blocked`
/// crossover: the packed engine runs when m ≥ min_m, n ≥ 4, k ≥ 8 and
/// m·n·k ≥ min_mnk.
struct KernelShape {
  int mr = 4, nr = 4;
  index_t kc = 256, mc = 128, nc = 256;
  index_t min_m = 4;
  double min_mnk = 4096.0;
  bool operator==(const KernelShape&) const = default;
};

/// A full profile: one shape per scalar type, tagged with the ISA it was
/// derived for (a profile is only loadable under the same ISA).
struct TuningProfile {
  Isa isa = Isa::Scalar;
  KernelShape shapes[4];  ///< indexed by float, double, cfloat, cdouble
  bool operator==(const TuningProfile&) const = default;

  /// Analytic defaults per ISA. `defaults(Isa::Scalar)` reproduces the PR 2
  /// `Tiling<T>` constants (and their crossover) exactly — the scalar
  /// bit-compatibility anchor; vector ISAs default to wider MR tiles.
  [[nodiscard]] static TuningProfile defaults(Isa isa) noexcept;
};

/// The shape the engine currently uses for scalar type T.
template <typename T>
[[nodiscard]] const KernelShape& shape_of(const TuningProfile& p) noexcept;

/// Process-wide active profile. Lazily initialized to
/// defaults(active_isa()) on first use.
[[nodiscard]] const TuningProfile& active_profile() noexcept;

/// Installs a profile (validated; throws vbatch::Error on out-of-range
/// fields or an ISA the host cannot execute). Like set_dispatch, not meant
/// to be called while kernels are in flight on the worker pool.
void set_tuning_profile(const TuningProfile& p);

/// Restores defaults(active_isa()).
void reset_tuning_profile() noexcept;

/// RAII guard pinning a profile for a scope (tests/benches/tuner sweeps).
class ProfileGuard {
 public:
  explicit ProfileGuard(const TuningProfile& p) : prev_(active_profile()) {
    set_tuning_profile(p);
  }
  ~ProfileGuard() { set_tuning_profile(prev_); }
  ProfileGuard(const ProfileGuard&) = delete;
  ProfileGuard& operator=(const ProfileGuard&) = delete;

 private:
  TuningProfile prev_;
};

/// Structural validation (tile bounds, blocking depths, crossover sanity).
/// Returns false and fills `why` (if given) on the first violation.
[[nodiscard]] bool validate_profile(const TuningProfile& p, std::string* why = nullptr);

/// Default on-disk location: $VBATCH_TUNING_FILE if set, else
/// $XDG_CACHE_HOME|$HOME/.cache + /vbatch/tuning-<host>-<isa>.json.
[[nodiscard]] std::string tuning_cache_path(Isa isa);

/// Serializes `p` (creating parent directories). False + `err` on I/O
/// failure; never throws.
bool save_tuning_profile(const TuningProfile& p, const std::string& path,
                         std::string* err = nullptr);

/// Parses and validates a persisted profile. std::nullopt (with a reason in
/// `why`) for a missing file, malformed JSON, a stale format version, an
/// unknown ISA, or out-of-range fields — the caller decides to re-tune.
[[nodiscard]] std::optional<TuningProfile> load_tuning_profile(const std::string& path,
                                                               std::string* why = nullptr);

/// Wall-clock Gflop/s of an NT-gemm (m = n = k = n) run through the packed
/// engine with an explicit shape under the active ISA; the autotuner's
/// measurement primitive. Best-of-`reps` timing on freshly filled operands.
template <typename T>
[[nodiscard]] double benchmark_shape(const KernelShape& shape, index_t n, int reps);

}  // namespace vbatch::blas::micro
