#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Same base order as trsm: below it the reference loops win, above it the
// coupling blocks become micro-kernel gemms.
constexpr index_t kTrmmBaseOrder = 32;

template <typename T>
void trmm_check(Side side, ConstMatrixView<T> a, MatrixView<T> b) {
  const index_t ka = side == Side::Left ? b.rows() : b.cols();
  require(a.rows() == ka && a.cols() == ka, "trmm: A dimension mismatch");
}

// Recursive triangular multiply with unit alpha. The half of B whose new
// value needs the *old* other half is updated in an order that never reads
// overwritten data: multiply the dependent half first (recursion touches
// only that half), add the coupling gemm, then recurse on the other half.
template <typename T>
void trmm_rec(Side side, Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a,
              MatrixView<T> b) {
  const index_t ka = a.rows();
  if (ka <= kTrmmBaseOrder) {
    trmm_ref<T>(side, uplo, trans, diag, T(1), a, b);
    return;
  }
  const index_t h = ka / 2;
  const index_t r = ka - h;
  auto a11 = a.block(0, 0, h, h);
  auto a22 = a.block(h, h, r, r);
  const index_t m = b.rows();
  const index_t n = b.cols();

  if (side == Side::Left) {
    auto b1 = b.block(0, 0, h, n);
    auto b2 = b.block(h, 0, r, n);
    if (uplo == Uplo::Lower) {
      auto a21 = a.block(h, 0, r, h);
      if (trans == Trans::NoTrans) {
        trmm_rec(side, uplo, trans, diag, a22, b2);
        gemm<T>(Trans::NoTrans, Trans::NoTrans, T(1), a21, b1, T(1), b2);
        trmm_rec(side, uplo, trans, diag, a11, b1);
      } else {
        trmm_rec(side, uplo, trans, diag, a11, b1);
        gemm<T>(Trans::Trans, Trans::NoTrans, T(1), a21, b2, T(1), b1);
        trmm_rec(side, uplo, trans, diag, a22, b2);
      }
    } else {
      auto a12 = a.block(0, h, h, r);
      if (trans == Trans::NoTrans) {
        trmm_rec(side, uplo, trans, diag, a11, b1);
        gemm<T>(Trans::NoTrans, Trans::NoTrans, T(1), a12, b2, T(1), b1);
        trmm_rec(side, uplo, trans, diag, a22, b2);
      } else {
        trmm_rec(side, uplo, trans, diag, a22, b2);
        gemm<T>(Trans::Trans, Trans::NoTrans, T(1), a12, b1, T(1), b2);
        trmm_rec(side, uplo, trans, diag, a11, b1);
      }
    }
    return;
  }

  auto b1 = b.block(0, 0, m, h);
  auto b2 = b.block(0, h, m, r);
  if (uplo == Uplo::Lower) {
    auto a21 = a.block(h, 0, r, h);
    if (trans == Trans::NoTrans) {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm<T>(Trans::NoTrans, Trans::NoTrans, T(1), b2, a21, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    } else {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm<T>(Trans::NoTrans, Trans::Trans, T(1), b1, a21, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    }
  } else {
    auto a12 = a.block(0, h, h, r);
    if (trans == Trans::NoTrans) {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm<T>(Trans::NoTrans, Trans::NoTrans, T(1), b1, a12, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    } else {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm<T>(Trans::NoTrans, Trans::Trans, T(1), b2, a12, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    }
  }
}

}  // namespace

template <typename T>
void trmm_ref(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
              MatrixView<T> b) {
  trmm_check(side, a, b);
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t ka = a.rows();
  if (m == 0 || n == 0) return;

  const bool unit = diag == Diag::Unit;
  const bool eff_lower = (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  auto at = [&](index_t i, index_t j) {
    return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
  };

  std::vector<T> tmp(static_cast<std::size_t>(ka));

  if (side == Side::Left) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) tmp[static_cast<std::size_t>(i)] = b(i, j);
      for (index_t i = 0; i < m; ++i) {
        T sum = unit ? tmp[static_cast<std::size_t>(i)]
                     : at(i, i) * tmp[static_cast<std::size_t>(i)];
        if (eff_lower) {
          for (index_t l = 0; l < i; ++l) sum += at(i, l) * tmp[static_cast<std::size_t>(l)];
        } else {
          for (index_t l = i + 1; l < m; ++l) sum += at(i, l) * tmp[static_cast<std::size_t>(l)];
        }
        b(i, j) = alpha * sum;
      }
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) tmp[static_cast<std::size_t>(j)] = b(i, j);
      for (index_t j = 0; j < n; ++j) {
        T sum = unit ? tmp[static_cast<std::size_t>(j)]
                     : tmp[static_cast<std::size_t>(j)] * at(j, j);
        if (eff_lower) {
          // B := B * op(A): column j of result needs rows l > j of op(A)'s column.
          for (index_t l = j + 1; l < n; ++l) sum += tmp[static_cast<std::size_t>(l)] * at(l, j);
        } else {
          for (index_t l = 0; l < j; ++l) sum += tmp[static_cast<std::size_t>(l)] * at(l, j);
        }
        b(i, j) = alpha * sum;
      }
    }
  }
}

template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  trmm_check(side, a, b);
  const index_t m = b.rows();
  const index_t n = b.cols();
  if (m == 0 || n == 0) return;
  const index_t ka = a.rows();
  const index_t nrhs = side == Side::Left ? n : m;

  const micro::Dispatch d = micro::dispatch();
  // Same crossover policy as trsm: 8× the profile's gemm threshold
  // (= the historical 32768 under the default profile).
  const double work = static_cast<double>(ka) * static_cast<double>(ka) * static_cast<double>(nrhs);
  const bool blocked =
      ka > kTrmmBaseOrder &&
      (d == micro::Dispatch::ForceBlocked ||
       (d == micro::Dispatch::Auto &&
        work >= 8.0 * micro::shape_of<T>(micro::active_profile()).min_mnk));
  if (!blocked) {
    trmm_ref(side, uplo, trans, diag, alpha, a, b);
    return;
  }
  trmm_rec(side, uplo, trans, diag, a, b);
  if (alpha != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) = alpha == T(0) ? T(0) : alpha * b(i, j);
  }
}

#define VBATCH_INSTANTIATE_TRMM(T)                                                         \
  template void trmm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);    \
  template void trmm_ref<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>)

VBATCH_INSTANTIATE_TRMM(float);
VBATCH_INSTANTIATE_TRMM(double);
VBATCH_INSTANTIATE_TRMM(std::complex<float>);
VBATCH_INSTANTIATE_TRMM(std::complex<double>);

#undef VBATCH_INSTANTIATE_TRMM

}  // namespace vbatch::blas
