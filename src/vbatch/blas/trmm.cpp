#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t ka = side == Side::Left ? m : n;
  require(a.rows() == ka && a.cols() == ka, "trmm: A dimension mismatch");
  if (m == 0 || n == 0) return;

  const bool unit = diag == Diag::Unit;
  const bool eff_lower = (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  auto at = [&](index_t i, index_t j) {
    return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
  };

  std::vector<T> tmp(static_cast<std::size_t>(ka));

  if (side == Side::Left) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) tmp[static_cast<std::size_t>(i)] = b(i, j);
      for (index_t i = 0; i < m; ++i) {
        T sum = unit ? tmp[static_cast<std::size_t>(i)]
                     : at(i, i) * tmp[static_cast<std::size_t>(i)];
        if (eff_lower) {
          for (index_t l = 0; l < i; ++l) sum += at(i, l) * tmp[static_cast<std::size_t>(l)];
        } else {
          for (index_t l = i + 1; l < m; ++l) sum += at(i, l) * tmp[static_cast<std::size_t>(l)];
        }
        b(i, j) = alpha * sum;
      }
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) tmp[static_cast<std::size_t>(j)] = b(i, j);
      for (index_t j = 0; j < n; ++j) {
        T sum = unit ? tmp[static_cast<std::size_t>(j)]
                     : tmp[static_cast<std::size_t>(j)] * at(j, j);
        if (eff_lower) {
          // B := B * op(A): column j of result needs rows l > j of op(A)'s column.
          for (index_t l = j + 1; l < n; ++l) sum += tmp[static_cast<std::size_t>(l)] * at(l, j);
        } else {
          for (index_t l = 0; l < j; ++l) sum += tmp[static_cast<std::size_t>(l)] * at(l, j);
        }
        b(i, j) = alpha * sum;
      }
    }
  }
}

template void trmm<float>(Side, Uplo, Trans, Diag, float, ConstMatrixView<float>,
                          MatrixView<float>);
template void trmm<double>(Side, Uplo, Trans, Diag, double, ConstMatrixView<double>,
                           MatrixView<double>);
template void trmm<std::complex<float>>(Side, Uplo, Trans, Diag, std::complex<float>,
                                        ConstMatrixView<std::complex<float>>,
                                        MatrixView<std::complex<float>>);
template void trmm<std::complex<double>>(Side, Uplo, Trans, Diag, std::complex<double>,
                                         ConstMatrixView<std::complex<double>>,
                                         MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
