#include <algorithm>
#include <cmath>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

template <typename T>
double norm_fro(ConstMatrixView<T> a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(std::abs(a(i, j)));
      sum += v * v;
    }
  return std::sqrt(sum);
}

template <typename T>
double norm_max(ConstMatrixView<T> a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      m = std::max(m, static_cast<double>(std::abs(a(i, j))));
  return m;
}

template <typename T>
double potrf_residual(Uplo uplo, ConstMatrixView<T> a_orig, ConstMatrixView<T> factor) {
  const index_t n = a_orig.rows();
  if (n == 0) return 0.0;
  // Reconstruct R = L·Lᴴ (or Uᴴ·U) in double/complex<double> precision and
  // compare against A.
  using Acc = std::conditional_t<is_complex_v<T>, std::complex<double>, double>;
  std::vector<Acc> r(static_cast<std::size_t>(n * n), Acc(0));
  auto rv = make_view(r.data(), n, n);
  if (uplo == Uplo::Lower) {
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j) {
        Acc sum(0);
        const index_t kmax = std::min(i, j);
        for (index_t k = 0; k <= kmax; ++k)
          sum += Acc(factor(i, k)) * conj_val(Acc(factor(j, k)));
        rv(i, j) = sum;
      }
  } else {
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j) {
        Acc sum(0);
        const index_t kmax = std::min(i, j);
        for (index_t k = 0; k <= kmax; ++k)
          sum += conj_val(Acc(factor(k, i))) * Acc(factor(k, j));
        rv(i, j) = sum;
      }
  }
  double diff = 0.0, ref = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const Acc av = Acc(a_orig(i, j));
      diff += std::norm(rv(i, j) - av);
      ref += std::norm(av);
    }
  if (ref == 0.0) return std::sqrt(diff);
  return std::sqrt(diff) / (static_cast<double>(n) * std::sqrt(ref));
}

template <typename T>
double getrf_residual(ConstMatrixView<T> a_orig, ConstMatrixView<T> lu,
                      std::span<const int> ipiv) {
  const index_t m = a_orig.rows();
  const index_t n = a_orig.cols();
  if (m == 0 || n == 0) return 0.0;
  const index_t mn = std::min(m, n);

  // Form P·A by applying the interchanges to a copy of A.
  std::vector<double> pa(static_cast<std::size_t>(m * n));
  auto pav = make_view(pa.data(), m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) pav(i, j) = static_cast<double>(a_orig(i, j));
  for (index_t k = 0; k < mn; ++k) {
    const index_t p = ipiv[static_cast<std::size_t>(k)] - 1;
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(pav(k, j), pav(p, j));
  }

  // R = L·U from the packed factors.
  double diff = 0.0, ref = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double sum = 0.0;
      const index_t kmax = std::min({i, j, mn - 1});
      for (index_t k = 0; k <= kmax; ++k) {
        const double lik = i == k ? 1.0 : static_cast<double>(lu(i, k));
        const double ukj = k <= j ? static_cast<double>(lu(k, j)) : 0.0;
        sum += lik * ukj;
      }
      // L(i,i)=1 handled above; when i < mn and i <= j, U(i,j) term included
      // via k == i. When i >= mn, only L contributions exist.
      const double dv = sum - pav(i, j);
      diff += dv * dv;
      ref += pav(i, j) * pav(i, j);
    }
  }
  if (ref == 0.0) return std::sqrt(diff);
  return std::sqrt(diff) / (static_cast<double>(std::max(m, n)) * std::sqrt(ref));
}

template <typename T>
double geqrf_residual(ConstMatrixView<T> a_orig, ConstMatrixView<T> qr,
                      std::span<const T> tau) {
  const index_t m = a_orig.rows();
  const index_t n = a_orig.cols();
  if (m == 0 || n == 0) return 0.0;
  const index_t mn = std::min(m, n);

  // Materialise Q (m×mn) then compute Q·R.
  std::vector<T> q(static_cast<std::size_t>(m * mn));
  auto qv = make_view(q.data(), m, mn);
  for (index_t j = 0; j < mn; ++j)
    for (index_t i = 0; i < m; ++i) qv(i, j) = qr(i, j);
  orgqr<T>(qv, tau.subspan(0, static_cast<std::size_t>(mn)));

  double diff = 0.0, ref = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double sum = 0.0;
      const index_t kmax = std::min(j, mn - 1);
      for (index_t k = 0; k <= kmax; ++k)
        sum += static_cast<double>(qv(i, k)) * static_cast<double>(qr(k, j));
      const double av = static_cast<double>(a_orig(i, j));
      const double dv = sum - av;
      diff += dv * dv;
      ref += av * av;
    }
  }
  if (ref == 0.0) return std::sqrt(diff);
  return std::sqrt(diff) / (static_cast<double>(std::max(m, n)) * std::sqrt(ref));
}

template double norm_fro<float>(ConstMatrixView<float>);
template double norm_fro<double>(ConstMatrixView<double>);
template double norm_max<float>(ConstMatrixView<float>);
template double norm_max<double>(ConstMatrixView<double>);
template double potrf_residual<float>(Uplo, ConstMatrixView<float>, ConstMatrixView<float>);
template double potrf_residual<double>(Uplo, ConstMatrixView<double>, ConstMatrixView<double>);
template double norm_fro<std::complex<float>>(ConstMatrixView<std::complex<float>>);
template double norm_fro<std::complex<double>>(ConstMatrixView<std::complex<double>>);
template double norm_max<std::complex<float>>(ConstMatrixView<std::complex<float>>);
template double norm_max<std::complex<double>>(ConstMatrixView<std::complex<double>>);
template double potrf_residual<std::complex<float>>(Uplo, ConstMatrixView<std::complex<float>>,
                                                    ConstMatrixView<std::complex<float>>);
template double potrf_residual<std::complex<double>>(
    Uplo, ConstMatrixView<std::complex<double>>, ConstMatrixView<std::complex<double>>);
template double getrf_residual<float>(ConstMatrixView<float>, ConstMatrixView<float>,
                                      std::span<const int>);
template double getrf_residual<double>(ConstMatrixView<double>, ConstMatrixView<double>,
                                       std::span<const int>);
template double geqrf_residual<float>(ConstMatrixView<float>, ConstMatrixView<float>,
                                      std::span<const float>);
template double geqrf_residual<double>(ConstMatrixView<double>, ConstMatrixView<double>,
                                       std::span<const double>);

}  // namespace vbatch::blas
