#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

// Reference triangular solve covering all side/uplo/trans/diag combinations.
// The library's hot paths only use a few of them (Right/Lower/Trans for the
// Cholesky panel, Left/Lower/NoTrans for potrs), but the full set is part of
// the vbatched BLAS foundation the paper describes (§III-E).
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t ka = side == Side::Left ? m : n;
  require(a.rows() == ka && a.cols() == ka, "trsm: A dimension mismatch");
  if (m == 0 || n == 0) return;

  if (alpha != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) *= alpha;
  }

  const bool unit = diag == Diag::Unit;
  // Effective triangle orientation: transposing a Lower triangle solves like
  // an Upper one and vice versa. Complex Trans means conjugate-transpose.
  const bool eff_lower = (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  auto at = [&](index_t i, index_t j) {
    return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
  };

  if (side == Side::Left) {
    // Solve op(A) X = B, column by column of B.
    for (index_t j = 0; j < n; ++j) {
      if (eff_lower) {
        for (index_t i = 0; i < m; ++i) {
          T sum = b(i, j);
          for (index_t l = 0; l < i; ++l) sum -= at(i, l) * b(l, j);
          b(i, j) = unit ? sum : sum / at(i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T sum = b(i, j);
          for (index_t l = i + 1; l < m; ++l) sum -= at(i, l) * b(l, j);
          b(i, j) = unit ? sum : sum / at(i, i);
        }
      }
    }
    return;
  }

  // Side == Right: solve X op(A) = B, i.e. column recurrences over X.
  if (eff_lower) {
    // X(:, j) determined from the last column backwards:
    //   B(:, j) = sum_{l >= j} X(:, l) * opA(l, j)
    for (index_t j = n - 1; j >= 0; --j) {
      for (index_t l = j + 1; l < n; ++l) {
        const T alj = at(l, j);
        if (alj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
      }
      if (!unit) {
        const T inv = T(1) / at(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < j; ++l) {
        const T alj = at(l, j);
        if (alj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
      }
      if (!unit) {
        const T inv = T(1) / at(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  }
}

template void trsm<float>(Side, Uplo, Trans, Diag, float, ConstMatrixView<float>,
                          MatrixView<float>);
template void trsm<double>(Side, Uplo, Trans, Diag, double, ConstMatrixView<double>,
                           MatrixView<double>);
template void trsm<std::complex<float>>(Side, Uplo, Trans, Diag, std::complex<float>,
                                        ConstMatrixView<std::complex<float>>,
                                        MatrixView<std::complex<float>>);
template void trsm<std::complex<double>>(Side, Uplo, Trans, Diag, std::complex<double>,
                                         ConstMatrixView<std::complex<double>>,
                                         MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
