#include <algorithm>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Triangles at or below this order are solved with the reference loops; the
// recursion above it turns the dominant work into gemm calls on the packed
// micro-kernel engine.
constexpr index_t kTrsmBaseOrder = 32;

template <typename T>
void trsm_check(Side side, ConstMatrixView<T> a, MatrixView<T> b) {
  const index_t ka = side == Side::Left ? b.rows() : b.cols();
  require(a.rows() == ka && a.cols() == ka, "trsm: A dimension mismatch");
}

// Recursive triangular solve with unit alpha: split A into a 2×2 block
// triangle, solve the independent half first, subtract the coupling block
// product (a gemm, where the flops are), then solve the other half. The
// gemm's Trans flag conjugates complex operands, matching the conj_val the
// reference loops apply under Trans.
template <typename T>
void trsm_rec(Side side, Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a,
              MatrixView<T> b) {
  const index_t ka = a.rows();
  if (ka <= kTrsmBaseOrder) {
    trsm_ref<T>(side, uplo, trans, diag, T(1), a, b);
    return;
  }
  const index_t h = ka / 2;
  const index_t r = ka - h;
  auto a11 = a.block(0, 0, h, h);
  auto a22 = a.block(h, h, r, r);
  const index_t m = b.rows();
  const index_t n = b.cols();

  if (side == Side::Left) {
    auto b1 = b.block(0, 0, h, n);
    auto b2 = b.block(h, 0, r, n);
    if (uplo == Uplo::Lower) {
      auto a21 = a.block(h, 0, r, h);
      if (trans == Trans::NoTrans) {
        trsm_rec(side, uplo, trans, diag, a11, b1);
        gemm<T>(Trans::NoTrans, Trans::NoTrans, T(-1), a21, b1, T(1), b2);
        trsm_rec(side, uplo, trans, diag, a22, b2);
      } else {
        trsm_rec(side, uplo, trans, diag, a22, b2);
        gemm<T>(Trans::Trans, Trans::NoTrans, T(-1), a21, b2, T(1), b1);
        trsm_rec(side, uplo, trans, diag, a11, b1);
      }
    } else {
      auto a12 = a.block(0, h, h, r);
      if (trans == Trans::NoTrans) {
        trsm_rec(side, uplo, trans, diag, a22, b2);
        gemm<T>(Trans::NoTrans, Trans::NoTrans, T(-1), a12, b2, T(1), b1);
        trsm_rec(side, uplo, trans, diag, a11, b1);
      } else {
        trsm_rec(side, uplo, trans, diag, a11, b1);
        gemm<T>(Trans::Trans, Trans::NoTrans, T(-1), a12, b1, T(1), b2);
        trsm_rec(side, uplo, trans, diag, a22, b2);
      }
    }
    return;
  }

  auto b1 = b.block(0, 0, m, h);
  auto b2 = b.block(0, h, m, r);
  if (uplo == Uplo::Lower) {
    auto a21 = a.block(h, 0, r, h);
    if (trans == Trans::NoTrans) {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm<T>(Trans::NoTrans, Trans::NoTrans, T(-1), b2, a21, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    } else {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm<T>(Trans::NoTrans, Trans::Trans, T(-1), b1, a21, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    }
  } else {
    auto a12 = a.block(0, h, h, r);
    if (trans == Trans::NoTrans) {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm<T>(Trans::NoTrans, Trans::NoTrans, T(-1), b1, a12, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    } else {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm<T>(Trans::NoTrans, Trans::Trans, T(-1), b2, a12, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    }
  }
}

}  // namespace

// Reference triangular solve covering all side/uplo/trans/diag combinations.
// The library's hot paths only use a few of them (Right/Lower/Trans for the
// Cholesky panel, Left/Lower/NoTrans for potrs), but the full set is part of
// the vbatched BLAS foundation the paper describes (§III-E).
template <typename T>
void trsm_ref(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
              MatrixView<T> b) {
  trsm_check(side, a, b);
  const index_t m = b.rows();
  const index_t n = b.cols();
  if (m == 0 || n == 0) return;

  if (alpha != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) *= alpha;
  }

  const bool unit = diag == Diag::Unit;
  // Effective triangle orientation: transposing a Lower triangle solves like
  // an Upper one and vice versa. Complex Trans means conjugate-transpose.
  const bool eff_lower = (uplo == Uplo::Lower) == (trans == Trans::NoTrans);
  auto at = [&](index_t i, index_t j) {
    return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
  };

  if (side == Side::Left) {
    // Solve op(A) X = B, column by column of B.
    for (index_t j = 0; j < n; ++j) {
      if (eff_lower) {
        for (index_t i = 0; i < m; ++i) {
          T sum = b(i, j);
          for (index_t l = 0; l < i; ++l) sum -= at(i, l) * b(l, j);
          b(i, j) = unit ? sum : sum / at(i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T sum = b(i, j);
          for (index_t l = i + 1; l < m; ++l) sum -= at(i, l) * b(l, j);
          b(i, j) = unit ? sum : sum / at(i, i);
        }
      }
    }
    return;
  }

  // Side == Right: solve X op(A) = B, i.e. column recurrences over X.
  if (eff_lower) {
    // X(:, j) determined from the last column backwards:
    //   B(:, j) = sum_{l >= j} X(:, l) * opA(l, j)
    for (index_t j = n - 1; j >= 0; --j) {
      for (index_t l = j + 1; l < n; ++l) {
        const T alj = at(l, j);
        if (alj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
      }
      if (!unit) {
        const T inv = T(1) / at(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < j; ++l) {
        const T alj = at(l, j);
        if (alj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
      }
      if (!unit) {
        const T inv = T(1) / at(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  trsm_check(side, a, b);
  const index_t m = b.rows();
  const index_t n = b.cols();
  if (m == 0 || n == 0) return;
  const index_t ka = a.rows();
  const index_t nrhs = side == Side::Left ? n : m;

  const micro::Dispatch d = micro::dispatch();
  // The recursion only pays once its gemm updates clear the packed engine's
  // crossover with room to amortize the triangular base cases — 8× the
  // profile's gemm threshold matches the historical 32768 (= 8 · 4096) under
  // the default profile and moves with an autotuned one.
  const double work = static_cast<double>(ka) * static_cast<double>(ka) * static_cast<double>(nrhs);
  const bool blocked =
      ka > kTrsmBaseOrder &&
      (d == micro::Dispatch::ForceBlocked ||
       (d == micro::Dispatch::Auto &&
        work >= 8.0 * micro::shape_of<T>(micro::active_profile()).min_mnk));
  if (!blocked) {
    trsm_ref(side, uplo, trans, diag, alpha, a, b);
    return;
  }
  if (alpha != T(1)) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) = alpha == T(0) ? T(0) : alpha * b(i, j);
  }
  if (alpha == T(0)) return;  // BLAS convention: X = 0, no solve performed
  trsm_rec(side, uplo, trans, diag, a, b);
}

#define VBATCH_INSTANTIATE_TRSM(T)                                                         \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);    \
  template void trsm_ref<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>)

VBATCH_INSTANTIATE_TRSM(float);
VBATCH_INSTANTIATE_TRSM(double);
VBATCH_INSTANTIATE_TRSM(std::complex<float>);
VBATCH_INSTANTIATE_TRSM(std::complex<double>);

#undef VBATCH_INSTANTIATE_TRSM

}  // namespace vbatch::blas
