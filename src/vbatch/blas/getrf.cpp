#include <cmath>
#include <utility>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

template <typename T>
int getf2(MatrixView<T> a, std::span<int> ipiv) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t mn = std::min(m, n);
  require(std::cmp_greater_equal(ipiv.size(), mn), "getf2: ipiv too small");

  int info = 0;
  for (index_t j = 0; j < mn; ++j) {
    // Partial pivoting: largest |a(i, j)| for i >= j.
    index_t p = j;
    T maxv = std::abs(a(j, j));
    for (index_t i = j + 1; i < m; ++i) {
      const T v = std::abs(a(i, j));
      if (v > maxv) {
        maxv = v;
        p = i;
      }
    }
    ipiv[static_cast<std::size_t>(j)] = static_cast<int>(p) + 1;  // 1-based like LAPACK
    if (a(p, j) == T(0)) {
      if (info == 0) info = static_cast<int>(j) + 1;
      continue;
    }
    if (p != j) {
      for (index_t l = 0; l < n; ++l) std::swap(a(j, l), a(p, l));
    }
    const T inv = T(1) / a(j, j);
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    for (index_t l = j + 1; l < n; ++l) {
      const T ajl = a(j, l);
      if (ajl == T(0)) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, l) -= a(i, j) * ajl;
    }
  }
  return info;
}

template <typename T>
void laswp(MatrixView<T> a, std::span<const int> ipiv, index_t k1, index_t k2) {
  for (index_t k = k1; k < k2; ++k) {
    const index_t p = ipiv[static_cast<std::size_t>(k)] - 1;
    if (p != k) {
      for (index_t j = 0; j < a.cols(); ++j) std::swap(a(k, j), a(p, j));
    }
  }
}

template <typename T>
int getrf(MatrixView<T> a, std::span<int> ipiv, index_t nb) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t mn = std::min(m, n);
  require(std::cmp_greater_equal(ipiv.size(), mn), "getrf: ipiv too small");
  if (mn <= nb) return getf2(a, ipiv);

  int info = 0;
  for (index_t j = 0; j < mn; j += nb) {
    const index_t jb = std::min(nb, mn - j);
    // Factor the current panel (rows j..m, cols j..j+jb).
    auto panel = a.block(j, j, m - j, jb);
    std::span<int> panel_piv = ipiv.subspan(static_cast<std::size_t>(j));
    const int pinfo = getf2(panel, panel_piv);
    if (pinfo != 0 && info == 0) info = static_cast<int>(j) + pinfo;
    // Convert panel-local pivots to global row indices.
    for (index_t k = 0; k < jb; ++k)
      ipiv[static_cast<std::size_t>(j + k)] += static_cast<int>(j);
    // Apply interchanges to the columns left and right of the panel.
    if (j > 0) laswp(a.block(0, 0, m, j), ipiv, j, j + jb);
    if (j + jb < n) {
      laswp(a.block(0, j + jb, m, n - j - jb), ipiv, j, j + jb);
      // U12 = L11^{-1} A12, then trailing update A22 -= L21 U12.
      trsm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, T(1),
              a.block(j, j, jb, jb), a.block(j, j + jb, jb, n - j - jb));
      if (j + jb < m) {
        gemm<T>(Trans::NoTrans, Trans::NoTrans, T(-1), a.block(j + jb, j, m - j - jb, jb),
                a.block(j, j + jb, jb, n - j - jb), T(1),
                a.block(j + jb, j + jb, m - j - jb, n - j - jb));
      }
    }
  }
  return info;
}

template int getf2<float>(MatrixView<float>, std::span<int>);
template int getf2<double>(MatrixView<double>, std::span<int>);
template int getrf<float>(MatrixView<float>, std::span<int>, index_t);
template int getrf<double>(MatrixView<double>, std::span<int>, index_t);
template void laswp<float>(MatrixView<float>, std::span<const int>, index_t, index_t);
template void laswp<double>(MatrixView<double>, std::span<const int>, index_t, index_t);

}  // namespace vbatch::blas
