#include "vbatch/blas/tuning.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "vbatch/blas/microkernel.hpp"
#include "vbatch/blas/microkernel_tile.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace vbatch::blas::micro {

namespace {

constexpr const char* kTypeKeys[4] = {"float", "double", "cfloat", "cdouble"};

// The single source of truth for the engine's (ISA, profile) pair: the
// profile carries its ISA, so the two can never disagree. Lazily resolved
// from VBATCH_ISA / cpuid on first use. Like set_dispatch, mutation is
// documented as not-while-kernels-are-in-flight; readers take no lock.
TuningProfile& profile_slot() noexcept {
  static TuningProfile p = TuningProfile::defaults(detail::initial_isa());
  return p;
}

}  // namespace

// active_isa / set_isa are declared in isa.hpp but live here so they share
// profile_slot() with the profile accessors (changing the ISA re-derives the
// default profile for it; a tuned profile is per-ISA by construction).
Isa active_isa() noexcept { return profile_slot().isa; }

Isa set_isa(Isa i) noexcept {
  const Isa got = detail::clamp_isa(i);
  if (profile_slot().isa != got) profile_slot() = TuningProfile::defaults(got);
  return got;
}

TuningProfile TuningProfile::defaults(Isa isa) noexcept {
  TuningProfile p;
  p.isa = isa;
  // Scalar anchors: exactly the PR 2 Tiling<T> constants and their
  // `use_blocked` crossover (min_m = MR, min_mnk = 4096) — Isa::Scalar runs
  // reproduce the PR 2 engine bit for bit.
  p.shapes[0] = {8, 4, 256, 128, 512, 8, 4096.0};
  p.shapes[1] = {4, 4, 256, 128, 256, 4, 4096.0};
  p.shapes[2] = {4, 2, 128, 96, 256, 4, 4096.0};
  p.shapes[3] = {2, 2, 128, 96, 256, 2, 4096.0};
  switch (isa) {
    case Isa::Scalar:
    case Isa::Sse2:
    case Isa::Neon:
      // The scalar MR are already multiples of the 128-bit widths (float 8 =
      // 2×4 lanes, double 4 = 2×2), so the 128-bit tiles slot straight in.
      break;
    case Isa::Avx2:
      p.shapes[0] = {16, 6, 256, 128, 512, 8, 4096.0};
      p.shapes[1] = {8, 6, 256, 96, 512, 8, 4096.0};
      break;
    case Isa::Avx512:
      p.shapes[0] = {32, 6, 256, 128, 512, 8, 4096.0};
      p.shapes[1] = {16, 6, 256, 96, 512, 8, 4096.0};
      break;
  }
  return p;
}

template <typename T>
const KernelShape& shape_of(const TuningProfile& p) noexcept {
  return p.shapes[detail::type_index_v<T>];
}

template const KernelShape& shape_of<float>(const TuningProfile&) noexcept;
template const KernelShape& shape_of<double>(const TuningProfile&) noexcept;
template const KernelShape& shape_of<std::complex<float>>(const TuningProfile&) noexcept;
template const KernelShape& shape_of<std::complex<double>>(const TuningProfile&) noexcept;

const TuningProfile& active_profile() noexcept { return profile_slot(); }

void set_tuning_profile(const TuningProfile& p) {
  std::string why;
  if (!validate_profile(p, &why)) throw Error(Status::InvalidArgument, "tuning profile: " + why);
  if (!isa_supported(p.isa))
    throw Error(Status::NotSupported,
                std::string("tuning profile targets ") + to_string(p.isa) +
                    ", which this host cannot execute");
  profile_slot() = p;
}

void reset_tuning_profile() noexcept {
  profile_slot() = TuningProfile::defaults(profile_slot().isa);
}

bool validate_profile(const TuningProfile& p, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (p.isa < Isa::Scalar || p.isa > Isa::Avx512) return fail("unknown isa value");
  for (int t = 0; t < 4; ++t) {
    const KernelShape& s = p.shapes[t];
    const std::string at = std::string(kTypeKeys[t]) + ": ";
    if (s.mr < 1 || s.mr > kMaxMR) return fail(at + "mr out of [1, " + std::to_string(kMaxMR) + "]");
    if (s.nr < 1 || s.nr > kMaxNR) return fail(at + "nr out of [1, " + std::to_string(kMaxNR) + "]");
    if (s.kc < 8 || s.kc > 4096) return fail(at + "kc out of [8, 4096]");
    if (s.mc < s.mr || s.mc > 65536) return fail(at + "mc out of [mr, 65536]");
    if (s.nc < s.nr || s.nc > 1048576) return fail(at + "nc out of [nr, 1048576]");
    if (s.min_m < 1 || s.min_m > 4096) return fail(at + "min_m out of [1, 4096]");
    if (!(s.min_mnk >= 0.0) || s.min_mnk > 1e12) return fail(at + "min_mnk out of [0, 1e12]");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

std::string sanitized_hostname() {
  char buf[256] = {};
#if defined(__unix__) || defined(__APPLE__)
  if (gethostname(buf, sizeof(buf) - 1) != 0) buf[0] = '\0';
#endif
  std::string host = buf[0] ? buf : "host";
  for (char& c : host)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '.') c = '_';
  return host;
}

// Minimal scanner: locates `"key"` inside [from, to) and parses the number
// after the following ':'. Returns false when the key is absent or the
// value is not numeric — the caller treats the file as corrupt.
bool scan_number(const std::string& text, std::size_t from, std::size_t to,
                 const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t kpos = text.find(needle, from);
  if (kpos == std::string::npos || kpos >= to) return false;
  std::size_t p = kpos + needle.size();
  while (p < to && (text[p] == ':' || std::isspace(static_cast<unsigned char>(text[p])))) ++p;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + p, &end);
  if (end == text.c_str() + p) return false;
  *out = v;
  return true;
}

}  // namespace

std::string tuning_cache_path(Isa isa) {
  if (const char* env = std::getenv("VBATCH_TUNING_FILE"); env && env[0] != '\0') return env;
  std::string base;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && xdg[0] != '\0') {
    base = xdg;
  } else if (const char* home = std::getenv("HOME"); home && home[0] != '\0') {
    base = std::string(home) + "/.cache";
  } else {
    base = ".";
  }
  return base + "/vbatch/tuning-" + sanitized_hostname() + "-" + to_string(isa) + ".json";
}

bool save_tuning_profile(const TuningProfile& p, const std::string& path, std::string* err) {
  std::string why;
  if (!validate_profile(p, &why)) {
    if (err) *err = "refusing to save invalid profile: " + why;
    return false;
  }
  std::error_code ec;
  const std::filesystem::path fspath(path);
  if (fspath.has_parent_path()) std::filesystem::create_directories(fspath.parent_path(), ec);

  std::ostringstream os;
  os << "{\n  \"vbatch_tuning\": true,\n  \"version\": " << kTuningFormatVersion
     << ",\n  \"host\": \"" << sanitized_hostname() << "\",\n  \"isa\": \"" << to_string(p.isa)
     << "\",\n  \"shapes\": {";
  for (int t = 0; t < 4; ++t) {
    const KernelShape& s = p.shapes[t];
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s\n    \"%s\": {\"mr\": %d, \"nr\": %d, \"kc\": %lld, \"mc\": %lld, "
                  "\"nc\": %lld, \"min_m\": %lld, \"min_mnk\": %.1f}",
                  t ? "," : "", kTypeKeys[t], s.mr, s.nr, static_cast<long long>(s.kc),
                  static_cast<long long>(s.mc), static_cast<long long>(s.nc),
                  static_cast<long long>(s.min_m), s.min_mnk);
    os << line;
  }
  os << "\n  }\n}\n";

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << os.str();
  f.flush();
  if (!f) {
    if (err) *err = "short write to " + path;
    return false;
  }
  return true;
}

std::optional<TuningProfile> load_tuning_profile(const std::string& path, std::string* why) {
  auto fail = [&](const std::string& msg) -> std::optional<TuningProfile> {
    if (why) *why = msg;
    return std::nullopt;
  };
  std::ifstream f(path);
  if (!f) return fail("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  if (text.find("\"vbatch_tuning\"") == std::string::npos)
    return fail("not a vbatch tuning file");
  double version = 0.0;
  if (!scan_number(text, 0, text.size(), "version", &version)) return fail("missing version");
  if (static_cast<int>(version) != kTuningFormatVersion)
    return fail("stale format version " + std::to_string(static_cast<int>(version)) +
                " (expected " + std::to_string(kTuningFormatVersion) + ")");

  TuningProfile p;
  {
    const std::size_t ipos = text.find("\"isa\"");
    if (ipos == std::string::npos) return fail("missing isa");
    const std::size_t q1 = text.find('"', text.find(':', ipos));
    const std::size_t q2 = q1 == std::string::npos ? q1 : text.find('"', q1 + 1);
    if (q2 == std::string::npos) return fail("malformed isa");
    const auto parsed = parse_isa(text.substr(q1 + 1, q2 - q1 - 1));
    if (!parsed) return fail("unknown isa \"" + text.substr(q1 + 1, q2 - q1 - 1) + "\"");
    p.isa = *parsed;
  }

  for (int t = 0; t < 4; ++t) {
    const std::string key = std::string("\"") + kTypeKeys[t] + "\"";
    const std::size_t spos = text.find(key);
    if (spos == std::string::npos) return fail(std::string("missing shape ") + kTypeKeys[t]);
    const std::size_t open = text.find('{', spos);
    const std::size_t close = open == std::string::npos ? open : text.find('}', open);
    if (close == std::string::npos) return fail(std::string("malformed shape ") + kTypeKeys[t]);
    KernelShape& s = p.shapes[t];
    double v = 0.0;
    struct Field {
      const char* key;
      bool integral;
    };
    const Field fields[] = {{"mr", true},    {"nr", true},    {"kc", true},     {"mc", true},
                            {"nc", true},    {"min_m", true}, {"min_mnk", false}};
    for (const Field& fld : fields) {
      if (!scan_number(text, open, close, fld.key, &v))
        return fail(std::string(kTypeKeys[t]) + ": missing field " + fld.key);
      if (fld.integral && v != std::floor(v))
        return fail(std::string(kTypeKeys[t]) + ": non-integral " + fld.key);
      if (std::strcmp(fld.key, "mr") == 0) s.mr = static_cast<int>(v);
      else if (std::strcmp(fld.key, "nr") == 0) s.nr = static_cast<int>(v);
      else if (std::strcmp(fld.key, "kc") == 0) s.kc = static_cast<index_t>(v);
      else if (std::strcmp(fld.key, "mc") == 0) s.mc = static_cast<index_t>(v);
      else if (std::strcmp(fld.key, "nc") == 0) s.nc = static_cast<index_t>(v);
      else if (std::strcmp(fld.key, "min_m") == 0) s.min_m = static_cast<index_t>(v);
      else s.min_mnk = v;
    }
  }

  std::string vwhy;
  if (!validate_profile(p, &vwhy)) return fail("invalid profile: " + vwhy);
  return p;
}

// ---------------------------------------------------------------------------
// Measurement primitive
// ---------------------------------------------------------------------------

template <typename T>
double benchmark_shape(const KernelShape& shape, index_t n, int reps) {
  require(n >= 1 && reps >= 1, "benchmark_shape: bad arguments");
  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<T> a(nn), b(nn), c(nn);
  Rng rng(42);
  fill_general(rng, a.data(), n, n, n);
  fill_general(rng, b.data(), n, n, n);
  ConstMatrixView<T> av(a.data(), n, n, n);
  ConstMatrixView<T> bv(b.data(), n, n, n);
  MatrixView<T> cv(c.data(), n, n, n);

  const double flops = (is_complex_v<T> ? 8.0 : 2.0) * static_cast<double>(n) *
                       static_cast<double>(n) * static_cast<double>(n);
  auto call = [&] {
    gemm_blocked_shaped<T>(Trans::NoTrans, Trans::Trans, T(1), av, bv, T(0), cv, shape);
  };
  call();  // warm the packing buffers and the instruction cache

  const int inner = std::clamp(static_cast<int>(2e7 / std::max(flops, 1.0)), 1, 4096);
  auto now = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now();
    for (int i = 0; i < inner; ++i) call();
    best = std::min(best, (now() - t0) / inner);
  }
  return flops / best * 1e-9;
}

template double benchmark_shape<float>(const KernelShape&, index_t, int);
template double benchmark_shape<double>(const KernelShape&, index_t, int);
template double benchmark_shape<std::complex<float>>(const KernelShape&, index_t, int);
template double benchmark_shape<std::complex<double>>(const KernelShape&, index_t, int);

}  // namespace vbatch::blas::micro
