#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

// Unblocked in-place triangular inversion (LAPACK xTRTI2 algorithm). The
// vbatched trsm of §III-E.2 inverts 32×32 diagonal blocks with exactly this
// routine before applying gemm updates.
template <typename T>
int trtri(Uplo uplo, Diag diag, MatrixView<T> a) {
  const index_t n = a.rows();
  require(a.cols() == n, "trtri: A must be square");
  const bool unit = diag == Diag::Unit;

  if (!unit) {
    for (index_t i = 0; i < n; ++i)
      if (a(i, i) == T(0)) return static_cast<int>(i) + 1;
  }

  if (uplo == Uplo::Lower) {
    for (index_t j = n - 1; j >= 0; --j) {
      const T ajj_inv = unit ? T(1) : T(1) / a(j, j);
      if (!unit) a(j, j) = ajj_inv;
      // Compute column j below the diagonal: x = -inv(A22) * a21 * ajj_inv,
      // where A22 (rows/cols > j) is already inverted.
      for (index_t i = n - 1; i > j; --i) {
        T sum = unit ? a(i, j) : a(i, i) * a(i, j);
        for (index_t l = j + 1; l < i; ++l) sum += a(i, l) * a(l, j);
        a(i, j) = -sum * ajj_inv;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T ajj_inv = unit ? T(1) : T(1) / a(j, j);
      if (!unit) a(j, j) = ajj_inv;
      for (index_t i = 0; i < j; ++i) {
        T sum = unit ? a(i, j) : a(i, i) * a(i, j);
        for (index_t l = i + 1; l < j; ++l) sum += a(i, l) * a(l, j);
        a(i, j) = -sum * ajj_inv;
      }
    }
  }
  return 0;
}

// Unblocked xLAUU2: in-place Lᵀ·L (Lower) or U·Uᵀ (Upper). The traversal
// order is chosen so every partial product reads only not-yet-overwritten
// entries (see LAPACK's lauu2).
template <typename T>
void lauum(Uplo uplo, MatrixView<T> a) {
  const index_t n = a.rows();
  require(a.cols() == n, "lauum: A must be square");

  if (uplo == Uplo::Lower) {
    // R(i, j) = Σ_{k ≥ i} conj(L(k, i)) · L(k, j), rows ascending; the
    // diagonal of each row is written last (it feeds the off-diagonal sums).
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < i; ++j) {
        T sum = T(0);
        for (index_t k = i; k < n; ++k) sum += conj_val(a(k, i)) * a(k, j);
        a(i, j) = sum;
      }
      T diag = T(0);
      for (index_t k = i; k < n; ++k) diag += conj_val(a(k, i)) * a(k, i);
      a(i, i) = diag;
    }
  } else {
    // R(i, j) = Σ_{k ≥ j} U(i, k) · conj(U(j, k)), rows ascending, columns
    // ascending within each row.
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i; j < n; ++j) {
        T sum = T(0);
        for (index_t k = j; k < n; ++k) sum += a(i, k) * conj_val(a(j, k));
        a(i, j) = sum;
      }
    }
  }
}

template <typename T>
int potri(Uplo uplo, MatrixView<T> a) {
  const int info = trtri<T>(uplo, Diag::NonUnit, a);
  if (info != 0) return info;
  lauum<T>(uplo, a);
  return 0;
}

template int trtri<float>(Uplo, Diag, MatrixView<float>);
template int trtri<double>(Uplo, Diag, MatrixView<double>);
template void lauum<float>(Uplo, MatrixView<float>);
template void lauum<double>(Uplo, MatrixView<double>);
template int potri<float>(Uplo, MatrixView<float>);
template int potri<double>(Uplo, MatrixView<double>);
template int trtri<std::complex<float>>(Uplo, Diag, MatrixView<std::complex<float>>);
template int trtri<std::complex<double>>(Uplo, Diag, MatrixView<std::complex<double>>);
template void lauum<std::complex<float>>(Uplo, MatrixView<std::complex<float>>);
template void lauum<std::complex<double>>(Uplo, MatrixView<std::complex<double>>);
template int potri<std::complex<float>>(Uplo, MatrixView<std::complex<float>>);
template int potri<std::complex<double>>(Uplo, MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
