#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Generates a Householder reflector for the vector (alpha, x): computes tau
// and v (stored over x) such that H = I - tau v vᵀ annihilates x (xLARFG).
template <typename T>
void larfg(T& alpha, std::span<T> x, T& tau) {
  T xnorm = T(0);
  for (const T& v : x) xnorm += v * v;
  if (xnorm == T(0)) {
    tau = T(0);
    return;
  }
  const T beta = -std::copysign(std::sqrt(alpha * alpha + xnorm), alpha);
  tau = (beta - alpha) / beta;
  const T inv = T(1) / (alpha - beta);
  for (T& v : x) v *= inv;
  alpha = beta;
}

// Applies H = I - tau v vᵀ from the left to C, where v = (1, x) and C is
// (1 + x.size()) × n stored as the row `row0` plus the block below it.
template <typename T>
void larf_left(T tau, std::span<const T> x, MatrixView<T> c) {
  if (tau == T(0)) return;
  const index_t m = c.rows();
  const index_t n = c.cols();
  for (index_t j = 0; j < n; ++j) {
    // w = vᵀ C(:, j)
    T w = c(0, j);
    for (index_t i = 1; i < m; ++i) w += x[static_cast<std::size_t>(i - 1)] * c(i, j);
    w *= tau;
    c(0, j) -= w;
    for (index_t i = 1; i < m; ++i) c(i, j) -= x[static_cast<std::size_t>(i - 1)] * w;
  }
}

}  // namespace

template <typename T>
void geqr2(MatrixView<T> a, std::span<T> tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t mn = std::min(m, n);
  require(std::cmp_greater_equal(tau.size(), mn), "geqr2: tau too small");

  for (index_t j = 0; j < mn; ++j) {
    std::span<T> x{&a(0, 0) + (j + 1) + j * a.ld(), static_cast<std::size_t>(m - j - 1)};
    larfg(a(j, j), x, tau[static_cast<std::size_t>(j)]);
    if (j + 1 < n) {
      larf_left<T>(tau[static_cast<std::size_t>(j)],
                   std::span<const T>{x.data(), x.size()},
                   a.block(j, j + 1, m - j, n - j - 1));
    }
  }
}

// Blocked QR: factor nb columns unblocked, then apply the block of
// reflectors to the trailing columns one reflector at a time. (A full
// compact-WY larft/larfb would batch the update; reflector-at-a-time is
// numerically identical and keeps the reference simple.)
template <typename T>
void geqrf(MatrixView<T> a, std::span<T> tau, index_t nb) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t mn = std::min(m, n);
  require(std::cmp_greater_equal(tau.size(), mn), "geqrf: tau too small");
  if (mn <= nb) {
    geqr2(a, tau);
    return;
  }
  for (index_t j = 0; j < mn; j += nb) {
    const index_t jb = std::min(nb, mn - j);
    geqr2(a.block(j, j, m - j, jb), tau.subspan(static_cast<std::size_t>(j)));
    if (j + jb < n) {
      for (index_t k = 0; k < jb; ++k) {
        const index_t col = j + k;
        std::span<const T> x{&a(0, 0) + (col + 1) + col * a.ld(),
                             static_cast<std::size_t>(m - col - 1)};
        larf_left<T>(tau[static_cast<std::size_t>(col)], x,
                     a.block(col, j + jb, m - col, n - j - jb));
      }
    }
  }
}

template <typename T>
void orgqr(MatrixView<T> a, std::span<const T> tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = static_cast<index_t>(tau.size());
  require(n <= m && k <= n, "orgqr: invalid dimensions");

  // Initialise the trailing columns to identity columns, then accumulate
  // H(1)·…·H(k)·I from the last reflector backwards (xORG2R algorithm).
  std::vector<T> v(static_cast<std::size_t>(m));
  for (index_t j = k; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) a(i, j) = T(0);
    a(j, j) = T(1);
  }
  for (index_t j = k - 1; j >= 0; --j) {
    const T tj = tau[static_cast<std::size_t>(j)];
    // Save v = (1, a(j+1: m, j)).
    v[static_cast<std::size_t>(j)] = T(1);
    for (index_t i = j + 1; i < m; ++i) v[static_cast<std::size_t>(i)] = a(i, j);
    // Column j becomes H(j) e_j.
    for (index_t i = 0; i < m; ++i) a(i, j) = T(0);
    a(j, j) = T(1);
    if (tj != T(0)) {
      for (index_t c = j; c < n; ++c) {
        T w = T(0);
        for (index_t i = j; i < m; ++i) w += v[static_cast<std::size_t>(i)] * a(i, c);
        w *= tj;
        for (index_t i = j; i < m; ++i) a(i, c) -= v[static_cast<std::size_t>(i)] * w;
      }
    }
  }
}

template void geqr2<float>(MatrixView<float>, std::span<float>);
template void geqr2<double>(MatrixView<double>, std::span<double>);
template void geqrf<float>(MatrixView<float>, std::span<float>, index_t);
template void geqrf<double>(MatrixView<double>, std::span<double>, index_t);
template void orgqr<float>(MatrixView<float>, std::span<const float>);
template void orgqr<double>(MatrixView<double>, std::span<const double>);

}  // namespace vbatch::blas
