#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  require(c.cols() == n, "syrk: C must be square");
  const index_t k = trans == Trans::NoTrans ? a.cols() : a.rows();
  require((trans == Trans::NoTrans ? a.rows() : a.cols()) == n, "syrk: op(A) rows != n");

  auto in_triangle = [uplo](index_t i, index_t j) {
    return uplo == Uplo::Lower ? i >= j : i <= j;
  };

  // For complex scalars this is the herk operation (C = α·op(A)·op(A)ᴴ +
  // β·C), following the library's Hermitian convention.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      if (!in_triangle(i, j)) continue;
      T sum = T(0);
      if (trans == Trans::NoTrans) {
        for (index_t l = 0; l < k; ++l) sum += a(i, l) * conj_val(a(j, l));
      } else {
        for (index_t l = 0; l < k; ++l) sum += conj_val(a(l, i)) * a(l, j);
      }
      c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

template void syrk<float>(Uplo, Trans, float, ConstMatrixView<float>, float, MatrixView<float>);
template void syrk<double>(Uplo, Trans, double, ConstMatrixView<double>, double,
                           MatrixView<double>);
template void syrk<std::complex<float>>(Uplo, Trans, std::complex<float>,
                                        ConstMatrixView<std::complex<float>>,
                                        std::complex<float>, MatrixView<std::complex<float>>);
template void syrk<std::complex<double>>(Uplo, Trans, std::complex<double>,
                                         ConstMatrixView<std::complex<double>>,
                                         std::complex<double>,
                                         MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
