#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Width of the diagonal blocks the blocked path hands to syrk_ref; the
// off-diagonal rectangles (the bulk of the triangle) go through the packed
// gemm engine.
constexpr index_t kSyrkDiagBlock = 32;

template <typename T>
void syrk_check(Trans trans, ConstMatrixView<T> a, MatrixView<T> c) {
  const index_t n = c.rows();
  require(c.cols() == n, "syrk: C must be square");
  require((trans == Trans::NoTrans ? a.rows() : a.cols()) == n, "syrk: op(A) rows != n");
}

// Blocked path: partition the triangle into kSyrkDiagBlock-wide block
// columns (Lower) / block rows (Upper); diagonal blocks keep the reference
// semantics (including the real diagonal accumulation), rectangles become
// gemm calls that the micro-kernel engine accelerates. Each C element is
// touched exactly once, so alpha/beta semantics match syrk_ref.
template <typename T>
void syrk_blocked(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta,
                  MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = trans == Trans::NoTrans ? a.cols() : a.rows();

  // For NoTrans diagonal blocks the reference loops would read jb rows of A
  // with leading-dimension stride across the whole k range; repacking the
  // row slab as its conjugate transpose makes both factors unit-stride and
  // sums exactly the same terms in the same order (bit-identical result).
  std::vector<T> slab;
  if (trans == Trans::NoTrans) slab.resize(static_cast<std::size_t>(k * kSyrkDiagBlock));

  for (index_t j = 0; j < n; j += kSyrkDiagBlock) {
    const index_t jb = std::min(kSyrkDiagBlock, n - j);

    auto diag = c.block(j, j, jb, jb);
    if (trans == Trans::NoTrans) {
      for (index_t r = 0; r < jb; ++r)
        for (index_t l = 0; l < k; ++l)
          slab[static_cast<std::size_t>(l + r * k)] = conj_val(a(j + r, l));
      syrk_ref<T>(uplo, Trans::Trans, alpha, ConstMatrixView<T>(slab.data(), k, jb, k), beta,
                  diag);
    } else {
      syrk_ref<T>(uplo, Trans::Trans, alpha, a.block(0, j, k, jb), beta, diag);
    }

    if (uplo == Uplo::Lower) {
      const index_t rem = n - j - jb;
      if (rem > 0) {
        if (trans == Trans::NoTrans) {
          gemm<T>(Trans::NoTrans, Trans::Trans, alpha, a.block(j + jb, 0, rem, k),
                  a.block(j, 0, jb, k), beta, c.block(j + jb, j, rem, jb));
        } else {
          gemm<T>(Trans::Trans, Trans::NoTrans, alpha, a.block(0, j + jb, k, rem),
                  a.block(0, j, k, jb), beta, c.block(j + jb, j, rem, jb));
        }
      }
    } else {
      if (j > 0) {
        if (trans == Trans::NoTrans) {
          gemm<T>(Trans::NoTrans, Trans::Trans, alpha, a.block(0, 0, j, k),
                  a.block(j, 0, jb, k), beta, c.block(0, j, j, jb));
        } else {
          gemm<T>(Trans::Trans, Trans::NoTrans, alpha, a.block(0, 0, k, j),
                  a.block(0, j, k, jb), beta, c.block(0, j, j, jb));
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void syrk_ref(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) {
  syrk_check(trans, a, c);
  const index_t n = c.rows();
  const index_t k = trans == Trans::NoTrans ? a.cols() : a.rows();

  auto in_triangle = [uplo](index_t i, index_t j) {
    return uplo == Uplo::Lower ? i >= j : i <= j;
  };

  // For complex scalars this is the herk operation (C = α·op(A)·op(A)ᴴ +
  // β·C), following the library's Hermitian convention. The diagonal of
  // op(A)·op(A)ᴴ is mathematically real, so it is accumulated as a real
  // scalar — no rounding-level (or FMA-contraction) imaginary residue is
  // ever left on c(i, i).
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      if (!in_triangle(i, j)) continue;
      T sum = T(0);
      if (i == j) {
        real_t<T> diag_sum(0);
        if (trans == Trans::NoTrans) {
          for (index_t l = 0; l < k; ++l) diag_sum += real_val(a(i, l) * conj_val(a(i, l)));
        } else {
          for (index_t l = 0; l < k; ++l) diag_sum += real_val(conj_val(a(l, i)) * a(l, i));
        }
        sum = T(diag_sum);
      } else if (trans == Trans::NoTrans) {
        for (index_t l = 0; l < k; ++l) sum += a(i, l) * conj_val(a(j, l));
      } else {
        for (index_t l = 0; l < k; ++l) sum += conj_val(a(l, i)) * a(l, j);
      }
      c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) {
  syrk_check(trans, a, c);
  const index_t n = c.rows();
  const index_t k = trans == Trans::NoTrans ? a.cols() : a.rows();

  const micro::Dispatch d = micro::dispatch();
  const bool blocked =
      d == micro::Dispatch::ForceBlocked ||
      (d == micro::Dispatch::Auto && n > kSyrkDiagBlock && micro::use_blocked<T>(n, n, k));
  if (blocked && n > 0 && alpha != T(0) && k > 0) {
    syrk_blocked(uplo, trans, alpha, a, beta, c);
  } else {
    syrk_ref(uplo, trans, alpha, a, beta, c);
  }
}

#define VBATCH_INSTANTIATE_SYRK(T)                                                     \
  template void syrk<T>(Uplo, Trans, T, ConstMatrixView<T>, T, MatrixView<T>);         \
  template void syrk_ref<T>(Uplo, Trans, T, ConstMatrixView<T>, T, MatrixView<T>)

VBATCH_INSTANTIATE_SYRK(float);
VBATCH_INSTANTIATE_SYRK(double);
VBATCH_INSTANTIATE_SYRK(std::complex<float>);
VBATCH_INSTANTIATE_SYRK(std::complex<double>);

#undef VBATCH_INSTANTIATE_SYRK

}  // namespace vbatch::blas
