// AVX-512F tiles (512-bit). Compiled with -mavx512f only where the compiler
// supports it (VBATCH_HAVE_AVX512_TU); selected exclusively when the user
// opts in via VBATCH_ISA=avx512 / --isa avx512 on a host whose cpuid reports
// avx512f — detect_isa() never auto-picks it (frequency-license throttling
// makes 512-bit a measured choice, see docs/blas.md).
#include "vbatch/blas/microkernel_tile.hpp"

namespace vbatch::blas::micro::detail {

namespace {

// float W=16 → MR ∈ {16, 32, 48}; double W=8 → MR ∈ {8, 16, 24}.
const KernelEntry kEntries[] = {
    VBATCH_TILE_FAMILY(Isa::Avx512, float, 16),
    VBATCH_TILE_FAMILY(Isa::Avx512, double, 8),
};

}  // namespace

std::span<const KernelEntry> kernels_avx512() noexcept { return kEntries; }

}  // namespace vbatch::blas::micro::detail
