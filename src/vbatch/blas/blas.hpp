// Host reference BLAS/LAPACK kernels (templated on float/double).
//
// These are straightforward, cache-friendly reference implementations; they
// serve three roles in the reproduction:
//   1. the numerical payload executed by the simulated device kernels
//      (vbatch/kernels) — the simulator models *time*, the math is real;
//   2. the CPU baselines of §IV-F (through vbatch/cpu/mkl_compat);
//   3. the oracle used by the test suite.
//
// All matrices are column-major MatrixView<T>; `info`-style return codes
// follow LAPACK conventions (0 = success, i > 0 = numerical breakdown at
// the i-th step, matching xPOTRF/xGETRF semantics).
#pragma once

#include <span>

#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::blas {

// ---------------------------------------------------------------------------
// Level-3 BLAS
// ---------------------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
/// op(A) is m×k, op(B) is k×n, C is m×n; dimensions are validated.
/// Above a small-size cutoff the work runs through the packed register-tiled
/// engine in microkernel.hpp; below it (or under Dispatch::ForceRef) the
/// reference loops of gemm_ref are used.
template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c);

/// Reference (unblocked) gemm: the oracle the conformance suite compares the
/// micro-kernel engine against. Same semantics as gemm, element-at-a-time.
template <typename T>
void gemm_ref(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              T beta, MatrixView<T> c);

/// C = alpha * op(A) * op(A)ᵀ + beta * C, updating only the `uplo` triangle
/// of the n×n matrix C. op(A) is n×k. For complex scalars this is herk
/// (op(A)·op(A)ᴴ) and the diagonal is kept exactly real. Large triangles
/// dispatch their off-diagonal rectangles through the micro-kernel engine.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c);

/// Reference (unblocked) syrk/herk; the testing oracle.
template <typename T>
void syrk_ref(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c);

/// Solves op(A) * X = alpha * B (Left) or X * op(A) = alpha * B (Right)
/// where A is triangular; B is overwritten with X. Large triangles recurse
/// into gemm updates on the micro-kernel engine.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// Reference (unblocked) trsm; the testing oracle.
template <typename T>
void trsm_ref(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
              MatrixView<T> b);

/// B = alpha * op(A) * B (Left) or B = alpha * B * op(A) (Right), A
/// triangular. Large triangles recurse into micro-kernel gemm updates.
template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// Reference (unblocked) trmm; the testing oracle.
template <typename T>
void trmm_ref(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
              MatrixView<T> b);

// ---------------------------------------------------------------------------
// LAPACK-style factorizations
// ---------------------------------------------------------------------------

/// In-place inversion of a triangular matrix. Returns 0, or i (1-based) if
/// A(i-1,i-1) is exactly zero.
template <typename T>
int trtri(Uplo uplo, Diag diag, MatrixView<T> a);

/// Unblocked Cholesky (LAPACK xPOTF2). Returns 0 on success or the 1-based
/// index of the first non-positive pivot.
template <typename T>
int potf2(Uplo uplo, MatrixView<T> a);

/// Blocked Cholesky (LAPACK xPOTRF) with block size nb.
template <typename T>
int potrf(Uplo uplo, MatrixView<T> a, index_t nb = 64);

/// Unblocked LU with partial pivoting (xGETF2). ipiv is 1-based like LAPACK.
template <typename T>
int getf2(MatrixView<T> a, std::span<int> ipiv);

/// Blocked LU with partial pivoting (xGETRF).
template <typename T>
int getrf(MatrixView<T> a, std::span<int> ipiv, index_t nb = 64);

/// Row interchanges: applies ipiv[k1..k2) to the rows of A (xLASWP).
template <typename T>
void laswp(MatrixView<T> a, std::span<const int> ipiv, index_t k1, index_t k2);

/// Unblocked Householder QR (xGEQR2). tau receives min(m,n) reflectors.
template <typename T>
void geqr2(MatrixView<T> a, std::span<T> tau);

/// Blocked Householder QR (xGEQRF).
template <typename T>
void geqrf(MatrixView<T> a, std::span<T> tau, index_t nb = 32);

/// Forms the m×n leading part of Q from a geqrf factorization (xORGQR,
/// unblocked). `a` holds the reflectors on input, Q on output.
template <typename T>
void orgqr(MatrixView<T> a, std::span<const T> tau);

/// Triangular solve after potrf: solves A X = B with A = L·Lᵀ (or UᵀU).
template <typename T>
void potrs(Uplo uplo, ConstMatrixView<T> a, MatrixView<T> b);

/// Computes Lᵀ·L (Lower) or U·Uᵀ (Upper) in place (LAPACK xLAUUM,
/// unblocked xLAUU2 algorithm) — the second half of the Cholesky-based
/// inversion xPOTRI.
template <typename T>
void lauum(Uplo uplo, MatrixView<T> a);

/// Inverse from the Cholesky factor (xPOTRI): overwrites the `uplo`
/// triangle of the factor with the same triangle of A⁻¹. Returns 0 or the
/// 1-based index of a zero diagonal element.
template <typename T>
int potri(Uplo uplo, MatrixView<T> a);

// ---------------------------------------------------------------------------
// Norms & residuals
// ---------------------------------------------------------------------------

/// Frobenius norm of a general matrix.
template <typename T>
double norm_fro(ConstMatrixView<T> a);

/// Maximum absolute entry.
template <typename T>
double norm_max(ConstMatrixView<T> a);

/// Relative Cholesky residual ‖A − L·Lᵀ‖_F / (n·‖A‖_F) for Lower, or
/// ‖A − Uᵀ·U‖_F / (n·‖A‖_F) for Upper. `a_orig` is the matrix before the
/// factorization, `factor` the triangle written by potrf.
template <typename T>
double potrf_residual(Uplo uplo, ConstMatrixView<T> a_orig, ConstMatrixView<T> factor);

/// Relative LU residual ‖P·A − L·U‖_F / (n·‖A‖_F).
template <typename T>
double getrf_residual(ConstMatrixView<T> a_orig, ConstMatrixView<T> lu,
                      std::span<const int> ipiv);

/// Relative QR residual ‖A − Q·R‖_F / (n·‖A‖_F).
template <typename T>
double geqrf_residual(ConstMatrixView<T> a_orig, ConstMatrixView<T> qr, std::span<const T> tau);

}  // namespace vbatch::blas
