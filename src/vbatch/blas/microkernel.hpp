// Register/cache-blocked micro-kernel engine for the host BLAS layer.
//
// The reference loops in gemm.cpp / syrk.cpp / trsm.cpp / trmm.cpp are
// element-at-a-time and memory-bound; every real-numerics path of the
// library (fused-step rank-k updates, the separated-path gemm sweeps, the
// CPU baselines) funnels through them. This engine provides the classic
// GotoBLAS/BLIS decomposition instead:
//
//   * the operands are packed into thread-local, zero-padded panels —
//     op(A) into MR-row slivers, op(B) into NR-column slivers — so the
//     innermost loops read contiguous, unit-stride memory regardless of
//     the caller's leading dimensions or transposition flags;
//   * an MR×NR register tile accumulates KC-long rank-1 updates. The tile
//     is an explicitly vectorized kernel selected at runtime from the
//     per-ISA tables (isa.hpp: SSE2/NEON, AVX2+FMA, AVX-512F) with a
//     scalar fallback that reproduces the original engine bit for bit;
//   * the m/n/k loops are blocked by MC/KC/NC so the packed A block stays
//     L2-resident and each packed B sliver stays L1-resident. The m and n
//     ranges are split into *balanced*, tile-aligned chunks (never a
//     degenerate tail chunk — the former n=512 NC-tail dip), while the k
//     range keeps the greedy KC split because the k-split order is what
//     fixes the floating-point accumulation order.
//
// All four trans combinations reduce to the same packed core (packing
// applies the transposition and, for complex scalars, the library's
// conjugate convention: Trans on a complex operand means Aᴴ). Arbitrary
// m, n, k are handled by zero-padding partial slivers and masking the
// write-back, so the engine is exact for every size including 0 and 1.
//
// Blocking depths and the register tile are no longer compile-time: the
// engine reads the active TuningProfile (tuning.hpp), which defaults per
// ISA and can be measured by the cache-hierarchy autotuner
// (core/autotune.hpp) and persisted across runs. For a fixed
// (ISA, profile) pair the results are bit-reproducible.
//
// Dispatch policy lives here too: blas::gemm and friends call the engine
// above a small-size cutoff (`use_blocked`, itself profile-driven) and
// fall back to the *_ref loops below it. Tests and benches can pin either
// path via set_dispatch. See docs/blas.md for the tuning story.
#pragma once

#include <vector>

#include "vbatch/blas/tuning.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::blas::micro {

/// The PR 2 compile-time blocking constants, kept as the *scalar anchor*:
/// `TuningProfile::defaults(Isa::Scalar)` equals these values, and the
/// scalar tile accumulates in exactly the order the original engine did, so
/// `VBATCH_ISA=scalar` (or `--isa scalar`) reproduces historical results
/// bit for bit. New code should read the active profile instead.
template <typename T>
struct Tiling;

template <>
struct Tiling<float> {
  static constexpr int MR = 8, NR = 4;
  static constexpr index_t KC = 256, MC = 128, NC = 512;
};
template <>
struct Tiling<double> {
  static constexpr int MR = 4, NR = 4;
  static constexpr index_t KC = 256, MC = 128, NC = 256;
};
template <>
struct Tiling<std::complex<float>> {
  static constexpr int MR = 4, NR = 2;
  static constexpr index_t KC = 128, MC = 96, NC = 256;
};
template <>
struct Tiling<std::complex<double>> {
  static constexpr int MR = 2, NR = 2;
  static constexpr index_t KC = 128, MC = 96, NC = 256;
};

/// Which implementation the public blas::gemm/syrk/trsm/trmm entry points
/// select. Auto applies the `use_blocked` cutoff; ForceRef / ForceBlocked pin
/// one path (used by the conformance suite and the wallclock_blas bench).
enum class Dispatch : int { Auto, ForceRef, ForceBlocked };

/// Sets the process-wide dispatch mode. Not meant to be toggled while
/// kernels are in flight on the worker pool.
void set_dispatch(Dispatch d) noexcept;
[[nodiscard]] Dispatch dispatch() noexcept;

/// RAII guard pinning the dispatch mode for a scope (tests/benches).
class DispatchGuard {
 public:
  explicit DispatchGuard(Dispatch d) noexcept : prev_(dispatch()) { set_dispatch(d); }
  ~DispatchGuard() { set_dispatch(prev_); }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  Dispatch prev_;
};

/// Cutoff policy: true when the packed engine is expected to beat the
/// reference loops for a gemm-shaped problem of the given extents. Below the
/// cutoff the packing traffic (m·k + k·n writes) is not amortized by the
/// 2·m·n·k flops. The thresholds come from the active profile (min_m,
/// min_mnk), so an autotuned profile moves the crossover with the tile.
template <typename T>
[[nodiscard]] inline bool use_blocked(index_t m, index_t n, index_t k) noexcept {
  const KernelShape& s = shape_of<T>(active_profile());
  return m >= s.min_m && n >= 4 && k >= 8 &&
         static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) >= s.min_mnk;
}

/// C = alpha·op(A)·op(B) + beta·C through the packed core with an explicit
/// blocking shape — the autotuner's sweep primitive. `shape` must satisfy
/// validate_profile bounds (mr ≤ kMaxMR, nr ≤ kMaxNR); the register tile is
/// the best compiled kernel for (active ISA, T, mr, nr), falling back to a
/// runtime-shaped scalar tile with the same accumulation order.
template <typename T>
void gemm_blocked_shaped(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                         ConstMatrixView<T> b, T beta, MatrixView<T> c, const KernelShape& shape);

/// C = alpha·op(A)·op(B) + beta·C using the active profile's shape for T.
/// Dimensions must already be validated (blas::gemm does); any m, n, k ≥ 0
/// is handled.
template <typename T>
void gemm_blocked(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c);

/// One register-tile shape a compiled kernel exists for.
struct TilePair {
  int mr, nr;
};

/// The (mr, nr) tiles reachable for scalar type T under `isa` — the union of
/// the ISA's own table and every fallback table below it, deduplicated. The
/// autotuner restricts its sweep to this set (plus the generic tile's
/// arbitrary shapes); tests use it to cover every compiled kernel.
template <typename T>
[[nodiscard]] std::vector<TilePair> supported_tiles(Isa isa);

}  // namespace vbatch::blas::micro
