// Register/cache-blocked micro-kernel engine for the host BLAS layer.
//
// The reference loops in gemm.cpp / syrk.cpp / trsm.cpp / trmm.cpp are
// element-at-a-time and memory-bound; every real-numerics path of the
// library (fused-step rank-k updates, the separated-path gemm sweeps, the
// CPU baselines) funnels through them. This engine provides the classic
// GotoBLAS/BLIS decomposition instead:
//
//   * the operands are packed into thread-local, zero-padded panels —
//     op(A) into MR-row slivers, op(B) into NR-column slivers — so the
//     innermost loops read contiguous, unit-stride memory regardless of
//     the caller's leading dimensions or transposition flags;
//   * an MR×NR register tile accumulates KC-long rank-1 updates with
//     compile-time bounds, which the compiler unrolls and auto-vectorizes;
//   * the m/n/k loops are blocked by MC/KC/NC so the packed A block stays
//     L2-resident and each packed B sliver stays L1-resident.
//
// All four trans combinations reduce to the same packed core (packing
// applies the transposition and, for complex scalars, the library's
// conjugate convention: Trans on a complex operand means Aᴴ). Arbitrary
// m, n, k are handled by zero-padding partial slivers and masking the
// write-back, so the engine is exact for every size including 0 and 1.
//
// Dispatch policy lives here too: blas::gemm and friends call the engine
// above a small-size cutoff (`use_blocked`) and fall back to the *_ref
// loops below it. Tests and benches can pin either path via set_dispatch.
// See docs/blas.md for the tiling parameters and how to retune them.
#pragma once

#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::blas::micro {

/// Blocking parameters per scalar type. MR×NR is the register tile; KC/MC/NC
/// are the cache-blocking depths (see docs/blas.md for the sizing rationale).
template <typename T>
struct Tiling;

template <>
struct Tiling<float> {
  static constexpr int MR = 8, NR = 4;
  static constexpr index_t KC = 256, MC = 128, NC = 512;
};
template <>
struct Tiling<double> {
  static constexpr int MR = 4, NR = 4;
  static constexpr index_t KC = 256, MC = 128, NC = 256;
};
template <>
struct Tiling<std::complex<float>> {
  static constexpr int MR = 4, NR = 2;
  static constexpr index_t KC = 128, MC = 96, NC = 256;
};
template <>
struct Tiling<std::complex<double>> {
  static constexpr int MR = 2, NR = 2;
  static constexpr index_t KC = 128, MC = 96, NC = 256;
};

/// Which implementation the public blas::gemm/syrk/trsm/trmm entry points
/// select. Auto applies the `use_blocked` cutoff; ForceRef / ForceBlocked pin
/// one path (used by the conformance suite and the wallclock_blas bench).
enum class Dispatch : int { Auto, ForceRef, ForceBlocked };

/// Sets the process-wide dispatch mode. Not meant to be toggled while
/// kernels are in flight on the worker pool.
void set_dispatch(Dispatch d) noexcept;
[[nodiscard]] Dispatch dispatch() noexcept;

/// RAII guard pinning the dispatch mode for a scope (tests/benches).
class DispatchGuard {
 public:
  explicit DispatchGuard(Dispatch d) noexcept : prev_(dispatch()) { set_dispatch(d); }
  ~DispatchGuard() { set_dispatch(prev_); }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  Dispatch prev_;
};

/// Cutoff policy: true when the packed engine is expected to beat the
/// reference loops for a gemm-shaped problem of the given extents. Below the
/// cutoff the packing traffic (m·k + k·n writes) is not amortized by the
/// 2·m·n·k flops.
template <typename T>
[[nodiscard]] constexpr bool use_blocked(index_t m, index_t n, index_t k) noexcept {
  return m >= Tiling<T>::MR && n >= 4 && k >= 8 &&
         static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) >= 4096.0;
}

/// C = alpha·op(A)·op(B) + beta·C through the packed MR×NR core. Dimensions
/// must already be validated (blas::gemm does); any m, n, k ≥ 0 is handled.
template <typename T>
void gemm_blocked(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c);

}  // namespace vbatch::blas::micro
