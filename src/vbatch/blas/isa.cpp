#include "vbatch/blas/isa.hpp"

#include <cstdio>
#include <cstdlib>

namespace vbatch::blas::micro {

namespace detail {

Isa clamp_isa(Isa i) noexcept {
  // Preference order within each architecture family; walking down from the
  // request always ends at Scalar, which every host supports.
  while (!isa_supported(i)) {
    switch (i) {
      case Isa::Avx512: i = Isa::Avx2; break;
      case Isa::Avx2: i = Isa::Sse2; break;
      case Isa::Neon: i = Isa::Sse2; break;  // cross-family request on x86
      case Isa::Sse2:
#if defined(__aarch64__)
        i = Isa::Neon;
        break;
#else
        i = Isa::Scalar;
        break;
#endif
      case Isa::Scalar: return Isa::Scalar;
    }
  }
  return i;
}

Isa initial_isa() noexcept {
  if (const char* env = std::getenv("VBATCH_ISA"); env && env[0] != '\0') {
    if (const auto parsed = parse_isa(env)) {
      const Isa got = clamp_isa(*parsed);
      if (got != *parsed)
        std::fprintf(stderr, "vbatch: VBATCH_ISA=%s not supported on this host, using %s\n",
                     env, to_string(got));
      return got;
    }
    std::fprintf(stderr,
                 "vbatch: ignoring unknown VBATCH_ISA=%s "
                 "(expected scalar|sse2|neon|avx2|avx512)\n",
                 env);
  }
  return detect_isa();
}

}  // namespace detail

std::optional<Isa> parse_isa(std::string_view name) noexcept {
  if (name == "scalar") return Isa::Scalar;
  if (name == "sse2") return Isa::Sse2;
  if (name == "neon") return Isa::Neon;
  if (name == "avx2") return Isa::Avx2;
  if (name == "avx512") return Isa::Avx512;
  return std::nullopt;
}

bool isa_supported(Isa i) noexcept {
  switch (i) {
    case Isa::Scalar: return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse2: return true;  // baseline on x86-64
    case Isa::Avx2: return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::Avx512: return __builtin_cpu_supports("avx512f");
    case Isa::Neon: return false;
#elif defined(__aarch64__)
    case Isa::Neon: return true;  // mandatory in AArch64
    case Isa::Sse2:
    case Isa::Avx2:
    case Isa::Avx512: return false;
#else
    default: return false;
#endif
  }
  return false;
}

Isa detect_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (isa_supported(Isa::Avx2)) return Isa::Avx2;  // Avx512 stays opt-in
  if (isa_supported(Isa::Sse2)) return Isa::Sse2;
#elif defined(__aarch64__)
  return Isa::Neon;
#endif
  return Isa::Scalar;
}

// active_isa() / set_isa() are defined in tuning.cpp next to the profile
// slot they read and write.

}  // namespace vbatch::blas::micro
