#include "vbatch/blas/microkernel.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "vbatch/blas/microkernel_tile.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas::micro {

namespace {

using detail::KernelEntry;
using detail::MicroFn;
using detail::type_index_v;

std::atomic<int> g_dispatch{static_cast<int>(Dispatch::Auto)};

// Thread-local packing buffers, one pair per scalar type. They grow to the
// largest MC×KC (A) / KC×NC (B) the thread has seen, rounded up to whole
// slivers, and are reused by every subsequent call on the same thread.
template <typename T>
std::vector<T>& pack_buffer_a() {
  static thread_local std::vector<T> buf;
  return buf;
}

template <typename T>
std::vector<T>& pack_buffer_b() {
  static thread_local std::vector<T> buf;
  return buf;
}

// Packs op(A)(i0 : i0+mc, p0 : p0+kc) into MR-row slivers: sliver s holds
// rows [s·MR, s·MR+MR) with the kc index varying fastest across slivers and
// the MR rows contiguous within one k-slice. Partial slivers are zero-padded
// so the micro-kernel never needs a row mask.
template <typename T>
void pack_a(ConstMatrixView<T> a, Trans trans, index_t i0, index_t p0, index_t mc, index_t kc,
            int MR, T* VBATCH_RESTRICT dst) {
  for (index_t ip = 0; ip < mc; ip += MR) {
    const index_t mr = std::min<index_t>(MR, mc - ip);
    T* VBATCH_RESTRICT panel = dst + (ip / MR) * (MR * kc);
    if (trans == Trans::NoTrans) {
      for (index_t l = 0; l < kc; ++l) {
        const T* VBATCH_RESTRICT col = &a(i0 + ip, p0 + l);
        T* VBATCH_RESTRICT out = panel + l * MR;
        for (index_t r = 0; r < mr; ++r) out[r] = col[r];
        for (index_t r = mr; r < MR; ++r) out[r] = T(0);
      }
    } else {
      // op(A)(i, l) = conj(A(p0+l, i0+i)): each packed row reads one
      // unit-stride column of the stored matrix.
      for (index_t r = 0; r < mr; ++r) {
        const T* VBATCH_RESTRICT col = &a(p0, i0 + ip + r);
        for (index_t l = 0; l < kc; ++l) panel[l * MR + r] = conj_val(col[l]);
      }
      for (index_t r = mr; r < MR; ++r)
        for (index_t l = 0; l < kc; ++l) panel[l * MR + r] = T(0);
    }
  }
}

// Packs op(B)(p0 : p0+kc, j0 : j0+nc) into NR-column slivers (NR entries of
// one k-slice contiguous), zero-padding partial slivers.
template <typename T>
void pack_b(ConstMatrixView<T> b, Trans trans, index_t p0, index_t j0, index_t kc, index_t nc,
            int NR, T* VBATCH_RESTRICT dst) {
  for (index_t jp = 0; jp < nc; jp += NR) {
    const index_t nr = std::min<index_t>(NR, nc - jp);
    T* VBATCH_RESTRICT panel = dst + (jp / NR) * (NR * kc);
    if (trans == Trans::NoTrans) {
      for (index_t cidx = 0; cidx < nr; ++cidx) {
        const T* VBATCH_RESTRICT col = &b(p0, j0 + jp + cidx);
        for (index_t l = 0; l < kc; ++l) panel[l * NR + cidx] = col[l];
      }
      for (index_t cidx = nr; cidx < NR; ++cidx)
        for (index_t l = 0; l < kc; ++l) panel[l * NR + cidx] = T(0);
    } else {
      // op(B)(l, j) = conj(B(j0+j, p0+l)): one k-slice reads a unit-stride
      // row segment of the stored matrix.
      for (index_t l = 0; l < kc; ++l) {
        const T* VBATCH_RESTRICT row = &b(j0 + jp, p0 + l);
        T* VBATCH_RESTRICT out = panel + l * NR;
        for (index_t cidx = 0; cidx < nr; ++cidx) out[cidx] = conj_val(row[cidx]);
        for (index_t cidx = nr; cidx < NR; ++cidx) out[cidx] = T(0);
      }
    }
  }
}

// The per-ISA kernel tables, searched best-first: every vector set falls
// back through the 128-bit table to the scalar one, so a profile whose tile
// has no compiled kernel under the active ISA still resolves (ultimately to
// the runtime-shaped generic tile, which shares the scalar accumulation
// order). Tables above the active ISA are never consulted, so no kernel can
// execute instructions the host lacks.
std::span<const KernelEntry> table_for(Isa isa) noexcept {
  switch (isa) {
#if defined(VBATCH_HAVE_AVX512_TU)
    case Isa::Avx512: return detail::kernels_avx512();
#endif
#if defined(VBATCH_HAVE_AVX2_TU)
    case Isa::Avx2: return detail::kernels_avx2();
#endif
    case Isa::Sse2:
    case Isa::Neon: return detail::kernels_v128();
    default: return detail::kernels_scalar();
  }
}

Isa next_lower(Isa isa) noexcept {
  switch (isa) {
    case Isa::Avx512: return Isa::Avx2;
    case Isa::Avx2:
#if defined(__aarch64__)
      return Isa::Neon;
#else
      return Isa::Sse2;
#endif
    case Isa::Sse2:
    case Isa::Neon:
    default: return Isa::Scalar;
  }
}

template <typename T>
MicroFn<T> find_tile(Isa isa, int mr, int nr) noexcept {
  for (;;) {
    for (const KernelEntry& e : table_for(isa))
      if (e.type == type_index_v<T> && e.mr == mr && e.nr == nr)
        return reinterpret_cast<MicroFn<T>>(const_cast<void*>(e.fn));
    if (isa == Isa::Scalar) return nullptr;
    isa = next_lower(isa);
  }
}

// Splits [0, total) into the same number of chunks greedy `block`-sized
// splitting would produce, but sizes balanced in multiples of `unit` (the
// register-tile extent) so no chunk degenerates to a sliver. Greedy NC
// splitting gave n = 512, NC = 384 chunks of 384 + 128 — the packed-B reuse
// collapses in the 128-wide tail and throughput dipped ~15%; balanced
// splitting yields 256 + 256. The k loop must NOT use this: the k-split
// fixes the accumulation order, and we keep the PR 2 greedy order so a
// fixed (ISA, profile) stays bit-reproducible against history.
class BalancedSplit {
 public:
  BalancedSplit(index_t total, index_t block, index_t unit) noexcept : unit_(unit), total_(total) {
    const index_t nb = total > 0 ? (total + block - 1) / block : 0;
    const index_t units = (total + unit - 1) / unit;
    count_ = nb;
    base_ = nb > 0 ? units / nb : 0;
    rem_ = nb > 0 ? units % nb : 0;
  }
  [[nodiscard]] index_t count() const noexcept { return count_; }
  [[nodiscard]] index_t begin(index_t i) const noexcept {
    return (i * base_ + std::min(i, rem_)) * unit_;
  }
  [[nodiscard]] index_t length(index_t i) const noexcept {
    const index_t units = base_ + (i < rem_ ? 1 : 0);
    return std::min(units * unit_, total_ - begin(i));
  }

 private:
  index_t unit_, total_, count_ = 0, base_ = 0, rem_ = 0;
};

}  // namespace

namespace detail {

namespace {

// Compile-time scalar tiles for the default (anchor) shapes of each scalar
// type; every other shape the tuner may pick resolves to the runtime-shaped
// generic tile. The accumulation order is identical either way.
const KernelEntry kScalarEntries[] = {
    {Isa::Scalar, type_index_v<float>, 8, 4,
     reinterpret_cast<const void*>(&tile_scalar<float, 8, 4>)},
    {Isa::Scalar, type_index_v<float>, 4, 4,
     reinterpret_cast<const void*>(&tile_scalar<float, 4, 4>)},
    {Isa::Scalar, type_index_v<double>, 4, 4,
     reinterpret_cast<const void*>(&tile_scalar<double, 4, 4>)},
    {Isa::Scalar, type_index_v<double>, 8, 4,
     reinterpret_cast<const void*>(&tile_scalar<double, 8, 4>)},
    {Isa::Scalar, type_index_v<std::complex<float>>, 4, 2,
     reinterpret_cast<const void*>(&tile_scalar<std::complex<float>, 4, 2>)},
    {Isa::Scalar, type_index_v<std::complex<float>>, 4, 4,
     reinterpret_cast<const void*>(&tile_scalar<std::complex<float>, 4, 4>)},
    {Isa::Scalar, type_index_v<std::complex<double>>, 2, 2,
     reinterpret_cast<const void*>(&tile_scalar<std::complex<double>, 2, 2>)},
    {Isa::Scalar, type_index_v<std::complex<double>>, 4, 4,
     reinterpret_cast<const void*>(&tile_scalar<std::complex<double>, 4, 4>)},
};

}  // namespace

std::span<const KernelEntry> kernels_scalar() noexcept { return kScalarEntries; }

#if !defined(VBATCH_HAVE_AVX2_TU)
std::span<const KernelEntry> kernels_avx2() noexcept { return {}; }
#endif
#if !defined(VBATCH_HAVE_AVX512_TU)
std::span<const KernelEntry> kernels_avx512() noexcept { return {}; }
#endif

}  // namespace detail

void set_dispatch(Dispatch d) noexcept {
  g_dispatch.store(static_cast<int>(d), std::memory_order_relaxed);
}

Dispatch dispatch() noexcept {
  return static_cast<Dispatch>(g_dispatch.load(std::memory_order_relaxed));
}

template <typename T>
std::vector<TilePair> supported_tiles(Isa isa) {
  std::vector<TilePair> out;
  for (;;) {
    for (const detail::KernelEntry& e : table_for(isa)) {
      if (e.type != detail::type_index_v<T>) continue;
      const bool seen = std::any_of(out.begin(), out.end(), [&](const TilePair& t) {
        return t.mr == e.mr && t.nr == e.nr;
      });
      if (!seen) out.push_back({e.mr, e.nr});
    }
    if (isa == Isa::Scalar) break;
    isa = next_lower(isa);
  }
  return out;
}

template std::vector<TilePair> supported_tiles<float>(Isa);
template std::vector<TilePair> supported_tiles<double>(Isa);
template std::vector<TilePair> supported_tiles<std::complex<float>>(Isa);
template std::vector<TilePair> supported_tiles<std::complex<double>>(Isa);

template <typename T>
void gemm_blocked_shaped(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                         ConstMatrixView<T> b, T beta, MatrixView<T> c, const KernelShape& shape) {
  require(shape.mr >= 1 && shape.mr <= kMaxMR && shape.nr >= 1 && shape.nr <= kMaxNR &&
              shape.kc >= 1 && shape.mc >= shape.mr && shape.nc >= shape.nr,
          "gemm_blocked_shaped: shape out of bounds");
  const int MR = shape.mr;
  const int NR = shape.nr;
  const index_t KC = shape.kc;
  const index_t MC = shape.mc;
  const index_t NC = shape.nc;

  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();

  if (m == 0 || n == 0) return;

  // One beta pass up front; the k-blocked accumulation below then always
  // adds alpha · A_p · B_p in k-block order (deterministic for any caller).
  if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j) {
      T* VBATCH_RESTRICT ccol = &c(0, j);
      for (index_t i = 0; i < m; ++i) ccol[i] = beta == T(0) ? T(0) : beta * ccol[i];
    }
  }
  if (k == 0 || alpha == T(0)) return;

  const detail::MicroFn<T> tile = find_tile<T>(active_isa(), MR, NR);

  auto& abuf = pack_buffer_a<T>();
  auto& bbuf = pack_buffer_b<T>();
  const std::size_t a_need = static_cast<std::size_t>((MC + MR - 1) / MR * MR * KC);
  const std::size_t b_need = static_cast<std::size_t>((NC + NR - 1) / NR * NR * KC);
  if (abuf.size() < a_need) abuf.resize(a_need);
  if (bbuf.size() < b_need) bbuf.resize(b_need);

  alignas(64) T acc[kMaxMR * kMaxNR];

  const BalancedSplit nsplit(n, NC, NR);
  const BalancedSplit msplit(m, MC, MR);
  for (index_t jb = 0; jb < nsplit.count(); ++jb) {
    const index_t jj = nsplit.begin(jb);
    const index_t nc = nsplit.length(jb);
    for (index_t pp = 0; pp < k; pp += KC) {
      const index_t kc = std::min(KC, k - pp);
      pack_b(b, trans_b, pp, jj, kc, nc, NR, bbuf.data());
      for (index_t ib = 0; ib < msplit.count(); ++ib) {
        const index_t ii = msplit.begin(ib);
        const index_t mc = msplit.length(ib);
        pack_a(a, trans_a, ii, pp, mc, kc, MR, abuf.data());
        for (index_t jr = 0; jr < nc; jr += NR) {
          const index_t nr = std::min<index_t>(NR, nc - jr);
          const T* bp = bbuf.data() + (jr / NR) * (NR * kc);
          for (index_t ir = 0; ir < mc; ir += MR) {
            const index_t mr = std::min<index_t>(MR, mc - ir);
            const T* ap = abuf.data() + (ir / MR) * (MR * kc);
            if (tile)
              tile(kc, ap, bp, acc);
            else
              detail::tile_generic<T>(kc, ap, bp, acc, MR, NR);
            for (index_t j = 0; j < nr; ++j) {
              T* VBATCH_RESTRICT ccol = &c(ii + ir, jj + jr + j);
              const T* VBATCH_RESTRICT av = acc + j * MR;
              for (index_t i = 0; i < mr; ++i) ccol[i] += alpha * av[i];
            }
          }
        }
      }
    }
  }
}

template <typename T>
void gemm_blocked(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  gemm_blocked_shaped<T>(trans_a, trans_b, alpha, a, b, beta, c, shape_of<T>(active_profile()));
}

#define VBATCH_INSTANTIATE_GEMM(T)                                                      \
  template void gemm_blocked_shaped<T>(Trans, Trans, T, ConstMatrixView<T>,             \
                                       ConstMatrixView<T>, T, MatrixView<T>,            \
                                       const KernelShape&);                             \
  template void gemm_blocked<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T, \
                                MatrixView<T>)

VBATCH_INSTANTIATE_GEMM(float);
VBATCH_INSTANTIATE_GEMM(double);
VBATCH_INSTANTIATE_GEMM(std::complex<float>);
VBATCH_INSTANTIATE_GEMM(std::complex<double>);

#undef VBATCH_INSTANTIATE_GEMM

}  // namespace vbatch::blas::micro
