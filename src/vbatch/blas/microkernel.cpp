#include "vbatch/blas/microkernel.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#define VBATCH_RESTRICT __restrict__

namespace vbatch::blas::micro {

namespace {

std::atomic<int> g_dispatch{static_cast<int>(Dispatch::Auto)};

// Thread-local packing buffers, one pair per scalar type. They grow to the
// fixed maximum (MC×KC for A, KC×NC for B, rounded up to whole slivers) on
// first use and are reused by every subsequent call on the same thread.
template <typename T>
std::vector<T>& pack_buffer_a() {
  static thread_local std::vector<T> buf;
  return buf;
}

template <typename T>
std::vector<T>& pack_buffer_b() {
  static thread_local std::vector<T> buf;
  return buf;
}

// Packs op(A)(i0 : i0+mc, p0 : p0+kc) into MR-row slivers: sliver s holds
// rows [s·MR, s·MR+MR) with the kc index varying fastest across slivers and
// the MR rows contiguous within one k-slice. Partial slivers are zero-padded
// so the micro-kernel never needs a row mask.
template <typename T>
void pack_a(ConstMatrixView<T> a, Trans trans, index_t i0, index_t p0, index_t mc, index_t kc,
            T* VBATCH_RESTRICT dst) {
  constexpr int MR = Tiling<T>::MR;
  for (index_t ip = 0; ip < mc; ip += MR) {
    const index_t mr = std::min<index_t>(MR, mc - ip);
    T* VBATCH_RESTRICT panel = dst + (ip / MR) * (MR * kc);
    if (trans == Trans::NoTrans) {
      for (index_t l = 0; l < kc; ++l) {
        const T* VBATCH_RESTRICT col = &a(i0 + ip, p0 + l);
        T* VBATCH_RESTRICT out = panel + l * MR;
        for (index_t r = 0; r < mr; ++r) out[r] = col[r];
        for (index_t r = mr; r < MR; ++r) out[r] = T(0);
      }
    } else {
      // op(A)(i, l) = conj(A(p0+l, i0+i)): each packed row reads one
      // unit-stride column of the stored matrix.
      for (index_t r = 0; r < mr; ++r) {
        const T* VBATCH_RESTRICT col = &a(p0, i0 + ip + r);
        for (index_t l = 0; l < kc; ++l) panel[l * MR + r] = conj_val(col[l]);
      }
      for (index_t r = mr; r < MR; ++r)
        for (index_t l = 0; l < kc; ++l) panel[l * MR + r] = T(0);
    }
  }
}

// Packs op(B)(p0 : p0+kc, j0 : j0+nc) into NR-column slivers (NR entries of
// one k-slice contiguous), zero-padding partial slivers.
template <typename T>
void pack_b(ConstMatrixView<T> b, Trans trans, index_t p0, index_t j0, index_t kc, index_t nc,
            T* VBATCH_RESTRICT dst) {
  constexpr int NR = Tiling<T>::NR;
  for (index_t jp = 0; jp < nc; jp += NR) {
    const index_t nr = std::min<index_t>(NR, nc - jp);
    T* VBATCH_RESTRICT panel = dst + (jp / NR) * (NR * kc);
    if (trans == Trans::NoTrans) {
      for (index_t cidx = 0; cidx < nr; ++cidx) {
        const T* VBATCH_RESTRICT col = &b(p0, j0 + jp + cidx);
        for (index_t l = 0; l < kc; ++l) panel[l * NR + cidx] = col[l];
      }
      for (index_t cidx = nr; cidx < NR; ++cidx)
        for (index_t l = 0; l < kc; ++l) panel[l * NR + cidx] = T(0);
    } else {
      // op(B)(l, j) = conj(B(j0+j, p0+l)): one k-slice reads a unit-stride
      // row segment of the stored matrix.
      for (index_t l = 0; l < kc; ++l) {
        const T* VBATCH_RESTRICT row = &b(j0 + jp, p0 + l);
        T* VBATCH_RESTRICT out = panel + l * NR;
        for (index_t cidx = 0; cidx < nr; ++cidx) out[cidx] = conj_val(row[cidx]);
        for (index_t cidx = nr; cidx < NR; ++cidx) out[cidx] = T(0);
      }
    }
  }
}

// The register tile: acc[MR×NR] += Σ_l a_sliver(:, l) ⊗ b_sliver(l, :).
// MR/NR are compile-time constants, so the i/j loops fully unroll and the
// accumulators live in vector registers; the only memory traffic per k-step
// is MR + NR contiguous loads from the packed panels.
template <typename T>
inline void micro_tile(index_t kc, const T* VBATCH_RESTRICT ap, const T* VBATCH_RESTRICT bp,
                       T* VBATCH_RESTRICT acc) {
  constexpr int MR = Tiling<T>::MR;
  constexpr int NR = Tiling<T>::NR;
  for (index_t l = 0; l < kc; ++l) {
    const T* VBATCH_RESTRICT av = ap + l * MR;
    const T* VBATCH_RESTRICT bv = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T bval = bv[j];
      for (int i = 0; i < MR; ++i) acc[j * MR + i] += av[i] * bval;
    }
  }
}

}  // namespace

void set_dispatch(Dispatch d) noexcept {
  g_dispatch.store(static_cast<int>(d), std::memory_order_relaxed);
}

Dispatch dispatch() noexcept {
  return static_cast<Dispatch>(g_dispatch.load(std::memory_order_relaxed));
}

template <typename T>
void gemm_blocked(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  constexpr int MR = Tiling<T>::MR;
  constexpr int NR = Tiling<T>::NR;
  constexpr index_t KC = Tiling<T>::KC;
  constexpr index_t MC = Tiling<T>::MC;
  constexpr index_t NC = Tiling<T>::NC;

  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();

  if (m == 0 || n == 0) return;

  // One beta pass up front; the k-blocked accumulation below then always
  // adds alpha · A_p · B_p in k-block order (deterministic for any caller).
  if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j) {
      T* VBATCH_RESTRICT ccol = &c(0, j);
      for (index_t i = 0; i < m; ++i) ccol[i] = beta == T(0) ? T(0) : beta * ccol[i];
    }
  }
  if (k == 0 || alpha == T(0)) return;

  auto& abuf = pack_buffer_a<T>();
  auto& bbuf = pack_buffer_b<T>();
  abuf.resize(static_cast<std::size_t>((MC + MR - 1) / MR * MR * KC));
  bbuf.resize(static_cast<std::size_t>((NC + NR - 1) / NR * NR * KC));

  for (index_t jj = 0; jj < n; jj += NC) {
    const index_t nc = std::min(NC, n - jj);
    for (index_t pp = 0; pp < k; pp += KC) {
      const index_t kc = std::min(KC, k - pp);
      pack_b(b, trans_b, pp, jj, kc, nc, bbuf.data());
      for (index_t ii = 0; ii < m; ii += MC) {
        const index_t mc = std::min(MC, m - ii);
        pack_a(a, trans_a, ii, pp, mc, kc, abuf.data());
        for (index_t jr = 0; jr < nc; jr += NR) {
          const index_t nr = std::min<index_t>(NR, nc - jr);
          const T* bp = bbuf.data() + (jr / NR) * (NR * kc);
          for (index_t ir = 0; ir < mc; ir += MR) {
            const index_t mr = std::min<index_t>(MR, mc - ir);
            T acc[MR * NR] = {};
            micro_tile<T>(kc, abuf.data() + (ir / MR) * (MR * kc), bp, acc);
            for (index_t j = 0; j < nr; ++j) {
              T* VBATCH_RESTRICT ccol = &c(ii + ir, jj + jr + j);
              const T* VBATCH_RESTRICT av = acc + j * MR;
              for (index_t i = 0; i < mr; ++i) ccol[i] += alpha * av[i];
            }
          }
        }
      }
    }
  }
}

template void gemm_blocked<float>(Trans, Trans, float, ConstMatrixView<float>,
                                  ConstMatrixView<float>, float, MatrixView<float>);
template void gemm_blocked<double>(Trans, Trans, double, ConstMatrixView<double>,
                                   ConstMatrixView<double>, double, MatrixView<double>);
template void gemm_blocked<std::complex<float>>(Trans, Trans, std::complex<float>,
                                                ConstMatrixView<std::complex<float>>,
                                                ConstMatrixView<std::complex<float>>,
                                                std::complex<float>,
                                                MatrixView<std::complex<float>>);
template void gemm_blocked<std::complex<double>>(Trans, Trans, std::complex<double>,
                                                 ConstMatrixView<std::complex<double>>,
                                                 ConstMatrixView<std::complex<double>>,
                                                 std::complex<double>,
                                                 MatrixView<std::complex<double>>);

}  // namespace vbatch::blas::micro
