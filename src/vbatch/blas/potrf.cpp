#include <cmath>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

// Unblocked Cholesky; for complex scalars this is the Hermitian xPOTF2
// (A = L·Lᴴ / UᴴU): the pivot is the real part of the diagonal and the
// column recurrences conjugate the already-factored rows.
template <typename T>
int potf2(Uplo uplo, MatrixView<T> a) {
  const index_t n = a.rows();
  require(a.cols() == n, "potf2: A must be square");
  using R = real_t<T>;

  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      R ajj = real_val(a(j, j));
      for (index_t l = 0; l < j; ++l) ajj -= real_val(a(j, l) * conj_val(a(j, l)));
      if (!(ajj > R(0))) {
        a(j, j) = T(ajj);  // LAPACK leaves the offending value in place
        return static_cast<int>(j) + 1;
      }
      ajj = std::sqrt(ajj);
      a(j, j) = T(ajj);
      const R inv = R(1) / ajj;
      for (index_t i = j + 1; i < n; ++i) {
        T sum = a(i, j);
        for (index_t l = 0; l < j; ++l) sum -= a(i, l) * conj_val(a(j, l));
        a(i, j) = sum * inv;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      R ajj = real_val(a(j, j));
      for (index_t l = 0; l < j; ++l) ajj -= real_val(conj_val(a(l, j)) * a(l, j));
      if (!(ajj > R(0))) {
        a(j, j) = T(ajj);
        return static_cast<int>(j) + 1;
      }
      ajj = std::sqrt(ajj);
      a(j, j) = T(ajj);
      const R inv = R(1) / ajj;
      for (index_t i = j + 1; i < n; ++i) {
        T sum = a(j, i);
        for (index_t l = 0; l < j; ++l) sum -= conj_val(a(l, j)) * a(l, i);
        a(j, i) = sum * inv;
      }
    }
  }
  return 0;
}

// Blocked right-looking Cholesky, the LAPACK xPOTRF structure: factor an
// nb-wide panel, trsm the sub-panel, syrk the trailing matrix.
template <typename T>
int potrf(Uplo uplo, MatrixView<T> a, index_t nb) {
  const index_t n = a.rows();
  require(a.cols() == n, "potrf: A must be square");
  require(nb >= 1, "potrf: nb must be positive");
  if (n <= nb) return potf2(uplo, a);

  for (index_t j = 0; j < n; j += nb) {
    const index_t jb = std::min(nb, n - j);
    // Left-looking update of the diagonal block.
    if (j > 0) {
      if (uplo == Uplo::Lower) {
        syrk<T>(Uplo::Lower, Trans::NoTrans, T(-1), a.block(j, 0, jb, j), T(1),
                a.block(j, j, jb, jb));
      } else {
        syrk<T>(Uplo::Upper, Trans::Trans, T(-1), a.block(0, j, j, jb), T(1),
                a.block(j, j, jb, jb));
      }
    }
    const int info = potf2(uplo, a.block(j, j, jb, jb));
    if (info != 0) return static_cast<int>(j) + info;

    if (j + jb < n) {
      const index_t rem = n - j - jb;
      if (uplo == Uplo::Lower) {
        if (j > 0) {
          gemm<T>(Trans::NoTrans, Trans::Trans, T(-1), a.block(j + jb, 0, rem, j),
                  a.block(j, 0, jb, j), T(1), a.block(j + jb, j, rem, jb));
        }
        trsm<T>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, T(1),
                a.block(j, j, jb, jb), a.block(j + jb, j, rem, jb));
      } else {
        if (j > 0) {
          gemm<T>(Trans::Trans, Trans::NoTrans, T(-1), a.block(0, j, j, jb),
                  a.block(0, j + jb, j, rem), T(1), a.block(j, j + jb, jb, rem));
        }
        trsm<T>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, T(1),
                a.block(j, j, jb, jb), a.block(j, j + jb, jb, rem));
      }
    }
  }
  return 0;
}

template <typename T>
void potrs(Uplo uplo, ConstMatrixView<T> a, MatrixView<T> b) {
  require(a.rows() == a.cols(), "potrs: A must be square");
  require(a.rows() == b.rows(), "potrs: dimension mismatch");
  if (uplo == Uplo::Lower) {
    trsm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, T(1), a, b);
    trsm<T>(Side::Left, Uplo::Lower, Trans::Trans, Diag::NonUnit, T(1), a, b);
  } else {
    trsm<T>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, T(1), a, b);
    trsm<T>(Side::Left, Uplo::Upper, Trans::NoTrans, Diag::NonUnit, T(1), a, b);
  }
}

template int potf2<float>(Uplo, MatrixView<float>);
template int potf2<double>(Uplo, MatrixView<double>);
template int potrf<float>(Uplo, MatrixView<float>, index_t);
template int potrf<double>(Uplo, MatrixView<double>, index_t);
template void potrs<float>(Uplo, ConstMatrixView<float>, MatrixView<float>);
template void potrs<double>(Uplo, ConstMatrixView<double>, MatrixView<double>);
template int potf2<std::complex<float>>(Uplo, MatrixView<std::complex<float>>);
template int potf2<std::complex<double>>(Uplo, MatrixView<std::complex<double>>);
template int potrf<std::complex<float>>(Uplo, MatrixView<std::complex<float>>, index_t);
template int potrf<std::complex<double>>(Uplo, MatrixView<std::complex<double>>, index_t);
template void potrs<std::complex<float>>(Uplo, ConstMatrixView<std::complex<float>>,
                                         MatrixView<std::complex<float>>);
template void potrs<std::complex<double>>(Uplo, ConstMatrixView<std::complex<double>>,
                                          MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
