// Runtime ISA detection and selection for the host BLAS micro-kernels.
//
// The vectorized MR×NR tiles in the micro-kernel engine are compiled per
// instruction set (128-bit SSE2/NEON baseline, AVX2+FMA, AVX-512F) into
// separate translation units; this header owns the process-wide decision of
// which set the engine is allowed to use. Detection is cpuid-based
// (`__builtin_cpu_supports` on x86, compile-time on AArch64) with a scalar
// fallback that reproduces the PR 2 engine bit for bit. The decision can be
// overridden — `VBATCH_ISA` in the environment, `--isa` on the CLI, or
// set_isa() from code — and is always clamped to what the host supports, so
// forcing `avx2` on a SSE2-only machine degrades rather than faults.
//
// Results are bit-reproducible for a fixed (ISA, tuning profile) pair; see
// docs/blas.md for the dispatch table and the determinism contract.
#pragma once

#include <optional>
#include <string_view>

namespace vbatch::blas::micro {

/// Instruction sets the engine has kernels for, in increasing preference
/// order. Scalar is the portable fallback (identical arithmetic order to the
/// PR 2 register-tiled engine); Sse2/Neon are the 128-bit baselines of their
/// architectures; Avx512 is opt-in (see detect_isa).
enum class Isa : int { Scalar = 0, Sse2, Neon, Avx2, Avx512 };

[[nodiscard]] constexpr const char* to_string(Isa i) noexcept {
  switch (i) {
    case Isa::Scalar: return "scalar";
    case Isa::Sse2: return "sse2";
    case Isa::Neon: return "neon";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

/// Parses an ISA name ("scalar", "sse2", "neon", "avx2", "avx512");
/// std::nullopt for anything else.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name) noexcept;

/// True when the host can execute kernels of the given set (Scalar always
/// can; vector sets require the matching cpuid feature / architecture).
[[nodiscard]] bool isa_supported(Isa i) noexcept;

/// The best ISA the host supports, with AVX-512 deliberately *not* auto-
/// selected (license-based frequency throttling makes it a measured,
/// opt-in choice — request it via VBATCH_ISA=avx512 / --isa avx512).
[[nodiscard]] Isa detect_isa() noexcept;

/// The ISA the engine currently dispatches on. Resolved once on first use:
/// VBATCH_ISA if set (unknown names warn once and fall back), else
/// detect_isa(). Always a supported set. (Defined in tuning.cpp: the ISA is
/// carried by the active TuningProfile so the two can never disagree.)
[[nodiscard]] Isa active_isa() noexcept;

/// Overrides the active ISA, clamping to the best supported set at or below
/// the request (e.g. Avx512 on an AVX2 host becomes Avx2, Neon on x86
/// becomes Sse2). Installs defaults(isa) as the active tuning profile when
/// the ISA actually changes. Returns the ISA actually installed. Not meant
/// to be toggled while kernels are in flight on the worker pool.
Isa set_isa(Isa i) noexcept;

namespace detail {
/// Walks the request down to the best supported set (…→Sse2/Neon→Scalar).
[[nodiscard]] Isa clamp_isa(Isa i) noexcept;
/// VBATCH_ISA if parseable (clamped, warning on downgrade), else
/// detect_isa(). The profile slot's lazy initializer.
[[nodiscard]] Isa initial_isa() noexcept;
}  // namespace detail

/// RAII guard pinning the active ISA for a scope (tests/benches).
class IsaGuard {
 public:
  explicit IsaGuard(Isa i) noexcept : prev_(active_isa()) { set_isa(i); }
  ~IsaGuard() { set_isa(prev_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  Isa prev_;
};

}  // namespace vbatch::blas::micro
