// 128-bit vector tiles: the SSE2 baseline of x86-64 and the NEON baseline of
// AArch64. Compiled without extra -m flags — 16-byte compiler-vector types
// lower to the architecture's baseline SIMD on either family (and to decent
// scalar code elsewhere, where the entries are simply never selected because
// isa_supported() rejects both tags).
#include "vbatch/blas/microkernel_tile.hpp"

namespace vbatch::blas::micro::detail {

namespace {

#if defined(__aarch64__)
constexpr Isa kTag = Isa::Neon;
#else
constexpr Isa kTag = Isa::Sse2;
#endif

// float W=4 → MR ∈ {4, 8, 12}; double W=2 → MR ∈ {2, 4, 6}.
const KernelEntry kEntries[] = {
    VBATCH_TILE_FAMILY(kTag, float, 4),
    VBATCH_TILE_FAMILY(kTag, double, 2),
};

}  // namespace

std::span<const KernelEntry> kernels_v128() noexcept { return kEntries; }

}  // namespace vbatch::blas::micro::detail
