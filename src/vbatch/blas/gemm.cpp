#include <cassert>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Reads op(A)(i, j) for the stored matrix A. For complex scalars the
// library's Hermitian convention applies: Trans means conjugate-transpose.
template <typename T>
inline T op_at(ConstMatrixView<T> a, Trans trans, index_t i, index_t j) noexcept {
  return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
}

}  // namespace

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();

  require((trans_a == Trans::NoTrans ? a.rows() : a.cols()) == m, "gemm: op(A) rows != C rows");
  require((trans_b == Trans::NoTrans ? b.rows() : b.cols()) == k, "gemm: op(B) rows != k");
  require((trans_b == Trans::NoTrans ? b.cols() : b.rows()) == n, "gemm: op(B) cols != C cols");

  if (m == 0 || n == 0) return;
  if (alpha == T(0) || k == 0) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) = beta == T(0) ? T(0) : beta * c(i, j);
    return;
  }

  // NN case: accumulate column-by-column with axpy-style inner loops, which
  // keeps the A access unit-stride (the dominant case in the library).
  if (trans_a == Trans::NoTrans && trans_b == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) c(i, j) = beta == T(0) ? T(0) : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b(l, j);
        if (blj == T(0)) continue;
        const T* acol = &a(0, l);
        T* ccol = &c(0, j);
        for (index_t i = 0; i < m; ++i) ccol[i] += blj * acol[i];
      }
    }
    return;
  }

  // TN case: dot products over unit-stride columns of both A and B.
  if (trans_a == Trans::Trans && trans_b == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const T* acol = &a(0, i);
        const T* bcol = &b(0, j);
        T sum = T(0);
        for (index_t l = 0; l < k; ++l) sum += conj_val(acol[l]) * bcol[l];
        c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
      }
    }
    return;
  }

  // NT / TT general fallback.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T sum = T(0);
      for (index_t l = 0; l < k; ++l) sum += op_at(a, trans_a, i, l) * op_at(b, trans_b, l, j);
      c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

template void gemm<float>(Trans, Trans, float, ConstMatrixView<float>, ConstMatrixView<float>,
                          float, MatrixView<float>);
template void gemm<double>(Trans, Trans, double, ConstMatrixView<double>,
                           ConstMatrixView<double>, double, MatrixView<double>);
template void gemm<std::complex<float>>(Trans, Trans, std::complex<float>,
                                        ConstMatrixView<std::complex<float>>,
                                        ConstMatrixView<std::complex<float>>,
                                        std::complex<float>, MatrixView<std::complex<float>>);
template void gemm<std::complex<double>>(Trans, Trans, std::complex<double>,
                                         ConstMatrixView<std::complex<double>>,
                                         ConstMatrixView<std::complex<double>>,
                                         std::complex<double>,
                                         MatrixView<std::complex<double>>);

}  // namespace vbatch::blas
