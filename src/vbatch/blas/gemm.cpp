#include <cassert>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/util/error.hpp"

namespace vbatch::blas {

namespace {

// Reads op(A)(i, j) for the stored matrix A. For complex scalars the
// library's Hermitian convention applies: Trans means conjugate-transpose.
template <typename T>
inline T op_at(ConstMatrixView<T> a, Trans trans, index_t i, index_t j) noexcept {
  return trans == Trans::NoTrans ? a(i, j) : conj_val(a(j, i));
}

template <typename T>
void gemm_check(Trans trans_a, Trans trans_b, ConstMatrixView<T> a, ConstMatrixView<T> b,
                MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();
  require((trans_a == Trans::NoTrans ? a.rows() : a.cols()) == m, "gemm: op(A) rows != C rows");
  require((trans_b == Trans::NoTrans ? b.rows() : b.cols()) == k, "gemm: op(B) rows != k");
  require((trans_b == Trans::NoTrans ? b.cols() : b.rows()) == n, "gemm: op(B) cols != C cols");
}

}  // namespace

template <typename T>
void gemm_ref(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              T beta, MatrixView<T> c) {
  gemm_check(trans_a, trans_b, a, b, c);
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();

  if (m == 0 || n == 0) return;
  if (alpha == T(0) || k == 0) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) = beta == T(0) ? T(0) : beta * c(i, j);
    return;
  }

  // NN case: accumulate column-by-column with axpy-style inner loops, which
  // keeps the A access unit-stride. Every b(l, j) contributes — including
  // exact zeros — so 0 × NaN/Inf entries of A propagate exactly as in the
  // straightforward triple loop.
  if (trans_a == Trans::NoTrans && trans_b == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) c(i, j) = beta == T(0) ? T(0) : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b(l, j);
        const T* acol = &a(0, l);
        T* ccol = &c(0, j);
        for (index_t i = 0; i < m; ++i) ccol[i] += blj * acol[i];
      }
    }
    return;
  }

  // TN case: dot products over unit-stride columns of both A and B.
  if (trans_a == Trans::Trans && trans_b == Trans::NoTrans) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const T* acol = &a(0, i);
        const T* bcol = &b(0, j);
        T sum = T(0);
        for (index_t l = 0; l < k; ++l) sum += conj_val(acol[l]) * bcol[l];
        c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
      }
    }
    return;
  }

  // NT / TT general fallback.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T sum = T(0);
      for (index_t l = 0; l < k; ++l) sum += op_at(a, trans_a, i, l) * op_at(b, trans_b, l, j);
      c(i, j) = alpha * sum + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  gemm_check(trans_a, trans_b, a, b, c);
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = trans_a == Trans::NoTrans ? a.cols() : a.rows();

  const micro::Dispatch d = micro::dispatch();
  const bool blocked = d == micro::Dispatch::ForceBlocked ||
                       (d == micro::Dispatch::Auto && micro::use_blocked<T>(m, n, k));
  if (blocked) {
    micro::gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c);
  } else {
    gemm_ref(trans_a, trans_b, alpha, a, b, beta, c);
  }
}

#define VBATCH_INSTANTIATE_GEMM(T)                                                          \
  template void gemm<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,         \
                        MatrixView<T>);                                                     \
  template void gemm_ref<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,     \
                            MatrixView<T>)

VBATCH_INSTANTIATE_GEMM(float);
VBATCH_INSTANTIATE_GEMM(double);
VBATCH_INSTANTIATE_GEMM(std::complex<float>);
VBATCH_INSTANTIATE_GEMM(std::complex<double>);

#undef VBATCH_INSTANTIATE_GEMM

}  // namespace vbatch::blas
