// Internal: the MR×NR register-tile templates shared by every ISA-specific
// translation unit of the micro-kernel engine, plus the registry types the
// runtime dispatcher (microkernel.cpp) uses to find them.
//
// Each vector TU (microkernel_v128.cpp for SSE2/NEON, microkernel_avx2.cpp,
// microkernel_avx512.cpp) is compiled with its own -m flags and explicitly
// instantiates `tile_vec` for the tile shapes of its vector width W; the
// base TU instantiates the scalar tiles. The shapes instantiated per (type,
// ISA) are MR ∈ {W, 2W, 3W} × NR ∈ {4, 6, 8} — the register-feasible set
// the cache-hierarchy autotuner sweeps (docs/blas.md). No specialization is
// instantiated in more than one TU (W differs), so vague linkage is safe.
//
// A tile function *overwrites* acc[0..MR*NR) (column-major, acc[j*MR+i])
// with Σ_l ap(:, l) ⊗ bp(l, :) over the packed slivers. The scalar tile
// accumulates in exactly the PR 2 order (l outer, j, i inner), which is the
// bit-compatibility anchor for Isa::Scalar; vector tiles keep the same
// per-element summation order over l, so a fixed (ISA, profile) pair is
// bit-reproducible run to run.
#pragma once

#include <cstddef>
#include <span>

#include "vbatch/blas/isa.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/types.hpp"

namespace vbatch::blas::micro::detail {

#ifndef VBATCH_RESTRICT
#define VBATCH_RESTRICT __restrict__
#endif

/// One register-tile kernel: writes acc = Ã-sliver × B̃-sliver over kc steps.
template <typename T>
using MicroFn = void (*)(index_t kc, const T* VBATCH_RESTRICT ap, const T* VBATCH_RESTRICT bp,
                         T* VBATCH_RESTRICT acc);

/// Scalar type index used by the registry: float, double, complex<float>,
/// complex<double>.
template <typename T>
inline constexpr int type_index_v = is_complex_v<T>
                                        ? (std::is_same_v<real_t<T>, float> ? 2 : 3)
                                        : (std::is_same_v<T, float> ? 0 : 1);

struct KernelEntry {
  Isa isa;
  int type;  ///< type_index_v of the scalar type
  int mr, nr;
  const void* fn;  ///< MicroFn<T> for that scalar type
};

/// Per-TU kernel tables. The AVX TUs only exist on x86-64 builds whose
/// compiler accepts the flags; microkernel.cpp references them under the
/// VBATCH_HAVE_*_TU definitions CMake sets when it compiles the file.
std::span<const KernelEntry> kernels_scalar() noexcept;
std::span<const KernelEntry> kernels_v128() noexcept;
std::span<const KernelEntry> kernels_avx2() noexcept;
std::span<const KernelEntry> kernels_avx512() noexcept;

/// Bit-compatibility anchor: identical loop nest (l outer, then j, then i)
/// and accumulation order to the PR 2 micro_tile, with the zero-init folded
/// in. MR/NR are compile-time so the i/j loops fully unroll.
template <typename T, int MR, int NR>
void tile_scalar(index_t kc, const T* VBATCH_RESTRICT ap, const T* VBATCH_RESTRICT bp,
                 T* VBATCH_RESTRICT acc) {
  T c[MR * NR] = {};
  for (index_t l = 0; l < kc; ++l) {
    const T* VBATCH_RESTRICT av = ap + l * MR;
    const T* VBATCH_RESTRICT bv = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T bval = bv[j];
      for (int i = 0; i < MR; ++i) c[j * MR + i] += av[i] * bval;
    }
  }
  for (int x = 0; x < MR * NR; ++x) acc[x] = c[x];
}

/// Runtime-shape fallback with the same accumulation order as tile_scalar;
/// used when the active profile names a tile no TU compiled (and for the
/// complex tail shapes the autotuner may pick).
template <typename T>
inline void tile_generic(index_t kc, const T* VBATCH_RESTRICT ap, const T* VBATCH_RESTRICT bp,
                         T* VBATCH_RESTRICT acc, int mr, int nr) {
  for (int x = 0; x < mr * nr; ++x) acc[x] = T(0);
  for (index_t l = 0; l < kc; ++l) {
    const T* VBATCH_RESTRICT av = ap + l * mr;
    const T* VBATCH_RESTRICT bv = bp + l * nr;
    for (int j = 0; j < nr; ++j) {
      const T bval = bv[j];
      T* VBATCH_RESTRICT cc = acc + j * mr;
      for (int i = 0; i < mr; ++i) cc[i] += av[i] * bval;
    }
  }
}

/// Explicitly vectorized tile using portable compiler-vector types: the
/// accumulator block is MR/W × NR vectors of W lanes; each k-step loads
/// MR/W vectors of Ã, broadcasts NR scalars of B̃ and issues MR/W·NR FMAs.
/// The TU's -m flags decide the actual instruction encoding.
template <typename T, int MR, int NR, int W>
void tile_vec(index_t kc, const T* VBATCH_RESTRICT ap, const T* VBATCH_RESTRICT bp,
              T* VBATCH_RESTRICT acc) {
  static_assert(!is_complex_v<T>, "vector tiles cover real scalars");
  static_assert(MR % W == 0 && MR / W >= 1 && MR / W <= 4);
  constexpr int MV = MR / W;
  typedef T Vec __attribute__((vector_size(W * sizeof(T))));
  // Unaligned, aliasing-safe view of the packed panels (sliver starts are
  // only sizeof(T)-aligned for odd l·MR offsets).
  typedef T VecU __attribute__((vector_size(W * sizeof(T)), aligned(alignof(T)), may_alias));

  auto splat = [](T x) {
    Vec v;
    for (int i = 0; i < W; ++i) v[i] = x;
    return v;
  };

  Vec c[MV][NR];
  for (int v = 0; v < MV; ++v)
    for (int j = 0; j < NR; ++j) c[v][j] = splat(T(0));

  for (index_t l = 0; l < kc; ++l) {
    Vec a[MV];
    for (int v = 0; v < MV; ++v)
      a[v] = *reinterpret_cast<const VecU*>(ap + l * MR + v * W);
    const T* VBATCH_RESTRICT bv = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const Vec bj = splat(bv[j]);
      for (int v = 0; v < MV; ++v) c[v][j] += a[v] * bj;
    }
  }
  for (int j = 0; j < NR; ++j)
    for (int v = 0; v < MV; ++v)
      *reinterpret_cast<VecU*>(acc + j * MR + v * W) = c[v][j];
}

// Builds the nine (MR, NR) entries of one (type, ISA, W) family. Used by the
// per-ISA TUs; kept as a macro so the function pointers instantiate in the
// TU that carries the right -m flags.
#define VBATCH_TILE_ENTRY(ISA, T, MR, NR, W)                                      \
  ::vbatch::blas::micro::detail::KernelEntry {                                    \
    ISA, ::vbatch::blas::micro::detail::type_index_v<T>, MR, NR,                  \
        reinterpret_cast<const void*>(                                            \
            &::vbatch::blas::micro::detail::tile_vec<T, MR, NR, W>)               \
  }

#define VBATCH_TILE_FAMILY(ISA, T, W)                                             \
  VBATCH_TILE_ENTRY(ISA, T, W, 4, W), VBATCH_TILE_ENTRY(ISA, T, W, 6, W),         \
      VBATCH_TILE_ENTRY(ISA, T, W, 8, W), VBATCH_TILE_ENTRY(ISA, T, 2 * W, 4, W), \
      VBATCH_TILE_ENTRY(ISA, T, 2 * W, 6, W), VBATCH_TILE_ENTRY(ISA, T, 2 * W, 8, W), \
      VBATCH_TILE_ENTRY(ISA, T, 3 * W, 4, W), VBATCH_TILE_ENTRY(ISA, T, 3 * W, 6, W), \
      VBATCH_TILE_ENTRY(ISA, T, 3 * W, 8, W)

}  // namespace vbatch::blas::micro::detail
