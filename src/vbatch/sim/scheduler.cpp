#include "vbatch/sim/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "vbatch/util/error.hpp"

namespace vbatch::sim {

double block_seconds(const DeviceSpec& spec, Precision prec, int resident,
                     const BlockCost& cost) {
  const double cycle = spec.cycle_seconds();
  if (cost.early_exit) return spec.block_exit_cycles * cycle;

  const int lanes = spec.lanes_per_sm(prec);
  // Lanes available to this block while `resident` blocks share the SM.
  const double lane_share =
      std::max(1.0, static_cast<double>(lanes) / std::max(1, resident));
  const double usable_lanes =
      std::min<double>(std::max(1, cost.active_threads), lane_share);

  double compute_cycles = cost.flops / (usable_lanes * spec.flops_per_lane_per_cycle);
  compute_cycles += cost.serial_ops * spec.serial_op_cycles;
  compute_cycles += cost.sync_steps * spec.sync_cost_cycles;
  compute_cycles += cost.latency_cycles;

  // Memory time uses this block's share of device bandwidth.
  const double active_blocks = static_cast<double>(std::max(1, resident * spec.num_sms));
  const double bw_share = spec.mem_bandwidth_gbps * 1e9 / active_blocks;
  const double mem_seconds = cost.bytes / bw_share;

  // Compute and global-memory traffic overlap (double-buffered pipelines);
  // the slower engine bounds the block.
  double seconds = std::max(compute_cycles * cycle, mem_seconds);

  // ETM-classic drag: idle-but-live threads replay the control skeleton on
  // every iteration, occupying warp-scheduler slots that delay both the
  // arithmetic and the memory pipelines of the working warps. The penalty
  // scales with the idle share of live threads; ETM-aggressive removes it
  // by terminating those threads at launch (§III-D1).
  const int idle = std::max(0, cost.live_threads - cost.active_threads);
  if (idle > 0 && cost.live_threads > 0) {
    const double idle_frac = static_cast<double>(idle) / cost.live_threads;
    seconds *= 1.0 + spec.idle_thread_drag * idle_frac;
  }
  return seconds;
}

KernelTiming schedule_kernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                             const std::vector<BlockCost>& blocks,
                             bool include_launch_overhead, LaunchPlanCache* cache) {
  KernelTiming t;
  const BlockShape shape{cfg.block_threads, cfg.shared_mem};
  t.resident_per_sm =
      cache != nullptr ? cache->plan(spec, shape, cfg.precision).resident_per_sm
                       : blocks_per_sm(spec, shape);
  if (t.resident_per_sm == 0) {
    throw_error(Status::LaunchFailure,
                "kernel '" + cfg.name + "' cannot launch: block shape exceeds device limits");
  }
  t.slots = spec.num_sms * t.resident_per_sm;

  const double dispatch = spec.block_dispatch_cycles * spec.cycle_seconds();

  const int eff_resident = effective_residency(static_cast<std::int64_t>(blocks.size()),
                                               spec.num_sms, t.resident_per_sm);

  // Greedy list scheduling: each block goes to the earliest-free slot.
  SlotPool slots(t.slots);
  for (const BlockCost& b : blocks) {
    const double dur = dispatch + block_seconds(spec, cfg.precision, eff_resident, b);
    slots.assign(dur);
    t.total_flops += b.flops;
    t.total_bytes += b.bytes;
    if (b.early_exit) ++t.early_exits;
  }
  t.exec_seconds = slots.makespan();
  t.seconds = t.exec_seconds;
  if (include_launch_overhead) t.seconds += spec.kernel_launch_overhead_us * 1e-6;
  return t;
}

}  // namespace vbatch::sim
