// Kernel launch descriptors and per-block cost reports.
//
// A simulated kernel is a grid of thread blocks. Each block is a callable
// that (a) performs the real numerical work on host memory when the device
// runs in ExecMode::Full, and (b) returns a BlockCost describing what it did
// — flops, global-memory traffic, how many threads had work, how many
// barriers it crossed, whether it exited through an early-termination
// mechanism. The scheduler turns those reports into time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "vbatch/util/types.hpp"

namespace vbatch::sim {

/// Whether kernels execute their numerical payload or only report costs.
/// Full mode is the default and is what the tests verify; TimingOnly lets
/// the benchmark harness sweep large batches without paying host time for
/// arithmetic whose cost is analytic anyway (DESIGN.md §5).
enum class ExecMode : std::uint8_t { Full, TimingOnly };

/// What one thread block did during a kernel, as reported by its functor.
struct BlockCost {
  double flops = 0.0;        ///< useful floating-point operations
  double bytes = 0.0;        ///< global memory bytes moved (read + write)
  int active_threads = 0;    ///< threads with real work
  int live_threads = 0;      ///< threads alive to the end (>= active for ETM-classic)
  int sync_steps = 0;        ///< block-wide barriers crossed
  double serial_ops = 0.0;   ///< dependent scalar ops (sqrt/div chains)
  double latency_cycles = 0.0;  ///< exposed dependent-latency cycles (e.g. global
                                ///< round trips in unfused kernels) not hidden by
                                ///< other warps of this block
  bool early_exit = false;   ///< block terminated via an ETM before doing work
};

/// Static shape of a kernel launch.
struct LaunchConfig {
  std::string name;
  int grid_blocks = 0;
  int block_threads = 0;
  std::size_t shared_mem = 0;
  Precision precision = Precision::Double;
};

/// Context handed to block functors.
struct ExecContext {
  ExecMode mode = ExecMode::Full;
  [[nodiscard]] bool full() const noexcept { return mode == ExecMode::Full; }
};

/// Block functor: executes block `block_id` of the grid and reports cost.
using BlockFn = std::function<BlockCost(const ExecContext&, int block_id)>;

}  // namespace vbatch::sim
