// Hardware description consumed by the device simulator.
//
// The reproduction substitutes the paper's Tesla K40c with a deterministic
// performance model (DESIGN.md §2). A DeviceSpec carries the architectural
// parameters that drive every modelled effect: SM count and occupancy
// limits (ETM benefits, fusion's shared-memory penalty), per-precision lane
// counts (SP/DP throughput gap), memory bandwidth (roofline), and the
// launch/dispatch overheads that make kernel fusion profitable for small
// matrices in the first place.
#pragma once

#include <cstddef>
#include <string>

#include "vbatch/util/types.hpp"

namespace vbatch::sim {

struct DeviceSpec {
  std::string name;

  // --- Topology & occupancy limits (CUDA compute capability 3.5 values) ---
  int num_sms = 15;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 16;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  std::size_t shared_mem_per_sm = 48 * 1024;
  std::size_t shared_mem_per_block = 48 * 1024;

  // --- Throughput ---
  double clock_ghz = 0.745;
  int sp_lanes_per_sm = 192;  // Kepler SMX single-precision cores
  int dp_lanes_per_sm = 64;   // double-precision units
  double flops_per_lane_per_cycle = 2.0;  // FMA
  double mem_bandwidth_gbps = 288.0 * 0.75;  // ECC-on achievable bandwidth
  std::size_t global_mem_bytes = 12ull * 1024 * 1024 * 1024;

  // --- Overheads (calibration constants; see DESIGN.md §5 and the
  //     calibration notes in EXPERIMENTS.md) ---
  double kernel_launch_overhead_us = 5.0;   // host-side launch latency
  double stream_enqueue_overhead_us = 2.0;  // async enqueue cost per kernel
  double block_dispatch_cycles = 300.0;     // GigaThread engine per-block cost
  double block_exit_cycles = 200.0;         // cost of an ETM early exit
  double sync_cost_cycles = 48.0;           // __syncthreads + skeleton per step
  double serial_op_cycles = 36.0;           // latency of a dependent sqrt/div
  double global_latency_cycles = 400.0;     // global-memory round-trip latency
  // Fraction of issue bandwidth an idle-but-live thread burns relative to a
  // working one (ETM-classic drag; ETM-aggressive removes it). Idle threads
  // replay the kernel's control skeleton: loop bounds, predicate tests,
  // barrier arrivals.
  double idle_thread_drag = 0.8;

  int max_concurrent_streams = 32;

  // --- Host link (used by the hybrid CPU+GPU baseline, §IV-F) ---
  double pcie_bandwidth_gbps = 6.0;  // PCIe gen3 x16 achievable
  double pcie_latency_us = 8.0;      // per-transfer latency

  // --- Out-of-core staging link (hetero out-of-core streaming). The two
  //     directions are independent DMA engines: an H2D prefetch and a D2H
  //     write-back overlap each other and the compute stream. Defaults
  //     follow the symmetric pcie_* figures above; presets may skew them
  //     (measured PCIe copies are slightly direction-asymmetric).
  double h2d_bandwidth_gbps = 6.0;
  double d2h_bandwidth_gbps = 6.0;
  double h2d_latency_us = 8.0;
  double d2h_latency_us = 8.0;

  /// Peak arithmetic throughput in Gflop/s for the given precision.
  [[nodiscard]] double peak_gflops(Precision p) const noexcept;

  /// Arithmetic lanes per SM for the given precision.
  [[nodiscard]] int lanes_per_sm(Precision p) const noexcept;

  /// Seconds per core clock cycle.
  [[nodiscard]] double cycle_seconds() const noexcept { return 1e-9 / clock_ghz; }

  /// Modelled host→device staging time for one chunk of `bytes`: the
  /// per-transfer DMA setup latency plus the bandwidth term.
  [[nodiscard]] double h2d_seconds(double bytes) const noexcept {
    return h2d_latency_us * 1e-6 + bytes / (h2d_bandwidth_gbps * 1e9);
  }

  /// Modelled device→host write-back time for one chunk of `bytes`.
  [[nodiscard]] double d2h_seconds(double bytes) const noexcept {
    return d2h_latency_us * 1e-6 + bytes / (d2h_bandwidth_gbps * 1e9);
  }

  /// Tesla K40c (Kepler GK110B), the paper's GPU (§IV-A).
  [[nodiscard]] static DeviceSpec k40c();

  /// Tesla P100 (Pascal GP100) — a newer-generation preset for studying how
  /// the paper's techniques transfer across architectures (more SMs, higher
  /// bandwidth, cheaper launches).
  [[nodiscard]] static DeviceSpec p100();
};

}  // namespace vbatch::sim
