// The block-level SM scheduler: turns per-block cost reports into kernel
// execution time on a DeviceSpec.
//
// Model (DESIGN.md §2, §5):
//  * Occupancy gives `slots` = num_sms × blocks-resident-per-SM concurrent
//    block slots. Blocks are dispatched in grid order to the earliest-free
//    slot (greedy list scheduling). The makespan over slots is the kernel's
//    execution time — this is where load imbalance between differently
//    sized matrices, and hence the benefit of implicit sorting, appears.
//  * A block's duration combines
//      - compute: flops / (lane share), where the lane share is
//        min(active threads, per-SM lanes / resident blocks) — small
//        matrices cannot use many lanes (the parallelism deficiency that
//        motivates batching),
//      - an idle-thread drag for ETM-classic: idle-but-live threads replay
//        the control skeleton and consume issue bandwidth,
//      - serial dependency chains (sqrt/div in potf2),
//      - barrier/skeleton overhead per fused step,
//      - memory: bytes / (bandwidth share per resident block); compute and
//        memory overlap (double buffering, §III-D), so the block takes the
//        max of the two,
//      - ETM early exits cost `block_exit_cycles` only.
//  * The kernel pays a host launch overhead once.
#pragma once

#include <vector>

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/kernel_launch.hpp"
#include "vbatch/sim/occupancy.hpp"

namespace vbatch::sim {

/// Result of scheduling one kernel.
struct KernelTiming {
  double seconds = 0.0;        ///< total kernel time including launch overhead
  double exec_seconds = 0.0;   ///< makespan of the block schedule only
  int slots = 0;               ///< concurrent block slots used
  int resident_per_sm = 0;     ///< occupancy result
  double total_flops = 0.0;
  double total_bytes = 0.0;
  int early_exits = 0;
};

/// Duration of a single block given the device and residency context.
[[nodiscard]] double block_seconds(const DeviceSpec& spec, Precision prec, int resident,
                                   const BlockCost& cost);

/// Greedy list-schedule of all blocks onto the device's slots.
[[nodiscard]] KernelTiming schedule_kernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                                           const std::vector<BlockCost>& blocks,
                                           bool include_launch_overhead = true);

}  // namespace vbatch::sim
