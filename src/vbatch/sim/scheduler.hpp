// The block-level SM scheduler: turns per-block cost reports into kernel
// execution time on a DeviceSpec.
//
// Model (DESIGN.md §2, §5):
//  * Occupancy gives `slots` = num_sms × blocks-resident-per-SM concurrent
//    block slots. Blocks are dispatched in grid order to the earliest-free
//    slot (greedy list scheduling). The makespan over slots is the kernel's
//    execution time — this is where load imbalance between differently
//    sized matrices, and hence the benefit of implicit sorting, appears.
//  * A block's duration combines
//      - compute: flops / (lane share), where the lane share is
//        min(active threads, per-SM lanes / resident blocks) — small
//        matrices cannot use many lanes (the parallelism deficiency that
//        motivates batching),
//      - an idle-thread drag for ETM-classic: idle-but-live threads replay
//        the control skeleton and consume issue bandwidth,
//      - serial dependency chains (sqrt/div in potf2),
//      - barrier/skeleton overhead per fused step,
//      - memory: bytes / (bandwidth share per resident block); compute and
//        memory overlap (double buffering, §III-D), so the block takes the
//        max of the two,
//      - ETM early exits cost `block_exit_cycles` only.
//  * The kernel pays a host launch overhead once.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/kernel_launch.hpp"
#include "vbatch/sim/launch_plan.hpp"
#include "vbatch/sim/occupancy.hpp"

namespace vbatch::sim {

/// Result of scheduling one kernel.
struct KernelTiming {
  double seconds = 0.0;        ///< total kernel time including launch overhead
  double exec_seconds = 0.0;   ///< makespan of the block schedule only
  int slots = 0;               ///< concurrent block slots used
  int resident_per_sm = 0;     ///< occupancy result
  double total_flops = 0.0;
  double total_bytes = 0.0;
  int early_exits = 0;
};

/// Earliest-free-slot pool for greedy list scheduling: a min-heap over
/// (free time, slot index) pairs. Replaces the O(n·s) linear scan with
/// O(n log s) while replicating the scan's tie-breaking exactly (equal free
/// times resolve to the lowest slot index), so schedules — and hence
/// modelled times — are bit-identical to the scan's.
class SlotPool {
 public:
  explicit SlotPool(int slots) {
    std::vector<std::pair<double, int>> init;
    init.reserve(static_cast<std::size_t>(slots));
    for (int s = 0; s < slots; ++s) init.emplace_back(0.0, s);
    heap_ = Heap(std::greater<>{}, std::move(init));
  }

  /// Claims the earliest-free slot for a block of duration `dur` that may
  /// not start before `not_before`; returns the block's end time.
  double assign(double dur, double not_before = 0.0) {
    auto [free_at, slot] = heap_.top();
    heap_.pop();
    const double end = std::max(free_at, not_before) + dur;
    heap_.emplace(end, slot);
    makespan_ = std::max(makespan_, end);
    return end;
  }

  /// Latest end time over every block assigned so far (0 when none).
  [[nodiscard]] double makespan() const noexcept { return makespan_; }

 private:
  using Heap = std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                                   std::greater<>>;
  Heap heap_;
  double makespan_ = 0.0;
};

/// Residency a grid actually achieves: when the grid is smaller than the
/// device's slot capacity each SM hosts fewer blocks than the occupancy
/// limit, so every block enjoys a larger share of lanes and bandwidth.
/// Takes the grid size as 64-bit so huge pooled grids (streamed launches
/// summing many kernels) cannot overflow on platforms with 32-bit long.
[[nodiscard]] constexpr int effective_residency(std::int64_t grid_blocks, int num_sms,
                                                int resident_per_sm) noexcept {
  const std::int64_t waves = (grid_blocks + num_sms - 1) / num_sms;
  if (waves <= 1) return 1;
  if (waves >= resident_per_sm) return resident_per_sm;
  return static_cast<int>(waves);
}

/// Duration of a single block given the device and residency context.
[[nodiscard]] double block_seconds(const DeviceSpec& spec, Precision prec, int resident,
                                   const BlockCost& cost);

/// Greedy list-schedule of all blocks onto the device's slots. When `cache`
/// is given, the occupancy-derived launch plan is memoized there instead of
/// recomputed (Device::launch passes its per-device cache).
[[nodiscard]] KernelTiming schedule_kernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                                           const std::vector<BlockCost>& blocks,
                                           bool include_launch_overhead = true,
                                           LaunchPlanCache* cache = nullptr);

}  // namespace vbatch::sim
