#include "vbatch/sim/timeline.hpp"

#include <set>

namespace vbatch::sim {

double Timeline::busy_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : records_) total += r.end - r.start;
  return total;
}

double Timeline::total_flops() const noexcept {
  double total = 0.0;
  for (const auto& r : records_) total += r.flops;
  return total;
}

std::size_t Timeline::count_with_prefix(const std::string& prefix) const noexcept {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.name.rfind(prefix, 0) == 0) ++n;
  return n;
}

std::size_t Timeline::fault_count() const noexcept {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.fault) ++n;
  return n;
}

double Timeline::fault_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : records_)
    if (r.fault) total += r.end - r.start;
  return total;
}

double Timeline::transfer_bytes(TransferDir dir) const noexcept {
  double total = 0.0;
  for (const auto& t : transfers_)
    if (t.dir == dir) total += t.bytes;
  return total;
}

double Timeline::transfer_seconds(TransferDir dir) const noexcept {
  double total = 0.0;
  for (const auto& t : transfers_)
    if (t.dir == dir) total += t.end - t.start;
  return total;
}

int Timeline::streams_used() const noexcept {
  std::set<int> streams;
  for (const auto& r : records_)
    if (r.stream >= 0) streams.insert(r.stream);
  return static_cast<int>(streams.size());
}

}  // namespace vbatch::sim
