#include "vbatch/sim/device.hpp"

#include <algorithm>

#include "vbatch/util/error.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace vbatch::sim {

namespace {

// Grids below this size run serially: pool dispatch costs more than the
// blocks themselves (the aux metadata sweeps are 1–4 trivial blocks).
constexpr int kParallelGrainBlocks = 32;

}  // namespace

Device::Device(DeviceSpec spec, ExecMode mode) : spec_(std::move(spec)), mode_(mode) {}

Device::~Device() = default;

void* Device::device_malloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (mem_used_ + bytes > spec_.global_mem_bytes) {
    throw_error(Status::OutOfDeviceMemory,
                "device allocation of " + std::to_string(bytes) + " bytes exceeds capacity (" +
                    std::to_string(mem_used_) + " of " +
                    std::to_string(spec_.global_mem_bytes) + " in use)");
  }
  mem_used_ += bytes;
  if (mode_ == ExecMode::TimingOnly) {
    void* tag = reinterpret_cast<void*>(fake_next_);
    fake_next_ += (bytes + 0xFF) & ~std::uintptr_t{0xFF};
    fake_allocs_.emplace(tag, bytes);
    return tag;
  }
  auto storage = std::make_unique<char[]>(bytes);
  void* p = storage.get();
  allocs_.emplace(p, std::make_pair(std::move(storage), bytes));
  return p;
}

void Device::device_free(void* p) {
  if (p == nullptr) return;
  if (auto it = allocs_.find(p); it != allocs_.end()) {
    mem_used_ -= it->second.second;
    allocs_.erase(it);
    return;
  }
  if (auto it = fake_allocs_.find(p); it != fake_allocs_.end()) {
    mem_used_ -= it->second;
    fake_allocs_.erase(it);
    return;
  }
  throw_error(Status::InvalidArgument, "device_free of unknown pointer");
}

const std::vector<BlockCost>& Device::run_blocks(const LaunchConfig& cfg, const BlockFn& fn) {
  require(cfg.grid_blocks >= 0, "launch: negative grid");
  // Reused scratch: assign() keeps capacity across launches, so a driver's
  // hundreds of same-shaped steps allocate once instead of once per launch.
  cost_scratch_.assign(static_cast<std::size_t>(cfg.grid_blocks), BlockCost{});
  const ExecContext ctx{mode_};

  // Grid blocks are independent by CUDA semantics, so Full-mode numerics run
  // across the shared host worker pool. Every block writes only its own
  // costs_[b] slot (and, through the functor, its own matrix), so the merge
  // is in block-index order and results are identical for any worker count.
  // TimingOnly functors are trivial cost reports — never worth the dispatch.
  util::ThreadPool& pool = util::host_pool();
  if (mode_ == ExecMode::TimingOnly || cfg.grid_blocks < kParallelGrainBlocks ||
      pool.size() == 1) {
    for (int b = 0; b < cfg.grid_blocks; ++b)
      cost_scratch_[static_cast<std::size_t>(b)] = fn(ctx, b);
    return cost_scratch_;
  }

  pool.parallel_for(cfg.grid_blocks,
                    [&](int b) { cost_scratch_[static_cast<std::size_t>(b)] = fn(ctx, b); });
  return cost_scratch_;
}

void Device::charge_interval(const std::string& name, double seconds) {
  if (seconds <= 0.0) return;
  KernelRecord rec;
  rec.name = name;
  rec.start = clock_;
  rec.end = clock_ + seconds;
  rec.fault = true;
  timeline_.add(std::move(rec));
  clock_ += seconds;
}

void Device::charge_interval_at(const std::string& name, double at, double seconds) {
  if (seconds <= 0.0) return;
  KernelRecord rec;
  rec.name = name;
  rec.start = at;
  rec.end = at + seconds;
  rec.fault = true;
  timeline_.add(std::move(rec));
  clock_ = std::max(clock_, at + seconds);
}

void Device::record_transfer(TransferDir dir, int chunk, double bytes, double at,
                             double seconds) {
  if (seconds <= 0.0) return;
  TransferRecord rec;
  rec.name = to_string(dir);
  rec.dir = dir;
  rec.chunk = chunk;
  rec.bytes = bytes;
  rec.start = at;
  rec.end = at + seconds;
  timeline_.add_transfer(std::move(rec));
  clock_ = std::max(clock_, at + seconds);
}

void Device::retime_tail(std::size_t first_record, double base, double start, double rate,
                         int stream) {
  if (rate <= 0.0) rate = 1.0;
  auto& recs = timeline_.mutable_records();
  double tail = start;
  for (std::size_t i = first_record; i < recs.size(); ++i) {
    KernelRecord& rec = recs[i];
    rec.start = start + (rec.start - base) / rate;
    rec.end = start + (rec.end - base) / rate;
    if (stream >= 0 && rec.stream < 0) rec.stream = stream;
    tail = std::max(tail, rec.end);
  }
  clock_ = std::max(clock_, tail);
}

double Device::launch(const LaunchConfig& cfg, const BlockFn& fn) {
  const auto& costs = run_blocks(cfg, fn);
  const KernelTiming timing = schedule_kernel(spec_, cfg, costs, true, &plan_cache_);

  KernelRecord rec;
  rec.name = cfg.name;
  rec.start = clock_;
  rec.end = clock_ + timing.seconds;
  rec.grid_blocks = cfg.grid_blocks;
  rec.block_threads = cfg.block_threads;
  rec.shared_mem = cfg.shared_mem;
  rec.resident_per_sm = timing.resident_per_sm;
  rec.flops = timing.total_flops;
  rec.bytes = timing.total_bytes;
  rec.early_exits = timing.early_exits;
  timeline_.add(std::move(rec));

  clock_ += timing.seconds;
  return timing.seconds;
}

double Device::launch_concurrent(const std::vector<LaunchConfig>& configs,
                                 const std::vector<BlockFn>& fns, int num_streams) {
  require(configs.size() == fns.size(), "launch_concurrent: configs/fns size mismatch");
  require(num_streams >= 1, "launch_concurrent: need at least one stream");
  if (configs.empty()) return 0.0;
  // Clamp to what the device supports AND to the kernel count: more streams
  // than kernels cannot add concurrency. The per-record `stream` field below
  // exposes the post-clamp assignment (Timeline::streams_used), so callers
  // that requested 64 streams on a 32-stream device see 32, not a phantom.
  num_streams = std::min({num_streams, spec_.max_concurrent_streams,
                          static_cast<int>(configs.size())});

  // Shared slot pool sized by the first kernel's occupancy (the streamed
  // pattern launches homogeneous kernels). Per-stream ordering: kernel k on
  // stream s starts after both its host enqueue time and the previous kernel
  // on s completes.
  const BlockShape shape{configs[0].block_threads, configs[0].shared_mem};
  const int resident =
      plan_cache_.plan(spec_, shape, configs[0].precision).resident_per_sm;
  if (resident == 0) {
    throw_error(Status::LaunchFailure, "streamed kernel shape exceeds device limits");
  }
  SlotPool slots(spec_.num_sms * resident);
  std::vector<double> stream_ready(static_cast<std::size_t>(num_streams), 0.0);

  // Blocks from all streams co-occupy the device; their lane/bandwidth
  // share follows the effective residency of the pooled grid.
  std::int64_t total_blocks = 0;
  for (const auto& c : configs) total_blocks += c.grid_blocks;
  const int eff_resident = effective_residency(total_blocks, spec_.num_sms, resident);

  const double enqueue = spec_.stream_enqueue_overhead_us * 1e-6;
  const double dispatch = spec_.block_dispatch_cycles * spec_.cycle_seconds();
  double makespan = 0.0;
  const double start_clock = clock_;

  for (std::size_t k = 0; k < configs.size(); ++k) {
    const auto& costs = run_blocks(configs[k], fns[k]);
    const int stream = static_cast<int>(k % static_cast<std::size_t>(num_streams));
    const double host_time = static_cast<double>(k + 1) * enqueue;
    const double kernel_start = std::max(host_time, stream_ready[static_cast<std::size_t>(stream)]);

    double kernel_end = kernel_start;
    double flops = 0.0, bytes = 0.0;
    int exits = 0;
    for (const BlockCost& b : costs) {
      const double dur = dispatch + block_seconds(spec_, configs[k].precision, eff_resident, b);
      kernel_end = std::max(kernel_end, slots.assign(dur, kernel_start));
      flops += b.flops;
      bytes += b.bytes;
      if (b.early_exit) ++exits;
    }
    stream_ready[static_cast<std::size_t>(stream)] = kernel_end;
    makespan = std::max(makespan, kernel_end);

    KernelRecord rec;
    rec.name = configs[k].name;
    rec.start = start_clock + kernel_start;
    rec.end = start_clock + kernel_end;
    rec.grid_blocks = configs[k].grid_blocks;
    rec.block_threads = configs[k].block_threads;
    rec.shared_mem = configs[k].shared_mem;
    rec.resident_per_sm = resident;
    rec.flops = flops;
    rec.bytes = bytes;
    rec.early_exits = exits;
    rec.stream = stream;
    timeline_.add(std::move(rec));
  }

  clock_ += makespan;
  return makespan;
}

}  // namespace vbatch::sim
