#include "vbatch/sim/device_spec.hpp"

namespace vbatch::sim {

double DeviceSpec::peak_gflops(Precision p) const noexcept {
  return static_cast<double>(num_sms) * lanes_per_sm(p) * flops_per_lane_per_cycle * clock_ghz;
}

int DeviceSpec::lanes_per_sm(Precision p) const noexcept {
  return p == Precision::Single ? sp_lanes_per_sm : dp_lanes_per_sm;
}

DeviceSpec DeviceSpec::k40c() {
  DeviceSpec s;
  s.name = "Tesla K40c (simulated)";
  // Defaults above are the K40c values; peak: 15*192*2*0.745 = 4.29 SP Tflop/s,
  // 15*64*2*0.745 = 1.43 DP Tflop/s — matching the published board figures.
  // Staging link: pinned-memory PCIe gen3 copies run slightly faster D2H
  // than H2D on Kepler boards (bandwidthTest-style figures).
  s.h2d_bandwidth_gbps = 6.0;
  s.d2h_bandwidth_gbps = 6.6;
  s.h2d_latency_us = 8.0;
  s.d2h_latency_us = 8.0;
  return s;
}

DeviceSpec DeviceSpec::p100() {
  DeviceSpec s;
  s.name = "Tesla P100 (simulated)";
  s.num_sms = 56;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.shared_mem_per_sm = 64 * 1024;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 1.328;
  s.sp_lanes_per_sm = 64;  // Pascal SM: 64 SP + 32 DP cores
  s.dp_lanes_per_sm = 32;
  s.mem_bandwidth_gbps = 732.0 * 0.8;  // HBM2, ECC overhead smaller
  s.global_mem_bytes = 16ull * 1024 * 1024 * 1024;
  s.kernel_launch_overhead_us = 4.0;
  // Staging link: a healthier gen3 x16 implementation than the K40c's.
  s.h2d_bandwidth_gbps = 11.5;
  s.d2h_bandwidth_gbps = 12.3;
  s.h2d_latency_us = 6.0;
  s.d2h_latency_us = 6.0;
  // Peaks: 56*64*2*1.328 = 9.52 SP Tflop/s, 56*32*2*1.328 = 4.76 DP Tflop/s.
  return s;
}

}  // namespace vbatch::sim
