// The simulated GPU device: memory arena, kernel execution, streams, clock.
//
// Device is the substitution for the paper's Tesla K40c (DESIGN.md §2). It
// owns
//   * a capacity-checked memory arena standing in for the 12 GB of GDDR5
//     (the padding baseline of §IV-F genuinely runs out of it),
//   * a device clock advanced by the scheduler model for every launch,
//   * a timeline of kernel records,
//   * stream-based concurrent kernel execution (used by the streamed syrk
//     alternative of §III-E.3),
//   * a launch-plan cache memoizing occupancy per launch shape, and a
//     reusable per-launch BlockCost scratch buffer (docs/simulator.md,
//     "Execution engine").
//
// In ExecMode::Full, launches run every block functor (the real numerics)
// on the host — partitioned across the shared worker pool
// (vbatch::util::host_pool), which is safe because CUDA semantics already
// require grid blocks to be independent. Per-block results are merged in
// block-index order, so modelled times and factorized bits are identical
// for any worker count. In ExecMode::TimingOnly the functors are invoked
// with a context telling them to skip the math and only report costs;
// allocations are then virtual (tracked against capacity but not backed by
// host memory).
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/kernel_launch.hpp"
#include "vbatch/sim/launch_plan.hpp"
#include "vbatch/sim/scheduler.hpp"
#include "vbatch/sim/timeline.hpp"

namespace vbatch::sim {

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::k40c(), ExecMode mode = ExecMode::Full);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ExecMode mode() const noexcept { return mode_; }
  void set_mode(ExecMode mode) noexcept { mode_ = mode; }

  // --- Memory arena -------------------------------------------------------

  /// Allocates `bytes` of device memory. Throws Status::OutOfDeviceMemory
  /// when the arena capacity (spec().global_mem_bytes) is exceeded. In
  /// TimingOnly mode the returned pointer is a unique tag that must not be
  /// dereferenced (kernels skip their numerical payload in that mode).
  [[nodiscard]] void* device_malloc(std::size_t bytes);
  void device_free(void* p);

  template <typename T>
  [[nodiscard]] T* device_malloc_array(std::size_t count) {
    return static_cast<T*>(device_malloc(count * sizeof(T)));
  }

  [[nodiscard]] std::size_t mem_used() const noexcept { return mem_used_; }
  [[nodiscard]] std::size_t mem_capacity() const noexcept { return spec_.global_mem_bytes; }

  // --- Execution ----------------------------------------------------------

  /// Launches a kernel synchronously: runs all block functors (Full mode),
  /// schedules the reported costs, advances the device clock, records the
  /// kernel in the timeline. Returns the modelled kernel duration (s).
  double launch(const LaunchConfig& cfg, const BlockFn& fn);

  /// Launches `configs.size()` kernels distributed round-robin over
  /// `num_streams` streams with concurrent execution (the streamed syrk
  /// pattern): the host pays an enqueue overhead per kernel, kernels on
  /// different streams share the device's block slots. Returns total wall
  /// time from first enqueue to last completion.
  double launch_concurrent(const std::vector<LaunchConfig>& configs,
                           const std::vector<BlockFn>& fns, int num_streams);

  /// Charges a non-kernel interval to the device: advances the clock by
  /// `seconds` and appends a fault-flagged timeline record under `name`
  /// (zero useful flops). The fault-recovery machinery uses this to make
  /// wasted attempts, retry backoffs and watchdog stalls visible to the
  /// profiler and the energy integration.
  void charge_interval(const std::string& name, double seconds);

  /// Like charge_interval, but places the fault record at an absolute clock
  /// position `at` instead of the current clock (the hetero scheduler uses
  /// this to align wasted intervals with the virtual-time schedule when
  /// chunks overlap on concurrent streams). The clock only moves forward.
  void charge_interval_at(const std::string& name, double at, double seconds);

  /// Remaps the records appended since `first_record` from the serial clock
  /// window starting at `base` into the scheduled stream slot: a record time
  /// t becomes start + (t - base) / rate (rate < 1 stretches the chunk, the
  /// modelled cost of contending for the device's stream slots). Records not
  /// yet stream-tagged get `stream` (>= 0); inner tags (e.g. the streamed
  /// syrk) are preserved. The clock advances to the latest retimed end but
  /// never moves backward — concurrent chunks may retime out of order.
  void retime_tail(std::size_t first_record, double base, double start, double rate, int stream);

  /// Appends a host↔device staging copy to the timeline's transfer lane at
  /// an absolute clock interval [at, at + seconds). Transfers overlap
  /// kernels by design (independent DMA engines), so the device clock only
  /// ratchets forward to the transfer's end — it never stalls compute.
  void record_transfer(TransferDir dir, int chunk, double bytes, double at, double seconds);

  /// Device-model clock in seconds since construction / last reset.
  [[nodiscard]] double time() const noexcept { return clock_; }
  void reset_time() noexcept { clock_ = 0.0; }

  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }
  void clear_timeline() { timeline_.clear(); }

  /// Memoized occupancy plans (diagnostic; see LaunchPlanCache).
  [[nodiscard]] const LaunchPlanCache& plan_cache() const noexcept { return plan_cache_; }

 private:
  /// Runs the grid (pool-parallel in Full mode for grids worth the
  /// dispatch) into cost_scratch_; the result is valid until the next
  /// launch on this device.
  const std::vector<BlockCost>& run_blocks(const LaunchConfig& cfg, const BlockFn& fn);

  DeviceSpec spec_;
  ExecMode mode_;
  std::size_t mem_used_ = 0;
  double clock_ = 0.0;
  Timeline timeline_;
  LaunchPlanCache plan_cache_;
  std::vector<BlockCost> cost_scratch_;
  // Real allocations (Full mode) and their sizes; TimingOnly allocations are
  // tag pointers tracked in fake_allocs_.
  std::unordered_map<void*, std::pair<std::unique_ptr<char[]>, std::size_t>> allocs_;
  std::unordered_map<void*, std::size_t> fake_allocs_;
  std::uintptr_t fake_next_ = 0x1000;
};

}  // namespace vbatch::sim
