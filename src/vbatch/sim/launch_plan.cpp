#include "vbatch/sim/launch_plan.hpp"

namespace vbatch::sim {

const LaunchPlan& LaunchPlanCache::plan(const DeviceSpec& spec, const BlockShape& shape,
                                        Precision prec) {
  const Key key{shape.threads, shape.shared_mem, prec};
  if (auto it = map_.find(key); it != map_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  LaunchPlan p;
  p.resident_per_sm = blocks_per_sm(spec, shape);
  p.slots = spec.num_sms * p.resident_per_sm;
  p.lanes_per_sm = spec.lanes_per_sm(prec);
  return map_.emplace(key, p).first->second;
}

}  // namespace vbatch::sim
