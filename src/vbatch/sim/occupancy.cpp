#include "vbatch/sim/occupancy.hpp"

#include <algorithm>

namespace vbatch::sim {

int blocks_per_sm(const DeviceSpec& spec, const BlockShape& shape) noexcept {
  if (shape.threads <= 0 || shape.threads > spec.max_threads_per_block) return 0;
  if (shape.shared_mem > spec.shared_mem_per_block) return 0;

  // Threads are allocated in whole warps.
  const int warps = (shape.threads + spec.warp_size - 1) / spec.warp_size;
  const int thread_limit = spec.max_threads_per_sm / (warps * spec.warp_size);

  const int smem_limit =
      shape.shared_mem == 0
          ? spec.max_blocks_per_sm
          : static_cast<int>(spec.shared_mem_per_sm / shape.shared_mem);

  return std::max(0, std::min({thread_limit, smem_limit, spec.max_blocks_per_sm}));
}

int device_slots(const DeviceSpec& spec, const BlockShape& shape) noexcept {
  return spec.num_sms * blocks_per_sm(spec, shape);
}

double occupancy_fraction(const DeviceSpec& spec, const BlockShape& shape) noexcept {
  const int resident = blocks_per_sm(spec, shape);
  if (resident == 0) return 0.0;
  const int warps = (shape.threads + spec.warp_size - 1) / spec.warp_size;
  return static_cast<double>(resident * warps * spec.warp_size) /
         static_cast<double>(spec.max_threads_per_sm);
}

}  // namespace vbatch::sim
