// Kernel-level profiling over a device timeline — the nvprof-style view of
// a simulated run. Aggregates per kernel name: launch counts, time share,
// achieved Gflop/s and bandwidth, average residency and the fraction of
// blocks that exited through an ETM. The timeline's transfer lane (the
// out-of-core staging copies) aggregates into the same table under "h2d" /
// "d2h", so transfer-bound vs compute-bound runs are visible at a glance.
// Tests use it for scheduling assertions; tools/vbatch_cli exposes it to
// users.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/timeline.hpp"

namespace vbatch::sim {

struct KernelProfile {
  std::string name;
  int launches = 0;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  long blocks = 0;
  long early_exits = 0;
  double resident_sum = 0.0;  ///< Σ per-launch residency (for the average)
  int streams = 0;  ///< distinct streams that carried this kernel (0 = sync launches)
  int faults = 0;   ///< fault-recovery intervals (wasted attempts, backoffs)
  double span_seconds = 0.0;  ///< union of this kernel's record intervals

  [[nodiscard]] double gflops() const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
  [[nodiscard]] double gbytes_per_s() const noexcept {
    return seconds > 0.0 ? bytes / seconds * 1e-9 : 0.0;
  }
  [[nodiscard]] double avg_resident() const noexcept {
    return launches > 0 ? resident_sum / launches : 0.0;
  }
  [[nodiscard]] double exit_fraction() const noexcept {
    return blocks > 0 ? static_cast<double>(early_exits) / static_cast<double>(blocks) : 0.0;
  }
  /// Stream-overlap ratio: summed kernel time over the union of the
  /// intervals it occupied. 1.0 = fully serial; k = k-way concurrency.
  [[nodiscard]] double overlap() const noexcept {
    return span_seconds > 0.0 ? seconds / span_seconds : 1.0;
  }
};

/// Aggregates the timeline per kernel name, sorted by descending time.
[[nodiscard]] std::vector<KernelProfile> profile_timeline(const Timeline& timeline);

/// Renders an nvprof-style table: time share, launches, Gflop/s, GB/s,
/// average residency, ETM exit fraction.
void print_profile(std::ostream& os, const std::vector<KernelProfile>& profiles);

}  // namespace vbatch::sim
