// CUDA-style occupancy calculation: how many thread blocks of a given shape
// fit concurrently on one SM. This is the mechanism behind the paper's
// observation that the fused kernel loses at larger sizes — its m×nb shared
// memory panel lowers residency (§III-D, §IV-C).
#pragma once

#include <cstddef>

#include "vbatch/sim/device_spec.hpp"

namespace vbatch::sim {

struct BlockShape {
  int threads = 0;
  std::size_t shared_mem = 0;
};

/// Number of blocks of this shape resident per SM (0 if the shape cannot
/// launch at all, e.g. shared memory above the per-block limit).
[[nodiscard]] int blocks_per_sm(const DeviceSpec& spec, const BlockShape& shape) noexcept;

/// Total concurrent block slots across the device.
[[nodiscard]] int device_slots(const DeviceSpec& spec, const BlockShape& shape) noexcept;

/// Achieved occupancy as a fraction of max resident threads (diagnostic).
[[nodiscard]] double occupancy_fraction(const DeviceSpec& spec, const BlockShape& shape) noexcept;

}  // namespace vbatch::sim
