// Execution timeline: an append-only record of every kernel the simulated
// device ran, with timing and cost detail. Tests use it to assert scheduling
// invariants; the energy meter integrates power over it; benches can dump it
// for inspection.
#pragma once

#include <string>
#include <vector>

namespace vbatch::sim {

struct KernelRecord {
  std::string name;
  double start = 0.0;   ///< device-clock seconds
  double end = 0.0;
  int grid_blocks = 0;
  int block_threads = 0;
  std::size_t shared_mem = 0;
  int resident_per_sm = 0;
  double flops = 0.0;
  double bytes = 0.0;
  int early_exits = 0;
  /// Stream the kernel actually ran on (−1 for plain synchronous launches).
  /// launch_concurrent clamps the requested stream count to the device limit
  /// and to the kernel count; this records the post-clamp assignment so
  /// profiles report real concurrency, not the requested number.
  int stream = -1;
  /// True for intervals charged by the fault-recovery machinery (a wasted
  /// faulted attempt, a retry backoff, a watchdog stall) rather than a real
  /// kernel: zero useful flops, but the device was occupied — the energy
  /// integration and the profiler's fault column both count them.
  bool fault = false;
};

class Timeline {
 public:
  void add(KernelRecord rec) { records_.push_back(std::move(rec)); }
  void clear() { records_.clear(); }

  [[nodiscard]] const std::vector<KernelRecord>& records() const noexcept { return records_; }
  /// Mutable access for the device's retime pass (Device::retime_tail moves
  /// freshly appended records into their scheduled stream slot).
  [[nodiscard]] std::vector<KernelRecord>& mutable_records() noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Total busy time (sum of kernel durations; kernels on streams may
  /// overlap, in which case busy time can exceed wall time).
  [[nodiscard]] double busy_seconds() const noexcept;

  /// Total useful flops across all kernels.
  [[nodiscard]] double total_flops() const noexcept;

  /// Total launches whose name matches `prefix`.
  [[nodiscard]] std::size_t count_with_prefix(const std::string& prefix) const noexcept;

  /// Number of distinct streams that actually carried kernels (0 when no
  /// stream-tagged record exists). This is the post-clamp figure benches
  /// should report instead of the stream count they requested.
  [[nodiscard]] int streams_used() const noexcept;

  /// Fault-recovery intervals (records with the fault flag): count and
  /// total wasted seconds. Tests assert retries are visible here.
  [[nodiscard]] std::size_t fault_count() const noexcept;
  [[nodiscard]] double fault_seconds() const noexcept;

 private:
  std::vector<KernelRecord> records_;
};

}  // namespace vbatch::sim
