// Execution timeline: an append-only record of every kernel the simulated
// device ran, with timing and cost detail. Tests use it to assert scheduling
// invariants; the energy meter integrates power over it; benches can dump it
// for inspection.
#pragma once

#include <string>
#include <vector>

namespace vbatch::sim {

struct KernelRecord {
  std::string name;
  double start = 0.0;   ///< device-clock seconds
  double end = 0.0;
  int grid_blocks = 0;
  int block_threads = 0;
  std::size_t shared_mem = 0;
  int resident_per_sm = 0;
  double flops = 0.0;
  double bytes = 0.0;
  int early_exits = 0;
  /// Stream the kernel actually ran on (−1 for plain synchronous launches).
  /// launch_concurrent clamps the requested stream count to the device limit
  /// and to the kernel count; this records the post-clamp assignment so
  /// profiles report real concurrency, not the requested number.
  int stream = -1;
  /// True for intervals charged by the fault-recovery machinery (a wasted
  /// faulted attempt, a retry backoff, a watchdog stall) rather than a real
  /// kernel: zero useful flops, but the device was occupied — the energy
  /// integration and the profiler's fault column both count them.
  bool fault = false;
};

/// Direction of a host↔device staging copy.
enum class TransferDir : unsigned char { H2D, D2H };

[[nodiscard]] constexpr const char* to_string(TransferDir d) noexcept {
  return d == TransferDir::H2D ? "h2d" : "d2h";
}

/// One modelled host↔device chunk copy on the device's DMA lane — the
/// out-of-core streaming pipeline's record (hetero/scheduler.hpp). Lives in
/// a separate timeline lane: transfers overlap kernels by design, so they
/// must not perturb the kernel-record invariants tests and the energy
/// integration rely on.
struct TransferRecord {
  std::string name;  ///< e.g. "h2d.chunk" — profile aggregation key
  TransferDir dir = TransferDir::H2D;
  double bytes = 0.0;
  double start = 0.0;  ///< device-clock seconds
  double end = 0.0;
  int chunk = -1;  ///< hetero chunk index (-1 when unknown)
};

class Timeline {
 public:
  void add(KernelRecord rec) { records_.push_back(std::move(rec)); }
  void add_transfer(TransferRecord rec) { transfers_.push_back(std::move(rec)); }
  void clear() {
    records_.clear();
    transfers_.clear();
  }

  [[nodiscard]] const std::vector<KernelRecord>& records() const noexcept { return records_; }
  /// Mutable access for the device's retime pass (Device::retime_tail moves
  /// freshly appended records into their scheduled stream slot).
  [[nodiscard]] std::vector<KernelRecord>& mutable_records() noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Total busy time (sum of kernel durations; kernels on streams may
  /// overlap, in which case busy time can exceed wall time).
  [[nodiscard]] double busy_seconds() const noexcept;

  /// Total useful flops across all kernels.
  [[nodiscard]] double total_flops() const noexcept;

  /// Total launches whose name matches `prefix`.
  [[nodiscard]] std::size_t count_with_prefix(const std::string& prefix) const noexcept;

  /// Number of distinct streams that actually carried kernels (0 when no
  /// stream-tagged record exists). This is the post-clamp figure benches
  /// should report instead of the stream count they requested.
  [[nodiscard]] int streams_used() const noexcept;

  /// Fault-recovery intervals (records with the fault flag): count and
  /// total wasted seconds. Tests assert retries are visible here.
  [[nodiscard]] std::size_t fault_count() const noexcept;
  [[nodiscard]] double fault_seconds() const noexcept;

  // --- Transfer lane (out-of-core staging copies) -------------------------
  [[nodiscard]] const std::vector<TransferRecord>& transfers() const noexcept {
    return transfers_;
  }
  /// Total bytes / busy seconds moved in the given direction.
  [[nodiscard]] double transfer_bytes(TransferDir dir) const noexcept;
  [[nodiscard]] double transfer_seconds(TransferDir dir) const noexcept;

 private:
  std::vector<KernelRecord> records_;
  std::vector<TransferRecord> transfers_;
};

}  // namespace vbatch::sim
