#include "vbatch/sim/kernel_launch.hpp"

namespace vbatch::sim {

// BlockCost/LaunchConfig are aggregates; this TU only anchors the header.

}  // namespace vbatch::sim
