#include "vbatch/sim/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>

namespace vbatch::sim {

std::vector<KernelProfile> profile_timeline(const Timeline& timeline) {
  std::map<std::string, KernelProfile> agg;
  std::map<std::string, std::set<int>> streams;
  std::map<std::string, std::vector<std::pair<double, double>>> intervals;
  for (const auto& rec : timeline.records()) {
    KernelProfile& p = agg[rec.name];
    p.name = rec.name;
    ++p.launches;
    p.seconds += rec.end - rec.start;
    p.flops += rec.flops;
    p.bytes += rec.bytes;
    p.blocks += rec.grid_blocks;
    p.early_exits += rec.early_exits;
    p.resident_sum += rec.resident_per_sm;
    if (rec.fault) ++p.faults;
    if (rec.stream >= 0) streams[rec.name].insert(rec.stream);
    if (rec.end > rec.start) intervals[rec.name].emplace_back(rec.start, rec.end);
  }
  // The transfer lane (out-of-core staging copies) aggregates like kernels:
  // the GB/s column then reads as the achieved link bandwidth, and the
  // overlap column as the h2d/d2h pipelining the double-buffered schedule
  // achieved. Zero flops keeps them out of every arithmetic ratio.
  for (const auto& t : timeline.transfers()) {
    KernelProfile& p = agg[t.name];
    p.name = t.name;
    ++p.launches;
    p.seconds += t.end - t.start;
    p.bytes += t.bytes;
    if (t.end > t.start) intervals[t.name].emplace_back(t.start, t.end);
  }
  for (auto& [name, used] : streams) agg[name].streams = static_cast<int>(used.size());
  for (auto& [name, iv] : intervals) {
    // Union of the kernel's intervals: records on concurrent streams overlap
    // and must count once toward the span the overlap ratio divides by.
    std::sort(iv.begin(), iv.end());
    double span = 0.0;
    double lo = iv.front().first;
    double hi = iv.front().second;
    for (const auto& [s, e] : iv) {
      if (s > hi) {
        span += hi - lo;
        lo = s;
        hi = e;
      } else {
        hi = std::max(hi, e);
      }
    }
    agg[name].span_seconds = span + (hi - lo);
  }
  std::vector<KernelProfile> out;
  out.reserve(agg.size());
  for (auto& [name, p] : agg) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(),
            [](const KernelProfile& a, const KernelProfile& b) { return a.seconds > b.seconds; });
  return out;
}

void print_profile(std::ostream& os, const std::vector<KernelProfile>& profiles) {
  double total = 0.0;
  for (const auto& p : profiles) total += p.seconds;
  os << std::left << std::setw(28) << "kernel" << std::right << std::setw(8) << "time%"
     << std::setw(10) << "launches" << std::setw(12) << "time(us)" << std::setw(10) << "GF/s"
     << std::setw(10) << "GB/s" << std::setw(10) << "res/SM" << std::setw(9) << "exits%"
     << std::setw(9) << "streams" << std::setw(9) << "overlap" << std::setw(8) << "faults"
     << '\n';
  os << std::string(123, '-') << '\n';
  for (const auto& p : profiles) {
    os << std::left << std::setw(28) << p.name << std::right << std::fixed
       << std::setprecision(1) << std::setw(8) << (total > 0 ? p.seconds / total * 100.0 : 0.0)
       << std::setw(10) << p.launches << std::setw(12) << p.seconds * 1e6 << std::setw(10)
       << p.gflops() << std::setw(10) << p.gbytes_per_s() << std::setw(10) << p.avg_resident()
       << std::setw(9) << p.exit_fraction() * 100.0;
    if (p.streams > 0) {
      os << std::setw(9) << p.streams << std::setw(9) << p.overlap();
    } else {
      os << std::setw(9) << "-" << std::setw(9) << "-";
    }
    if (p.faults > 0) {
      os << std::setw(8) << p.faults;
    } else {
      os << std::setw(8) << "-";
    }
    os << '\n';
  }
}

}  // namespace vbatch::sim
