// Launch-plan cache: memoized occupancy results per (block shape, precision).
//
// A factorization driver launches the same few kernel shapes hundreds of
// times per call (one fused step per nb panel, one trsm sweep per 32-wide
// diagonal block, ...). The occupancy arithmetic is cheap but not free, and
// recomputing it on every launch sits on the host critical path between
// kernels. Each Device owns one cache (its DeviceSpec is immutable, so the
// spec is not part of the key) and hands it to the scheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/occupancy.hpp"

namespace vbatch::sim {

/// Everything the scheduler derives from a launch shape before looking at
/// the per-block costs.
struct LaunchPlan {
  int resident_per_sm = 0;  ///< occupancy limit for the shape
  int slots = 0;            ///< num_sms × resident_per_sm
  int lanes_per_sm = 0;     ///< precision-dependent lane count
};

class LaunchPlanCache {
 public:
  /// Returns the memoized plan for the shape, computing it on first sight.
  /// The reference stays valid for the cache's lifetime.
  const LaunchPlan& plan(const DeviceSpec& spec, const BlockShape& shape, Precision prec);

  [[nodiscard]] std::size_t distinct_plans() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void clear() noexcept { map_.clear(), hits_ = 0, misses_ = 0; }

 private:
  struct Key {
    int threads;
    std::size_t shared_mem;
    Precision prec;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.threads);
      h = h * 0x9E3779B97F4A7C15ULL ^ k.shared_mem;
      h = h * 0x9E3779B97F4A7C15ULL ^ static_cast<std::size_t>(k.prec);
      return h;
    }
  };

  std::unordered_map<Key, LaunchPlan, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vbatch::sim
