// Deterministic fault injection for the heterogeneous runtime.
//
// A production vbatched service splitting one call across a CPU + multi-GPU
// pool must survive device loss, transient memory faults and hung kernels.
// The simulator makes those scenarios *testable*: a FaultPlan is a pure
// function of (spec, seed, schedule position) — no wall clock, no global
// state — so a given (pool, seed, fault spec) replays the exact same fault
// sequence every run, and the recovery machinery in hetero/scheduler can be
// asserted bit-for-bit (docs/robustness.md).
//
// Three fault classes are modelled:
//   * Transient  — a simulated ECC / launch failure: the attempt's work is
//     discarded (the chunk's matrices are never written), the executor
//     retries after a deterministic virtual-time backoff;
//   * Hang       — the attempt never completes; a virtual-time watchdog
//     converts the hang into permanent executor loss;
//   * ExecutorLoss — a device falls off the bus after completing a given
//     number of chunks; its remaining chunks are re-dispatched (LPT over
//     the survivors' clocks) and peers keep stealing as usual.
// When a chunk cannot be completed by any surviving executor it is
// *poisoned*: its problems get the distinguished kInfoChunkLost info code
// (util/error.hpp) and the call still returns — graceful degradation, not
// an exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vbatch::fault {

/// Outcome of one (executor, chunk, attempt) query, and the kind tag of the
/// recovery events the scheduler logs.
enum class FaultKind : std::uint8_t {
  None = 0,      ///< the attempt runs normally
  Transient,     ///< simulated ECC/launch failure: discard work, retry
  Hang,          ///< attempt never completes: watchdog → executor loss
  ExecutorLoss,  ///< permanent device death (event log only)
  ChunkLost,     ///< chunk unrecoverable → info poison (event log only)
  InFlightLost,  ///< chunk aborted mid-flight by its executor's death: the
                 ///< partial stream interval is wasted, the chunk (whose
                 ///< numerics never committed) re-dispatches cleanly
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// Targeted transient fault: attempts 1..times on matching (exec, chunk)
/// pairs fail. -1 matches any executor / any chunk.
struct TransientRule {
  int exec = -1;
  int chunk = -1;
  int times = 1;
};

/// Targeted hang: every matching attempt hangs (the executor is lost via
/// the watchdog, so at most one fires per executor).
struct HangRule {
  int exec = -1;
  int chunk = -1;
};

/// Permanent death: the executor is lost once it has completed `after`
/// chunks (0 = dead before completing anything).
struct DeathRule {
  int exec = 0;
  int after = 0;
};

/// Parsed fault-injection description. Built programmatically or from the
/// spec grammar (parse_fault_spec); attached to a DevicePool, the CLI's
/// --inject-faults, or the VBATCH_INJECT_FAULTS environment knob.
struct FaultSpec {
  std::uint64_t seed = 2016;   ///< seeds the rate-based transient hash
  double transient_rate = 0.0; ///< per-attempt transient probability
  std::vector<TransientRule> transients;
  std::vector<HangRule> hangs;
  std::vector<DeathRule> deaths;

  [[nodiscard]] bool empty() const noexcept {
    return transient_rate == 0.0 && transients.empty() && hangs.empty() && deaths.empty();
  }
  /// Round-trippable description in the spec grammar (for logs and JSON).
  [[nodiscard]] std::string describe() const;
};

/// Parses the semicolon-separated spec grammar:
///   seed=N
///   transient:rate=P                      (probabilistic, hashed per attempt)
///   transient:exec=E,chunk=C,times=T      (targeted; -1 = any, times def. 1)
///   hang:exec=E,chunk=C                   (targeted; -1 = any)
///   die:exec=E,after=K                    (executor E dies after K chunks)
/// e.g. "seed=7;transient:rate=0.2;die:exec=1,after=2;hang:exec=0,chunk=3".
/// Throws Status::InvalidArgument on malformed input.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& spec);

/// One recovery event in the schedule, on the acting executor's virtual
/// clock. The scheduler logs every fault and recovery decision here; tests
/// replay the log to assert determinism and the profiler charges the wasted
/// intervals to the device timelines.
struct FaultEvent {
  FaultKind kind = FaultKind::None;
  int exec = -1;     ///< acting executor (-1 for pool-level ChunkLost)
  int chunk = -1;    ///< affected chunk (-1 for ExecutorLoss)
  int attempt = 0;   ///< 1-based attempt index on that executor
  double start = 0.0;           ///< executor virtual clock when it fired
  double waste_seconds = 0.0;   ///< modelled device time lost to the attempt
  double backoff_seconds = 0.0; ///< virtual backoff charged before the retry
  int stream = -1;   ///< stream slot the attempt occupied (multi-stream executors)
};

/// The injection oracle: a pure function of (spec, exec, chunk, attempt).
/// No wall clock and no mutable state, so the same spec and schedule replay
/// identical fault sequences — the determinism the recovery tests memcmp.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool empty() const noexcept { return spec_.empty(); }

  /// The injected outcome when executor `exec` starts its `attempt`-th try
  /// (1-based) of chunk `chunk`. Hang rules take precedence over targeted
  /// transients, which take precedence over the rate hash.
  [[nodiscard]] FaultKind attempt_outcome(int exec, int chunk, int attempt) const noexcept;

  /// Chunks executor `exec` completes before dying, or -1 for never.
  [[nodiscard]] int dies_after(int exec) const noexcept;

 private:
  FaultSpec spec_;
};

/// Bounded-retry / watchdog policy for the recovery loop. All times are
/// virtual (modelled) seconds. The k-th retry of a chunk on one executor
/// backs off backoff_seconds * backoff_multiplier^(k-1); after max_attempts
/// transient failures the executor gives the chunk up for re-dispatch to a
/// peer, and a hung attempt is converted into executor loss after
/// watchdog_seconds.
struct RetryPolicy {
  int max_attempts = 3;
  double backoff_seconds = 50e-6;
  double backoff_multiplier = 2.0;
  double watchdog_seconds = 5e-3;
};

}  // namespace vbatch::fault
