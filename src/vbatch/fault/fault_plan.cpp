#include "vbatch/fault/fault_plan.hpp"

#include <charconv>
#include <cstdio>

#include "vbatch/util/error.hpp"

namespace vbatch::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::Transient: return "transient";
    case FaultKind::Hang: return "hang";
    case FaultKind::ExecutorLoss: return "executor-loss";
    case FaultKind::ChunkLost: return "chunk-lost";
    case FaultKind::InFlightLost: return "in-flight-lost";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  if (transient_rate > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ";transient:rate=%g", transient_rate);
    out += buf;
  }
  for (const auto& r : transients)
    out += ";transient:exec=" + std::to_string(r.exec) + ",chunk=" + std::to_string(r.chunk) +
           ",times=" + std::to_string(r.times);
  for (const auto& r : hangs)
    out += ";hang:exec=" + std::to_string(r.exec) + ",chunk=" + std::to_string(r.chunk);
  for (const auto& r : deaths)
    out += ";die:exec=" + std::to_string(r.exec) + ",after=" + std::to_string(r.after);
  return out;
}

namespace {

[[noreturn]] void bad_spec(const std::string& why) {
  throw_error(Status::InvalidArgument, "parse_fault_spec: " + why);
}

long parse_long(const std::string& value, const std::string& what) {
  long out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) bad_spec("bad integer '" + value + "' for " + what);
  return out;
}

double parse_rate(const std::string& value) {
  char* end = nullptr;
  const double out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || out < 0.0 || out > 1.0)
    bad_spec("rate must be a number in [0, 1], got '" + value + "'");
  return out;
}

/// Splits "k=v,k=v" into pairs; every key must appear in `allowed`.
std::vector<std::pair<std::string, std::string>> parse_kv(const std::string& body,
                                                          const std::string& item) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string field =
        body.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = field.find('=');
    if (field.empty() || eq == std::string::npos || eq == 0 || eq + 1 == field.size())
      bad_spec("expected key=value in '" + item + "'");
    out.emplace_back(field.substr(0, eq), field.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// SplitMix64 finalizer — the stateless hash behind the rate-based faults.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string item =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (item.empty()) {
      if (spec.empty()) break;  // an empty spec is a no-op plan
      bad_spec("empty item (stray ';')");
    }

    if (item.rfind("seed=", 0) == 0) {
      out.seed = static_cast<std::uint64_t>(parse_long(item.substr(5), "seed"));
      continue;
    }
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos)
      bad_spec("unknown item '" + item + "' (expected seed=, transient:, hang:, or die:)");
    const std::string head = item.substr(0, colon);
    const auto kv = parse_kv(item.substr(colon + 1), item);

    if (head == "transient") {
      TransientRule rule;
      bool targeted = false;
      double rate = -1.0;
      for (const auto& [k, v] : kv) {
        if (k == "rate") rate = parse_rate(v);
        else if (k == "exec") { rule.exec = static_cast<int>(parse_long(v, "exec")); targeted = true; }
        else if (k == "chunk") { rule.chunk = static_cast<int>(parse_long(v, "chunk")); targeted = true; }
        else if (k == "times") { rule.times = static_cast<int>(parse_long(v, "times")); targeted = true; }
        else bad_spec("unknown transient key '" + k + "'");
      }
      if (rate >= 0.0 && targeted) bad_spec("transient: rate= cannot be combined with targeting");
      if (rate >= 0.0) {
        out.transient_rate = rate;
      } else {
        if (rule.times < 1) bad_spec("transient: times must be >= 1");
        if (rule.exec < -1 || rule.chunk < -1) bad_spec("transient: exec/chunk must be >= -1");
        out.transients.push_back(rule);
      }
    } else if (head == "hang") {
      HangRule rule;
      for (const auto& [k, v] : kv) {
        if (k == "exec") rule.exec = static_cast<int>(parse_long(v, "exec"));
        else if (k == "chunk") rule.chunk = static_cast<int>(parse_long(v, "chunk"));
        else bad_spec("unknown hang key '" + k + "'");
      }
      if (rule.exec < -1 || rule.chunk < -1) bad_spec("hang: exec/chunk must be >= -1");
      out.hangs.push_back(rule);
    } else if (head == "die") {
      DeathRule rule;
      bool have_exec = false;
      for (const auto& [k, v] : kv) {
        if (k == "exec") { rule.exec = static_cast<int>(parse_long(v, "exec")); have_exec = true; }
        else if (k == "after") rule.after = static_cast<int>(parse_long(v, "after"));
        else bad_spec("unknown die key '" + k + "'");
      }
      if (!have_exec || rule.exec < 0) bad_spec("die: requires exec=E with E >= 0");
      if (rule.after < 0) bad_spec("die: after must be >= 0");
      out.deaths.push_back(rule);
    } else {
      bad_spec("unknown item '" + head + "' (expected transient, hang, or die)");
    }
  }
  return out;
}

FaultKind FaultPlan::attempt_outcome(int exec, int chunk, int attempt) const noexcept {
  for (const auto& r : spec_.hangs)
    if ((r.exec == -1 || r.exec == exec) && (r.chunk == -1 || r.chunk == chunk))
      return FaultKind::Hang;
  for (const auto& r : spec_.transients)
    if ((r.exec == -1 || r.exec == exec) && (r.chunk == -1 || r.chunk == chunk) &&
        attempt <= r.times)
      return FaultKind::Transient;
  if (spec_.transient_rate > 0.0) {
    // Stateless: a pure hash of (seed, exec, chunk, attempt), so the
    // outcome does not depend on query order or on any other executor.
    std::uint64_t h = mix64(spec_.seed);
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(exec)) << 40));
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk)) << 16));
    h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < spec_.transient_rate) return FaultKind::Transient;
  }
  return FaultKind::None;
}

int FaultPlan::dies_after(int exec) const noexcept {
  for (const auto& r : spec_.deaths)
    if (r.exec == exec) return r.after;
  return -1;
}

}  // namespace vbatch::fault
