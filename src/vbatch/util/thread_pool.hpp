// The process-wide host worker pool behind the parallel execution engine.
//
// Originally this lived in vbatch::cpu and only ran the CPU baselines'
// numerics; it is now shared by the simulator (Device::launch runs block
// functors across it), the CPU baselines and the factorization drivers, so
// the whole library pays thread start-up exactly once per process instead
// of once per kernel launch.
//
// Determinism contract: parallel_for distributes indices dynamically, but
// every index writes only its own output slot, so results are independent
// of the worker count and of scheduling order. The engine-level controls
// (`set_host_threads`, the VBATCH_NUM_THREADS environment variable and the
// CLI's --threads flag) therefore change wall-clock time only, never
// results.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vbatch::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run in FIFO order across workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for i in [0, count) across the pool and waits. Safe to call
  /// from within a pool task: nested calls run inline on the calling worker
  /// instead of deadlocking on the shared queue.
  void parallel_for(int count, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  int in_flight_ = 0;
  bool stop_ = false;
};

/// The shared pool. Lazily constructed on first use with `set_host_threads`'
/// count if one was set, else VBATCH_NUM_THREADS, else hardware concurrency.
ThreadPool& host_pool();

/// Sets the worker count for host_pool(); 0 restores the default. Rebuilds
/// the pool if it already exists (call between launches, not during one).
void set_host_threads(unsigned threads);

/// Worker count host_pool() has (or would be built with).
[[nodiscard]] unsigned host_threads();

}  // namespace vbatch::util
