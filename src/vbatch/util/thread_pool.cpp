#include "vbatch/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace vbatch::util {

namespace {

// Set while a thread is inside worker_loop; parallel_for uses it to run
// nested invocations inline (a worker waiting on the queue it drains would
// deadlock).
thread_local bool t_in_worker = false;

unsigned clamp_threads(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  return std::clamp(threads, 1u, 64u);
}

unsigned env_threads() {
  if (const char* env = std::getenv("VBATCH_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(std::min<long>(v, 64));
  }
  return 0;  // unset / invalid: fall through to hardware concurrency
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
unsigned g_requested_threads = 0;  // 0 = default

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  threads = clamp_threads(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  const unsigned workers = std::min<unsigned>(size(), static_cast<unsigned>(count));
  if (workers <= 1 || t_in_worker) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  // Per-call completion state so concurrent parallel_for calls (and plain
  // submits) never wait on each other's tasks.
  struct State {
    std::atomic<int> next{0};
    std::atomic<unsigned> remaining;
    std::mutex m;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  state->remaining.store(workers, std::memory_order_relaxed);

  for (unsigned w = 0; w < workers; ++w) {
    submit([state, count, &fn] {
      for (;;) {
        const int i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        fn(i);
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(state->m);
        state->done.notify_all();
      }
    });
  }
  std::unique_lock lock(state->m);
  state->done.wait(lock, [&] { return state->remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& host_pool() {
  std::lock_guard lock(g_pool_mutex);
  if (!g_pool) {
    const unsigned n = g_requested_threads != 0 ? g_requested_threads : env_threads();
    g_pool = std::make_unique<ThreadPool>(clamp_threads(n));
  }
  return *g_pool;
}

void set_host_threads(unsigned threads) {
  std::lock_guard lock(g_pool_mutex);
  g_requested_threads = threads;
  if (g_pool && g_pool->size() != clamp_threads(threads != 0 ? threads : env_threads())) {
    g_pool.reset();  // rebuilt lazily with the new count
  }
}

unsigned host_threads() {
  {
    std::lock_guard lock(g_pool_mutex);
    if (g_pool) return g_pool->size();
    if (g_requested_threads != 0) return clamp_threads(g_requested_threads);
  }
  const unsigned env = env_threads();
  return clamp_threads(env);
}

}  // namespace vbatch::util
