// Error handling for the vbatch library.
//
// Three error channels coexist, mirroring LAPACK practice (paper §V mentions
// LAPACK compliance of error reporting as an open direction):
//   * programming errors (bad arguments, exhausted device memory) throw
//     vbatch::Error with a Status code;
//   * numerical conditions (e.g. a non-SPD matrix in potrf) are reported
//     per problem through `info` arrays, never via exceptions;
//   * recoverable *system* faults (a device lost mid-batch, a hung kernel)
//     are absorbed by the heterogeneous runtime's retry/re-dispatch loop
//     (docs/robustness.md); only a problem no surviving executor could
//     complete is marked with the distinguished kInfoChunkLost poison code
//     in its `info` slot — the call still returns.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace vbatch {

/// Machine-readable error category carried by vbatch::Error.
enum class Status {
  Ok = 0,
  InvalidArgument,
  OutOfDeviceMemory,
  OutOfHostMemory,
  LaunchFailure,
  NotSupported,
  InternalError,
  DeviceLost,
  QueueFull,  ///< bounded ingress queue at capacity (service overload)
};

[[nodiscard]] const char* to_string(Status s) noexcept;

/// Distinguished `info` poison for problems whose chunk no surviving
/// executor could complete (fault recovery, docs/robustness.md). Far below
/// any LAPACK "parameter -k" code so callers can tell "bad argument k"
/// apart from "lost to a system fault"; the matrix data is left untouched
/// (the failed launches never commit), so the caller may resubmit.
inline constexpr int kInfoChunkLost = -911;

/// Exception type thrown for non-numerical failures.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

[[noreturn]] void throw_error(Status status, const std::string& message,
                              std::source_location loc = std::source_location::current());

/// Validates an argument precondition; throws Status::InvalidArgument on failure.
inline void require(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) throw_error(Status::InvalidArgument, what, loc);
}

}  // namespace vbatch
