// Error handling for the vbatch library.
//
// Two error channels coexist, mirroring LAPACK practice (paper §V mentions
// LAPACK compliance of error reporting as an open direction):
//   * programming errors (bad arguments, exhausted device memory) throw
//     vbatch::Error with a Status code;
//   * numerical conditions (e.g. a non-SPD matrix in potrf) are reported
//     per problem through `info` arrays, never via exceptions.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace vbatch {

/// Machine-readable error category carried by vbatch::Error.
enum class Status {
  Ok = 0,
  InvalidArgument,
  OutOfDeviceMemory,
  OutOfHostMemory,
  LaunchFailure,
  NotSupported,
  InternalError,
};

[[nodiscard]] const char* to_string(Status s) noexcept;

/// Exception type thrown for non-numerical failures.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

[[noreturn]] void throw_error(Status status, const std::string& message,
                              std::source_location loc = std::source_location::current());

/// Validates an argument precondition; throws Status::InvalidArgument on failure.
inline void require(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) throw_error(Status::InvalidArgument, what, loc);
}

}  // namespace vbatch
