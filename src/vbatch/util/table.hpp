// Plain-text table/series formatting used by the benchmark harness to print
// the rows/series of the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vbatch::util {

/// A simple column-aligned text table. Columns are declared up front;
/// rows accept strings or numbers (formatted with a fixed precision).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with `add`.
  Table& new_row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 2);
  Table& add(std::int64_t value);
  Table& add(int value);

  /// Renders the table with aligned columns to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a coarse ASCII histogram (used for Fig. 3's size distributions):
/// one line per bucket with a proportional bar.
void print_histogram(std::ostream& os, const std::vector<int>& values, int bucket_width,
                     int max_value, int bar_width = 50);

}  // namespace vbatch::util
