#include "vbatch/util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace vbatch::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return add(ss.str());
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

void print_histogram(std::ostream& os, const std::vector<int>& values, int bucket_width,
                     int max_value, int bar_width) {
  if (bucket_width <= 0 || max_value <= 0) return;
  const int nbuckets = (max_value + bucket_width - 1) / bucket_width;
  std::vector<int> counts(static_cast<std::size_t>(nbuckets), 0);
  for (int v : values) {
    if (v < 1 || v > max_value) continue;
    ++counts[static_cast<std::size_t>((v - 1) / bucket_width)];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < nbuckets; ++b) {
    const int lo = b * bucket_width + 1;
    const int hi = std::min((b + 1) * bucket_width, max_value);
    const int bar = peak > 0 ? counts[static_cast<std::size_t>(b)] * bar_width / peak : 0;
    os << std::setw(5) << lo << "-" << std::setw(5) << hi << " | " << std::string(bar, '#')
       << ' ' << counts[static_cast<std::size_t>(b)] << '\n';
  }
}

}  // namespace vbatch::util
