#include "vbatch/util/flops.hpp"

namespace vbatch::flops {

namespace {
constexpr double d(std::int64_t x) noexcept { return static_cast<double>(x); }
}

double potrf(std::int64_t n) noexcept {
  const double fn = d(n);
  return fn * fn * fn / 3.0 + fn * fn / 2.0 + fn / 6.0;
}

double getrf(std::int64_t m, std::int64_t n) noexcept {
  const double fm = d(m), fn = d(n);
  if (m >= n) {
    return fm * fn * fn - fn * fn * fn / 3.0 - fn * fn / 2.0 + 5.0 * fn / 6.0;
  }
  return fn * fm * fm - fm * fm * fm / 3.0 - fm * fm / 2.0 + 5.0 * fm / 6.0;
}

double geqrf(std::int64_t m, std::int64_t n) noexcept {
  const double fm = d(m), fn = d(n);
  if (m >= n) {
    return 2.0 * fm * fn * fn - 2.0 * fn * fn * fn / 3.0 + fm * fn + fn * fn + 14.0 * fn / 3.0;
  }
  return 2.0 * fn * fm * fm - 2.0 * fm * fm * fm / 3.0 + 3.0 * fn * fm - fm * fm +
         14.0 * fm / 3.0;
}

double gemm(std::int64_t m, std::int64_t n, std::int64_t k) noexcept {
  return 2.0 * d(m) * d(n) * d(k);
}

double syrk(std::int64_t n, std::int64_t k) noexcept { return d(n) * (d(n) + 1.0) * d(k); }

double trsm(std::int64_t m, std::int64_t n, bool left) noexcept {
  return left ? d(n) * d(m) * d(m) : d(m) * d(n) * d(n);
}

double trtri(std::int64_t n) noexcept {
  const double fn = d(n);
  return fn * fn * fn / 3.0 + 2.0 * fn / 3.0;
}

double potrs(std::int64_t n, std::int64_t nrhs) noexcept { return 2.0 * d(n) * d(n) * d(nrhs); }

double potrf_batch(std::span<const int> sizes) noexcept {
  double total = 0.0;
  for (int n : sizes) total += potrf(n);
  return total;
}

double getrf_batch(std::span<const int> m, std::span<const int> n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) total += getrf(m[i], n[i]);
  return total;
}

double geqrf_batch(std::span<const int> m, std::span<const int> n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) total += geqrf(m[i], n[i]);
  return total;
}

}  // namespace vbatch::flops
