// Deterministic pseudo-random number generation.
//
// The paper's test batches are generated from two PRNG-driven size
// distributions (§IV-B). Determinism matters for the simulator's replay
// guarantees, so the library carries its own small xoshiro256** engine
// instead of relying on implementation-defined std::random distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace vbatch {

/// xoshiro256** 1.0 — small, fast, high-quality, fully deterministic across
/// platforms (std::mt19937 is deterministic too, but std distributions are
/// not specified bit-exactly; we implement our own).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, stateless pairing).
  double gaussian() noexcept;

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev) noexcept;

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Fills `v` with uniform values in [lo, hi).
void fill_uniform(Rng& rng, std::vector<double>& v, double lo, double hi);
void fill_uniform(Rng& rng, std::vector<float>& v, float lo, float hi);

/// Fills a column-major n×n buffer (leading dimension ld) with a random
/// symmetric positive definite matrix: A = 0.5(B+Bᵀ) + n·I with B uniform
/// in [0,1). Diagonal dominance guarantees SPD for any n ≥ 1.
template <typename T>
void fill_spd(Rng& rng, T* a, std::int64_t n, std::int64_t ld);

/// Fills a column-major m×n buffer with uniform values in [-1, 1).
template <typename T>
void fill_general(Rng& rng, T* a, std::int64_t m, std::int64_t n, std::int64_t ld);

}  // namespace vbatch
