#include "vbatch/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "vbatch/util/types.hpp"

namespace vbatch {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % range);
}

double Rng::gaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box–Muller; reject u1 == 0 to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

void fill_uniform(Rng& rng, std::vector<double>& v, double lo, double hi) {
  for (auto& x : v) x = rng.uniform(lo, hi);
}

void fill_uniform(Rng& rng, std::vector<float>& v, float lo, float hi) {
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
}

template <typename T>
void fill_spd(Rng& rng, T* a, std::int64_t n, std::int64_t ld) {
  using R = real_t<T>;
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = 0; i < n; ++i) {
      if constexpr (is_complex_v<T>) {
        a[i + j * ld] = T(static_cast<R>(rng.uniform()), static_cast<R>(rng.uniform(-0.5, 0.5)));
      } else {
        a[i + j * ld] = static_cast<T>(rng.uniform());
      }
    }
  // Hermitian symmetrization (plain symmetric for real) + diagonal boost:
  // strictly dominant real diagonal makes the matrix positive definite.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = j + 1; i < n; ++i) {
      const T sym = T(R(0.5)) * (a[i + j * ld] + conj_val(a[j + i * ld]));
      a[i + j * ld] = sym;
      a[j + i * ld] = conj_val(sym);
    }
    a[j + j * ld] = T(real_val(a[j + j * ld]) + static_cast<R>(n));
  }
}

template <typename T>
void fill_general(Rng& rng, T* a, std::int64_t m, std::int64_t n, std::int64_t ld) {
  using R = real_t<T>;
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = 0; i < m; ++i) {
      if constexpr (is_complex_v<T>) {
        a[i + j * ld] =
            T(static_cast<R>(rng.uniform(-1.0, 1.0)), static_cast<R>(rng.uniform(-1.0, 1.0)));
      } else {
        a[i + j * ld] = static_cast<T>(rng.uniform(-1.0, 1.0));
      }
    }
}

template void fill_spd<float>(Rng&, float*, std::int64_t, std::int64_t);
template void fill_spd<double>(Rng&, double*, std::int64_t, std::int64_t);
template void fill_general<float>(Rng&, float*, std::int64_t, std::int64_t, std::int64_t);
template void fill_general<double>(Rng&, double*, std::int64_t, std::int64_t, std::int64_t);
template void fill_spd<std::complex<float>>(Rng&, std::complex<float>*, std::int64_t,
                                            std::int64_t);
template void fill_spd<std::complex<double>>(Rng&, std::complex<double>*, std::int64_t,
                                             std::int64_t);
template void fill_general<std::complex<float>>(Rng&, std::complex<float>*, std::int64_t,
                                                std::int64_t, std::int64_t);
template void fill_general<std::complex<double>>(Rng&, std::complex<double>*, std::int64_t,
                                                 std::int64_t, std::int64_t);

}  // namespace vbatch
