#include "vbatch/util/error.hpp"

namespace vbatch {

const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::InvalidArgument: return "invalid argument";
    case Status::OutOfDeviceMemory: return "out of device memory";
    case Status::OutOfHostMemory: return "out of host memory";
    case Status::LaunchFailure: return "kernel launch failure";
    case Status::NotSupported: return "not supported";
    case Status::InternalError: return "internal error";
    case Status::DeviceLost: return "device lost";
    case Status::QueueFull: return "queue full";
  }
  return "unknown";
}

void throw_error(Status status, const std::string& message, std::source_location loc) {
  throw Error(status, message + " (" + loc.file_name() + ":" + std::to_string(loc.line()) + ")");
}

}  // namespace vbatch
