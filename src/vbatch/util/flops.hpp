// Floating-point operation counts for the factorizations and BLAS kernels.
//
// The paper computes Gflop/s as (sum of per-matrix factorization flops) /
// elapsed time (§IV-B), so identical formulas must be shared between the
// benches, the simulator cost model and the CPU performance model. The
// counts follow the standard LAPACK working-note formulas.
#pragma once

#include <cstdint>
#include <span>

namespace vbatch::flops {

/// Cholesky factorization of an n×n matrix: n³/3 + n²/2 + n/6.
[[nodiscard]] double potrf(std::int64_t n) noexcept;

/// LU with partial pivoting of an m×n matrix.
[[nodiscard]] double getrf(std::int64_t m, std::int64_t n) noexcept;

/// Householder QR of an m×n matrix (m >= n).
[[nodiscard]] double geqrf(std::int64_t m, std::int64_t n) noexcept;

/// General matrix multiply C(m×n) += A(m×k)·B(k×n): 2mnk.
[[nodiscard]] double gemm(std::int64_t m, std::int64_t n, std::int64_t k) noexcept;

/// Symmetric rank-k update of an n×n triangle: n(n+1)k.
[[nodiscard]] double syrk(std::int64_t n, std::int64_t k) noexcept;

/// Triangular solve with m×m triangle against m×n (Left) or n×n vs m×n (Right).
[[nodiscard]] double trsm(std::int64_t m, std::int64_t n, bool left) noexcept;

/// Triangular inversion of an n×n triangle: ~n³/3.
[[nodiscard]] double trtri(std::int64_t n) noexcept;

/// Triangular solve potrs: 2·n²·nrhs.
[[nodiscard]] double potrs(std::int64_t n, std::int64_t nrhs) noexcept;

/// Sum of potrf flops over a batch of sizes.
[[nodiscard]] double potrf_batch(std::span<const int> sizes) noexcept;
[[nodiscard]] double getrf_batch(std::span<const int> m, std::span<const int> n) noexcept;
[[nodiscard]] double geqrf_batch(std::span<const int> m, std::span<const int> n) noexcept;

}  // namespace vbatch::flops
