// Fundamental enumerations and type traits shared across the vbatch library.
//
// The enums mirror the classic BLAS/LAPACK character arguments (uplo, trans,
// side, diag) so that the vbatched interfaces in vbatch/core read like their
// LAPACK counterparts (cf. paper §III-A).
#pragma once

#include <complex>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace vbatch {

/// Which triangle of a symmetric/triangular matrix an operation touches.
enum class Uplo : std::uint8_t { Lower, Upper };

/// Transposition mode of an operand.
enum class Trans : std::uint8_t { NoTrans, Trans };

/// Side of a triangular multiply/solve.
enum class Side : std::uint8_t { Left, Right };

/// Whether a triangular matrix has an implicit unit diagonal.
enum class Diag : std::uint8_t { NonUnit, Unit };

[[nodiscard]] constexpr std::string_view to_string(Uplo u) noexcept {
  return u == Uplo::Lower ? "lower" : "upper";
}
[[nodiscard]] constexpr std::string_view to_string(Trans t) noexcept {
  return t == Trans::NoTrans ? "notrans" : "trans";
}
[[nodiscard]] constexpr std::string_view to_string(Side s) noexcept {
  return s == Side::Left ? "left" : "right";
}
[[nodiscard]] constexpr std::string_view to_string(Diag d) noexcept {
  return d == Diag::NonUnit ? "nonunit" : "unit";
}

/// Floating-point precision tag used by benches and the performance models.
enum class Precision : std::uint8_t { Single, Double };

/// Early Termination Mechanism flavour for vbatched kernels (paper §III-D1).
/// Classic terminates whole thread blocks with no work; Aggressive also
/// terminates idle threads inside live blocks (kernel-specific; only the
/// fused Cholesky kernel supports it).
enum class EtmMode : std::uint8_t { Classic, Aggressive };

[[nodiscard]] constexpr std::string_view to_string(EtmMode m) noexcept {
  return m == EtmMode::Classic ? "etm-classic" : "etm-aggressive";
}

template <typename T>
struct precision_of;
template <>
struct precision_of<float> {
  static constexpr Precision value = Precision::Single;
  static constexpr std::string_view name = "single";
  static constexpr char blas_prefix = 's';
};
template <>
struct precision_of<double> {
  static constexpr Precision value = Precision::Double;
  static constexpr std::string_view name = "double";
  static constexpr char blas_prefix = 'd';
};

template <>
struct precision_of<std::complex<float>> {
  static constexpr Precision value = Precision::Single;
  static constexpr std::string_view name = "complex-single";
  static constexpr char blas_prefix = 'c';
};
template <>
struct precision_of<std::complex<double>> {
  static constexpr Precision value = Precision::Double;
  static constexpr std::string_view name = "complex-double";
  static constexpr char blas_prefix = 'z';
};

template <typename T>
inline constexpr Precision precision_v = precision_of<T>::value;

template <typename T>
struct is_complex : std::false_type {};
template <typename R>
struct is_complex<std::complex<R>> : std::true_type {};
template <typename T>
inline constexpr bool is_complex_v = is_complex<T>::value;

/// The real scalar type underlying T.
template <typename T>
struct real_of {
  using type = T;
};
template <typename R>
struct real_of<std::complex<R>> {
  using type = R;
};
template <typename T>
using real_t = typename real_of<T>::type;

/// Complex conjugate; identity for real types. The library follows the
/// Hermitian convention for complex scalars: wherever an algorithm applies
/// Trans::Trans to a complex operand, the conjugate transpose is meant
/// (the only case the Cholesky/LU/QR family needs).
template <typename T>
[[nodiscard]] constexpr T conj_val(const T& v) noexcept {
  if constexpr (is_complex_v<T>) {
    return std::conj(v);
  } else {
    return v;
  }
}

/// Real part; identity for real types.
template <typename T>
[[nodiscard]] constexpr real_t<T> real_val(const T& v) noexcept {
  if constexpr (is_complex_v<T>) {
    return v.real();
  } else {
    return v;
  }
}

}  // namespace vbatch
