// Non-owning column-major matrix views.
//
// All numerical kernels in the library operate on MatrixView<T>: a pointer,
// a row count, a column count and a leading dimension, exactly the quadruple
// a LAPACK routine receives. Views are cheap to copy and slice; ownership
// lives in std::vector / device arenas.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace vbatch {

using index_t = std::ptrdiff_t;

/// A non-owning view of a column-major matrix with an explicit leading
/// dimension, as used throughout BLAS/LAPACK. `ld >= rows` is required.
template <typename T>
class MatrixView {
 public:
  constexpr MatrixView() noexcept = default;
  constexpr MatrixView(T* data, index_t rows, index_t cols, index_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(rows >= 0 && cols >= 0 && ld >= rows);
  }

  [[nodiscard]] constexpr T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr index_t rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr index_t cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr index_t ld() const noexcept { return ld_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Element access: column-major, A(i,j) == data[i + j*ld].
  [[nodiscard]] constexpr T& operator()(index_t i, index_t j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Sub-matrix view starting at (i0, j0) with extent (m, n).
  [[nodiscard]] constexpr MatrixView block(index_t i0, index_t j0, index_t m,
                                           index_t n) const noexcept {
    assert(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_);
    return MatrixView(data_ + i0 + j0 * ld_, m, n, ld_);
  }

  /// View of a single column as a span of `rows()` elements.
  [[nodiscard]] constexpr std::span<T> col(index_t j) const noexcept {
    assert(j >= 0 && j < cols_);
    return {data_ + j * ld_, static_cast<std::size_t>(rows_)};
  }

  /// Implicit conversion to a const view.
  constexpr operator MatrixView<const T>() const noexcept
    requires(!std::is_const_v<T>)
  {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

template <typename T>
using ConstMatrixView = MatrixView<const T>;

/// Convenience: wrap a dense buffer (ld == rows).
template <typename T>
[[nodiscard]] constexpr MatrixView<T> make_view(T* data, index_t rows, index_t cols) noexcept {
  return MatrixView<T>(data, rows, cols, rows);
}

}  // namespace vbatch
