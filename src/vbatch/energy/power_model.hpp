// Power models standing in for the paper's PAPI (CPU/RAPL) and NVML (GPU)
// measurements (§IV-G). Power is idle + utilisation-scaled dynamic power;
// utilisation follows achieved arithmetic throughput sub-linearly, because
// data movement and control burn energy even at low flop efficiency.
#pragma once

#include "vbatch/util/types.hpp"

namespace vbatch::energy {

struct PowerModel {
  const char* name = "";
  double idle_watts = 0.0;
  double max_watts = 0.0;   ///< board/package power at full load (TDP-ish)
  double util_exponent = 0.6;
  /// Extra board power (above idle) while a host↔device staging copy is on
  /// the wire — the DMA engines and the PCIe PHY. Charged per transfer
  /// second by the out-of-core streaming path; 0 for the CPU (no link).
  double transfer_watts = 0.0;

  /// Instantaneous power at the given utilisation in [0, 1].
  [[nodiscard]] double watts(double utilization) const noexcept;

  /// Tesla K40c board power (235 W TDP, ~25 W idle).
  [[nodiscard]] static PowerModel k40c();

  /// Tesla P100 board power (250 W TDP, ~30 W idle) — companion preset to
  /// sim::DeviceSpec::p100().
  [[nodiscard]] static PowerModel p100();

  /// Two E5-2670 packages + DRAM (2×115 W TDP + memory, ~70 W idle).
  [[nodiscard]] static PowerModel dual_e5_2670();
};

}  // namespace vbatch::energy
