// Energy-to-solution accounting (paper §IV-G): "the integration of the
// power measurements over time". The meter integrates a PowerModel over a
// run — per-kernel for GPU runs (utilisation from each kernel's achieved
// throughput against peak) and as a single interval for modelled CPU runs.
// A run on one device also charges the other device's idle power, matching
// the paper's "total amount of energy consumed by both hardware CPU and
// GPU".
//
// For multi-device runs (vbatch::hetero) the EnergyMeter accumulator sums
// per-device ∫P dt contributions: each executor's active interval plus the
// idle draw it burns while waiting for the pool's makespan to elapse.
#pragma once

#include "vbatch/energy/power_model.hpp"
#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/timeline.hpp"

namespace vbatch::energy {

struct EnergyResult {
  double joules = 0.0;
  double seconds = 0.0;
  [[nodiscard]] double avg_watts() const noexcept {
    return seconds > 0.0 ? joules / seconds : 0.0;
  }
};

/// Integrates one device's power over a slice of its timeline (records with
/// start >= t0): per-kernel active power (utilisation from achieved flops
/// against peak) plus idle draw in the gaps between kernels. No companion
/// device is charged — this is the per-device ∫P dt building block the
/// multi-device meter sums.
[[nodiscard]] EnergyResult gpu_timeline_energy(const sim::DeviceSpec& spec,
                                               const PowerModel& gpu,
                                               const sim::Timeline& timeline, Precision prec,
                                               double t0 = 0.0);

/// One CPU interval at the utilisation implied by the achieved throughput.
/// The per-device ∫P dt building block for modelled CPU executors.
[[nodiscard]] EnergyResult cpu_interval_energy(const PowerModel& cpu, double seconds,
                                               double achieved_gflops, double peak_gflops);

/// Integrates GPU power over a slice of the device timeline (records with
/// start >= t0), adding the CPU's idle draw for the same wall time.
[[nodiscard]] EnergyResult gpu_run_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                                          const PowerModel& cpu_idle,
                                          const sim::Timeline& timeline, Precision prec,
                                          double t0 = 0.0);

/// Energy of a modelled CPU run achieving `gflops` over `seconds`, adding
/// the GPU's idle draw.
[[nodiscard]] EnergyResult cpu_run_energy(const PowerModel& cpu, const PowerModel& gpu_idle,
                                          double seconds, double achieved_gflops,
                                          double peak_gflops);

/// Accumulator for multi-device runs: sums per-device active energy and the
/// idle tails of devices that finish before the pool's makespan. The total's
/// `seconds` is the wall time (makespan), not the sum of device-busy times,
/// so avg_watts() reads as the pool's average draw.
class EnergyMeter {
 public:
  /// Adds one device's pre-integrated active interval (joules only; the
  /// interval's own seconds are busy time, not wall time).
  void add(const EnergyResult& part) noexcept { total_.joules += part.joules; }

  /// Charges a device's idle draw for `seconds` (e.g. makespan − busy).
  void add_idle(const PowerModel& pm, double seconds) noexcept {
    if (seconds > 0.0) total_.joules += pm.watts(0.0) * seconds;
  }

  /// Sets the run's wall time (the makespan all devices span).
  void set_wall_seconds(double seconds) noexcept { total_.seconds = seconds; }

  [[nodiscard]] const EnergyResult& total() const noexcept { return total_; }

 private:
  EnergyResult total_;
};

}  // namespace vbatch::energy
