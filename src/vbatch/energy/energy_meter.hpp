// Energy-to-solution accounting (paper §IV-G): "the integration of the
// power measurements over time". The meter integrates a PowerModel over a
// run — per-kernel for GPU runs (utilisation from each kernel's achieved
// throughput against peak) and as a single interval for modelled CPU runs.
// A run on one device also charges the other device's idle power, matching
// the paper's "total amount of energy consumed by both hardware CPU and
// GPU".
#pragma once

#include "vbatch/energy/power_model.hpp"
#include "vbatch/sim/device_spec.hpp"
#include "vbatch/sim/timeline.hpp"

namespace vbatch::energy {

struct EnergyResult {
  double joules = 0.0;
  double seconds = 0.0;
  [[nodiscard]] double avg_watts() const noexcept {
    return seconds > 0.0 ? joules / seconds : 0.0;
  }
};

/// Integrates GPU power over a slice of the device timeline (records with
/// start >= t0), adding the CPU's idle draw for the same wall time.
[[nodiscard]] EnergyResult gpu_run_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                                          const PowerModel& cpu_idle,
                                          const sim::Timeline& timeline, Precision prec,
                                          double t0 = 0.0);

/// Energy of a modelled CPU run achieving `gflops` over `seconds`, adding
/// the GPU's idle draw.
[[nodiscard]] EnergyResult cpu_run_energy(const PowerModel& cpu, const PowerModel& gpu_idle,
                                          double seconds, double achieved_gflops,
                                          double peak_gflops);

}  // namespace vbatch::energy
