#include "vbatch/energy/energy_meter.hpp"

#include <algorithm>

namespace vbatch::energy {

EnergyResult gpu_timeline_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                                 const sim::Timeline& timeline, Precision prec, double t0) {
  EnergyResult r;
  const double peak = spec.peak_gflops(prec) * 1e9;
  double t_end = t0;
  double busy = 0.0;
  for (const auto& rec : timeline.records()) {
    if (rec.start < t0) continue;
    const double dur = rec.end - rec.start;
    if (dur <= 0.0) continue;
    const double util = peak > 0.0 ? (rec.flops / dur) / peak : 0.0;
    r.joules += gpu.watts(util) * dur;
    busy += dur;
    t_end = std::max(t_end, rec.end);
  }
  r.seconds = t_end - t0;
  // Gaps between kernels draw idle power.
  if (r.seconds > busy) r.joules += gpu.watts(0.0) * (r.seconds - busy);
  return r;
}

EnergyResult cpu_interval_energy(const PowerModel& cpu, double seconds, double achieved_gflops,
                                 double peak_gflops) {
  EnergyResult r;
  r.seconds = seconds;
  const double util = peak_gflops > 0.0 ? achieved_gflops / peak_gflops : 0.0;
  r.joules = cpu.watts(util) * seconds;
  return r;
}

EnergyResult gpu_run_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                            const PowerModel& cpu_idle, const sim::Timeline& timeline,
                            Precision prec, double t0) {
  EnergyResult r = gpu_timeline_energy(spec, gpu, timeline, prec, t0);
  // The host CPU idles throughout the GPU run.
  r.joules += cpu_idle.watts(0.0) * r.seconds;
  return r;
}

EnergyResult cpu_run_energy(const PowerModel& cpu, const PowerModel& gpu_idle, double seconds,
                            double achieved_gflops, double peak_gflops) {
  EnergyResult r = cpu_interval_energy(cpu, seconds, achieved_gflops, peak_gflops);
  r.joules += gpu_idle.watts(0.0) * seconds;
  return r;
}

}  // namespace vbatch::energy
