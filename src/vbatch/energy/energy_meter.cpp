#include "vbatch/energy/energy_meter.hpp"

#include <algorithm>

namespace vbatch::energy {

EnergyResult gpu_timeline_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                                 const sim::Timeline& timeline, Precision prec, double t0) {
  // Each kernel contributes its utilisation-dependent power *above idle*
  // for its own duration; the idle baseline is charged once over the whole
  // [t0, t_end] span. For a serial timeline this is algebraically the old
  // per-record watts(util)·dur plus idle gaps; for overlapping streams it
  // correctly charges the shared baseline once instead of once per
  // concurrent record (the device has one idle draw, however many streams
  // are busy on it).
  EnergyResult r;
  const double peak = spec.peak_gflops(prec) * 1e9;
  const double idle_watts = gpu.watts(0.0);
  double t_end = t0;
  for (const auto& rec : timeline.records()) {
    if (rec.start < t0) continue;
    const double dur = rec.end - rec.start;
    if (dur <= 0.0) continue;
    const double util = peak > 0.0 ? (rec.flops / dur) / peak : 0.0;
    r.joules += (gpu.watts(util) - idle_watts) * dur;
    t_end = std::max(t_end, rec.end);
  }
  r.seconds = t_end - t0;
  r.joules += idle_watts * r.seconds;
  return r;
}

EnergyResult cpu_interval_energy(const PowerModel& cpu, double seconds, double achieved_gflops,
                                 double peak_gflops) {
  EnergyResult r;
  r.seconds = seconds;
  const double util = peak_gflops > 0.0 ? achieved_gflops / peak_gflops : 0.0;
  r.joules = cpu.watts(util) * seconds;
  return r;
}

EnergyResult gpu_run_energy(const sim::DeviceSpec& spec, const PowerModel& gpu,
                            const PowerModel& cpu_idle, const sim::Timeline& timeline,
                            Precision prec, double t0) {
  EnergyResult r = gpu_timeline_energy(spec, gpu, timeline, prec, t0);
  // The host CPU idles throughout the GPU run.
  r.joules += cpu_idle.watts(0.0) * r.seconds;
  return r;
}

EnergyResult cpu_run_energy(const PowerModel& cpu, const PowerModel& gpu_idle, double seconds,
                            double achieved_gflops, double peak_gflops) {
  EnergyResult r = cpu_interval_energy(cpu, seconds, achieved_gflops, peak_gflops);
  r.joules += gpu_idle.watts(0.0) * seconds;
  return r;
}

}  // namespace vbatch::energy
