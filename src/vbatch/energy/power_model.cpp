#include "vbatch/energy/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace vbatch::energy {

double PowerModel::watts(double utilization) const noexcept {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return idle_watts + (max_watts - idle_watts) * std::pow(u, util_exponent);
}

PowerModel PowerModel::k40c() {
  return PowerModel{"Tesla K40c (modelled)", 25.0, 235.0, 0.6, 12.0};
}

PowerModel PowerModel::p100() {
  return PowerModel{"Tesla P100 (modelled)", 30.0, 250.0, 0.6, 15.0};
}

PowerModel PowerModel::dual_e5_2670() {
  return PowerModel{"2x E5-2670 + DRAM (modelled)", 70.0, 290.0, 0.6};
}

}  // namespace vbatch::energy
