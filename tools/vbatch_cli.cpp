// vbatch_cli — command-line driver for the vbatched library.
//
// Runs a vbatched Cholesky workload on the simulated device and reports
// performance, an nvprof-style kernel profile, energy to solution, and
// (optionally) the autotuner's sweep. Useful for exploring configurations
// without writing code.
//
// Usage:
//   vbatch_cli [options]
//     --batch N        batch count              (default 1000)
//     --nmax N         maximum matrix size      (default 256)
//     --dist uniform|gaussian|skewed|cluster    (default uniform)
//     --precision s|d                           (default d)
//     --device k40c|p100                        (default k40c; also selects
//                      the matching power model for --energy)
//     --hetero LIST    run on a heterogeneous pool instead of one device,
//                      e.g. --hetero cpu,k40c,p100 (tokens: cpu, k40c, p100;
//                      a token may carry ':Nstreams' and/or ':Ngb' suffixes,
//                      e.g. k40c:4streams:2gb)
//     --streams N      concurrent stream slots per pool executor
//                      (requires --hetero; overrides any ':Nstreams' suffix;
//                      GPUs clamp to the device limit, the cpu executor to 1;
//                      factors are bit-identical for every stream count)
//     --arena-gb X     staging-arena budget (GiB) for every GPU executor
//                      (requires --hetero; overrides any ':Ngb' suffix and the
//                      VBATCH_ARENA_GB env var; batches whose footprint
//                      exceeds the budget stream out-of-core through
//                      double-buffered chunked transfers — factors stay
//                      bit-identical to the in-core run)
//     --inject-faults SPEC
//                      deterministic fault injection into the hetero pool
//                      (requires --hetero; docs/robustness.md), e.g.
//                      "seed=7;transient:rate=0.2;die:exec=1,after=2";
//                      the VBATCH_INJECT_FAULTS env var is the no-flag
//                      alternative
//     --path auto|fused|separated               (default auto)
//     --etm classic|aggressive                  (default aggressive)
//     --no-sort        disable implicit sorting
//     --tune           run the autotuners first and use their results: the
//                      host BLAS cache-hierarchy tuner (loads the persisted
//                      profile when one exists — see VBATCH_TUNING_FILE in
//                      docs/api.md — and sweeps + saves otherwise), then the
//                      Cholesky configuration sweep
//     --isa scalar|sse2|neon|avx2|avx512
//                      pin the host micro-kernel instruction set (default:
//                      VBATCH_ISA or cpuid detection; clamped to what the
//                      host supports; scalar reproduces the pre-vectorized
//                      engine bit for bit)
//     --profile        print the kernel profile
//     --energy         print energy to solution vs the CPU baseline
//     --verify         run in Full mode and check residuals (slower)
//     --threads N      host worker threads for Full-mode numerics
//                      (default: VBATCH_NUM_THREADS or hardware concurrency;
//                      results are identical for any thread count)
//     --seed N         RNG seed                 (default 2016)
//     --serve          run the batch service front-end instead of a single
//                      call: replay the scripted request trace of --trace on
//                      the deterministic virtual-time clock (docs/service.md);
//                      with --verify the numerics run in Full mode
//     --trace FILE     request trace to replay (requires --serve; grammar in
//                      docs/service.md)
//     --latency-budget S
//                      coalescing latency budget in seconds (requires
//                      --serve; default 0.001): how long a request may wait
//                      for merge partners before its group must flush
//     --max-batch N    matrices per merged launch (requires --serve;
//                      default unbounded): reaching the cap flushes
//                      immediately, before any budget expiry
//     --max-footprint-gb X
//                      payload bytes per merged launch, in GiB (requires
//                      --serve; default unbounded); composes with the
//                      out-of-core staging budget downstream
//     --tenants LIST   per-tenant fairness weights as name=weight pairs,
//                      e.g. --tenants bursty=2,quiet=1 (requires --serve;
//                      overrides the trace's tenant declarations; weights
//                      must be positive — zero would starve the tenant)
//     --max-queue N    enable admission control with a bound of N pending
//                      requests (requires --serve; default unbounded):
//                      arrivals past the watermark are shed with a named
//                      rejection instead of growing the queue — see
//                      docs/service.md, "Overload & admission"
//     --tenant-rate G  enable admission control with a per-tenant token
//                      bucket of G Gflop/s, scaled by each tenant's fairness
//                      weight (requires --serve; default unlimited); the
//                      VBATCH_ADMISSION env var is the no-flag alternative
//                      and composes the full knob set
//     --help           print usage and exit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/isa.hpp"
#include "vbatch/core/autotune.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/cpu/cpu_batched.hpp"
#include "vbatch/energy/energy_meter.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"
#include "vbatch/service/service.hpp"
#include "vbatch/sim/profile.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace {

struct CliOptions {
  int batch = 1000;
  int nmax = 256;
  vbatch::SizeDist dist = vbatch::SizeDist::Uniform;
  bool double_precision = true;
  std::string device = "k40c";
  std::string hetero;  ///< non-empty = heterogeneous pool description
  std::string inject_faults;  ///< non-empty = fault spec for the hetero pool
  int streams = 0;  ///< >0 = override stream slots on every pool executor
  double arena_gb = 0.0;  ///< >0 = staging-arena budget for every pool GPU
  vbatch::PotrfOptions potrf;
  bool tune = false;
  bool profile = false;
  bool energy = false;
  bool verify = false;
  int threads = 0;  // 0 = default (VBATCH_NUM_THREADS or hardware)
  std::uint64_t seed = 2016;
  // --- service mode (--serve) ---
  bool serve = false;
  std::string trace_file;       ///< request trace to replay (required by --serve)
  double latency_budget = 1e-3; ///< coalescing budget, seconds
  int max_batch = 0;            ///< matrices per merged launch (0 = unbounded)
  double max_footprint_gb = 0.0;  ///< payload cap per launch, GiB (0 = unbounded)
  std::string tenants;          ///< "name=weight,..." fairness overrides
  int max_queue = 0;            ///< >0 = admission queue-depth watermark
  double tenant_rate = 0.0;     ///< >0 = per-tenant token-bucket Gflop/s
};

[[noreturn]] void usage(const char* argv0, int exit_code) {
  std::printf("usage: %s [--batch N] [--nmax N] [--dist uniform|gaussian|skewed|cluster]\n"
              "          [--precision s|d] [--device k40c|p100] [--hetero cpu,k40c:4streams:2gb,...]\n"
              "          [--inject-faults SPEC] [--streams N] [--arena-gb X]\n"
              "          [--path auto|fused|separated]\n"
              "          [--etm classic|aggressive] [--no-sort] [--tune]\n"
              "          [--isa scalar|sse2|neon|avx2|avx512]\n"
              "          [--profile] [--energy] [--verify] [--threads N] [--seed N]\n"
              "          [--serve --trace FILE [--latency-budget S] [--max-batch N]\n"
              "           [--max-footprint-gb X] [--tenants name=w,...]\n"
              "           [--max-queue N] [--tenant-rate G]] [--help]\n",
              argv0);
  std::exit(exit_code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--help") usage(argv[0], 0);
    if (arg == "--batch") o.batch = std::atoi(next());
    else if (arg == "--nmax") o.nmax = std::atoi(next());
    else if (arg == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--dist") {
      const std::string v = next();
      if (v == "uniform") o.dist = vbatch::SizeDist::Uniform;
      else if (v == "gaussian") o.dist = vbatch::SizeDist::Gaussian;
      else if (v == "skewed") o.dist = vbatch::SizeDist::Skewed;
      else if (v == "cluster") o.dist = vbatch::SizeDist::Cluster;
      else usage(argv[0], 2);
    } else if (arg == "--isa") {
      const auto isa = vbatch::blas::micro::parse_isa(next());
      if (!isa) usage(argv[0], 2);
      const auto got = vbatch::blas::micro::set_isa(*isa);
      if (got != *isa)
        std::fprintf(stderr, "note: --isa %s not supported on this host, using %s\n",
                     to_string(*isa), to_string(got));
    } else if (arg == "--precision") {
      const std::string v = next();
      if (v == "s") o.double_precision = false;
      else if (v == "d") o.double_precision = true;
      else usage(argv[0], 2);
    } else if (arg == "--path") {
      const std::string v = next();
      if (v == "auto") o.potrf.path = vbatch::PotrfPath::Auto;
      else if (v == "fused") o.potrf.path = vbatch::PotrfPath::Fused;
      else if (v == "separated") o.potrf.path = vbatch::PotrfPath::Separated;
      else usage(argv[0], 2);
    } else if (arg == "--etm") {
      const std::string v = next();
      if (v == "classic") o.potrf.etm = vbatch::EtmMode::Classic;
      else if (v == "aggressive") o.potrf.etm = vbatch::EtmMode::Aggressive;
      else usage(argv[0], 2);
    } else if (arg == "--device") {
      o.device = next();
      if (o.device != "k40c" && o.device != "p100") usage(argv[0], 2);
    } else if (arg == "--hetero") o.hetero = next();
    else if (arg == "--inject-faults") o.inject_faults = next();
    else if (arg == "--streams") o.streams = std::atoi(next());
    else if (arg == "--arena-gb") o.arena_gb = std::atof(next());
    else if (arg == "--no-sort") o.potrf.implicit_sorting = false;
    else if (arg == "--tune") o.tune = true;
    else if (arg == "--profile") o.profile = true;
    else if (arg == "--energy") o.energy = true;
    else if (arg == "--verify") o.verify = true;
    else if (arg == "--threads") o.threads = std::atoi(next());
    else if (arg == "--serve") o.serve = true;
    else if (arg == "--trace") o.trace_file = next();
    else if (arg == "--latency-budget") o.latency_budget = std::atof(next());
    else if (arg == "--max-batch") o.max_batch = std::atoi(next());
    else if (arg == "--max-footprint-gb") o.max_footprint_gb = std::atof(next());
    else if (arg == "--tenants") o.tenants = next();
    else if (arg == "--max-queue") o.max_queue = std::atoi(next());
    else if (arg == "--tenant-rate") o.tenant_rate = std::atof(next());
    else usage(argv[0], 2);
  }
  if (o.batch < 1 || o.nmax < 1 || o.threads < 0 || o.streams < 0) usage(argv[0], 2);
  if (!o.inject_faults.empty() && o.hetero.empty()) {
    std::fprintf(stderr, "--inject-faults requires --hetero (faults target the pool)\n");
    std::exit(2);
  }
  if (o.streams > 0 && o.hetero.empty()) {
    std::fprintf(stderr, "--streams requires --hetero (streams belong to pool executors)\n");
    std::exit(2);
  }
  if (o.arena_gb != 0.0 && o.hetero.empty()) {
    std::fprintf(stderr, "--arena-gb requires --hetero (the arena belongs to pool GPUs)\n");
    std::exit(2);
  }
  if (o.arena_gb < 0.0) {
    std::fprintf(stderr, "--arena-gb must be positive (got %g)\n", o.arena_gb);
    std::exit(2);
  }
  if (o.serve && o.trace_file.empty()) {
    std::fprintf(stderr, "--serve requires --trace FILE (the request script to replay)\n");
    std::exit(2);
  }
  if (!o.serve && (!o.trace_file.empty() || !o.tenants.empty() || o.max_batch != 0 ||
                   o.max_footprint_gb != 0.0 || o.latency_budget != 1e-3 ||
                   o.max_queue != 0 || o.tenant_rate != 0.0)) {
    std::fprintf(stderr,
                 "--trace/--latency-budget/--max-batch/--max-footprint-gb/--tenants/"
                 "--max-queue/--tenant-rate require --serve\n");
    std::exit(2);
  }
  if (o.latency_budget < 0.0 || o.max_batch < 0 || o.max_footprint_gb < 0.0 ||
      o.max_queue < 0 || o.tenant_rate < 0.0) {
    std::fprintf(stderr,
                 "--latency-budget/--max-batch/--max-footprint-gb/--max-queue/"
                 "--tenant-rate must be >= 0\n");
    std::exit(2);
  }
  return o;
}

/// Parses the --tenants "name=weight,..." list (weights must parse and be
/// positive; duplicates rejected).
std::vector<std::pair<std::string, double>> parse_tenants(const std::string& list) {
  std::vector<std::pair<std::string, double>> weights;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    const std::size_t eq = item.find('=');
    if (item.empty() || eq == 0 || eq == std::string::npos || eq + 1 >= item.size())
      vbatch::throw_error(vbatch::Status::InvalidArgument,
                          "--tenants expects name=weight pairs, got '" + item + "'");
    const std::string name = item.substr(0, eq);
    char* end = nullptr;
    const double w = std::strtod(item.c_str() + eq + 1, &end);
    if (end != item.c_str() + item.size() || !(w > 0.0))
      vbatch::throw_error(vbatch::Status::InvalidArgument,
                          "--tenants weight for '" + name + "' must be a positive number");
    for (const auto& [t, existing] : weights)
      if (t == name)
        vbatch::throw_error(vbatch::Status::InvalidArgument,
                            "--tenants lists '" + name + "' twice");
    weights.emplace_back(name, w);
  }
  return weights;
}

/// --serve: replay the scripted trace through the service front-end on the
/// virtual-time clock and print the ServiceReport.
int run_serve(const CliOptions& o) {
  using namespace vbatch;
  namespace svc = vbatch::service;

  svc::Trace trace;
  try {
    trace = svc::load_trace(o.trace_file);
  } catch (const Error& err) {
    std::fprintf(stderr, "--trace %s: %s\n", o.trace_file.c_str(), err.what());
    return 2;
  }

  const std::string pool_desc = o.hetero.empty() ? o.device : o.hetero;
  hetero::DevicePool pool;
  try {
    pool = hetero::DevicePool::parse(pool_desc);
  } catch (const Error& err) {
    std::fprintf(stderr, "pool %s: %s\n", pool_desc.c_str(), err.what());
    return 2;
  }
  if (o.streams > 0)
    for (int e = 0; e < pool.size(); ++e) pool.executor(e).set_streams(o.streams);
  if (o.arena_gb > 0.0)
    for (int e = 0; e < pool.size(); ++e)
      if (pool.executor(e).is_gpu()) pool.executor(e).set_arena_gb(o.arena_gb);
  if (!o.inject_faults.empty()) {
    try {
      pool.set_faults(fault::parse_fault_spec(o.inject_faults));
    } catch (const Error& err) {
      std::fprintf(stderr, "--inject-faults %s: %s\n", o.inject_faults.c_str(), err.what());
      return 2;
    }
    std::printf("faults:   %s\n", pool.faults().describe().c_str());
  }

  svc::ServiceConfig cfg;
  cfg.coalesce.latency_budget = o.latency_budget;
  cfg.coalesce.max_batch = o.max_batch;
  cfg.coalesce.max_bytes = o.max_footprint_gb * 1024.0 * 1024.0 * 1024.0;
  cfg.hetero.potrf = o.potrf;
  cfg.mode = o.verify ? sim::ExecMode::Full : sim::ExecMode::TimingOnly;
  if (o.max_queue > 0 || o.tenant_rate > 0.0) {
    cfg.admission.enabled = true;
    cfg.admission.max_queue = o.max_queue;
    cfg.admission.tenant_rate_gflops = o.tenant_rate;
  }
  if (!o.tenants.empty()) {
    try {
      cfg.tenant_weights = parse_tenants(o.tenants);
    } catch (const Error& err) {
      std::fprintf(stderr, "%s\n", err.what());
      return 2;
    }
  }

  std::printf("serve:    %d requests from %s on pool %s (%s mode)\n", trace.count(),
              o.trace_file.c_str(), pool.describe().c_str(),
              o.verify ? "Full numerics" : "TimingOnly");
  std::printf("coalesce: budget %g s, max-batch %s, max-footprint %s\n", o.latency_budget,
              o.max_batch > 0 ? std::to_string(o.max_batch).c_str() : "unbounded",
              o.max_footprint_gb > 0.0 ? (std::to_string(o.max_footprint_gb) + " GiB").c_str()
                                       : "unbounded");
  if (cfg.admission.enabled)
    std::printf("admit:    max-queue %s, tenant-rate %s\n",
                o.max_queue > 0 ? std::to_string(o.max_queue).c_str() : "unbounded",
                o.tenant_rate > 0.0 ? (std::to_string(o.tenant_rate) + " Gflop/s").c_str()
                                    : "unlimited");
  svc::ServiceReport report;
  try {
    report = svc::replay_trace(pool, trace, cfg);
  } catch (const Error& err) {
    std::fprintf(stderr, "serve: %s\n", err.what());
    return 2;
  }
  report.print(std::cout);
  if (report.failed > 0 || report.poisoned > 0)
    std::printf("note: %d failed, %d poisoned request(s) — see the info arrays\n",
                report.failed, report.poisoned);
  return 0;
}

template <typename T>
int run(const CliOptions& o) {
  using namespace vbatch;
  Rng rng(o.seed);
  const auto sizes = make_sizes(o.dist, rng, o.batch, o.nmax);
  const auto stats = size_stats(sizes);
  std::printf("workload: %d matrices, %s sizes in [%d, %d], mean %.1f\n", o.batch,
              to_string(o.dist), stats.min, stats.max, stats.mean);

  // --device selects the simulated GPU *and* the matching power model, so
  // --energy compares like with like on either architecture.
  const bool p100 = o.device == "p100";
  const sim::DeviceSpec spec = p100 ? sim::DeviceSpec::p100() : sim::DeviceSpec::k40c();
  const energy::PowerModel gpu_power =
      p100 ? energy::PowerModel::p100() : energy::PowerModel::k40c();

  Queue q(spec, o.verify ? sim::ExecMode::Full : sim::ExecMode::TimingOnly);
  std::printf("device:   %s (%s mode)\n", q.spec().name.c_str(),
              o.verify ? "Full numerics" : "TimingOnly");

  PotrfOptions opts = o.potrf;
  if (o.tune) {
    // Host BLAS first: load the persisted per-(host, ISA) profile when one
    // exists, otherwise sweep the cache-derived candidates and save it.
    BlasTuneSettings bts;
    bts.verbose = true;
    const BlasTuneResult bt = ensure_blas_tuned(bts);
    std::printf("blas tune: isa=%s, profile %s (%s)\n",
                to_string(blas::micro::active_isa()),
                bt.loaded_from_cache ? "loaded from cache, sweep skipped"
                                     : "swept and saved",
                bt.cache_path.c_str());
    const auto tuned = autotune_potrf<T>(q, sizes);
    std::printf("autotune: %zu candidates\n", tuned.candidates.size());
    for (const auto& c : tuned.candidates) std::printf("  %s\n", c.describe().c_str());
    opts = tuned.best;
    std::printf("selected: %.1f Gflop/s configuration\n", tuned.best_gflops);
  }

  Batch<T> batch(q, sizes);
  std::vector<std::vector<T>> originals;
  if (o.verify) {
    batch.fill_spd(rng);
    for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
  }

  hetero::DevicePool pool;
  if (!o.hetero.empty()) {
    try {
      pool = hetero::DevicePool::parse(o.hetero);
    } catch (const vbatch::Error& err) {
      std::fprintf(stderr, "--hetero %s: %s\n", o.hetero.c_str(), err.what());
      return 2;
    }
    if (o.streams > 0)
      for (int e = 0; e < pool.size(); ++e) pool.executor(e).set_streams(o.streams);
    if (o.arena_gb > 0.0)
      for (int e = 0; e < pool.size(); ++e)
        if (pool.executor(e).is_gpu()) pool.executor(e).set_arena_gb(o.arena_gb);
    if (!o.inject_faults.empty()) {
      try {
        pool.set_faults(fault::parse_fault_spec(o.inject_faults));
      } catch (const vbatch::Error& err) {
        std::fprintf(stderr, "--inject-faults %s: %s\n", o.inject_faults.c_str(), err.what());
        return 2;
      }
      std::printf("faults:   %s\n", pool.faults().describe().c_str());
    }
    std::printf("pool:     %s\n", pool.describe().c_str());
    hetero::HeteroOptions hopts;
    hopts.potrf = opts;
    const auto hr = hetero::potrf_vbatched_hetero<T>(pool, Uplo::Lower, batch, hopts);
    std::printf(
        "potrf_vbatched_hetero: path=%s  %.3f Gflop  %.3f ms  ->  %.1f Gflop/s"
        "  (%d chunks, %d stolen)\n",
        to_string(hr.path_taken), hr.flops * 1e-9, hr.seconds * 1e3, hr.gflops(), hr.chunks,
        hr.steals);
    for (const auto& ex : hr.executors) {
      std::printf("  %-10s %4d matrices  %2d chunks (%d stolen)  busy %8.3f ms  %7.1f Gflop/s"
                  "%s%s",
                  ex.name.c_str(), ex.matrices, ex.chunks, ex.stolen, ex.busy_seconds * 1e3,
                  ex.busy_seconds > 0.0 ? ex.flops / ex.busy_seconds * 1e-9 : 0.0,
                  ex.retries > 0 ? "  [retries]" : "", ex.lost ? "  [LOST]" : "");
      if (ex.streams > 1)
        std::printf("  [%d streams, %.2fx overlap]", ex.streams, ex.overlap);
      if (ex.streamed) {
        // Staging traffic and how much of it the double buffering hid: the
        // pipeline ratio is (compute + copies) / wall span of the pipeline.
        const double moved = ex.busy_seconds + ex.h2d_seconds + ex.d2h_seconds;
        std::printf("  [h2d %.1f MB, d2h %.1f MB, pipeline %.2fx]", ex.h2d_bytes / 1e6,
                    ex.d2h_bytes / 1e6,
                    ex.pipeline_seconds > 0.0 ? moved / ex.pipeline_seconds : 1.0);
      }
      std::printf("\n");
    }
    if (hr.h2d_bytes > 0.0)
      std::printf("staging:  %.1f MB h2d + %.1f MB d2h streamed out-of-core\n",
                  hr.h2d_bytes / 1e6, hr.d2h_bytes / 1e6);
    if (hr.retries > 0 || hr.executors_lost > 0 || hr.chunks_poisoned > 0)
      std::printf("recovery: %d retries (%.3f ms backoff), %d hangs, %d executors lost, "
                  "%d chunks poisoned\n",
                  hr.retries, hr.backoff_seconds * 1e3, hr.hangs, hr.executors_lost,
                  hr.chunks_poisoned);
    if (o.energy)
      std::printf("pool energy: %.2f J over %.3f ms (%.1f W avg)\n", hr.energy.joules,
                  hr.energy.seconds * 1e3, hr.energy.avg_watts());
  } else {
    const PotrfResult r = potrf_vbatched<T>(q, Uplo::Lower, batch, opts);
    std::printf("potrf_vbatched: path=%s  %.3f Gflop  %.3f ms  ->  %.1f Gflop/s\n",
                to_string(r.path_taken), r.flops * 1e-9, r.seconds * 1e3, r.gflops());
  }

  if (o.verify) {
    double worst = 0.0;
    for (int i = 0; i < batch.count(); ++i) {
      if (batch.info()[static_cast<std::size_t>(i)] != 0) {
        std::printf("FAILED: matrix %d info=%d\n", i, batch.info()[static_cast<std::size_t>(i)]);
        return 1;
      }
      const int n = sizes[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      ConstMatrixView<T> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
      worst = std::max(worst, blas::potrf_residual<T>(Uplo::Lower, orig, batch.matrix(i)));
    }
    std::printf("verify:   worst residual %.2e\n", worst);
  }

  if (o.profile) {
    if (!o.hetero.empty()) {
      for (int e = 0; e < pool.size(); ++e) {
        if (!pool.executor(e).is_gpu()) continue;
        std::printf("\nkernel profile (%s):\n", pool.executor(e).name().c_str());
        sim::print_profile(
            std::cout, sim::profile_timeline(pool.executor(e).queue().device().timeline()));
      }
    } else {
      std::printf("\nkernel profile:\n");
      sim::print_profile(std::cout, sim::profile_timeline(q.device().timeline()));
    }
  }

  if (o.energy && o.hetero.empty()) {
    const auto gpu_e = energy::gpu_run_energy(q.spec(), gpu_power,
                                              energy::PowerModel::dual_e5_2670(),
                                              q.device().timeline(), precision_v<T>);
    const auto cpu_spec = cpu::CpuSpec::dual_e5_2670();
    std::vector<int> lda(sizes.begin(), sizes.end());
    std::vector<int> info(sizes.size(), 0);
    std::vector<T*> null_ptrs(sizes.size(), nullptr);
    const auto cpu_r = cpu::potrf_batched_per_core<T>(cpu_spec, cpu::Schedule::Dynamic,
                                                      Uplo::Lower, sizes, null_ptrs.data(), lda,
                                                      info, false);
    const auto cpu_e = energy::cpu_run_energy(energy::PowerModel::dual_e5_2670(),
                                              energy::PowerModel::k40c(), cpu_r.seconds,
                                              cpu_r.gflops(),
                                              cpu_spec.total_peak_gflops(precision_v<T>));
    std::printf("\nenergy to solution: GPU %.2f J (%.1f W avg)  vs  best CPU %.2f J  ->  %.2fx\n",
                gpu_e.joules, gpu_e.avg_watts(), cpu_e.joules, cpu_e.joules / gpu_e.joules);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  if (o.threads > 0) vbatch::util::set_host_threads(static_cast<unsigned>(o.threads));
  if (o.serve) return run_serve(o);
  return o.double_precision ? run<double>(o) : run<float>(o);
}
