#!/bin/sh
# CLI-flag drift check: every --flag named in docs/api.md must appear in
# `vbatch_cli --help`, so the knob table cannot silently document flags the
# driver no longer (or does not yet) accept.
#
# Usage: check_cli_docs.sh <path-to-vbatch_cli> [repo_root]
set -eu

cli="${1:?usage: check_cli_docs.sh <vbatch_cli> [repo_root]}"
root="${2:-$(dirname "$0")/..}"
api="$root/docs/api.md"

help_out=$("$cli" --help)
status=0
for flag in $(grep -o -- '--[a-z][a-z-]*' "$api" | sort -u); do
  case "$help_out" in
    *"$flag"*) ;;
    *)
      echo "FAILED: docs/api.md names '$flag' but '$cli --help' does not list it" >&2
      status=1
      ;;
  esac
done
[ "$status" -eq 0 ] && echo "check_cli_docs: every docs/api.md flag is in --help"
exit $status
