#!/bin/sh
# CLI-flag drift check between the driver, its --help text, and docs/api.md.
# Four gap classes, each of which has silently bitten a docs pass before:
#   1. docs/api.md names a --flag the driver's --help does not list
#      (documented but dropped, or documented before it exists);
#   2. --help lists a --flag docs/api.md never mentions (shipped but
#      undocumented — the knob table must cover the full surface);
#   3. vbatch_cli.cpp parses a "--flag" literal missing from --help or
#      docs/api.md (accepted but invisible in both places);
#   4. a VBATCH_* environment variable is read via getenv() somewhere in
#      src/ or tools/ but docs/api.md never names it.
#
# Usage: check_cli_docs.sh <path-to-vbatch_cli> [repo_root]
set -eu

cli="${1:?usage: check_cli_docs.sh <vbatch_cli> [repo_root]}"
root="${2:-$(dirname "$0")/..}"
api="$root/docs/api.md"

help_out=$("$cli" --help)
status=0

# 1. api.md -> --help
for flag in $(grep -o -- '--[a-z][a-z-]*' "$api" | sort -u); do
  case "$help_out" in
    *"$flag"*) ;;
    *)
      echo "FAILED: docs/api.md names '$flag' but '$cli --help' does not list it" >&2
      status=1
      ;;
  esac
done

# 2. --help -> api.md
api_flags=$(grep -o -- '--[a-z][a-z-]*' "$api" | sort -u)
for flag in $(printf '%s\n' "$help_out" | grep -o -- '--[a-z][a-z-]*' | sort -u); do
  case "
$api_flags
" in
    *"
$flag
"*) ;;
    *)
      echo "FAILED: '$cli --help' lists '$flag' but docs/api.md never mentions it" >&2
      status=1
      ;;
  esac
done

# 3. parsed literals -> --help and api.md
cli_src="$root/tools/vbatch_cli.cpp"
for flag in $(grep -o -- '"--[a-z][a-z-]*"' "$cli_src" | tr -d '"' | sort -u); do
  case "$help_out" in
    *"$flag"*) ;;
    *)
      echo "FAILED: vbatch_cli.cpp parses '$flag' but --help does not list it" >&2
      status=1
      ;;
  esac
  case "
$api_flags
" in
    *"
$flag
"*) ;;
    *)
      echo "FAILED: vbatch_cli.cpp parses '$flag' but docs/api.md never mentions it" >&2
      status=1
      ;;
  esac
done

# 4. getenv'd VBATCH_* vars -> api.md
for var in $(grep -rho 'getenv("VBATCH_[A-Z_]*")' "$root/src" "$root/tools" \
             | sed 's/getenv("\(.*\)")/\1/' | sort -u); do
  if ! grep -q "$var" "$api"; then
    echo "FAILED: \$$var is read via getenv() but docs/api.md never documents it" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "check_cli_docs: driver, --help and docs/api.md agree on flags and env vars"
exit $status
