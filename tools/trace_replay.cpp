// trace_replay — generate and replay vbatch service traces.
//
// Two modes:
//   * --gen: write a synthetic request trace (deterministic exponential
//     arrivals over N tenants, sizes from the paper's distributions) to
//     stdout — redirect into a file and feed it back to --replay or
//     `vbatch_cli --serve --trace`.
//   * --replay FILE: run the trace through the virtual-time service loop on
//     a chosen pool and print the full ServiceReport. With --check, replay
//     twice and verify bit-identical reports (the determinism contract).
//
// Usage:
//   trace_replay --gen [--count N] [--tenants N] [--rate R] [--nmax N]
//                [--max-matrices N] [--mix-ops] [--mix-precisions] [--seed N]
//                [--burst F] [--deadline-frac F] [--deadline S]
//   trace_replay --replay FILE [--pool DESC] [--latency-budget S]
//                [--max-batch N] [--max-footprint-gb X] [--full] [--check]
//                [--max-queue N] [--tenant-rate G]
//
// --burst F makes the middle third of the generated trace arrive F times
// faster (an overload wave); --deadline-frac F tags that fraction of the
// requests with a deadline of --deadline seconds (default 5 ms). On the
// replay side --max-queue/--tenant-rate enable admission control, the same
// knobs as `vbatch_cli --serve` (docs/service.md, "Overload & admission").
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "vbatch/service/service.hpp"
#include "vbatch/util/error.hpp"

namespace {

[[noreturn]] void usage(int exit_code) {
  std::printf(
      "usage: trace_replay --gen [--count N] [--tenants N] [--rate R] [--nmax N]\n"
      "                    [--max-matrices N] [--mix-ops] [--mix-precisions] [--seed N]\n"
      "                    [--burst F] [--deadline-frac F] [--deadline S]\n"
      "       trace_replay --replay FILE [--pool DESC] [--latency-budget S]\n"
      "                    [--max-batch N] [--max-footprint-gb X] [--full] [--check]\n"
      "                    [--max-queue N] [--tenant-rate G]\n");
  std::exit(exit_code);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vbatch;
  namespace svc = vbatch::service;

  bool gen = false;
  bool check = false;
  std::string replay_file;
  std::string pool_desc = "k40c";
  svc::TraceGenConfig gen_cfg;
  svc::ServiceConfig cfg;
  cfg.coalesce.latency_budget = 1e-3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--help") usage(0);
    else if (arg == "--gen") gen = true;
    else if (arg == "--replay") replay_file = next();
    else if (arg == "--count") gen_cfg.count = std::atoi(next());
    else if (arg == "--tenants") gen_cfg.tenants = std::atoi(next());
    else if (arg == "--rate") gen_cfg.rate = std::atof(next());
    else if (arg == "--nmax") gen_cfg.nmax = std::atoi(next());
    else if (arg == "--max-matrices") gen_cfg.max_matrices = std::atoi(next());
    else if (arg == "--mix-ops") gen_cfg.mix_ops = true;
    else if (arg == "--mix-precisions") gen_cfg.mix_precisions = true;
    else if (arg == "--seed") gen_cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--burst") gen_cfg.burst = std::atof(next());
    else if (arg == "--deadline-frac") gen_cfg.deadline_frac = std::atof(next());
    else if (arg == "--deadline") gen_cfg.deadline_seconds = std::atof(next());
    else if (arg == "--pool") pool_desc = next();
    else if (arg == "--latency-budget") cfg.coalesce.latency_budget = std::atof(next());
    else if (arg == "--max-batch") cfg.coalesce.max_batch = std::atoi(next());
    else if (arg == "--max-footprint-gb")
      cfg.coalesce.max_bytes = std::atof(next()) * 1024.0 * 1024.0 * 1024.0;
    else if (arg == "--full") cfg.mode = sim::ExecMode::Full;
    else if (arg == "--check") check = true;
    else if (arg == "--max-queue") {
      cfg.admission.enabled = true;
      cfg.admission.max_queue = std::atoi(next());
    } else if (arg == "--tenant-rate") {
      cfg.admission.enabled = true;
      cfg.admission.tenant_rate_gflops = std::atof(next());
    }
    else usage(2);
  }
  if (gen == !replay_file.empty()) usage(2);  // exactly one mode

  try {
    if (gen) {
      std::cout << svc::format_trace(svc::make_trace(gen_cfg));
      return 0;
    }

    const svc::Trace trace = svc::load_trace(replay_file);
    hetero::DevicePool pool = hetero::DevicePool::parse(pool_desc);
    std::printf("replay:   %d requests on %s\n", trace.count(), pool.describe().c_str());
    const svc::ServiceReport report = svc::replay_trace(pool, trace, cfg);
    report.print(std::cout);

    if (check) {
      // The determinism contract: a second replay of the same (trace,
      // config, pool) must reproduce the report bit for bit.
      hetero::DevicePool pool2 = hetero::DevicePool::parse(pool_desc);
      const svc::ServiceReport again = svc::replay_trace(pool2, trace, cfg);
      const bool same =
          report.requests == again.requests && report.batches == again.batches &&
          report.shed == again.shed && report.expired == again.expired &&
          std::memcmp(&report.goodput_flops, &again.goodput_flops, sizeof(double)) == 0 &&
          std::memcmp(&report.makespan, &again.makespan, sizeof(double)) == 0 &&
          std::memcmp(&report.flops, &again.flops, sizeof(double)) == 0 &&
          std::memcmp(&report.joules, &again.joules, sizeof(double)) == 0 &&
          std::memcmp(&report.p99_latency, &again.p99_latency, sizeof(double)) == 0;
      std::printf("determinism check: %s\n", same ? "PASS (bit-identical replay)" : "FAIL");
      if (!same) return 1;
    }
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "trace_replay: %s\n", err.what());
    return 2;
  }
}
