#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates every relative link (and its #anchor, if any) in README.md,
DESIGN.md and docs/*.md against the files and headings that actually
exist. Anchors are matched against GitHub's heading slugs (lowercase,
punctuation stripped, spaces to hyphens, -N suffixes on duplicates).
External http(s)/mailto links are ignored — this is a hygiene check for
the docs cross-reference graph, not a crawler.

Usage: check_md_links.py [repo_root]     (exit 0 clean, 1 on broken links)
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(title: str, seen: dict) -> str:
    slug = re.sub(r"[^\w\- ]", "", title.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_slugs(path: Path) -> set:
    slugs, seen, in_fence = set(), {}, False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(2), seen))
    return slugs


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    doc_files = [root / "README.md", root / "DESIGN.md"]
    doc_files += sorted((root / "docs").glob("*.md"))
    doc_files = [f for f in doc_files if f.is_file()]

    slug_cache = {}
    errors = []
    for doc in doc_files:
        for lineno, target in links_of(doc):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
                continue
            path_part, _, anchor = target.partition("#")
            dest = doc if not path_part else (doc.parent / path_part).resolve()
            where = f"{doc.relative_to(root)}:{lineno}"
            if not dest.exists():
                errors.append(f"{where}: broken link '{target}' (no such file)")
                continue
            if anchor:
                if dest.suffix != ".md":
                    continue  # anchors into non-markdown files are not checked
                if dest not in slug_cache:
                    slug_cache[dest] = heading_slugs(dest)
                if anchor not in slug_cache[dest]:
                    errors.append(f"{where}: broken anchor '{target}' "
                                  f"(no heading slug '{anchor}' in {dest.name})")

    for e in errors:
        print(f"FAILED: {e}", file=sys.stderr)
    print(f"check_md_links: {len(doc_files)} files, "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
