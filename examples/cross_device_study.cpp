// Cross-architecture study: how the paper's techniques transfer from the
// Kepler K40c (the paper's testbed) to a Pascal P100 — the kind of
// question the simulator substrate makes cheap to ask. For one workload the
// example reports, per device: the autotuned configuration, the achieved
// performance, and the kernel-level profile.
//
// Build & run:  ./examples/cross_device_study
#include <cstdio>
#include <iostream>

#include "vbatch/core/autotune.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/sim/profile.hpp"

int main() {
  using namespace vbatch;

  Rng rng(2016);
  const auto sizes = uniform_sizes(rng, 1500, 384);
  std::printf("workload: 1500 matrices, uniform sizes in [1, 384], dpotrf\n\n");

  double gflops[2] = {0, 0};
  const sim::DeviceSpec specs[] = {sim::DeviceSpec::k40c(), sim::DeviceSpec::p100()};
  for (int d = 0; d < 2; ++d) {
    Queue q(specs[d], sim::ExecMode::TimingOnly);
    std::printf("=== %s ===\n", q.spec().name.c_str());
    std::printf("peaks: %.0f SP / %.0f DP Gflop/s, %.0f GB/s, %d SMs\n",
                q.spec().peak_gflops(Precision::Single),
                q.spec().peak_gflops(Precision::Double), q.spec().mem_bandwidth_gbps,
                q.spec().num_sms);

    // Retune for each architecture — the paper's point about deployment-site
    // tuning (§III): the best configuration is hardware dependent.
    const auto tuned = autotune_potrf<double>(q, sizes);
    TuneCandidate best;
    best.options = tuned.best;
    best.gflops = tuned.best_gflops;
    std::printf("autotuned: %s\n", best.describe().c_str());

    Batch<double> batch(q, sizes);
    const auto r = potrf_vbatched<double>(q, Uplo::Lower, batch, tuned.best);
    gflops[d] = r.gflops();
    std::printf("potrf_vbatched: %.1f Gflop/s (%.2f ms)\n\n", r.gflops(), r.seconds * 1e3);
    sim::print_profile(std::cout, sim::profile_timeline(q.device().timeline()));
    std::printf("\n");
  }

  std::printf("cross-architecture speedup (P100 / K40c): %.2fx\n", gflops[1] / gflops[0]);
  if (gflops[1] <= gflops[0]) {
    std::printf("FAILED: newer architecture should not be slower\n");
    return 1;
  }
  std::printf("cross-device study OK\n");
  return 0;
}
