// Batched implicit integration of many small reaction networks.
//
// The paper's introduction motivates batched kernels with astrophysics
// (nuclear reaction networks in stellar simulation codes): every grid cell
// carries its own small stiff ODE system dy/dt = f(y), and an implicit
// (backward-Euler) step requires solving (I − h·J) Δy = h·f(y) per cell —
// thousands of independent small LU solves per time step, with network
// sizes that differ between cells (different nuclides tracked per regime).
//
// This example integrates a synthetic ensemble of linear reaction networks
// (y' = K·y with a conservative rate matrix K) using the vbatched LU
// factorization and solve (getrf_vbatched / getrs_vbatched — the paper's
// announced LU extension), and cross-checks the result against a dense
// host solve.
//
// Build & run:  ./examples/astro_reaction_networks
#include <cmath>
#include <cstdio>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/getrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"

namespace {

using namespace vbatch;

// A conservative linear reaction network: off-diagonal rates k_ij >= 0 move
// mass from species j to i; column sums are zero, so total mass is
// conserved and the backward-Euler matrix I - h·K is nonsingular.
std::vector<double> make_rate_matrix(Rng& rng, int n) {
  std::vector<double> k(static_cast<std::size_t>(n) * n, 0.0);
  MatrixView<double> K(k.data(), n, n, n);
  for (int j = 0; j < n; ++j) {
    double out = 0.0;
    for (int i = 0; i < n; ++i) {
      if (i == j) continue;
      // Sparse coupling: each species feeds a few others, with a stiff
      // fast channel to the next species.
      double rate = 0.0;
      if (i == (j + 1) % n) rate = rng.uniform(5.0, 50.0);  // stiff chain
      else if (rng.uniform() < 0.15) rate = rng.uniform(0.01, 1.0);
      K(i, j) = rate;
      out += rate;
    }
    K(j, j) = -out;
  }
  return k;
}

}  // namespace

int main() {
  Rng rng(17);
  constexpr int kCells = 400;
  constexpr double kDt = 0.05;
  constexpr int kSteps = 5;

  // Network sizes differ across cells (8..56 species).
  std::vector<int> sizes(kCells);
  for (auto& s : sizes) s = static_cast<int>(rng.uniform_int(8, 56));
  std::printf("ensemble: %d cells, network sizes %d..%d, %d backward-Euler steps (h=%.2f)\n",
              kCells, *std::min_element(sizes.begin(), sizes.end()),
              *std::max_element(sizes.begin(), sizes.end()), kSteps, kDt);

  // Per-cell state (abundances, normalized to sum 1) and rate matrices.
  std::vector<std::vector<double>> rates;
  std::vector<std::vector<double>> y;
  rates.reserve(kCells);
  y.reserve(kCells);
  for (int c = 0; c < kCells; ++c) {
    const int n = sizes[static_cast<std::size_t>(c)];
    rates.push_back(make_rate_matrix(rng, n));
    std::vector<double> y0(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (auto& v : y0) {
      v = rng.uniform(0.0, 1.0);
      sum += v;
    }
    for (auto& v : y0) v /= sum;
    y.push_back(std::move(y0));
  }
  auto y_ref = y;  // host-reference trajectory

  Queue queue(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  double gpu_seconds = 0.0;

  for (int step = 0; step < kSteps; ++step) {
    // Assemble the batched backward-Euler systems: (I − h·K) y_{t+1} = y_t.
    Batch<double> systems(queue, sizes);
    std::vector<int> nrhs(sizes.size(), 1);
    RectBatch<double> rhs(queue, sizes, nrhs);
    for (int c = 0; c < kCells; ++c) {
      const int n = sizes[static_cast<std::size_t>(c)];
      auto Acell = systems.matrix(c);
      ConstMatrixView<double> K(rates[static_cast<std::size_t>(c)].data(), n, n, n);
      for (int jj = 0; jj < n; ++jj)
        for (int ii = 0; ii < n; ++ii)
          Acell(ii, jj) = (ii == jj ? 1.0 : 0.0) - kDt * K(ii, jj);
      auto bcell = rhs.matrix(c);
      for (int ii = 0; ii < n; ++ii) bcell(ii, 0) = y[static_cast<std::size_t>(c)][static_cast<std::size_t>(ii)];
    }

    // One vbatched LU + one vbatched solve advance every cell.
    PivotArrays ipiv(queue, sizes);
    const auto f = getrf_vbatched<double>(queue, systems, ipiv);
    const auto s = getrs_vbatched<double>(queue, systems, ipiv, rhs);
    gpu_seconds += f.seconds + s.seconds;
    for (int c = 0; c < kCells; ++c) {
      if (systems.info()[static_cast<std::size_t>(c)] != 0) {
        std::printf("cell %d: singular backward-Euler matrix\n", c);
        return 1;
      }
      const int n = sizes[static_cast<std::size_t>(c)];
      auto x = rhs.matrix(c);
      for (int ii = 0; ii < n; ++ii) y[static_cast<std::size_t>(c)][static_cast<std::size_t>(ii)] = x(ii, 0);
    }

    // Host reference for the same step.
    for (int c = 0; c < kCells; ++c) {
      const int n = sizes[static_cast<std::size_t>(c)];
      std::vector<double> m(static_cast<std::size_t>(n) * n);
      MatrixView<double> M(m.data(), n, n, n);
      ConstMatrixView<double> K(rates[static_cast<std::size_t>(c)].data(), n, n, n);
      for (int jj = 0; jj < n; ++jj)
        for (int ii = 0; ii < n; ++ii) M(ii, jj) = (ii == jj ? 1.0 : 0.0) - kDt * K(ii, jj);
      std::vector<int> piv(static_cast<std::size_t>(n));
      if (blas::getrf<double>(M, piv) != 0) return 1;
      MatrixView<double> b(y_ref[static_cast<std::size_t>(c)].data(), n, 1, n);
      blas::laswp<double>(b, piv, 0, n);
      blas::trsm<double>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, 1.0, M, b);
      blas::trsm<double>(Side::Left, Uplo::Upper, Trans::NoTrans, Diag::NonUnit, 1.0, M, b);
    }
  }

  // Verify against the reference and check mass conservation.
  double worst = 0.0, worst_mass = 0.0;
  for (int c = 0; c < kCells; ++c) {
    const int n = sizes[static_cast<std::size_t>(c)];
    double mass = 0.0;
    for (int ii = 0; ii < n; ++ii) {
      worst = std::max(worst, std::abs(y[static_cast<std::size_t>(c)][static_cast<std::size_t>(ii)] -
                                       y_ref[static_cast<std::size_t>(c)][static_cast<std::size_t>(ii)]));
      mass += y[static_cast<std::size_t>(c)][static_cast<std::size_t>(ii)];
    }
    worst_mass = std::max(worst_mass, std::abs(mass - 1.0));
  }
  std::printf("max |y_batched - y_reference| = %.2e, max mass drift = %.2e\n", worst,
              worst_mass);
  std::printf("modelled GPU time across %d steps: %.1f us\n", kSteps, gpu_seconds * 1e6);
  if (worst > 1e-10 || worst_mass > 1e-10) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("reaction-network integration OK\n");
  return 0;
}
