// Multifrontal sparse Cholesky with batched fronts.
//
// The paper's introduction motivates vbatched kernels with "large scale
// sparse direct multifrontal solvers": at each level of the elimination
// tree, many small dense frontal matrices of *different* sizes must be
// partially factored — exactly a variable-size batched Cholesky.
//
// This example builds a synthetic elimination tree, assembles the frontal
// matrices (extend-add of the children's Schur complements), factors every
// level's pivot blocks with ONE potrf_vbatched call, forms the Schur
// complements, and finally verifies the assembled global factorization
// ‖A − L·Lᵀ‖_F against the implicitly defined sparse matrix.
//
// Build & run:  ./examples/multifrontal_solver
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

struct Supernode {
  int ns = 0;                    // fully summed (pivot) variables
  int parent = -1;
  int level = 0;                 // 0 = root
  std::vector<int> pivot_gidx;   // global indices of the pivot variables
  std::vector<int> border_gidx;  // global indices coupled to ancestors
  std::vector<double> front;     // dense (ns+bs)² frontal matrix
  std::vector<double> schur;     // bs² Schur complement after elimination

  [[nodiscard]] int bs() const { return static_cast<int>(border_gidx.size()); }
  [[nodiscard]] int dim() const { return ns + bs(); }
  [[nodiscard]] MatrixView<double> F() {
    return MatrixView<double>(front.data(), dim(), dim(), dim());
  }
};

// Builds a balanced binary elimination tree of the given depth with random
// supernode sizes; assigns global pivot indices in postorder (children
// eliminated before parents) and border indices as subsets of the parent's
// front — the structural invariant of a multifrontal factorization.
std::vector<Supernode> build_tree(Rng& rng, int depth, int& total_n) {
  const int count = (1 << depth) - 1;  // heap layout: node 0 = root
  std::vector<Supernode> tree(static_cast<std::size_t>(count));
  for (int v = 0; v < count; ++v) {
    tree[static_cast<std::size_t>(v)].ns = static_cast<int>(rng.uniform_int(6, 40));
    tree[static_cast<std::size_t>(v)].parent = v == 0 ? -1 : (v - 1) / 2;
    int lvl = 0;
    for (int p = v; p > 0; p = (p - 1) / 2) ++lvl;
    tree[static_cast<std::size_t>(v)].level = lvl;
  }
  // Postorder global numbering.
  total_n = 0;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(count));
  // Iterative postorder over the heap-shaped tree.
  std::vector<std::pair<int, bool>> stack{{0, false}};
  while (!stack.empty()) {
    auto [v, visited] = stack.back();
    stack.pop_back();
    if (visited) {
      order.push_back(v);
      continue;
    }
    stack.emplace_back(v, true);
    const int l = 2 * v + 1, r = 2 * v + 2;
    if (r < count) stack.emplace_back(r, false);
    if (l < count) stack.emplace_back(l, false);
  }
  for (int v : order) {
    auto& node = tree[static_cast<std::size_t>(v)];
    node.pivot_gidx.resize(static_cast<std::size_t>(node.ns));
    std::iota(node.pivot_gidx.begin(), node.pivot_gidx.end(), total_n);
    total_n += node.ns;
  }
  // Borders, top-down: a child's border is a random subset of the parent's
  // front (pivots ∪ border), which keeps fill-in structurally consistent.
  for (int v = 1; v < count; ++v) {
    auto& node = tree[static_cast<std::size_t>(v)];
    const auto& par = tree[static_cast<std::size_t>(node.parent)];
    std::vector<int> pool = par.pivot_gidx;
    pool.insert(pool.end(), par.border_gidx.begin(), par.border_gidx.end());
    const int bs = static_cast<int>(rng.uniform_int(4, std::max<std::int64_t>(4, static_cast<int>(pool.size()) - 1)));
    // Random subset without replacement.
    for (int k = 0; k < bs; ++k) {
      const auto pick = rng.uniform_int(0, static_cast<int>(pool.size()) - 1);
      node.border_gidx.push_back(pool[static_cast<std::size_t>(pick)]);
      pool.erase(pool.begin() + pick);
    }
    std::sort(node.border_gidx.begin(), node.border_gidx.end());
  }
  return tree;
}

// Each supernode contributes a PSD Gram block plus a diagonal boost on its
// front indices; the global matrix is the sum of all contributions — SPD by
// construction, with multifrontal sparsity.
std::vector<double> make_contribution(Rng& rng, int dim) {
  std::vector<double> g(static_cast<std::size_t>(dim * dim));
  std::vector<double> b(static_cast<std::size_t>(dim * dim));
  fill_general(rng, b.data(), dim, dim, dim);
  MatrixView<double> gv(g.data(), dim, dim, dim);
  blas::syrk<double>(Uplo::Lower, Trans::NoTrans, 1.0,
                     ConstMatrixView<double>(b.data(), dim, dim, dim), 0.0, gv);
  for (int i = 0; i < dim; ++i) {
    gv(i, i) += dim;
    for (int jj = i + 1; jj < dim; ++jj) gv(i, jj) = gv(jj, i);  // symmetrize storage
  }
  return g;
}

}  // namespace

int main() {
  Rng rng(7);
  constexpr int kDepth = 6;  // 63 supernodes
  int total_n = 0;
  auto tree = build_tree(rng, kDepth, total_n);
  std::printf("elimination tree: %zu supernodes, global order %d\n", tree.size(), total_n);

  // Assemble the implicit global matrix (dense here only for verification).
  std::vector<double> A(static_cast<std::size_t>(total_n) * total_n, 0.0);
  MatrixView<double> Av(A.data(), total_n, total_n, total_n);
  std::vector<std::vector<double>> contributions(tree.size());
  for (std::size_t v = 0; v < tree.size(); ++v) {
    auto& node = tree[v];
    contributions[v] = make_contribution(rng, node.dim());
    std::vector<int> gidx = node.pivot_gidx;
    gidx.insert(gidx.end(), node.border_gidx.begin(), node.border_gidx.end());
    ConstMatrixView<double> c(contributions[v].data(), node.dim(), node.dim(), node.dim());
    for (int jj = 0; jj < node.dim(); ++jj)
      for (int ii = 0; ii < node.dim(); ++ii)
        Av(gidx[static_cast<std::size_t>(ii)], gidx[static_cast<std::size_t>(jj)]) += c(ii, jj);
  }

  // Global factor being accumulated front by front.
  std::vector<double> L(static_cast<std::size_t>(total_n) * total_n, 0.0);
  MatrixView<double> Lv(L.data(), total_n, total_n, total_n);

  Queue queue(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  double gpu_seconds = 0.0;
  double gpu_flops = 0.0;

  // Bottom-up sweep, one vbatched call per level.
  for (int level = kDepth - 1; level >= 0; --level) {
    std::vector<int> nodes;
    for (std::size_t v = 0; v < tree.size(); ++v)
      if (tree[v].level == level) nodes.push_back(static_cast<int>(v));

    // Assemble fronts: own contribution + children's Schur complements.
    for (int v : nodes) {
      auto& node = tree[static_cast<std::size_t>(v)];
      node.front = contributions[static_cast<std::size_t>(v)];
      std::vector<int> gidx = node.pivot_gidx;
      gidx.insert(gidx.end(), node.border_gidx.begin(), node.border_gidx.end());
      for (int c : {2 * v + 1, 2 * v + 2}) {
        if (c >= static_cast<int>(tree.size())) continue;
        auto& child = tree[static_cast<std::size_t>(c)];
        // Extend-add: scatter the child's Schur complement through the
        // global indices of its border.
        auto F = node.F();
        for (int jj = 0; jj < child.bs(); ++jj) {
          for (int ii = 0; ii < child.bs(); ++ii) {
            const int gi = child.border_gidx[static_cast<std::size_t>(ii)];
            const int gj = child.border_gidx[static_cast<std::size_t>(jj)];
            const auto pi = std::lower_bound(gidx.begin(), gidx.end(), gi) - gidx.begin();
            const auto pj = std::lower_bound(gidx.begin(), gidx.end(), gj) - gidx.begin();
            F(static_cast<index_t>(pi), static_cast<index_t>(pj)) +=
                child.schur[static_cast<std::size_t>(ii + jj * child.bs())];
          }
        }
        child.schur.clear();
      }
    }

    // The level's pivot blocks form one variable-size batch.
    std::vector<int> sizes;
    for (int v : nodes) sizes.push_back(tree[static_cast<std::size_t>(v)].ns);
    Batch<double> batch(queue, sizes);
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      auto& node = tree[static_cast<std::size_t>(nodes[k])];
      auto dst = batch.matrix(static_cast<int>(k));
      auto F = node.F();
      for (int jj = 0; jj < node.ns; ++jj)
        for (int ii = 0; ii < node.ns; ++ii) dst(ii, jj) = F(ii, jj);
    }
    const auto result = potrf_vbatched<double>(queue, Uplo::Lower, batch);
    gpu_seconds += result.seconds;
    gpu_flops += result.flops;
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      if (batch.info()[k] != 0) {
        std::printf("front %d not SPD (info=%d)\n", nodes[k], batch.info()[k]);
        return 1;
      }
    }

    // Border solve + Schur complement per front (host BLAS layer), then
    // scatter the L blocks into the global factor.
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      auto& node = tree[static_cast<std::size_t>(nodes[k])];
      auto L11 = batch.matrix(static_cast<int>(k));
      auto F = node.F();
      for (int jj = 0; jj < node.ns; ++jj)
        for (int ii = jj; ii < node.ns; ++ii) F(ii, jj) = L11(ii, jj);
      const int bs = node.bs();
      if (bs > 0) {
        auto A21 = F.block(node.ns, 0, bs, node.ns);
        blas::trsm<double>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, 1.0,
                           F.block(0, 0, node.ns, node.ns), A21);
        node.schur.assign(static_cast<std::size_t>(bs) * bs, 0.0);
        MatrixView<double> S(node.schur.data(), bs, bs, bs);
        for (int jj = 0; jj < bs; ++jj)
          for (int ii = 0; ii < bs; ++ii) S(ii, jj) = F(node.ns + ii, node.ns + jj);
        blas::syrk<double>(Uplo::Lower, Trans::NoTrans, -1.0,
                           ConstMatrixView<double>(A21.data(), bs, node.ns, F.ld()), 1.0, S);
        for (int jj = 0; jj < bs; ++jj)  // symmetrize for the extend-add
          for (int ii = 0; ii < jj; ++ii) S(ii, jj) = S(jj, ii);
      }
      // Scatter L11 and L21 into the global factor.
      std::vector<int> gidx = node.pivot_gidx;
      gidx.insert(gidx.end(), node.border_gidx.begin(), node.border_gidx.end());
      for (int jj = 0; jj < node.ns; ++jj)
        for (int ii = jj; ii < node.dim(); ++ii)
          Lv(gidx[static_cast<std::size_t>(ii)], gidx[static_cast<std::size_t>(jj)]) = F(ii, jj);
    }

    int min_ns = 1 << 30, max_ns = 0;
    for (int s : sizes) {
      min_ns = std::min(min_ns, s);
      max_ns = std::max(max_ns, s);
    }
    std::printf("level %d: %3zu fronts, pivot sizes %d..%d, batched potrf %.1f us (%s)\n",
                level, nodes.size(), min_ns, max_ns, result.seconds * 1e6,
                to_string(result.path_taken));
  }

  // Verify the global factorization (lower triangle of A holds the matrix).
  ConstMatrixView<double> Ac(A.data(), total_n, total_n, total_n);
  const double res = blas::potrf_residual<double>(Uplo::Lower, Ac, Lv);
  std::printf("global multifrontal residual |A - LL^T|/(n|A|) = %.2e\n", res);
  std::printf("batched pivot factorizations: %.2f Mflop, %.1f us modelled GPU time\n",
              gpu_flops * 1e-6, gpu_seconds * 1e6);
  if (res > 1e-12) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("multifrontal solver OK\n");
  return 0;
}
