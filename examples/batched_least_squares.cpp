// Batched polynomial least squares via the vbatched QR factorization.
//
// Signal-processing pipelines (another §I motivation) fit small models to
// many independent traces: each sensor channel yields a least-squares
// problem min‖V·c − y‖ with its own trace length and polynomial degree.
// This example fits noisy polynomial samples for hundreds of channels with
// two vbatched calls — geqrf_vbatched (factor) and geqrs_vbatched (apply
// Qᵀ + back-substitute against R) — and checks the recovered coefficients.
//
// Build & run:  ./examples/batched_least_squares
#include <cmath>
#include <cstdio>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/geqrf_vbatched.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

struct Channel {
  int samples;                    // trace length (rows)
  int degree;                     // polynomial degree; cols = degree + 1
  std::vector<double> t;          // sample positions in [-1, 1]
  std::vector<double> y;          // noisy observations
  std::vector<double> coeff_true; // generating coefficients
};

}  // namespace

int main() {
  Rng rng(23);
  constexpr int kChannels = 300;
  constexpr double kNoise = 1e-4;

  // Varying trace lengths and model orders.
  std::vector<Channel> channels(kChannels);
  std::vector<int> rows(kChannels), cols(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    auto& ch = channels[static_cast<std::size_t>(c)];
    ch.degree = static_cast<int>(rng.uniform_int(2, 7));
    ch.samples = static_cast<int>(rng.uniform_int(4 * (ch.degree + 1), 120));
    ch.coeff_true.resize(static_cast<std::size_t>(ch.degree + 1));
    for (auto& v : ch.coeff_true) v = rng.uniform(-2.0, 2.0);
    ch.t.resize(static_cast<std::size_t>(ch.samples));
    ch.y.resize(static_cast<std::size_t>(ch.samples));
    for (int i = 0; i < ch.samples; ++i) {
      const double t = rng.uniform(-1.0, 1.0);
      double v = 0.0, p = 1.0;
      for (int d = 0; d <= ch.degree; ++d) {
        v += ch.coeff_true[static_cast<std::size_t>(d)] * p;
        p *= t;
      }
      ch.t[static_cast<std::size_t>(i)] = t;
      ch.y[static_cast<std::size_t>(i)] = v + rng.gaussian(0.0, kNoise);
    }
    rows[static_cast<std::size_t>(c)] = ch.samples;
    cols[static_cast<std::size_t>(c)] = ch.degree + 1;
  }
  std::printf("least squares: %d channels, traces %d..%d samples, degrees 2..7\n", kChannels,
              *std::min_element(rows.begin(), rows.end()),
              *std::max_element(rows.begin(), rows.end()));

  // Assemble the Vandermonde matrices and factor the whole batch.
  Queue queue(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  RectBatch<double> vander(queue, rows, cols);
  for (int c = 0; c < kChannels; ++c) {
    const auto& ch = channels[static_cast<std::size_t>(c)];
    auto V = vander.matrix(c);
    for (int i = 0; i < ch.samples; ++i) {
      double p = 1.0;
      for (int d = 0; d <= ch.degree; ++d) {
        V(i, d) = p;
        p *= ch.t[static_cast<std::size_t>(i)];
      }
    }
  }
  std::vector<int> mn(static_cast<std::size_t>(kChannels));
  for (int c = 0; c < kChannels; ++c)
    mn[static_cast<std::size_t>(c)] = std::min(rows[static_cast<std::size_t>(c)],
                                               cols[static_cast<std::size_t>(c)]);
  TauArrays<double> tau(queue, mn);
  const auto r = geqrf_vbatched<double>(queue, vander, tau);
  std::printf("geqrf_vbatched: %.2f Mflop in %.1f us -> %.1f Gflop/s (modelled)\n",
              r.flops * 1e-6, r.seconds * 1e6, r.gflops());

  // Solve every least-squares problem with one batched call: Qᵀ·y followed
  // by the R back-substitution (geqrs_vbatched overwrites the top n rows of
  // each rhs with the coefficients).
  std::vector<int> nrhs(static_cast<std::size_t>(kChannels), 1);
  RectBatch<double> rhs(queue, rows, nrhs);
  for (int c = 0; c < kChannels; ++c) {
    const auto& ch = channels[static_cast<std::size_t>(c)];
    auto bcol = rhs.matrix(c);
    for (int i = 0; i < ch.samples; ++i) bcol(i, 0) = ch.y[static_cast<std::size_t>(i)];
  }
  const auto s = geqrs_vbatched<double>(queue, vander, tau, rhs);
  std::printf("geqrs_vbatched: %.2f Mflop in %.1f us -> %.1f Gflop/s (modelled)\n",
              s.flops * 1e-6, s.seconds * 1e6, s.gflops());

  double worst = 0.0;
  for (int c = 0; c < kChannels; ++c) {
    const auto& ch = channels[static_cast<std::size_t>(c)];
    auto x = rhs.matrix(c);
    for (int d = 0; d <= ch.degree; ++d) {
      worst = std::max(worst,
                       std::abs(x(d, 0) - ch.coeff_true[static_cast<std::size_t>(d)]));
    }
  }
  std::printf("max coefficient error across all channels: %.2e (noise level %.0e)\n", worst,
              kNoise);
  if (worst > 200 * kNoise) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("batched least squares OK\n");
  return 0;
}
