// Block-Jacobi preconditioned conjugate gradients with vbatched Cholesky.
//
// The paper's introduction lists "direct-iterative preconditioned solvers"
// among the applications that need variable-size batched kernels: a
// block-Jacobi preconditioner factors many small diagonal blocks — of
// different sizes when the blocks follow the problem structure — once, and
// solves against all of them at every iteration.
//
// This example discretizes a 2-D anisotropic Poisson problem, partitions
// the unknowns into variable-size blocks, factors all blocks with one
// potrf_vbatched call, and runs CG with the block solves applied through
// potrs_vbatched. It reports the iteration counts with and without the
// preconditioner.
//
// Build & run:  ./examples/block_jacobi_preconditioner
#include <cmath>
#include <cstdio>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

// Sparse SPD system: 2-D 5-point Laplacian with an anisotropy that makes
// plain CG converge slowly.
struct Poisson2D {
  int nx, ny;
  double eps;  // anisotropy in y
  [[nodiscard]] int n() const { return nx * ny; }

  void apply(const std::vector<double>& x, std::vector<double>& y) const {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const int k = i + j * nx;
        double v = (2.0 + 2.0 * eps) * x[static_cast<std::size_t>(k)];
        if (i > 0) v -= x[static_cast<std::size_t>(k - 1)];
        if (i + 1 < nx) v -= x[static_cast<std::size_t>(k + 1)];
        if (j > 0) v -= eps * x[static_cast<std::size_t>(k - nx)];
        if (j + 1 < ny) v -= eps * x[static_cast<std::size_t>(k + nx)];
        y[static_cast<std::size_t>(k)] = v;
      }
    }
  }

  [[nodiscard]] double entry(int r, int c) const {
    if (r == c) return 2.0 + 2.0 * eps;
    const int ri = r % nx, rj = r / nx, ci = c % nx, cj = c / nx;
    if (rj == cj && std::abs(ri - ci) == 1) return -1.0;
    if (ri == ci && std::abs(rj - cj) == 1) return -eps;
    return 0.0;
  }
};

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

// Runs (preconditioned) CG; returns iterations to reach the tolerance, or
// -1. `precond` maps r -> z (identity when null).
int conjugate_gradients(const Poisson2D& A, const std::vector<double>& b,
                        const std::function<void(const std::vector<double>&,
                                                 std::vector<double>&)>& precond,
                        int max_iters, double tol) {
  const std::size_t n = b.size();
  std::vector<double> x(n, 0.0), r = b, z(n), p(n), Ap(n);
  if (precond) {
    precond(r, z);
  } else {
    z = r;
  }
  p = z;
  double rz = dot(r, z);
  const double bnorm = std::sqrt(dot(b, b));
  for (int it = 1; it <= max_iters; ++it) {
    A.apply(p, Ap);
    const double alpha = rz / dot(p, Ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    if (std::sqrt(dot(r, r)) < tol * bnorm) return it;
    if (precond) {
      precond(r, z);
    } else {
      z = r;
    }
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return -1;
}

}  // namespace

int main() {
  const Poisson2D A{64, 64, 0.01};
  const int n = A.n();
  std::printf("system: %dx%d anisotropic Poisson, n = %d\n", A.nx, A.ny, n);

  Rng rng(11);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  // Variable-size blocks along the natural ordering: one block per group of
  // grid rows, with jittered extents (the realistic case the paper targets:
  // block sizes follow the physics/partition, not a fixed tile).
  std::vector<int> block_sizes;
  std::vector<int> block_start{0};
  {
    int pos = 0;
    while (pos < n) {
      const int sz = std::min<int>(n - pos, static_cast<int>(rng.uniform_int(24, 96)));
      block_sizes.push_back(sz);
      pos += sz;
      block_start.push_back(pos);
    }
  }
  std::printf("block-Jacobi: %zu diagonal blocks, sizes %d..%d\n", block_sizes.size(),
              *std::min_element(block_sizes.begin(), block_sizes.end()),
              *std::max_element(block_sizes.begin(), block_sizes.end()));

  // Factor every diagonal block with one vbatched Cholesky call.
  Queue queue(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Batch<double> blocks(queue, block_sizes);
  for (int k = 0; k < blocks.count(); ++k) {
    auto dst = blocks.matrix(k);
    const int base = block_start[static_cast<std::size_t>(k)];
    for (index_t c = 0; c < dst.cols(); ++c)
      for (index_t r = 0; r < dst.rows(); ++r)
        dst(r, c) = A.entry(base + static_cast<int>(r), base + static_cast<int>(c));
  }
  const auto fact = potrf_vbatched<double>(queue, Uplo::Lower, blocks);
  for (int k = 0; k < blocks.count(); ++k) {
    if (blocks.info()[static_cast<std::size_t>(k)] != 0) {
      std::printf("block %d not SPD\n", k);
      return 1;
    }
  }
  std::printf("setup: potrf_vbatched %.1f us modelled (%s path)\n", fact.seconds * 1e6,
              to_string(fact.path_taken));

  // The preconditioner: z = M^{-1} r through potrs_vbatched.
  std::vector<int> nrhs(block_sizes.size(), 1);
  RectBatch<double> rhs(queue, block_sizes, nrhs);
  double apply_seconds = 0.0;
  int applications = 0;
  auto precond = [&](const std::vector<double>& r, std::vector<double>& z) {
    for (int k = 0; k < blocks.count(); ++k) {
      auto dst = rhs.matrix(k);
      const int base = block_start[static_cast<std::size_t>(k)];
      for (index_t i = 0; i < dst.rows(); ++i) dst(i, 0) = r[static_cast<std::size_t>(base + i)];
    }
    const auto solve = potrs_vbatched<double>(queue, Uplo::Lower, blocks, rhs);
    apply_seconds += solve.seconds;
    ++applications;
    for (int k = 0; k < blocks.count(); ++k) {
      auto src = rhs.matrix(k);
      const int base = block_start[static_cast<std::size_t>(k)];
      for (index_t i = 0; i < src.rows(); ++i) z[static_cast<std::size_t>(base + i)] = src(i, 0);
    }
  };

  const int plain = conjugate_gradients(A, b, nullptr, 4000, 1e-8);
  const int pcg = conjugate_gradients(A, b, precond, 4000, 1e-8);
  std::printf("CG iterations:  plain = %d,  block-Jacobi PCG = %d\n", plain, pcg);
  std::printf("preconditioner: %d applications, %.1f us modelled GPU time total\n",
              applications, apply_seconds * 1e6);

  if (pcg < 0 || plain < 0 || pcg >= plain) {
    std::printf("FAILED: preconditioner did not reduce the iteration count\n");
    return 1;
  }
  std::printf("block-Jacobi preconditioner OK\n");
  return 0;
}
