// Quickstart: the smallest end-to-end use of the vbatched API.
//
//   1. create a queue (the simulated K40c device handle),
//   2. build a batch of SPD matrices with sizes drawn from the paper's
//      uniform distribution,
//   3. factor them all with one potrf_vbatched call,
//   4. solve right-hand sides with potrs_vbatched,
//   5. verify residuals and print the modelled performance.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"

int main() {
  using namespace vbatch;

  // A queue owns the device every vbatched routine runs on. Full mode
  // executes the real numerics (TimingOnly would model time only).
  Queue queue(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  std::printf("device: %s (%.0f DP Gflop/s peak, %zu MiB)\n", queue.spec().name.c_str(),
              queue.spec().peak_gflops(Precision::Double),
              queue.spec().global_mem_bytes >> 20);

  // 200 SPD matrices with orders uniform in [1, 128].
  Rng rng(42);
  const auto sizes = uniform_sizes(rng, 200, 128);
  Batch<double> batch(queue, sizes);
  batch.fill_spd(rng);

  // Keep copies for the residual check.
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  // One call factors the whole batch; the library picks the fused or the
  // separated approach from the maximum size (crossover policy, §IV-E).
  const PotrfResult fact = potrf_vbatched<double>(queue, Uplo::Lower, batch);
  std::printf("potrf_vbatched: path=%s, %.2f Mflop in %.1f us -> %.1f Gflop/s (modelled)\n",
              to_string(fact.path_taken), fact.flops * 1e-6, fact.seconds * 1e6,
              fact.gflops());

  // Verify every factorization.
  double worst = 0.0;
  for (int i = 0; i < batch.count(); ++i) {
    if (batch.info()[static_cast<std::size_t>(i)] != 0) {
      std::printf("matrix %d failed with info=%d\n", i, batch.info()[static_cast<std::size_t>(i)]);
      return 1;
    }
    const int n = sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    worst = std::max(worst, blas::potrf_residual<double>(Uplo::Lower, orig, batch.matrix(i)));
  }
  std::printf("worst Cholesky residual: %.2e\n", worst);

  // Solve one right-hand side per matrix.
  std::vector<int> nrhs(sizes.size(), 1);
  RectBatch<double> rhs(queue, sizes, nrhs);
  rhs.fill_general(rng);
  const FactorResult solve = potrs_vbatched<double>(queue, Uplo::Lower, batch, rhs);
  std::printf("potrs_vbatched: %.2f Mflop in %.1f us -> %.1f Gflop/s (modelled)\n",
              solve.flops * 1e-6, solve.seconds * 1e6, solve.gflops());

  std::printf("device timeline: %zu kernels, %.1f us busy\n",
              queue.device().timeline().size(),
              queue.device().timeline().busy_seconds() * 1e6);

  // Complex precisions work the same way (§IV-A); Trans means conjugate
  // transpose for complex scalars (Hermitian convention).
  using Z = std::complex<double>;
  Batch<Z> zbatch(queue, std::vector<int>{24, 48, 33});
  zbatch.fill_spd(rng);  // Hermitian positive definite
  std::vector<std::vector<Z>> zorig;
  for (int i = 0; i < zbatch.count(); ++i) zorig.push_back(zbatch.copy_matrix(i));
  potrf_vbatched<Z>(queue, Uplo::Lower, zbatch);
  double zworst = 0.0;
  for (int i = 0; i < zbatch.count(); ++i) {
    const int n = zbatch.sizes()[static_cast<std::size_t>(i)];
    ConstMatrixView<Z> orig(zorig[static_cast<std::size_t>(i)].data(), n, n, n);
    zworst = std::max(zworst, blas::potrf_residual<Z>(Uplo::Lower, orig, zbatch.matrix(i)));
  }
  std::printf("zpotrf_vbatched worst residual: %.2e\n", zworst);

  std::printf("quickstart OK\n");
  return 0;
}
